//! A decentralized Bitcoin escrow — one of the paper's motivating
//! applications (§I).
//!
//! ```text
//! cargo run --example escrow
//! ```
//!
//! A buyer locks bitcoin in an escrow contract running on the IC. The
//! contract releases the funds to the seller once the deposit has enough
//! confirmations *and* the buyer confirms delivery; if the deal is
//! disputed, the funds return to the buyer. The deposit address is
//! derived from the subnet's threshold key — no bridge, no custodian,
//! and the release transaction is a real threshold-signed Bitcoin
//! transaction.

use icbtc::contracts::Wallet;
use icbtc::system::{System, SystemConfig};
use icbtc_bitcoin::{Address, Amount};
use icbtc_sim::SimTime;

/// The escrow contract state machine, as a canister would hold it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EscrowStatus {
    /// Waiting for the buyer's deposit to reach the required depth.
    AwaitingDeposit,
    /// Deposit confirmed; waiting for the delivery decision.
    Funded,
    /// Funds released to the seller.
    Released,
    /// Funds refunded to the buyer.
    Refunded,
}

struct Escrow {
    wallet: Wallet,
    buyer_refund: Address,
    seller_payout: Address,
    price: Amount,
    /// Confirmations required before the deposit counts — the paper's
    /// `c*` for critical actions (§IV-A).
    required_confirmations: u32,
    status: EscrowStatus,
}

impl Escrow {
    fn new(id: &str, buyer_refund: Address, seller_payout: Address, price: Amount) -> Escrow {
        Escrow {
            wallet: Wallet::new(&format!("escrow-{id}")),
            buyer_refund,
            seller_payout,
            price,
            required_confirmations: 6,
            status: EscrowStatus::AwaitingDeposit,
        }
    }

    fn deposit_address(&self, system: &System) -> Address {
        self.wallet.address(system)
    }

    /// The contract's periodic check (a canister timer in production):
    /// has the deposit reached the required confirmation depth?
    fn poll_deposit(&mut self, system: &mut System) {
        if self.status != EscrowStatus::AwaitingDeposit {
            return;
        }
        let confirmed = self
            .wallet
            .balance(system, self.required_confirmations)
            .unwrap_or(Amount::ZERO);
        if confirmed >= self.price {
            self.status = EscrowStatus::Funded;
        }
    }

    /// Buyer confirmed delivery: release to the seller.
    fn release(&mut self, system: &mut System) -> icbtc_bitcoin::Txid {
        assert_eq!(self.status, EscrowStatus::Funded, "can only release a funded escrow");
        let fee = Amount::from_sat(2_000);
        let payout = self.price.checked_sub(fee).expect("price covers fee");
        let txid = self
            .wallet
            .transfer(system, &self.seller_payout, payout, fee)
            .expect("funded escrow can pay out");
        self.status = EscrowStatus::Released;
        txid
    }

    /// Arbitration failed: refund the buyer.
    #[allow(dead_code)]
    fn refund(&mut self, system: &mut System) -> icbtc_bitcoin::Txid {
        assert_eq!(self.status, EscrowStatus::Funded, "can only refund a funded escrow");
        let fee = Amount::from_sat(2_000);
        let payout = self.price.checked_sub(fee).expect("price covers fee");
        let txid = self
            .wallet
            .transfer(system, &self.buyer_refund, payout, fee)
            .expect("funded escrow can refund");
        self.status = EscrowStatus::Refunded;
        txid
    }
}

fn main() {
    println!("=== decentralized escrow on the IC ===\n");
    let mut system = System::new(SystemConfig::regtest(777));
    system.btc_mut().run_until(SimTime::from_secs(1800));
    assert!(system.sync_canister(5000));

    // Participants.
    let buyer = Wallet::new("buyer");
    let seller = Wallet::new("seller");
    let price = Amount::from_btc_int(2);
    let mut escrow = Escrow::new("deal-31337", buyer.address(&system), seller.address(&system), price);
    println!("escrow deposit address: {}", escrow.deposit_address(&system));
    println!("price: {price}, required confirmations: {}", escrow.required_confirmations);

    // The buyer funds their own wallet, then deposits into the escrow.
    system.fund_address(&buyer.address(&system), 2);
    assert!(system.sync_canister(5000));
    let deposit_address = escrow.deposit_address(&system);
    let deposit_txid = buyer
        .transfer(&mut system, &deposit_address, price, Amount::from_sat(1500))
        .expect("buyer deposit");
    println!("\nbuyer deposited in tx {deposit_txid}");
    let height = system.await_transaction_mined(deposit_txid, 600).expect("deposit mined");
    println!("deposit mined at height {height}");

    // The contract polls until the deposit is 6-confirmed. Each poll we
    // let the chain grow a block.
    let mut polls = 0;
    while escrow.status == EscrowStatus::AwaitingDeposit {
        system.fund_address(&Wallet::new("unrelated-miner").address(&system), 1);
        assert!(system.sync_canister(5000));
        escrow.poll_deposit(&mut system);
        polls += 1;
        assert!(polls < 30, "deposit never confirmed");
    }
    println!("deposit reached {} confirmations after {polls} polls — escrow FUNDED", escrow.required_confirmations);

    // Delivery confirmed: release to the seller.
    let release_txid = escrow.release(&mut system);
    println!("\nrelease transaction {release_txid}");
    let height = system.await_transaction_mined(release_txid, 600).expect("release mined");
    println!("release mined at height {height}");

    assert!(system.sync_canister(5000));
    let seller_balance = seller.balance(&mut system, 0).expect("synced");
    println!("seller balance: {seller_balance}");
    assert_eq!(seller_balance, price.checked_sub(Amount::from_sat(2_000)).unwrap());
    assert_eq!(escrow.status, EscrowStatus::Released);
    println!("\nescrow complete.");
}

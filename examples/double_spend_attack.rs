//! Attack demo: why δ-stability protects smart contracts from
//! double-spends and post-downtime fork injection (§IV-A, Lemmas IV.2
//! and IV.3).
//!
//! ```text
//! cargo run --example double_spend_attack
//! ```
//!
//! Scenario 1 — *fork racing* (Lemma IV.2): an attacker with bounded hash
//! power secretly mines a fork containing a conflicting payment and feeds
//! it to the network. Because the canister selects chains by accumulated
//! work and counts confirmations through confirmation-based stability,
//! the victim's view never credits the attacker's branch unless it
//! genuinely out-works the honest network.
//!
//! Scenario 2 — *post-downtime injection* (Lemma IV.3): after canister
//! downtime, Byzantine replicas feed a prepared fork one block per round
//! while claiming there are no further headers. A single honest block
//! maker is enough to reveal the real chain, so the attack needs `c*`
//! Byzantine makers in a row — probability `< 3^{-c*}`.

use icbtc::contracts::Wallet;
use icbtc::system::{DowntimeAttack, System, SystemConfig};
use icbtc::btcnet::adversary::SecretForkMiner;
use icbtc::btcnet::NodeId;
use icbtc_bitcoin::Amount;
use icbtc_sim::SimTime;

fn main() {
    println!("=== double-spend & downtime attacks vs δ-stability ===\n");
    scenario_fork_racing();
    println!();
    scenario_downtime_injection();
}

fn scenario_fork_racing() {
    println!("--- scenario 1: fork racing (Lemma IV.2) ---");
    let mut system = System::new(SystemConfig::regtest(1001));
    system.btc_mut().run_until(SimTime::from_secs(1800));
    assert!(system.sync_canister(5000));

    // The merchant ships goods once a payment has c* = 4 confirmations.
    let merchant = Wallet::new("merchant");
    let customer = Wallet::new("customer");
    system.fund_address(&customer.address(&system), 1);
    assert!(system.sync_canister(5000));

    let merchant_address = merchant.address(&system);
    let payment = customer
        .transfer(&mut system, &merchant_address, Amount::from_btc_int(10), Amount::from_sat(1000))
        .expect("payment accepted");
    let pay_height = system.await_transaction_mined(payment, 600).expect("payment mined");
    println!("payment {payment} mined at height {pay_height}");

    // The attacker snapshots the chain just below the payment and mines a
    // secret fork (its conflicting spend simply omits the payment).
    let honest_view = system.btc().node(NodeId(0)).chain().clone();
    let branch_point = honest_view.best_chain_hash_at(pay_height - 1).expect("branch point");
    let mut fork = SecretForkMiner::branch_at(&honest_view, branch_point).expect("branch exists");

    // Honest chain reaches 4 blocks past the payment while the attacker
    // (at ~33% hash power) manages only 2 fork blocks in the same period.
    for _ in 0..4 {
        system
            .btc_mut()
            .mine_block_paying(NodeId(0), icbtc_bitcoin::Script::new_op_return(b"honest"));
    }
    let fork_blocks = fork.extend(2, 9);
    for block in fork_blocks {
        system.btc_mut().submit_block(NodeId(1), block);
    }
    assert!(system.sync_canister(5000));

    // Plain depth would say 5 confirmations — but Definition II.1's
    // stability subtracts the competing fork's depth: min(5, 5−2) = 3.
    // The canister therefore does NOT yet report c* = 4 confirmations:
    // exactly the conservatism that defeats double-spends.
    let during_attack = merchant.balance(&mut system, 4).expect("synced");
    println!(
        "while the fork is alive, balance at 4 confirmations: {during_attack} \
         (stability dropped to 3 although depth is 5)"
    );
    assert_eq!(during_attack, Amount::ZERO, "stability must be conservative under forks");

    // The attacker cannot keep pace (Definition IV.2): two more honest
    // blocks restore the margin and the payment reaches 4-stability.
    for _ in 0..2 {
        system
            .btc_mut()
            .mine_block_paying(NodeId(0), icbtc_bitcoin::Script::new_op_return(b"honest"));
    }
    assert!(system.sync_canister(5000));
    let merchant_view = merchant.balance(&mut system, 4).expect("synced");
    println!("after the honest chain pulls ahead: {merchant_view}");
    assert_eq!(merchant_view, Amount::from_btc_int(10), "payment survived the fork");
    println!("the outpaced fork never undid the merchant's payment ✓");
}

fn scenario_downtime_injection() {
    println!("--- scenario 2: post-downtime injection (Lemma IV.3) ---");
    // 4 of 13 replicas are Byzantine — the maximum f for n = 13.
    let mut config = SystemConfig::regtest(2002);
    config.consensus.byzantine = 4;
    let mut system = System::new(config);
    system.btc_mut().run_until(SimTime::from_secs(1800));
    assert!(system.sync_canister(8000));
    let honest_tip_before = system.canister().state().best_tip().1;
    println!("canister synced to height {honest_tip_before}");

    // The canister goes down for two simulated hours; the attacker uses
    // the predictable downtime to prepare a 6-block fork.
    let honest_view = system.btc().node(NodeId(0)).chain().clone();
    let mut fork = SecretForkMiner::branch_at(&honest_view, honest_view.tip_hash()).expect("tip");
    let fork_blocks = fork.extend(6, 77);
    system.stall_subnet(icbtc_sim::SimDuration::from_secs(2 * 3600));
    println!("canister was down 2h; attacker prepared a {}-block fork", fork_blocks.len());

    // On restart, Byzantine block makers feed the fork one block per
    // round with N = ∅; honest makers answer from their adapters.
    system.set_downtime_attack(DowntimeAttack::new(fork_blocks));
    assert!(system.sync_canister(8000));
    let delivered = system.clear_downtime_attack();

    // The canister followed the real chain: honest adapters reported the
    // true headers as soon as one honest maker got a round.
    let (_, tip) = system.canister().state().best_tip();
    let real = system.btc().best_height();
    println!(
        "fork blocks delivered by Byzantine makers: {delivered}; canister tip {tip} vs real chain {real}"
    );
    assert_eq!(tip, real, "canister tracked the real chain, not the injected fork");
    println!("a single honest block maker defeats the injection (p_fail < 3^-c*) ✓");
}

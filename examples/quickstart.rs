//! Quickstart: spin up the full Bitcoin ⇄ IC integration, hold bitcoin in
//! a canister wallet, and move it with a threshold-signed transaction.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The walkthrough mirrors Figure 1 of the paper: IC replicas ingest
//! Bitcoin blocks through their adapters, the Bitcoin canister exposes the
//! UTXO view, and a contract wallet signs a real P2WPKH spend with the
//! subnet's threshold-ECDSA key.

use icbtc::contracts::Wallet;
use icbtc::system::{System, SystemConfig};
use icbtc::canister::{CanisterCall, CanisterReply};
use icbtc_bitcoin::Amount;
use icbtc_sim::SimTime;

fn main() {
    println!("=== icbtc quickstart ===\n");

    // 1. Boot the deployment: a simulated Bitcoin regtest network plus a
    //    13-replica IC subnet running the Bitcoin canister.
    let mut system = System::new(SystemConfig::regtest(2024));
    println!("subnet: 13 replicas, threshold key t = {}", system.threshold_key().threshold());

    // 2. Let the Bitcoin network mine for a simulated hour and sync the
    //    canister: adapters download headers+blocks, Algorithm 2 folds
    //    them in, δ-stability advances the anchor.
    system.btc_mut().run_until(SimTime::from_secs(3600));
    assert!(system.sync_canister(5000), "canister failed to sync");
    let state = system.canister().state();
    let (_, tip) = state.best_tip();
    println!(
        "synced: bitcoin tip height {tip}, anchor height {} (δ = {})",
        state.anchor_height(),
        state.params().stability_delta
    );

    // 3. A smart contract holds bitcoin natively: its address is derived
    //    from the subnet's threshold key — no bridge, no custodian.
    let treasury = Wallet::new("quickstart-treasury");
    let payee = Wallet::new("quickstart-payee");
    let treasury_addr = treasury.address(&system);
    println!("\ntreasury address: {treasury_addr}");

    // 4. Fund the treasury by mining coinbases to it, then re-sync.
    system.fund_address(&treasury_addr, 3);
    assert!(system.sync_canister(5000));
    let balance = treasury.balance(&mut system, 0).expect("canister synced");
    println!("treasury balance after mining 3 blocks: {balance}");

    // 5. Move funds: build a spend, threshold-sign each input across the
    //    replicas, and submit it through the canister to the network.
    let payee_addr = payee.address(&system);
    let txid = treasury
        .transfer(&mut system, &payee_addr, Amount::from_btc_int(1), Amount::from_sat(2000))
        .expect("transfer succeeds");
    println!("\nsubmitted threshold-signed transaction {txid}");

    let height = system
        .await_transaction_mined(txid, 600)
        .expect("transaction mined");
    println!("mined into Bitcoin block at height {height}");

    // 6. The payee sees the funds once the canister catches up.
    assert!(system.sync_canister(5000));
    let received = payee.balance(&mut system, 0).expect("canister synced");
    println!("payee balance: {received}");
    assert_eq!(received, Amount::from_btc_int(1));

    // 7. Replicated vs query reads (the §IV-B measurement setup).
    let query = system.query(CanisterCall::GetBalance {
        address: payee_addr,
        min_confirmations: 0,
    });
    let replicated = system.replicated(CanisterCall::GetBalance {
        address: payee_addr,
        min_confirmations: 0,
    });
    if let (Ok(CanisterReply::Balance(_)), Ok(CanisterReply::Balance(_))) =
        (&query.outcome.reply, &replicated.outcome.reply)
    {
        println!(
            "\nlatency: query {:.0} ms vs replicated {:.1} s (paper: ~220 ms vs 7–18 s)",
            query.latency.as_secs_f64() * 1e3,
            replicated.latency.as_secs_f64()
        );
        println!(
            "cycles: query charged {} cycles, replicated {} cycles",
            query.outcome.cycles_charged, replicated.outcome.cycles_charged
        );
    }

    println!("\nquickstart complete.");
}

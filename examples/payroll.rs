//! A decentralized Bitcoin payroll — one of the paper's motivating
//! applications (§I), exercising canister timers and batch payouts.
//!
//! ```text
//! cargo run --example payroll
//! ```
//!
//! An employer contract holds a Bitcoin treasury under the subnet's
//! threshold key. On every (simulated) payday its timer fires and it pays
//! all employees **in a single threshold-signed transaction** with one
//! output per employee — cheap on Bitcoin fees and atomic.

use icbtc::contracts::Wallet;
use icbtc::system::{System, SystemConfig};
use icbtc_bitcoin::{Address, Amount};
use icbtc_sim::SimTime;

struct Payroll {
    treasury: Wallet,
    employees: Vec<(String, Address, Amount)>,
    paydays_run: u32,
}

impl Payroll {
    fn new(system: &System, staff: &[(&str, Amount)]) -> Payroll {
        let employees = staff
            .iter()
            .map(|(name, salary)| {
                let wallet = Wallet::new(&format!("employee-{name}"));
                (name.to_string(), wallet.address(system), *salary)
            })
            .collect();
        Payroll { treasury: Wallet::new("payroll-treasury"), employees, paydays_run: 0 }
    }

    fn total_per_payday(&self) -> Amount {
        self.employees.iter().map(|(_, _, salary)| *salary).sum()
    }

    /// The timer callback: one batch payment for the whole staff.
    fn run_payday(&mut self, system: &mut System) -> icbtc_bitcoin::Txid {
        let payments: Vec<(Address, Amount)> =
            self.employees.iter().map(|(_, addr, salary)| (*addr, *salary)).collect();
        let txid = self
            .treasury
            .pay_many(system, &payments, Amount::from_sat(3_000))
            .expect("treasury funded");
        self.paydays_run += 1;
        txid
    }
}

fn main() {
    println!("=== decentralized payroll on the IC ===\n");
    let mut system = System::new(SystemConfig::regtest(4242));
    system.btc_mut().run_until(SimTime::from_secs(1800));
    assert!(system.sync_canister(5000));

    let staff: &[(&str, Amount)] = &[
        ("alice", Amount::from_sat(60_000_000)),
        ("bob", Amount::from_sat(45_000_000)),
        ("carol", Amount::from_sat(80_000_000)),
        ("dave", Amount::from_sat(30_000_000)),
    ];
    let mut payroll = Payroll::new(&system, staff);
    println!(
        "staff of {}, total per payday: {}",
        staff.len(),
        payroll.total_per_payday()
    );

    // Fund the treasury for several paydays.
    let treasury_addr = payroll.treasury.address(&system);
    println!("treasury address: {treasury_addr}");
    system.fund_address(&treasury_addr, 3);
    assert!(system.sync_canister(5000));
    println!(
        "treasury funded: {}\n",
        payroll.treasury.balance(&mut system, 0).unwrap()
    );

    const PAYDAYS: u32 = 3;
    for month in 1..=PAYDAYS {
        let txid = payroll.run_payday(&mut system);
        let height = system.await_transaction_mined(txid, 600).expect("payday mined");
        println!("payday {month}: batch tx {txid} mined at height {height}");
        assert!(system.sync_canister(5000));
    }

    println!();
    for (name, address, salary) in &payroll.employees {
        let wallet_balance = {
            let outcome = system.query(icbtc::canister::CanisterCall::GetBalance {
                address: *address,
                min_confirmations: 0,
            });
            match outcome.outcome.reply {
                Ok(icbtc::canister::CanisterReply::Balance(b)) => b.balance,
                other => panic!("balance query failed: {other:?}"),
            }
        };
        let expected = Amount::from_sat(salary.to_sat() * PAYDAYS as u64);
        println!("{name:>6}: {wallet_balance} (expected {expected})");
        assert_eq!(wallet_balance, expected);
    }
    println!(
        "\ntreasury after {PAYDAYS} paydays: {}",
        payroll.treasury.balance(&mut system, 0).unwrap()
    );
    println!("payroll complete.");
}

/root/repo/target/debug/examples/quickstart-43af00ca6a66367d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-43af00ca6a66367d: examples/quickstart.rs

examples/quickstart.rs:

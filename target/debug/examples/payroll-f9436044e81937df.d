/root/repo/target/debug/examples/payroll-f9436044e81937df.d: examples/payroll.rs

/root/repo/target/debug/examples/payroll-f9436044e81937df: examples/payroll.rs

examples/payroll.rs:

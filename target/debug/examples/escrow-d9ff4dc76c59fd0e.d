/root/repo/target/debug/examples/escrow-d9ff4dc76c59fd0e.d: examples/escrow.rs

/root/repo/target/debug/examples/escrow-d9ff4dc76c59fd0e: examples/escrow.rs

examples/escrow.rs:

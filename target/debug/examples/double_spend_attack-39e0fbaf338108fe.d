/root/repo/target/debug/examples/double_spend_attack-39e0fbaf338108fe.d: examples/double_spend_attack.rs

/root/repo/target/debug/examples/double_spend_attack-39e0fbaf338108fe: examples/double_spend_attack.rs

examples/double_spend_attack.rs:

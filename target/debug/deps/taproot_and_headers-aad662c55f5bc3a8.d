/root/repo/target/debug/deps/taproot_and_headers-aad662c55f5bc3a8.d: tests/taproot_and_headers.rs

/root/repo/target/debug/deps/taproot_and_headers-aad662c55f5bc3a8: tests/taproot_and_headers.rs

tests/taproot_and_headers.rs:

/root/repo/target/debug/deps/security-4095cbc1c3c31339.d: tests/security.rs

/root/repo/target/debug/deps/security-4095cbc1c3c31339: tests/security.rs

tests/security.rs:

/root/repo/target/debug/deps/fig6_block_ingestion-d7dedf57c103b78c.d: crates/bench/src/bin/fig6_block_ingestion.rs

/root/repo/target/debug/deps/fig6_block_ingestion-d7dedf57c103b78c: crates/bench/src/bin/fig6_block_ingestion.rs

crates/bench/src/bin/fig6_block_ingestion.rs:

/root/repo/target/debug/deps/stability_and_protocol-e1c41167d50020dd.d: tests/stability_and_protocol.rs

/root/repo/target/debug/deps/stability_and_protocol-e1c41167d50020dd: tests/stability_and_protocol.rs

tests/stability_and_protocol.rs:

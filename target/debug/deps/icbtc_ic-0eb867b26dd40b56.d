/root/repo/target/debug/deps/icbtc_ic-0eb867b26dd40b56.d: crates/ic/src/lib.rs crates/ic/src/consensus.rs crates/ic/src/cycles.rs crates/ic/src/ingress.rs crates/ic/src/meter.rs crates/ic/src/subnet.rs

/root/repo/target/debug/deps/icbtc_ic-0eb867b26dd40b56: crates/ic/src/lib.rs crates/ic/src/consensus.rs crates/ic/src/cycles.rs crates/ic/src/ingress.rs crates/ic/src/meter.rs crates/ic/src/subnet.rs

crates/ic/src/lib.rs:
crates/ic/src/consensus.rs:
crates/ic/src/cycles.rs:
crates/ic/src/ingress.rs:
crates/ic/src/meter.rs:
crates/ic/src/subnet.rs:

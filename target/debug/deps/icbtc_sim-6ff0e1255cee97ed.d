/root/repo/target/debug/deps/icbtc_sim-6ff0e1255cee97ed.d: crates/sim/src/lib.rs crates/sim/src/metrics.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/testkit.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/icbtc_sim-6ff0e1255cee97ed: crates/sim/src/lib.rs crates/sim/src/metrics.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/testkit.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/metrics.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/testkit.rs:
crates/sim/src/time.rs:

/root/repo/target/debug/deps/end_to_end-d24cc87909981955.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d24cc87909981955: tests/end_to_end.rs

tests/end_to_end.rs:

/root/repo/target/debug/deps/icbtc_bench-91de5e3bf44cc0a2.d: crates/bench/src/lib.rs crates/bench/src/chaingen.rs crates/bench/src/report.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libicbtc_bench-91de5e3bf44cc0a2.rlib: crates/bench/src/lib.rs crates/bench/src/chaingen.rs crates/bench/src/report.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libicbtc_bench-91de5e3bf44cc0a2.rmeta: crates/bench/src/lib.rs crates/bench/src/chaingen.rs crates/bench/src/report.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/chaingen.rs:
crates/bench/src/report.rs:
crates/bench/src/workload.rs:

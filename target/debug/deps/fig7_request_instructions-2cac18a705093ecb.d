/root/repo/target/debug/deps/fig7_request_instructions-2cac18a705093ecb.d: crates/bench/src/bin/fig7_request_instructions.rs

/root/repo/target/debug/deps/fig7_request_instructions-2cac18a705093ecb: crates/bench/src/bin/fig7_request_instructions.rs

crates/bench/src/bin/fig7_request_instructions.rs:

/root/repo/target/debug/deps/icbtc_tecdsa-981aaac6e8c60759.d: crates/tecdsa/src/lib.rs crates/tecdsa/src/curve.rs crates/tecdsa/src/ecdsa.rs crates/tecdsa/src/field.rs crates/tecdsa/src/modular.rs crates/tecdsa/src/protocol.rs crates/tecdsa/src/scalar.rs crates/tecdsa/src/schnorr.rs crates/tecdsa/src/shamir.rs

/root/repo/target/debug/deps/libicbtc_tecdsa-981aaac6e8c60759.rlib: crates/tecdsa/src/lib.rs crates/tecdsa/src/curve.rs crates/tecdsa/src/ecdsa.rs crates/tecdsa/src/field.rs crates/tecdsa/src/modular.rs crates/tecdsa/src/protocol.rs crates/tecdsa/src/scalar.rs crates/tecdsa/src/schnorr.rs crates/tecdsa/src/shamir.rs

/root/repo/target/debug/deps/libicbtc_tecdsa-981aaac6e8c60759.rmeta: crates/tecdsa/src/lib.rs crates/tecdsa/src/curve.rs crates/tecdsa/src/ecdsa.rs crates/tecdsa/src/field.rs crates/tecdsa/src/modular.rs crates/tecdsa/src/protocol.rs crates/tecdsa/src/scalar.rs crates/tecdsa/src/schnorr.rs crates/tecdsa/src/shamir.rs

crates/tecdsa/src/lib.rs:
crates/tecdsa/src/curve.rs:
crates/tecdsa/src/ecdsa.rs:
crates/tecdsa/src/field.rs:
crates/tecdsa/src/modular.rs:
crates/tecdsa/src/protocol.rs:
crates/tecdsa/src/scalar.rs:
crates/tecdsa/src/schnorr.rs:
crates/tecdsa/src/shamir.rs:

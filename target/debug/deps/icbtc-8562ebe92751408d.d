/root/repo/target/debug/deps/icbtc-8562ebe92751408d.d: src/lib.rs src/contracts.rs src/system.rs

/root/repo/target/debug/deps/icbtc-8562ebe92751408d: src/lib.rs src/contracts.rs src/system.rs

src/lib.rs:
src/contracts.rs:
src/system.rs:

/root/repo/target/debug/deps/icbtc_bench-dae8f240342e5b22.d: crates/bench/src/lib.rs crates/bench/src/chaingen.rs crates/bench/src/report.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/icbtc_bench-dae8f240342e5b22: crates/bench/src/lib.rs crates/bench/src/chaingen.rs crates/bench/src/report.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/chaingen.rs:
crates/bench/src/report.rs:
crates/bench/src/workload.rs:

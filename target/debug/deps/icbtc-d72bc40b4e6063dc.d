/root/repo/target/debug/deps/icbtc-d72bc40b4e6063dc.d: src/lib.rs src/contracts.rs src/system.rs

/root/repo/target/debug/deps/libicbtc-d72bc40b4e6063dc.rlib: src/lib.rs src/contracts.rs src/system.rs

/root/repo/target/debug/deps/libicbtc-d72bc40b4e6063dc.rmeta: src/lib.rs src/contracts.rs src/system.rs

src/lib.rs:
src/contracts.rs:
src/system.rs:

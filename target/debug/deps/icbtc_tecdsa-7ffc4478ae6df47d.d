/root/repo/target/debug/deps/icbtc_tecdsa-7ffc4478ae6df47d.d: crates/tecdsa/src/lib.rs crates/tecdsa/src/curve.rs crates/tecdsa/src/ecdsa.rs crates/tecdsa/src/field.rs crates/tecdsa/src/modular.rs crates/tecdsa/src/protocol.rs crates/tecdsa/src/scalar.rs crates/tecdsa/src/schnorr.rs crates/tecdsa/src/shamir.rs

/root/repo/target/debug/deps/icbtc_tecdsa-7ffc4478ae6df47d: crates/tecdsa/src/lib.rs crates/tecdsa/src/curve.rs crates/tecdsa/src/ecdsa.rs crates/tecdsa/src/field.rs crates/tecdsa/src/modular.rs crates/tecdsa/src/protocol.rs crates/tecdsa/src/scalar.rs crates/tecdsa/src/schnorr.rs crates/tecdsa/src/shamir.rs

crates/tecdsa/src/lib.rs:
crates/tecdsa/src/curve.rs:
crates/tecdsa/src/ecdsa.rs:
crates/tecdsa/src/field.rs:
crates/tecdsa/src/modular.rs:
crates/tecdsa/src/protocol.rs:
crates/tecdsa/src/scalar.rs:
crates/tecdsa/src/schnorr.rs:
crates/tecdsa/src/shamir.rs:

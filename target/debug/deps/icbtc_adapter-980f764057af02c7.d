/root/repo/target/debug/deps/icbtc_adapter-980f764057af02c7.d: crates/adapter/src/lib.rs crates/adapter/src/adapter.rs crates/adapter/src/discovery.rs crates/adapter/src/txcache.rs

/root/repo/target/debug/deps/icbtc_adapter-980f764057af02c7: crates/adapter/src/lib.rs crates/adapter/src/adapter.rs crates/adapter/src/discovery.rs crates/adapter/src/txcache.rs

crates/adapter/src/lib.rs:
crates/adapter/src/adapter.rs:
crates/adapter/src/discovery.rs:
crates/adapter/src/txcache.rs:

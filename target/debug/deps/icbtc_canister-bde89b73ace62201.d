/root/repo/target/debug/deps/icbtc_canister-bde89b73ace62201.d: crates/canister/src/lib.rs crates/canister/src/api.rs crates/canister/src/canister.rs crates/canister/src/metering.rs crates/canister/src/state.rs crates/canister/src/utxoset.rs

/root/repo/target/debug/deps/icbtc_canister-bde89b73ace62201: crates/canister/src/lib.rs crates/canister/src/api.rs crates/canister/src/canister.rs crates/canister/src/metering.rs crates/canister/src/state.rs crates/canister/src/utxoset.rs

crates/canister/src/lib.rs:
crates/canister/src/api.rs:
crates/canister/src/canister.rs:
crates/canister/src/metering.rs:
crates/canister/src/state.rs:
crates/canister/src/utxoset.rs:

/root/repo/target/debug/deps/security_eclipse-b33ba4da719296ec.d: crates/bench/src/bin/security_eclipse.rs

/root/repo/target/debug/deps/security_eclipse-b33ba4da719296ec: crates/bench/src/bin/security_eclipse.rs

crates/bench/src/bin/security_eclipse.rs:

/root/repo/target/debug/deps/icbtc_canister-e5a85455d8f10730.d: crates/canister/src/lib.rs crates/canister/src/api.rs crates/canister/src/canister.rs crates/canister/src/metering.rs crates/canister/src/state.rs crates/canister/src/utxoset.rs

/root/repo/target/debug/deps/libicbtc_canister-e5a85455d8f10730.rlib: crates/canister/src/lib.rs crates/canister/src/api.rs crates/canister/src/canister.rs crates/canister/src/metering.rs crates/canister/src/state.rs crates/canister/src/utxoset.rs

/root/repo/target/debug/deps/libicbtc_canister-e5a85455d8f10730.rmeta: crates/canister/src/lib.rs crates/canister/src/api.rs crates/canister/src/canister.rs crates/canister/src/metering.rs crates/canister/src/state.rs crates/canister/src/utxoset.rs

crates/canister/src/lib.rs:
crates/canister/src/api.rs:
crates/canister/src/canister.rs:
crates/canister/src/metering.rs:
crates/canister/src/state.rs:
crates/canister/src/utxoset.rs:

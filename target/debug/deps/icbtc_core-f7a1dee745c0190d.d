/root/repo/target/debug/deps/icbtc_core-f7a1dee745c0190d.d: crates/core/src/lib.rs crates/core/src/protocol.rs crates/core/src/stability.rs

/root/repo/target/debug/deps/libicbtc_core-f7a1dee745c0190d.rlib: crates/core/src/lib.rs crates/core/src/protocol.rs crates/core/src/stability.rs

/root/repo/target/debug/deps/libicbtc_core-f7a1dee745c0190d.rmeta: crates/core/src/lib.rs crates/core/src/protocol.rs crates/core/src/stability.rs

crates/core/src/lib.rs:
crates/core/src/protocol.rs:
crates/core/src/stability.rs:

/root/repo/target/debug/deps/fig7_request_latency-a2db32bd5e196c6b.d: crates/bench/src/bin/fig7_request_latency.rs

/root/repo/target/debug/deps/fig7_request_latency-a2db32bd5e196c6b: crates/bench/src/bin/fig7_request_latency.rs

crates/bench/src/bin/fig7_request_latency.rs:

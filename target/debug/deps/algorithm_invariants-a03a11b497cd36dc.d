/root/repo/target/debug/deps/algorithm_invariants-a03a11b497cd36dc.d: tests/algorithm_invariants.rs

/root/repo/target/debug/deps/algorithm_invariants-a03a11b497cd36dc: tests/algorithm_invariants.rs

tests/algorithm_invariants.rs:

/root/repo/target/debug/deps/ablation_delta-84539ac48a46fe26.d: crates/bench/src/bin/ablation_delta.rs

/root/repo/target/debug/deps/ablation_delta-84539ac48a46fe26: crates/bench/src/bin/ablation_delta.rs

crates/bench/src/bin/ablation_delta.rs:

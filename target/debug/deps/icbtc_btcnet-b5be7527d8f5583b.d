/root/repo/target/debug/deps/icbtc_btcnet-b5be7527d8f5583b.d: crates/btcnet/src/lib.rs crates/btcnet/src/adversary.rs crates/btcnet/src/chain.rs crates/btcnet/src/messages.rs crates/btcnet/src/miner.rs crates/btcnet/src/network.rs crates/btcnet/src/node.rs

/root/repo/target/debug/deps/libicbtc_btcnet-b5be7527d8f5583b.rlib: crates/btcnet/src/lib.rs crates/btcnet/src/adversary.rs crates/btcnet/src/chain.rs crates/btcnet/src/messages.rs crates/btcnet/src/miner.rs crates/btcnet/src/network.rs crates/btcnet/src/node.rs

/root/repo/target/debug/deps/libicbtc_btcnet-b5be7527d8f5583b.rmeta: crates/btcnet/src/lib.rs crates/btcnet/src/adversary.rs crates/btcnet/src/chain.rs crates/btcnet/src/messages.rs crates/btcnet/src/miner.rs crates/btcnet/src/network.rs crates/btcnet/src/node.rs

crates/btcnet/src/lib.rs:
crates/btcnet/src/adversary.rs:
crates/btcnet/src/chain.rs:
crates/btcnet/src/messages.rs:
crates/btcnet/src/miner.rs:
crates/btcnet/src/network.rs:
crates/btcnet/src/node.rs:

/root/repo/target/debug/deps/security_downtime-0b7e85ceaed71c7c.d: crates/bench/src/bin/security_downtime.rs

/root/repo/target/debug/deps/security_downtime-0b7e85ceaed71c7c: crates/bench/src/bin/security_downtime.rs

crates/bench/src/bin/security_downtime.rs:

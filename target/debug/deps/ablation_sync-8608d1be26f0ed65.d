/root/repo/target/debug/deps/ablation_sync-8608d1be26f0ed65.d: crates/bench/src/bin/ablation_sync.rs

/root/repo/target/debug/deps/ablation_sync-8608d1be26f0ed65: crates/bench/src/bin/ablation_sync.rs

crates/bench/src/bin/ablation_sync.rs:

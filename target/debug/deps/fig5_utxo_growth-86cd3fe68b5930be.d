/root/repo/target/debug/deps/fig5_utxo_growth-86cd3fe68b5930be.d: crates/bench/src/bin/fig5_utxo_growth.rs

/root/repo/target/debug/deps/fig5_utxo_growth-86cd3fe68b5930be: crates/bench/src/bin/fig5_utxo_growth.rs

crates/bench/src/bin/fig5_utxo_growth.rs:

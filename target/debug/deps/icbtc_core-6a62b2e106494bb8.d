/root/repo/target/debug/deps/icbtc_core-6a62b2e106494bb8.d: crates/core/src/lib.rs crates/core/src/protocol.rs crates/core/src/stability.rs

/root/repo/target/debug/deps/icbtc_core-6a62b2e106494bb8: crates/core/src/lib.rs crates/core/src/protocol.rs crates/core/src/stability.rs

crates/core/src/lib.rs:
crates/core/src/protocol.rs:
crates/core/src/stability.rs:

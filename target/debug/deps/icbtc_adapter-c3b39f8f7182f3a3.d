/root/repo/target/debug/deps/icbtc_adapter-c3b39f8f7182f3a3.d: crates/adapter/src/lib.rs crates/adapter/src/adapter.rs crates/adapter/src/discovery.rs crates/adapter/src/txcache.rs

/root/repo/target/debug/deps/libicbtc_adapter-c3b39f8f7182f3a3.rlib: crates/adapter/src/lib.rs crates/adapter/src/adapter.rs crates/adapter/src/discovery.rs crates/adapter/src/txcache.rs

/root/repo/target/debug/deps/libicbtc_adapter-c3b39f8f7182f3a3.rmeta: crates/adapter/src/lib.rs crates/adapter/src/adapter.rs crates/adapter/src/discovery.rs crates/adapter/src/txcache.rs

crates/adapter/src/lib.rs:
crates/adapter/src/adapter.rs:
crates/adapter/src/discovery.rs:
crates/adapter/src/txcache.rs:

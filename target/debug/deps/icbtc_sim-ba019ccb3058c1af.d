/root/repo/target/debug/deps/icbtc_sim-ba019ccb3058c1af.d: crates/sim/src/lib.rs crates/sim/src/metrics.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/testkit.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libicbtc_sim-ba019ccb3058c1af.rlib: crates/sim/src/lib.rs crates/sim/src/metrics.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/testkit.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libicbtc_sim-ba019ccb3058c1af.rmeta: crates/sim/src/lib.rs crates/sim/src/metrics.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/testkit.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/metrics.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/testkit.rs:
crates/sim/src/time.rs:

/root/repo/target/debug/deps/security_fork-061125d84ebb7b60.d: crates/bench/src/bin/security_fork.rs

/root/repo/target/debug/deps/security_fork-061125d84ebb7b60: crates/bench/src/bin/security_fork.rs

crates/bench/src/bin/security_fork.rs:

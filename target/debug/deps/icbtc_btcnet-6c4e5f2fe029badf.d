/root/repo/target/debug/deps/icbtc_btcnet-6c4e5f2fe029badf.d: crates/btcnet/src/lib.rs crates/btcnet/src/adversary.rs crates/btcnet/src/chain.rs crates/btcnet/src/messages.rs crates/btcnet/src/miner.rs crates/btcnet/src/network.rs crates/btcnet/src/node.rs

/root/repo/target/debug/deps/icbtc_btcnet-6c4e5f2fe029badf: crates/btcnet/src/lib.rs crates/btcnet/src/adversary.rs crates/btcnet/src/chain.rs crates/btcnet/src/messages.rs crates/btcnet/src/miner.rs crates/btcnet/src/network.rs crates/btcnet/src/node.rs

crates/btcnet/src/lib.rs:
crates/btcnet/src/adversary.rs:
crates/btcnet/src/chain.rs:
crates/btcnet/src/messages.rs:
crates/btcnet/src/miner.rs:
crates/btcnet/src/network.rs:
crates/btcnet/src/node.rs:

/root/repo/target/debug/deps/discovery_overlap-524f7f8d03ded85c.d: crates/bench/src/bin/discovery_overlap.rs

/root/repo/target/debug/deps/discovery_overlap-524f7f8d03ded85c: crates/bench/src/bin/discovery_overlap.rs

crates/bench/src/bin/discovery_overlap.rs:

/root/repo/target/debug/deps/cost_per_request-93df78b1b8db316b.d: crates/bench/src/bin/cost_per_request.rs

/root/repo/target/debug/deps/cost_per_request-93df78b1b8db316b: crates/bench/src/bin/cost_per_request.rs

crates/bench/src/bin/cost_per_request.rs:

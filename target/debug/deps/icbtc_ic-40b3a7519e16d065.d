/root/repo/target/debug/deps/icbtc_ic-40b3a7519e16d065.d: crates/ic/src/lib.rs crates/ic/src/consensus.rs crates/ic/src/cycles.rs crates/ic/src/ingress.rs crates/ic/src/meter.rs crates/ic/src/subnet.rs

/root/repo/target/debug/deps/libicbtc_ic-40b3a7519e16d065.rlib: crates/ic/src/lib.rs crates/ic/src/consensus.rs crates/ic/src/cycles.rs crates/ic/src/ingress.rs crates/ic/src/meter.rs crates/ic/src/subnet.rs

/root/repo/target/debug/deps/libicbtc_ic-40b3a7519e16d065.rmeta: crates/ic/src/lib.rs crates/ic/src/consensus.rs crates/ic/src/cycles.rs crates/ic/src/ingress.rs crates/ic/src/meter.rs crates/ic/src/subnet.rs

crates/ic/src/lib.rs:
crates/ic/src/consensus.rs:
crates/ic/src/cycles.rs:
crates/ic/src/ingress.rs:
crates/ic/src/meter.rs:
crates/ic/src/subnet.rs:

/root/repo/target/release/deps/icbtc_canister-cdbc97076b0ca73f.d: crates/canister/src/lib.rs crates/canister/src/api.rs crates/canister/src/canister.rs crates/canister/src/metering.rs crates/canister/src/state.rs crates/canister/src/utxoset.rs

/root/repo/target/release/deps/libicbtc_canister-cdbc97076b0ca73f.rlib: crates/canister/src/lib.rs crates/canister/src/api.rs crates/canister/src/canister.rs crates/canister/src/metering.rs crates/canister/src/state.rs crates/canister/src/utxoset.rs

/root/repo/target/release/deps/libicbtc_canister-cdbc97076b0ca73f.rmeta: crates/canister/src/lib.rs crates/canister/src/api.rs crates/canister/src/canister.rs crates/canister/src/metering.rs crates/canister/src/state.rs crates/canister/src/utxoset.rs

crates/canister/src/lib.rs:
crates/canister/src/api.rs:
crates/canister/src/canister.rs:
crates/canister/src/metering.rs:
crates/canister/src/state.rs:
crates/canister/src/utxoset.rs:

/root/repo/target/release/deps/fig5_utxo_growth-2de897fd2ef54f5d.d: crates/bench/src/bin/fig5_utxo_growth.rs

/root/repo/target/release/deps/fig5_utxo_growth-2de897fd2ef54f5d: crates/bench/src/bin/fig5_utxo_growth.rs

crates/bench/src/bin/fig5_utxo_growth.rs:

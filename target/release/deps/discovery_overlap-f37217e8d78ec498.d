/root/repo/target/release/deps/discovery_overlap-f37217e8d78ec498.d: crates/bench/src/bin/discovery_overlap.rs

/root/repo/target/release/deps/discovery_overlap-f37217e8d78ec498: crates/bench/src/bin/discovery_overlap.rs

crates/bench/src/bin/discovery_overlap.rs:

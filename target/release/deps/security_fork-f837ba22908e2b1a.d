/root/repo/target/release/deps/security_fork-f837ba22908e2b1a.d: crates/bench/src/bin/security_fork.rs

/root/repo/target/release/deps/security_fork-f837ba22908e2b1a: crates/bench/src/bin/security_fork.rs

crates/bench/src/bin/security_fork.rs:

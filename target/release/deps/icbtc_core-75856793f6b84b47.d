/root/repo/target/release/deps/icbtc_core-75856793f6b84b47.d: crates/core/src/lib.rs crates/core/src/protocol.rs crates/core/src/stability.rs

/root/repo/target/release/deps/libicbtc_core-75856793f6b84b47.rlib: crates/core/src/lib.rs crates/core/src/protocol.rs crates/core/src/stability.rs

/root/repo/target/release/deps/libicbtc_core-75856793f6b84b47.rmeta: crates/core/src/lib.rs crates/core/src/protocol.rs crates/core/src/stability.rs

crates/core/src/lib.rs:
crates/core/src/protocol.rs:
crates/core/src/stability.rs:

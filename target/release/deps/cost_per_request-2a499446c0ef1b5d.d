/root/repo/target/release/deps/cost_per_request-2a499446c0ef1b5d.d: crates/bench/src/bin/cost_per_request.rs

/root/repo/target/release/deps/cost_per_request-2a499446c0ef1b5d: crates/bench/src/bin/cost_per_request.rs

crates/bench/src/bin/cost_per_request.rs:

/root/repo/target/release/deps/ablation_delta-7d0db9e87a9d6002.d: crates/bench/src/bin/ablation_delta.rs

/root/repo/target/release/deps/ablation_delta-7d0db9e87a9d6002: crates/bench/src/bin/ablation_delta.rs

crates/bench/src/bin/ablation_delta.rs:

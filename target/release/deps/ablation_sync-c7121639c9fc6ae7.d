/root/repo/target/release/deps/ablation_sync-c7121639c9fc6ae7.d: crates/bench/src/bin/ablation_sync.rs

/root/repo/target/release/deps/ablation_sync-c7121639c9fc6ae7: crates/bench/src/bin/ablation_sync.rs

crates/bench/src/bin/ablation_sync.rs:

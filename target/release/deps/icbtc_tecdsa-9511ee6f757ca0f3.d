/root/repo/target/release/deps/icbtc_tecdsa-9511ee6f757ca0f3.d: crates/tecdsa/src/lib.rs crates/tecdsa/src/curve.rs crates/tecdsa/src/ecdsa.rs crates/tecdsa/src/field.rs crates/tecdsa/src/modular.rs crates/tecdsa/src/protocol.rs crates/tecdsa/src/scalar.rs crates/tecdsa/src/schnorr.rs crates/tecdsa/src/shamir.rs

/root/repo/target/release/deps/libicbtc_tecdsa-9511ee6f757ca0f3.rlib: crates/tecdsa/src/lib.rs crates/tecdsa/src/curve.rs crates/tecdsa/src/ecdsa.rs crates/tecdsa/src/field.rs crates/tecdsa/src/modular.rs crates/tecdsa/src/protocol.rs crates/tecdsa/src/scalar.rs crates/tecdsa/src/schnorr.rs crates/tecdsa/src/shamir.rs

/root/repo/target/release/deps/libicbtc_tecdsa-9511ee6f757ca0f3.rmeta: crates/tecdsa/src/lib.rs crates/tecdsa/src/curve.rs crates/tecdsa/src/ecdsa.rs crates/tecdsa/src/field.rs crates/tecdsa/src/modular.rs crates/tecdsa/src/protocol.rs crates/tecdsa/src/scalar.rs crates/tecdsa/src/schnorr.rs crates/tecdsa/src/shamir.rs

crates/tecdsa/src/lib.rs:
crates/tecdsa/src/curve.rs:
crates/tecdsa/src/ecdsa.rs:
crates/tecdsa/src/field.rs:
crates/tecdsa/src/modular.rs:
crates/tecdsa/src/protocol.rs:
crates/tecdsa/src/scalar.rs:
crates/tecdsa/src/schnorr.rs:
crates/tecdsa/src/shamir.rs:

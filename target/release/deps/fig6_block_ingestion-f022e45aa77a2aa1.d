/root/repo/target/release/deps/fig6_block_ingestion-f022e45aa77a2aa1.d: crates/bench/src/bin/fig6_block_ingestion.rs

/root/repo/target/release/deps/fig6_block_ingestion-f022e45aa77a2aa1: crates/bench/src/bin/fig6_block_ingestion.rs

crates/bench/src/bin/fig6_block_ingestion.rs:

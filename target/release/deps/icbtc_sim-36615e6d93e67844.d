/root/repo/target/release/deps/icbtc_sim-36615e6d93e67844.d: crates/sim/src/lib.rs crates/sim/src/metrics.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/testkit.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libicbtc_sim-36615e6d93e67844.rlib: crates/sim/src/lib.rs crates/sim/src/metrics.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/testkit.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libicbtc_sim-36615e6d93e67844.rmeta: crates/sim/src/lib.rs crates/sim/src/metrics.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/testkit.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/metrics.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/testkit.rs:
crates/sim/src/time.rs:

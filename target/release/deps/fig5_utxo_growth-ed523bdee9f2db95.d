/root/repo/target/release/deps/fig5_utxo_growth-ed523bdee9f2db95.d: crates/bench/src/bin/fig5_utxo_growth.rs

/root/repo/target/release/deps/fig5_utxo_growth-ed523bdee9f2db95: crates/bench/src/bin/fig5_utxo_growth.rs

crates/bench/src/bin/fig5_utxo_growth.rs:

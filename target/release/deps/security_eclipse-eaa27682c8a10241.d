/root/repo/target/release/deps/security_eclipse-eaa27682c8a10241.d: crates/bench/src/bin/security_eclipse.rs

/root/repo/target/release/deps/security_eclipse-eaa27682c8a10241: crates/bench/src/bin/security_eclipse.rs

crates/bench/src/bin/security_eclipse.rs:

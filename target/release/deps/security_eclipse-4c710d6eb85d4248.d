/root/repo/target/release/deps/security_eclipse-4c710d6eb85d4248.d: crates/bench/src/bin/security_eclipse.rs

/root/repo/target/release/deps/security_eclipse-4c710d6eb85d4248: crates/bench/src/bin/security_eclipse.rs

crates/bench/src/bin/security_eclipse.rs:

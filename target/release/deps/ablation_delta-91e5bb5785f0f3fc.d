/root/repo/target/release/deps/ablation_delta-91e5bb5785f0f3fc.d: crates/bench/src/bin/ablation_delta.rs

/root/repo/target/release/deps/ablation_delta-91e5bb5785f0f3fc: crates/bench/src/bin/ablation_delta.rs

crates/bench/src/bin/ablation_delta.rs:

/root/repo/target/release/deps/icbtc_adapter-47984d3ea0822909.d: crates/adapter/src/lib.rs crates/adapter/src/adapter.rs crates/adapter/src/discovery.rs crates/adapter/src/txcache.rs

/root/repo/target/release/deps/libicbtc_adapter-47984d3ea0822909.rlib: crates/adapter/src/lib.rs crates/adapter/src/adapter.rs crates/adapter/src/discovery.rs crates/adapter/src/txcache.rs

/root/repo/target/release/deps/libicbtc_adapter-47984d3ea0822909.rmeta: crates/adapter/src/lib.rs crates/adapter/src/adapter.rs crates/adapter/src/discovery.rs crates/adapter/src/txcache.rs

crates/adapter/src/lib.rs:
crates/adapter/src/adapter.rs:
crates/adapter/src/discovery.rs:
crates/adapter/src/txcache.rs:

/root/repo/target/release/deps/icbtc_bench-b6edbddeb7e52aa5.d: crates/bench/src/lib.rs crates/bench/src/chaingen.rs crates/bench/src/report.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/icbtc_bench-b6edbddeb7e52aa5: crates/bench/src/lib.rs crates/bench/src/chaingen.rs crates/bench/src/report.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/chaingen.rs:
crates/bench/src/report.rs:
crates/bench/src/workload.rs:

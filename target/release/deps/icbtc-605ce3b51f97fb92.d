/root/repo/target/release/deps/icbtc-605ce3b51f97fb92.d: src/lib.rs src/contracts.rs src/system.rs

/root/repo/target/release/deps/libicbtc-605ce3b51f97fb92.rlib: src/lib.rs src/contracts.rs src/system.rs

/root/repo/target/release/deps/libicbtc-605ce3b51f97fb92.rmeta: src/lib.rs src/contracts.rs src/system.rs

src/lib.rs:
src/contracts.rs:
src/system.rs:

/root/repo/target/release/deps/icbtc_ic-b24a73cd8e3e9972.d: crates/ic/src/lib.rs crates/ic/src/consensus.rs crates/ic/src/cycles.rs crates/ic/src/ingress.rs crates/ic/src/meter.rs crates/ic/src/subnet.rs

/root/repo/target/release/deps/libicbtc_ic-b24a73cd8e3e9972.rlib: crates/ic/src/lib.rs crates/ic/src/consensus.rs crates/ic/src/cycles.rs crates/ic/src/ingress.rs crates/ic/src/meter.rs crates/ic/src/subnet.rs

/root/repo/target/release/deps/libicbtc_ic-b24a73cd8e3e9972.rmeta: crates/ic/src/lib.rs crates/ic/src/consensus.rs crates/ic/src/cycles.rs crates/ic/src/ingress.rs crates/ic/src/meter.rs crates/ic/src/subnet.rs

crates/ic/src/lib.rs:
crates/ic/src/consensus.rs:
crates/ic/src/cycles.rs:
crates/ic/src/ingress.rs:
crates/ic/src/meter.rs:
crates/ic/src/subnet.rs:

/root/repo/target/release/deps/micro-9bf5581af3c0d65e.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-9bf5581af3c0d65e: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:

/root/repo/target/release/deps/fig7_request_latency-08ecc33c32aa333f.d: crates/bench/src/bin/fig7_request_latency.rs

/root/repo/target/release/deps/fig7_request_latency-08ecc33c32aa333f: crates/bench/src/bin/fig7_request_latency.rs

crates/bench/src/bin/fig7_request_latency.rs:

/root/repo/target/release/deps/icbtc_btcnet-73d14d005a1c14f7.d: crates/btcnet/src/lib.rs crates/btcnet/src/adversary.rs crates/btcnet/src/chain.rs crates/btcnet/src/messages.rs crates/btcnet/src/miner.rs crates/btcnet/src/network.rs crates/btcnet/src/node.rs

/root/repo/target/release/deps/libicbtc_btcnet-73d14d005a1c14f7.rlib: crates/btcnet/src/lib.rs crates/btcnet/src/adversary.rs crates/btcnet/src/chain.rs crates/btcnet/src/messages.rs crates/btcnet/src/miner.rs crates/btcnet/src/network.rs crates/btcnet/src/node.rs

/root/repo/target/release/deps/libicbtc_btcnet-73d14d005a1c14f7.rmeta: crates/btcnet/src/lib.rs crates/btcnet/src/adversary.rs crates/btcnet/src/chain.rs crates/btcnet/src/messages.rs crates/btcnet/src/miner.rs crates/btcnet/src/network.rs crates/btcnet/src/node.rs

crates/btcnet/src/lib.rs:
crates/btcnet/src/adversary.rs:
crates/btcnet/src/chain.rs:
crates/btcnet/src/messages.rs:
crates/btcnet/src/miner.rs:
crates/btcnet/src/network.rs:
crates/btcnet/src/node.rs:

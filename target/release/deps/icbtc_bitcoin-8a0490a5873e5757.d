/root/repo/target/release/deps/icbtc_bitcoin-8a0490a5873e5757.d: crates/bitcoin/src/lib.rs crates/bitcoin/src/address.rs crates/bitcoin/src/block.rs crates/bitcoin/src/builder.rs crates/bitcoin/src/encode.rs crates/bitcoin/src/hash.rs crates/bitcoin/src/network.rs crates/bitcoin/src/pow.rs crates/bitcoin/src/script.rs crates/bitcoin/src/tx.rs crates/bitcoin/src/u256.rs

/root/repo/target/release/deps/libicbtc_bitcoin-8a0490a5873e5757.rlib: crates/bitcoin/src/lib.rs crates/bitcoin/src/address.rs crates/bitcoin/src/block.rs crates/bitcoin/src/builder.rs crates/bitcoin/src/encode.rs crates/bitcoin/src/hash.rs crates/bitcoin/src/network.rs crates/bitcoin/src/pow.rs crates/bitcoin/src/script.rs crates/bitcoin/src/tx.rs crates/bitcoin/src/u256.rs

/root/repo/target/release/deps/libicbtc_bitcoin-8a0490a5873e5757.rmeta: crates/bitcoin/src/lib.rs crates/bitcoin/src/address.rs crates/bitcoin/src/block.rs crates/bitcoin/src/builder.rs crates/bitcoin/src/encode.rs crates/bitcoin/src/hash.rs crates/bitcoin/src/network.rs crates/bitcoin/src/pow.rs crates/bitcoin/src/script.rs crates/bitcoin/src/tx.rs crates/bitcoin/src/u256.rs

crates/bitcoin/src/lib.rs:
crates/bitcoin/src/address.rs:
crates/bitcoin/src/block.rs:
crates/bitcoin/src/builder.rs:
crates/bitcoin/src/encode.rs:
crates/bitcoin/src/hash.rs:
crates/bitcoin/src/network.rs:
crates/bitcoin/src/pow.rs:
crates/bitcoin/src/script.rs:
crates/bitcoin/src/tx.rs:
crates/bitcoin/src/u256.rs:

/root/repo/target/release/deps/security_downtime-9dd4a57b8d1bf4cc.d: crates/bench/src/bin/security_downtime.rs

/root/repo/target/release/deps/security_downtime-9dd4a57b8d1bf4cc: crates/bench/src/bin/security_downtime.rs

crates/bench/src/bin/security_downtime.rs:

/root/repo/target/release/deps/cost_per_request-6ab52c68cd001271.d: crates/bench/src/bin/cost_per_request.rs

/root/repo/target/release/deps/cost_per_request-6ab52c68cd001271: crates/bench/src/bin/cost_per_request.rs

crates/bench/src/bin/cost_per_request.rs:

/root/repo/target/release/deps/fig6_block_ingestion-c8d663efe6ea25dd.d: crates/bench/src/bin/fig6_block_ingestion.rs

/root/repo/target/release/deps/fig6_block_ingestion-c8d663efe6ea25dd: crates/bench/src/bin/fig6_block_ingestion.rs

crates/bench/src/bin/fig6_block_ingestion.rs:

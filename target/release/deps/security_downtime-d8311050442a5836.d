/root/repo/target/release/deps/security_downtime-d8311050442a5836.d: crates/bench/src/bin/security_downtime.rs

/root/repo/target/release/deps/security_downtime-d8311050442a5836: crates/bench/src/bin/security_downtime.rs

crates/bench/src/bin/security_downtime.rs:

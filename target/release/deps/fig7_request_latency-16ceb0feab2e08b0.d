/root/repo/target/release/deps/fig7_request_latency-16ceb0feab2e08b0.d: crates/bench/src/bin/fig7_request_latency.rs

/root/repo/target/release/deps/fig7_request_latency-16ceb0feab2e08b0: crates/bench/src/bin/fig7_request_latency.rs

crates/bench/src/bin/fig7_request_latency.rs:

/root/repo/target/release/deps/fig7_request_instructions-c425c3b9d93552a9.d: crates/bench/src/bin/fig7_request_instructions.rs

/root/repo/target/release/deps/fig7_request_instructions-c425c3b9d93552a9: crates/bench/src/bin/fig7_request_instructions.rs

crates/bench/src/bin/fig7_request_instructions.rs:

/root/repo/target/release/deps/security_fork-182f9f749f7ecc09.d: crates/bench/src/bin/security_fork.rs

/root/repo/target/release/deps/security_fork-182f9f749f7ecc09: crates/bench/src/bin/security_fork.rs

crates/bench/src/bin/security_fork.rs:

/root/repo/target/release/deps/icbtc_bench-420deb60f137d698.d: crates/bench/src/lib.rs crates/bench/src/chaingen.rs crates/bench/src/report.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libicbtc_bench-420deb60f137d698.rlib: crates/bench/src/lib.rs crates/bench/src/chaingen.rs crates/bench/src/report.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libicbtc_bench-420deb60f137d698.rmeta: crates/bench/src/lib.rs crates/bench/src/chaingen.rs crates/bench/src/report.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/chaingen.rs:
crates/bench/src/report.rs:
crates/bench/src/workload.rs:

/root/repo/target/release/deps/icbtc-5cb89572527631b4.d: src/lib.rs src/contracts.rs src/system.rs

/root/repo/target/release/deps/icbtc-5cb89572527631b4: src/lib.rs src/contracts.rs src/system.rs

src/lib.rs:
src/contracts.rs:
src/system.rs:

/root/repo/target/release/deps/fig7_request_instructions-5e34a41d05997a04.d: crates/bench/src/bin/fig7_request_instructions.rs

/root/repo/target/release/deps/fig7_request_instructions-5e34a41d05997a04: crates/bench/src/bin/fig7_request_instructions.rs

crates/bench/src/bin/fig7_request_instructions.rs:

/root/repo/target/release/deps/ablation_sync-dc8265a3dab3b566.d: crates/bench/src/bin/ablation_sync.rs

/root/repo/target/release/deps/ablation_sync-dc8265a3dab3b566: crates/bench/src/bin/ablation_sync.rs

crates/bench/src/bin/ablation_sync.rs:

/root/repo/target/release/deps/discovery_overlap-c202d624f2656060.d: crates/bench/src/bin/discovery_overlap.rs

/root/repo/target/release/deps/discovery_overlap-c202d624f2656060: crates/bench/src/bin/discovery_overlap.rs

crates/bench/src/bin/discovery_overlap.rs:

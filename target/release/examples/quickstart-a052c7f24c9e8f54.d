/root/repo/target/release/examples/quickstart-a052c7f24c9e8f54.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a052c7f24c9e8f54: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/release/examples/double_spend_attack-1e2e22a5f04f2164.d: examples/double_spend_attack.rs

/root/repo/target/release/examples/double_spend_attack-1e2e22a5f04f2164: examples/double_spend_attack.rs

examples/double_spend_attack.rs:

#!/usr/bin/env bash
# Deterministic hot-path profile: boots the four-layer simulation, runs
# a fixed mine/sync/query scenario, and prints the merged frame-tree
# report (top-N self-cost table + collapsed-stack flamegraph lines).
#
#   scripts/profile.sh [--seed N] [--blocks N] [--queries N] [--top N] [--out PATH]
#
# Thin wrapper over the prof_report bench binary; all flags pass
# through. Same flags => byte-identical report (scripts/verify.sh runs
# it twice and diffs the outputs as the profiler determinism gate).
# The collapsed-stack section is flamegraph.pl-compatible:
#
#   scripts/profile.sh | sed -n '/## collapsed stacks/,$p' | tail -n +2 > stacks.txt
set -euo pipefail

cd "$(dirname "$0")/.."

exec cargo run -q --release --offline -p icbtc-bench --bin prof_report -- "$@"

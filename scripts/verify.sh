#!/usr/bin/env bash
# Tier-1 verification, fully offline.
#
# The workspace is hermetic: no crates.io dependencies, so the build must
# succeed with the network disabled and an empty registry cache. Any PR
# that reintroduces a registry dependency fails here immediately — cargo's
# --offline flag refuses to resolve anything outside the workspace.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT

echo "==> icbtc-lint (determinism / replicated-state static analysis, double run)"
# The analyzer itself must be deterministic: two runs over the same tree
# must emit byte-identical JSON (timings are only rendered under
# --timings, which is deliberately off here).
for run in 1 2; do
    cargo run -q --release --offline -p icbtc-lint --bin icbtc-lint -- --root . --json \
        > "$OBS_TMP/lint$run.json"
done
if ! diff -q "$OBS_TMP/lint1.json" "$OBS_TMP/lint2.json" >/dev/null; then
    echo "ERROR: two icbtc-lint runs over the same tree differ:" >&2
    diff "$OBS_TMP/lint1.json" "$OBS_TMP/lint2.json" | head -20 >&2 || true
    exit 1
fi
if ! grep -q '"violation_count":0' "$OBS_TMP/lint1.json"; then
    echo "ERROR: icbtc-lint found violations:" >&2
    cargo run -q --release --offline -p icbtc-lint --bin icbtc-lint -- --root . >&2 || true
    exit 1
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
    cargo clippy -q --offline --workspace --all-targets -- -D warnings
else
    echo "WARNING: clippy not installed in this toolchain; skipping clippy gate" >&2
fi

echo "==> observability determinism gate (same seed => byte-identical output)"
for run in 1 2; do
    cargo run -q --release --offline -p icbtc-bench --bin obs_trace -- \
        --seed 42 --rounds 120 --json --trace-out "$OBS_TMP/trace$run.jsonl" \
        > "$OBS_TMP/metrics$run.json"
done
if ! diff -q "$OBS_TMP/metrics1.json" "$OBS_TMP/metrics2.json" >/dev/null; then
    echo "ERROR: same-seed metrics snapshots differ:" >&2
    diff "$OBS_TMP/metrics1.json" "$OBS_TMP/metrics2.json" >&2 || true
    exit 1
fi
if ! diff -q "$OBS_TMP/trace1.jsonl" "$OBS_TMP/trace2.jsonl" >/dev/null; then
    echo "ERROR: same-seed traces differ:" >&2
    diff "$OBS_TMP/trace1.jsonl" "$OBS_TMP/trace2.jsonl" | head -20 >&2 || true
    exit 1
fi

echo "==> chaos determinism gate (same seed + plan => byte-identical soak)"
for run in 1 2; do
    cargo run -q --release --offline -p icbtc-bench --bin chaos_soak -- \
        --seed 42 --plan mixed --json --trace-out "$OBS_TMP/chaos$run.jsonl" \
        > "$OBS_TMP/chaos$run.json"
done
if ! diff -q "$OBS_TMP/chaos1.json" "$OBS_TMP/chaos2.json" >/dev/null; then
    echo "ERROR: same-seed chaos metrics snapshots differ:" >&2
    diff "$OBS_TMP/chaos1.json" "$OBS_TMP/chaos2.json" >&2 || true
    exit 1
fi
if ! diff -q "$OBS_TMP/chaos1.jsonl" "$OBS_TMP/chaos2.jsonl" >/dev/null; then
    echo "ERROR: same-seed chaos traces differ:" >&2
    diff "$OBS_TMP/chaos1.jsonl" "$OBS_TMP/chaos2.jsonl" | head -20 >&2 || true
    exit 1
fi

echo "==> query-plane determinism gate (same flags => byte-identical qps report)"
for run in 1 2; do
    cargo run -q --release --offline -p icbtc-bench --bin qps_soak -- \
        --seed 42 --addresses 20000 --requests 4000 --rate 64 \
        --out "$OBS_TMP/qps$run.json" --metrics-out "$OBS_TMP/qps_metrics$run.json" \
        >/dev/null 2>&1
done
if ! diff -q "$OBS_TMP/qps1.json" "$OBS_TMP/qps2.json" >/dev/null; then
    echo "ERROR: same-flags qps reports differ:" >&2
    diff "$OBS_TMP/qps1.json" "$OBS_TMP/qps2.json" >&2 || true
    exit 1
fi
if ! diff -q "$OBS_TMP/qps_metrics1.json" "$OBS_TMP/qps_metrics2.json" >/dev/null; then
    echo "ERROR: same-flags qps metrics snapshots differ:" >&2
    diff "$OBS_TMP/qps_metrics1.json" "$OBS_TMP/qps_metrics2.json" | head -20 >&2 || true
    exit 1
fi
if ! grep -q '"schema_version": 1' "$OBS_TMP/qps1.json"; then
    echo "ERROR: qps report is missing schema_version 1" >&2
    exit 1
fi
if ! grep -q '"schema_version": 1' BENCH_qps.json; then
    echo "ERROR: committed BENCH_qps.json is missing schema_version 1" >&2
    exit 1
fi
if ! grep -q '"hot_path"' BENCH_qps.json; then
    echo "ERROR: committed BENCH_qps.json is missing the hot_path section" >&2
    exit 1
fi

echo "==> perf trajectory gate (fresh qps report inside tolerance of committed baseline)"
scripts/perfdiff.sh "$OBS_TMP/qps1.json" BENCH_qps_gate.json

echo "==> profiler determinism gate (same flags => byte-identical profile report)"
for run in 1 2; do
    cargo run -q --release --offline -p icbtc-bench --bin prof_report -- \
        --seed 42 --blocks 6 --queries 32 --out "$OBS_TMP/prof$run.txt" \
        >/dev/null 2>&1
done
if ! diff -q "$OBS_TMP/prof1.txt" "$OBS_TMP/prof2.txt" >/dev/null; then
    echo "ERROR: same-seed profile reports differ:" >&2
    diff "$OBS_TMP/prof1.txt" "$OBS_TMP/prof2.txt" | head -20 >&2 || true
    exit 1
fi
for required in 'root_total:' '## collapsed stacks' 'canister;' 'subnet;'; do
    if ! grep -q "$required" "$OBS_TMP/prof1.txt"; then
        echo "ERROR: profile report is missing $required" >&2
        exit 1
    fi
done

echo "==> storage determinism gate (same flags => byte-identical report + state hash)"
for run in 1 2; do
    cargo run -q --release --offline -p icbtc-bench --bin fig5_utxo_growth -- \
        --seed 42 --blocks 80 --volume-scale 25 --budget-mib 64 --sample-every 20 \
        --out "$OBS_TMP/utxo$run.json" --metrics-out "$OBS_TMP/utxo_metrics$run.json" \
        >/dev/null 2>&1
done
if ! diff -q "$OBS_TMP/utxo1.json" "$OBS_TMP/utxo2.json" >/dev/null; then
    echo "ERROR: same-flags storage reports differ:" >&2
    diff "$OBS_TMP/utxo1.json" "$OBS_TMP/utxo2.json" >&2 || true
    exit 1
fi
if ! diff -q "$OBS_TMP/utxo_metrics1.json" "$OBS_TMP/utxo_metrics2.json" >/dev/null; then
    echo "ERROR: same-flags storage metrics snapshots differ:" >&2
    diff "$OBS_TMP/utxo_metrics1.json" "$OBS_TMP/utxo_metrics2.json" | head -20 >&2 || true
    exit 1
fi
for required in '"schema_version": 1' '"state_hash": "'; do
    if ! grep -q "$required" "$OBS_TMP/utxo1.json"; then
        echo "ERROR: storage report is missing $required" >&2
        exit 1
    fi
    if ! grep -q "$required" BENCH_utxo.json; then
        echo "ERROR: committed BENCH_utxo.json is missing $required" >&2
        exit 1
    fi
done

echo "==> storage perf trajectory gate (fresh utxo report inside tolerance of committed baseline)"
scripts/perfdiff.sh "$OBS_TMP/utxo1.json" BENCH_utxo_gate.json

echo "==> recovery determinism gate (same flags => byte-identical lifecycle soak)"
for run in 1 2; do
    cargo run -q --release --offline -p icbtc-bench --bin recovery_soak -- \
        --seed 42 --rounds 60 --plan mixed \
        --out "$OBS_TMP/recovery$run.json" --metrics-out "$OBS_TMP/recovery_metrics$run.json" \
        >/dev/null 2>&1
done
if ! diff -q "$OBS_TMP/recovery1.json" "$OBS_TMP/recovery2.json" >/dev/null; then
    echo "ERROR: same-flags recovery reports differ:" >&2
    diff "$OBS_TMP/recovery1.json" "$OBS_TMP/recovery2.json" >&2 || true
    exit 1
fi
if ! diff -q "$OBS_TMP/recovery_metrics1.json" "$OBS_TMP/recovery_metrics2.json" >/dev/null; then
    echo "ERROR: same-flags recovery metrics snapshots differ:" >&2
    diff "$OBS_TMP/recovery_metrics1.json" "$OBS_TMP/recovery_metrics2.json" | head -20 >&2 || true
    exit 1
fi
for required in '"schema_version": 1' '"state_hash": "'; do
    if ! grep -q "$required" "$OBS_TMP/recovery1.json"; then
        echo "ERROR: recovery report is missing $required" >&2
        exit 1
    fi
    if ! grep -q "$required" BENCH_recovery.json; then
        echo "ERROR: committed BENCH_recovery.json is missing $required" >&2
        exit 1
    fi
done

echo "==> recovery trajectory gate (fresh lifecycle soak inside tolerance of committed baseline)"
scripts/perfdiff.sh "$OBS_TMP/recovery1.json" BENCH_recovery_gate.json

echo "==> verifying the dependency tree is workspace-only"
if cargo tree --offline --prefix none | grep -v '^icbtc' | grep -q '[^[:space:]]'; then
    echo "ERROR: non-workspace dependency detected:" >&2
    cargo tree --offline --prefix none | grep -v '^icbtc' >&2
    exit 1
fi

echo "OK: hermetic build + tests + lint + observability + chaos + query-plane + storage determinism + profiler + perf trajectory + recovery passed"

#!/usr/bin/env bash
# Tier-1 verification, fully offline.
#
# The workspace is hermetic: no crates.io dependencies, so the build must
# succeed with the network disabled and an empty registry cache. Any PR
# that reintroduces a registry dependency fails here immediately — cargo's
# --offline flag refuses to resolve anything outside the workspace.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> icbtc-lint (determinism / replicated-state static analysis)"
cargo run -q --release --offline -p icbtc-lint --bin icbtc-lint -- --root .

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
    cargo clippy -q --offline --workspace --all-targets -- -D warnings
else
    echo "WARNING: clippy not installed in this toolchain; skipping clippy gate" >&2
fi

echo "==> verifying the dependency tree is workspace-only"
if cargo tree --offline --prefix none | grep -v '^icbtc' | grep -q '[^[:space:]]'; then
    echo "ERROR: non-workspace dependency detected:" >&2
    cargo tree --offline --prefix none | grep -v '^icbtc' >&2
    exit 1
fi

echo "OK: hermetic build + tests + lint passed"

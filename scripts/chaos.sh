#!/usr/bin/env bash
# Chaos soak: run one Bitcoin adapter against a deliberately hostile
# simulated Bitcoin network and print the merged metrics registry.
#
#   scripts/chaos.sh [--seed N] [--plan NAME] [--recovery SECS] [--json] [--trace-out PATH]
#
# Plans: loss, partition, churn, crash, stall, malformed, mixed, none.
# Thin wrapper over the chaos_soak bench binary; all flags pass through.
# Same (seed, plan) => byte-identical output (scripts/verify.sh enforces
# this as the chaos determinism gate).
set -euo pipefail

cd "$(dirname "$0")/.."

exec cargo run -q --release --offline -p icbtc-bench --bin chaos_soak -- "$@"

#!/usr/bin/env bash
# Durability-and-recovery soak: periodic full-state checkpoints, canister
# upgrades, replica crash–catch-up with deterministic replay, and
# shadow-replica divergence detection with seeded corruption.
#
#   scripts/recovery.sh [--seed N] [--rounds N] [--mine-every N] [--plan NAME]
#                       [--cadence N --upgrades N --crashes N --corruptions N]
#                       [--out PATH] [--metrics-out PATH]
#
# Thin wrapper over the recovery_soak bench binary; all flags pass
# through. Same flags => byte-identical report (scripts/verify.sh
# enforces this as the recovery determinism gate, and holds the small
# gate configuration against BENCH_recovery_gate.json via perfdiff).
# The committed BENCH_recovery.json is the full-scale baseline:
#
#   scripts/recovery.sh --seed 42 --rounds 240 --cadence 15 \
#       --upgrades 4 --crashes 6 --corruptions 3 --out BENCH_recovery.json
set -euo pipefail

cd "$(dirname "$0")/.."

exec cargo run -q --release --offline -p icbtc-bench --bin recovery_soak -- "$@"

#!/usr/bin/env bash
# Dump the deterministic observability layer for a full-system run:
# merged metrics tables on stdout, plus the JSONL trace when requested.
#
#   scripts/trace.sh [--seed N] [--rounds N] [--json] [--trace-out PATH]
#
# Thin wrapper over the obs_trace bench binary; all flags pass through.
# Same seed => byte-identical output (scripts/verify.sh enforces this).
set -euo pipefail

cd "$(dirname "$0")/.."

exec cargo run -q --release --offline -p icbtc-bench --bin obs_trace -- "$@"

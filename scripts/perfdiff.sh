#!/usr/bin/env bash
# Perf-trajectory regression gate: compares a freshly generated bench
# report against a committed baseline, metric by metric, with per-metric
# tolerance bands, and emits a machine-readable verdict line per metric
# plus a final summary line:
#
#   scripts/perfdiff.sh CANDIDATE.json BASELINE.json
#
#   {"metric":"requests_per_sec","baseline":253,"candidate":249,...,"verdict":"pass"}
#   ...
#   {"perfdiff":"pass","bench":"qps_soak","checked":7,"failed":0}
#
# Exit status 0 iff every checked metric is inside its band. The metric
# set and bands are keyed on the report's "bench" field:
#
#   qps_soak          requests_per_sec ±10%, latency p50/p90/p99 ±15%,
#                     instructions_per_request ±10%, cache_hit_permille
#                     ±10%, errors exact; hot_path per-hit cost must not
#                     regress past its recorded pre-optimization value.
#   fig5_utxo_growth  utxo_count ±5%, pages_allocated ±10%,
#                     bytes_per_utxo ±10%, state_hash exact.
#   recovery_soak     event counts (checkpoints, upgrades, catch-ups,
#                     corruptions, detections) exact; catch-up matches
#                     must equal catch-ups; checkpoint_last_bytes and
#                     mttr_ns_total ±10%; state_hash exact.
#
# Both files must carry schema_version 1 and the same bench tag. The
# parser is awk-only (no jq) so the gate runs anywhere the repo builds;
# it relies on the reports' stable one-key-per-line formatting.
set -euo pipefail

if [ "$#" -ne 2 ]; then
    echo "usage: perfdiff.sh CANDIDATE.json BASELINE.json" >&2
    exit 2
fi
CANDIDATE="$1"
BASELINE="$2"
for f in "$CANDIDATE" "$BASELINE"; do
    if [ ! -f "$f" ]; then
        echo "ERROR: perfdiff: no such report: $f" >&2
        exit 2
    fi
done

# Extracts the value of a top-level (or uniquely named) integer field.
field() { # field FILE NAME -> integer (empty if absent)
    awk -v name="\"$2\":" '
        $1 == name { v = $2; sub(/,$/, "", v); print v; exit }
    ' "$1"
}

# Extracts a string field (without quotes).
sfield() { # sfield FILE NAME -> string (empty if absent)
    awk -v name="\"$2\":" '
        $1 == name { v = $2; sub(/,$/, "", v); gsub(/"/, "", v); print v; exit }
    ' "$1"
}

for f in "$CANDIDATE" "$BASELINE"; do
    if [ "$(field "$f" schema_version)" != "1" ]; then
        echo "ERROR: perfdiff: $f is not a schema_version 1 report" >&2
        exit 2
    fi
done
BENCH="$(sfield "$CANDIDATE" bench)"
if [ "$BENCH" != "$(sfield "$BASELINE" bench)" ]; then
    echo "ERROR: perfdiff: bench mismatch: $BENCH vs $(sfield "$BASELINE" bench)" >&2
    exit 2
fi

CHECKED=0
FAILED=0

# check METRIC TOLERANCE_PERMILLE — band is relative to the baseline;
# a zero baseline demands an exactly-zero candidate.
check() {
    local metric="$1" tol="$2"
    local base cand
    base="$(field "$BASELINE" "$metric")"
    cand="$(field "$CANDIDATE" "$metric")"
    if [ -z "$base" ] || [ -z "$cand" ]; then
        echo "{\"metric\":\"$metric\",\"verdict\":\"fail\",\"error\":\"missing in candidate or baseline\"}"
        FAILED=$((FAILED + 1))
        CHECKED=$((CHECKED + 1))
        return
    fi
    local delta abs_delta verdict
    delta=$(( base == 0 ? (cand == 0 ? 0 : 1000000) : ( (cand - base) * 1000 ) / base ))
    abs_delta=$(( delta < 0 ? -delta : delta ))
    verdict=pass
    if [ "$abs_delta" -gt "$tol" ]; then
        verdict=fail
        FAILED=$((FAILED + 1))
    fi
    CHECKED=$((CHECKED + 1))
    echo "{\"metric\":\"$metric\",\"baseline\":$base,\"candidate\":$cand,\"delta_permille\":$delta,\"tolerance_permille\":$tol,\"verdict\":\"$verdict\"}"
}

# check_exact_string METRIC — byte equality of a string field.
check_exact_string() {
    local metric="$1"
    local base cand verdict
    base="$(sfield "$BASELINE" "$metric")"
    cand="$(sfield "$CANDIDATE" "$metric")"
    verdict=pass
    if [ -z "$base" ] || [ "$base" != "$cand" ]; then
        verdict=fail
        FAILED=$((FAILED + 1))
    fi
    CHECKED=$((CHECKED + 1))
    echo "{\"metric\":\"$metric\",\"baseline\":\"$base\",\"candidate\":\"$cand\",\"verdict\":\"$verdict\"}"
}

case "$BENCH" in
qps_soak)
    check requests_per_sec 100
    check latency_ms_p50 150
    check latency_ms_p90 150
    check latency_ms_p99 150
    check instructions_per_request 100
    check cache_hit_permille 100
    check errors 0
    # The profiler-guided hit-path optimization must hold: the realized
    # per-hit cost may never drift back above the recorded flat cost of
    # the pre-optimization hit path.
    before="$(field "$CANDIDATE" hit_instructions_per_hit_before)"
    after="$(field "$CANDIDATE" hit_instructions_per_hit_after)"
    verdict=pass
    if [ -z "$before" ] || [ -z "$after" ] || [ "$after" -ge "$before" ]; then
        verdict=fail
        FAILED=$((FAILED + 1))
    fi
    CHECKED=$((CHECKED + 1))
    echo "{\"metric\":\"hot_path_per_hit_improvement\",\"before\":${before:-null},\"after\":${after:-null},\"verdict\":\"$verdict\"}"
    ;;
fig5_utxo_growth)
    check utxo_count 50
    check pages_allocated 100
    check bytes_per_utxo 100
    check_exact_string state_hash
    ;;
recovery_soak)
    # The lifecycle schedule is seed-deterministic, so every event count
    # is exact; only the byte/instruction figures get a band.
    check checkpoints_taken 0
    check upgrades 0
    check catchups 0
    check replayed_rounds_total 0
    check corruptions_injected 0
    check divergence_detected 0
    check checkpoint_last_bytes 100
    check mttr_ns_total 100
    check_exact_string state_hash
    # Recovery correctness, not just trajectory: every catch-up must have
    # reconverged with the live replica, and every injected corruption
    # must have been detected — in the candidate itself.
    catchups="$(field "$CANDIDATE" catchups)"
    matches="$(field "$CANDIDATE" catchup_matches)"
    verdict=pass
    if [ -z "$catchups" ] || [ -z "$matches" ] || [ "$catchups" != "$matches" ]; then
        verdict=fail
        FAILED=$((FAILED + 1))
    fi
    CHECKED=$((CHECKED + 1))
    echo "{\"metric\":\"catchup_reconvergence\",\"catchups\":${catchups:-null},\"matches\":${matches:-null},\"verdict\":\"$verdict\"}"
    injected="$(field "$CANDIDATE" corruptions_injected)"
    detected="$(field "$CANDIDATE" divergence_detected)"
    verdict=pass
    if [ -z "$injected" ] || [ -z "$detected" ] || [ "$injected" != "$detected" ]; then
        verdict=fail
        FAILED=$((FAILED + 1))
    fi
    CHECKED=$((CHECKED + 1))
    echo "{\"metric\":\"divergence_detection\",\"injected\":${injected:-null},\"detected\":${detected:-null},\"verdict\":\"$verdict\"}"
    ;;
*)
    echo "ERROR: perfdiff: unknown bench tag \"$BENCH\"" >&2
    exit 2
    ;;
esac

VERDICT=pass
if [ "$FAILED" -gt 0 ]; then
    VERDICT=fail
fi
echo "{\"perfdiff\":\"$VERDICT\",\"bench\":\"$BENCH\",\"checked\":$CHECKED,\"failed\":$FAILED}"
[ "$VERDICT" = pass ]

#!/usr/bin/env bash
# Query-plane throughput soak: a large synthetic address population with
# the paper's UTXO-count skew under a mixed query load, driven through
# the subnet's batched query plane and tip-keyed query cache.
#
#   scripts/qps.sh [--seed N] [--addresses N] [--utxo-scale N] [--requests N]
#                  [--rate N] [--ingest-every N] [--no-cache]
#                  [--out PATH] [--metrics-out PATH]
#
# Thin wrapper over the qps_soak bench binary; all flags pass through.
# Same flags => byte-identical report (scripts/verify.sh enforces this
# as the query-plane determinism gate). The committed BENCH_qps.json is
# the default-flags baseline.
set -euo pipefail

cd "$(dirname "$0")/.."

exec cargo run -q --release --offline -p icbtc-bench --bin qps_soak -- "$@"

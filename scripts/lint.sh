#!/usr/bin/env bash
# Run the in-repo static analyzer (icbtc-lint) over the workspace.
#
#   scripts/lint.sh            human-readable report
#   scripts/lint.sh --json     machine-readable report (schema_version 1,
#                              documented in DESIGN.md §"Static analysis")
#   scripts/lint.sh --list-rules
#
# Exit codes: 0 clean, 1 unsuppressed violations, 2 usage/IO error.
# All flags are forwarded to the binary unchanged.
set -euo pipefail

cd "$(dirname "$0")/.."

exec cargo run -q --release --offline -p icbtc-lint --bin icbtc-lint -- --root . "$@"

#!/usr/bin/env bash
# Run the in-repo static analyzer (icbtc-lint) over the workspace.
#
#   scripts/lint.sh                 human-readable report
#   scripts/lint.sh --json          machine-readable report (schema_version 2,
#                                   documented in DESIGN.md §"Static analysis")
#   scripts/lint.sh --timings       append per-phase wall times (also valid
#                                   with --json: adds a timings_us object)
#   scripts/lint.sh --changed-only  report findings only for .rs files that
#                                   differ from HEAD (analysis still covers
#                                   the whole workspace, so cross-file
#                                   dataflow findings stay sound)
#   scripts/lint.sh --list-rules
#
# Exit codes: 0 clean, 1 unsuppressed violations, 2 usage/IO error.
# All other flags are forwarded to the binary unchanged.
set -euo pipefail

cd "$(dirname "$0")/.."

ARGS=()
CHANGED_ONLY=0
for arg in "$@"; do
    if [ "$arg" = "--changed-only" ]; then
        CHANGED_ONLY=1
    else
        ARGS+=("$arg")
    fi
done

if [ "$CHANGED_ONLY" = "1" ]; then
    # Changed = modified/added vs HEAD plus untracked, .rs only. The
    # analyzer still parses the whole workspace (the call graph needs every
    # file); --only merely scopes which files are *reported*.
    CHANGED=$( { git diff --name-only HEAD -- '*.rs'; \
                 git ls-files --others --exclude-standard -- '*.rs'; } | sort -u )
    if [ -z "$CHANGED" ]; then
        echo "icbtc-lint: no changed .rs files vs HEAD — nothing to report"
        exit 0
    fi
    while IFS= read -r file; do
        ARGS+=("--only" "$file")
    done <<< "$CHANGED"
fi

exec cargo run -q --release --offline -p icbtc-lint --bin icbtc-lint -- --root . "${ARGS[@]+"${ARGS[@]}"}"

//! Deterministic fault injection for the simulated Bitcoin network.
//!
//! A [`FaultPlan`] attached to a [`crate::network::BtcNetwork`] degrades
//! the fabric the way the real Bitcoin P2P network degrades: links lose,
//! delay, reorder and duplicate messages; the topology partitions and
//! heals on schedule; nodes crash and restart (with or without their
//! persisted chain state); external adapter connections churn; and
//! individual peers turn malicious — serving malformed headers,
//! invalid-proof-of-work blocks, truncated bodies, oversized messages,
//! or nothing at all.
//!
//! Every stochastic choice (which message is lost, how much jitter, which
//! connection churns) is drawn from the network's own seeded `SimRng`, so
//! a given (seed, plan) pair produces a byte-identical fault schedule.
//! Chaos runs are exactly reproducible and diffable — the property behind
//! `scripts/verify.sh`'s chaos determinism gate.

use std::collections::BTreeSet;

use icbtc_sim::{SimDuration, SimTime};

use crate::messages::{NodeId, PeerRef};

/// Node count the [`FaultPlan::builtin`] plans are written against: the
/// canonical chaos topology used by `tests/chaos.rs` and the
/// `chaos_soak` bench binary.
pub const CHAOS_NODES: usize = 8;

/// Stochastic per-link message faults, applied to every message (gossip
/// and external/adapter links alike) scheduled while the window is open.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFaults {
    /// Probability of silently dropping a message, in thousandths.
    pub loss_permille: u32,
    /// Fixed delay added on top of the sampled base latency.
    pub extra_delay: SimDuration,
    /// Uniform extra delay in `[0, jitter)` added per message.
    pub jitter: SimDuration,
    /// Probability (permille) of delivering a message twice.
    pub duplicate_permille: u32,
    /// Probability (permille) of holding a message back so later traffic
    /// overtakes it.
    pub reorder_permille: u32,
    /// How long a reordered message is held back.
    pub reorder_hold: SimDuration,
    /// The window closes at this simulated time.
    pub until: SimTime,
}

impl Default for LinkFaults {
    fn default() -> LinkFaults {
        LinkFaults {
            loss_permille: 0,
            extra_delay: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            duplicate_permille: 0,
            reorder_permille: 0,
            reorder_hold: SimDuration::ZERO,
            until: SimTime::ZERO,
        }
    }
}

impl LinkFaults {
    /// Whether any link fault can fire at time `now`.
    pub fn is_active(&self, now: SimTime) -> bool {
        now < self.until
            && (self.loss_permille > 0
                || self.extra_delay > SimDuration::ZERO
                || self.jitter > SimDuration::ZERO
                || self.duplicate_permille > 0
                || self.reorder_permille > 0)
    }
}

/// A scheduled network partition: nodes inside `island` cannot exchange
/// messages with anything outside it while the partition is up. External
/// (adapter) endpoints always count as *outside* the island, so an island
/// holding every node models "the adapter is cut off from the network".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// The isolated node set.
    pub island: BTreeSet<NodeId>,
    /// When the partition comes up.
    pub start: SimTime,
    /// When it heals (messages flow again; no replay of lost traffic).
    pub heal_at: SimTime,
}

impl Partition {
    /// Builds a partition from a plain node list.
    pub fn new(island: &[NodeId], start: SimTime, heal_at: SimTime) -> Partition {
        Partition { island: island.iter().copied().collect(), start, heal_at }
    }

    /// Whether the partition is up at `now`.
    pub fn is_active(&self, now: SimTime) -> bool {
        self.start <= now && now < self.heal_at
    }

    /// Whether `peer` sits inside the island.
    pub fn contains(&self, peer: PeerRef) -> bool {
        match peer {
            PeerRef::Node(id) => self.island.contains(&id),
            PeerRef::External(_) => false,
        }
    }

    /// Whether the partition severs the link between `a` and `b`.
    pub fn separates(&self, a: PeerRef, b: PeerRef) -> bool {
        self.contains(a) != self.contains(b)
    }
}

/// A scheduled node crash and restart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crash {
    /// The node that goes down.
    pub node: NodeId,
    /// When it stops processing messages (queued traffic is dropped on
    /// arrival; nothing is generated).
    pub at: SimTime,
    /// When it comes back and issues fresh `getheaders` to its peers.
    pub restart_at: SimTime,
    /// `true` models a disk loss: the chain store, mempool and relay
    /// state are reset to genesis before the restart sync.
    pub wipe_state: bool,
}

/// A peer-churn schedule: every `period`, up to `closes_per_tick`
/// external (adapter) connections are closed, chosen uniformly by the
/// network's RNG. The adapter's connection manager is expected to detect
/// the closes and reconnect elsewhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Churn {
    /// First tick.
    pub first_at: SimTime,
    /// Tick spacing.
    pub period: SimDuration,
    /// External connections closed per tick.
    pub closes_per_tick: usize,
    /// Last tick fires at or before this time.
    pub until: SimTime,
}

/// How a misbehaving node answers *external* (adapter) sync requests.
/// The node stays honest toward its in-network gossip peers, so the
/// honest chain keeps converging around it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Misbehavior {
    /// Accepts `getheaders`/`getdata` and never replies.
    Stall,
    /// Answers `getheaders` with headers carrying wrong difficulty bits
    /// (guaranteed `BadDifficultyBits`, independent of the PoW lottery).
    MalformedHeaders,
    /// Serves requested blocks with the nonce corrupted until the header
    /// hash misses its target (`BadProofOfWork`; the hash also no longer
    /// matches the request, exercising the adapter's re-request path).
    InvalidPowBlocks,
    /// Serves requested blocks with the transaction list emptied
    /// (`MalformedBlock`; the hash still matches the request).
    TruncatedBlocks,
    /// Answers `getheaders` with more headers than the protocol allows.
    Oversized,
}

impl Misbehavior {
    /// Static label for metrics.
    pub fn kind(self) -> &'static str {
        match self {
            Misbehavior::Stall => "stall",
            Misbehavior::MalformedHeaders => "malformed-headers",
            Misbehavior::InvalidPowBlocks => "invalid-pow",
            Misbehavior::TruncatedBlocks => "truncated-blocks",
            Misbehavior::Oversized => "oversized",
        }
    }
}

/// A complete deterministic fault schedule for one network.
///
/// Install it with `BtcNetwork::set_fault_plan`. An empty plan (the
/// default) injects nothing, so un-faulted simulations pay no cost and
/// draw no extra randomness — existing seeds stay byte-stable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Stochastic link degradation.
    pub link: LinkFaults,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled crash/restart pairs.
    pub crashes: Vec<Crash>,
    /// Optional external-connection churn schedule.
    pub churn: Option<Churn>,
    /// Misbehaving nodes and their modes (at most one mode per node; the
    /// first entry for a node wins).
    pub misbehavior: Vec<(NodeId, Misbehavior)>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// The time after which no scheduled fault is active any more.
    /// Misbehaving peers never stop on their own — the adapter is
    /// expected to ban them — so they do not extend this bound.
    pub fn ends_at(&self) -> SimTime {
        let mut end = SimTime::ZERO;
        if self.link.is_active(SimTime::ZERO) || self.link.until > SimTime::ZERO {
            end = end.max(self.link.until);
        }
        for p in &self.partitions {
            end = end.max(p.heal_at);
        }
        for c in &self.crashes {
            end = end.max(c.restart_at);
        }
        if let Some(ch) = &self.churn {
            end = end.max(ch.until);
        }
        end
    }

    /// Names accepted by [`FaultPlan::builtin`].
    pub fn builtin_names() -> &'static [&'static str] {
        &["loss", "partition", "churn", "crash", "stall", "malformed", "mixed"]
    }

    /// The canonical chaos plans shared by `tests/chaos.rs` and the
    /// `chaos_soak` bench binary. All are written against a network of
    /// [`CHAOS_NODES`] honest nodes and finish injecting by two simulated
    /// hours, leaving the recovery window fault-free.
    pub fn builtin(name: &str) -> Option<FaultPlan> {
        let h = SimTime::from_secs;
        match name {
            "loss" => Some(FaultPlan {
                link: LinkFaults {
                    loss_permille: 150,
                    extra_delay: SimDuration::from_millis(300),
                    jitter: SimDuration::from_millis(500),
                    duplicate_permille: 50,
                    reorder_permille: 100,
                    reorder_hold: SimDuration::from_secs(2),
                    until: h(7200),
                },
                ..FaultPlan::default()
            }),
            "partition" => Some(FaultPlan {
                partitions: vec![
                    // Two nodes drop off the network for 35 minutes.
                    Partition::new(&[NodeId(0), NodeId(1)], h(900), h(3000)),
                    // Later, the whole network isolates itself from
                    // external endpoints: a total adapter outage.
                    Partition::new(&all_chaos_nodes(), h(4200), h(4800)),
                ],
                ..FaultPlan::default()
            }),
            "churn" => Some(FaultPlan {
                churn: Some(Churn {
                    first_at: h(600),
                    period: SimDuration::from_secs(180),
                    closes_per_tick: 1,
                    until: h(7200),
                }),
                ..FaultPlan::default()
            }),
            "crash" => Some(FaultPlan {
                crashes: vec![
                    Crash { node: NodeId(2), at: h(900), restart_at: h(2700), wipe_state: true },
                    Crash { node: NodeId(3), at: h(1500), restart_at: h(2400), wipe_state: false },
                ],
                ..FaultPlan::default()
            }),
            "stall" => Some(FaultPlan {
                misbehavior: vec![(NodeId(1), Misbehavior::Stall)],
                ..FaultPlan::default()
            }),
            "malformed" => Some(FaultPlan {
                misbehavior: vec![
                    (NodeId(1), Misbehavior::MalformedHeaders),
                    (NodeId(2), Misbehavior::InvalidPowBlocks),
                    (NodeId(3), Misbehavior::TruncatedBlocks),
                    (NodeId(4), Misbehavior::Oversized),
                ],
                ..FaultPlan::default()
            }),
            "mixed" => Some(FaultPlan {
                link: LinkFaults {
                    loss_permille: 80,
                    extra_delay: SimDuration::from_millis(200),
                    jitter: SimDuration::from_millis(300),
                    duplicate_permille: 30,
                    reorder_permille: 60,
                    reorder_hold: SimDuration::from_secs(1),
                    until: h(3600),
                },
                partitions: vec![Partition::new(&[NodeId(0), NodeId(1)], h(900), h(2700))],
                crashes: vec![Crash {
                    node: NodeId(2),
                    at: h(1200),
                    restart_at: h(3000),
                    wipe_state: true,
                }],
                churn: Some(Churn {
                    first_at: h(600),
                    period: SimDuration::from_secs(300),
                    closes_per_tick: 1,
                    until: h(5400),
                }),
                misbehavior: vec![(NodeId(3), Misbehavior::Stall)],
            }),
            _ => None,
        }
    }

    /// The largest node id a plan references, for bounds checking on
    /// install. `None` when the plan names no node.
    pub fn max_node(&self) -> Option<NodeId> {
        let mut max = None;
        let mut see = |id: NodeId| {
            if max.is_none_or(|m| id > m) {
                max = Some(id);
            }
        };
        for p in &self.partitions {
            for id in &p.island {
                see(*id);
            }
        }
        for c in &self.crashes {
            see(c.node);
        }
        for (id, _) in &self.misbehavior {
            see(*id);
        }
        max
    }
}

fn all_chaos_nodes() -> Vec<NodeId> {
    (0..CHAOS_NODES as u32).map(NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_unbounded_plans_are_not() {
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().ends_at(), SimTime::ZERO);
        for name in FaultPlan::builtin_names() {
            let plan = FaultPlan::builtin(name).expect(name);
            assert!(!plan.is_empty(), "{name} must inject something");
        }
        assert!(FaultPlan::builtin("no-such-plan").is_none());
    }

    #[test]
    fn builtin_plans_fit_the_chaos_topology_and_end_on_time() {
        for name in FaultPlan::builtin_names() {
            let plan = FaultPlan::builtin(name).expect(name);
            if let Some(max) = plan.max_node() {
                assert!((max.0 as usize) < CHAOS_NODES, "{name} references node {max}");
            }
            assert!(
                plan.ends_at() <= SimTime::from_secs(7200),
                "{name} must stop injecting within two hours"
            );
        }
    }

    #[test]
    fn partition_separates_island_from_everything_else() {
        let p = Partition::new(&[NodeId(0), NodeId(1)], SimTime::ZERO, SimTime::from_secs(10));
        let inside = PeerRef::Node(NodeId(0));
        let outside = PeerRef::Node(NodeId(5));
        let external = PeerRef::External(crate::messages::ConnId(3));
        assert!(p.separates(inside, outside));
        assert!(p.separates(inside, external));
        assert!(!p.separates(outside, external), "externals sit outside the island");
        assert!(!p.separates(inside, PeerRef::Node(NodeId(1))));
        assert!(p.is_active(SimTime::from_secs(5)));
        assert!(!p.is_active(SimTime::from_secs(10)));
    }

    #[test]
    fn link_faults_default_inactive() {
        let lf = LinkFaults::default();
        assert!(!lf.is_active(SimTime::ZERO));
        let lf = LinkFaults { loss_permille: 10, until: SimTime::from_secs(5), ..LinkFaults::default() };
        assert!(lf.is_active(SimTime::ZERO));
        assert!(!lf.is_active(SimTime::from_secs(5)));
    }
}

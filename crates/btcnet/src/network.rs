//! The event-driven Bitcoin network fabric.
//!
//! Owns the simulated full nodes, the gossip topology, message latencies,
//! Poisson block production, and the external connections through which
//! Bitcoin adapters participate.

use std::collections::{BTreeSet, HashMap};

use icbtc_bitcoin::pow::CompactTarget;
use icbtc_bitcoin::{BlockHeader, Network, Script, Transaction};
use icbtc_sim::obs::{FieldValue, Obs};
use icbtc_sim::{EventQueue, SimDuration, SimRng, SimTime};

use crate::faults::{FaultPlan, Misbehavior};
use crate::messages::{ConnId, Inventory, Message, NodeId, PeerRef, MAX_HEADERS_PER_MSG};
use crate::node::{FullNode, NodeBehavior};

/// Configuration for a simulated Bitcoin network.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Which Bitcoin network's consensus parameters to use.
    pub network: Network,
    /// Number of honest full nodes.
    pub honest_nodes: usize,
    /// Number of adversarial full nodes (appended after the honest ones).
    pub adversarial_nodes: usize,
    /// Gossip links per node.
    pub links_per_node: usize,
    /// Mean block interval of the Poisson production process.
    pub mean_block_interval: SimDuration,
    /// Mean one-way message latency.
    pub latency_mean: SimDuration,
    /// Latency standard deviation.
    pub latency_std: SimDuration,
    /// Max mempool transactions included per block template.
    pub template_tx_limit: usize,
}

impl NetworkConfig {
    /// A small regtest network suitable for unit and integration tests.
    pub fn regtest(honest_nodes: usize) -> NetworkConfig {
        NetworkConfig {
            network: Network::Regtest,
            honest_nodes,
            adversarial_nodes: 0,
            links_per_node: 3,
            mean_block_interval: SimDuration::from_secs(600),
            latency_mean: SimDuration::from_millis(80),
            latency_std: SimDuration::from_millis(30),
            template_tx_limit: 500,
        }
    }

    /// A mainnet-like network (scaled difficulty, 10-minute blocks).
    pub fn mainnet(honest_nodes: usize) -> NetworkConfig {
        NetworkConfig { network: Network::Mainnet, ..NetworkConfig::regtest(honest_nodes) }
    }
}

enum NetEvent {
    Deliver { to: PeerRef, from: PeerRef, msg: Message },
    MineBlock,
    PartitionStart(usize),
    PartitionHeal(usize),
    CrashNode(usize),
    RestartNode(usize),
    ChurnTick,
}

struct ExternalConn {
    target: NodeId,
    inbox: Vec<Message>,
    open: bool,
}

/// The simulated Bitcoin P2P network.
///
/// # Examples
///
/// ```
/// use icbtc_btcnet::network::{BtcNetwork, NetworkConfig};
/// use icbtc_sim::SimTime;
///
/// let mut net = BtcNetwork::new(NetworkConfig::regtest(4), 42);
/// // Run two simulated hours: ~12 blocks at the 10-minute cadence.
/// net.run_until(SimTime::from_secs(2 * 3600));
/// assert!(net.best_height() > 0);
/// ```
pub struct BtcNetwork {
    config: NetworkConfig,
    nodes: Vec<FullNode>,
    events: EventQueue<NetEvent>,
    external: HashMap<ConnId, ExternalConn>,
    next_conn: u32,
    rng: SimRng,
    now: SimTime,
    genesis_unix: u32,
    blocks_mined: u64,
    messages_delivered: u64,
    /// The installed fault schedule (empty by default).
    faults: FaultPlan,
    /// Nodes currently down (crash injected, restart pending).
    crashed: BTreeSet<NodeId>,
    /// Observability endpoint (metrics + trace), component `"btcnet"`.
    obs: Obs,
}

impl BtcNetwork {
    /// Builds the network: spawns nodes, wires a random gossip topology,
    /// seeds address books, and schedules the first block.
    pub fn new(config: NetworkConfig, seed: u64) -> BtcNetwork {
        let mut rng = SimRng::seed_from(seed);
        let total = config.honest_nodes + config.adversarial_nodes;
        assert!(total > 0, "network needs at least one node");
        let mut nodes: Vec<FullNode> = (0..total)
            .map(|i| {
                let behavior = if i < config.honest_nodes {
                    NodeBehavior::Honest
                } else {
                    NodeBehavior::Adversarial
                };
                FullNode::new(NodeId(i as u32), config.network, behavior)
            })
            .collect();

        // Random topology: each node links to `links_per_node` others, and
        // every link is symmetric. Collect the full link set first, then
        // assign each node its union of outgoing picks and incoming
        // back-links — assigning inside the sampling loop would let a later
        // node's assignment overwrite back-links recorded earlier, leaving
        // a node that nobody gossips to.
        let all_ids: Vec<NodeId> = (0..total as u32).map(NodeId).collect();
        let mut links: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); total];
        if total > 1 {
            for (i, set) in links.iter_mut().enumerate() {
                let picks = rng.sample_indices(total - 1, config.links_per_node);
                for p in picks {
                    // Skip self by shifting.
                    let target = if p >= i { p + 1 } else { p };
                    set.insert(target as u32);
                }
            }
            for i in 0..total {
                for target in links[i].clone() {
                    links[target as usize].insert(i as u32);
                }
            }
        }
        for (i, set) in links.iter().enumerate() {
            nodes[i].set_peers(set.iter().map(|&t| PeerRef::Node(NodeId(t))).collect());
            nodes[i].set_known_addrs(all_ids.iter().copied().filter(|a| a.0 as usize != i).collect());
        }

        let genesis_unix = config.network.genesis_block().header.time;
        let mut net = BtcNetwork {
            config,
            nodes,
            events: EventQueue::new(),
            external: HashMap::new(),
            next_conn: 0,
            rng,
            now: SimTime::ZERO,
            genesis_unix,
            blocks_mined: 0,
            messages_delivered: 0,
            faults: FaultPlan::default(),
            crashed: BTreeSet::new(),
            obs: Obs::new("btcnet"),
        };
        net.schedule_next_block();
        net
    }

    /// Read access to the network's observability endpoint.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable access to the network's observability endpoint.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    fn schedule_next_block(&mut self) {
        let wait = self.rng.exponential(self.config.mean_block_interval);
        self.events.push(self.now + wait, NetEvent::MineBlock);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Simulated Unix time corresponding to `at`.
    pub fn unix_time(&self, at: SimTime) -> u32 {
        self.genesis_unix + at.as_nanos().div_euclid(1_000_000_000) as u32 + 1
    }

    /// The network parameters in use.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// All node ids, honest first.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id()).collect()
    }

    /// Read access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &FullNode {
        &self.nodes[id.0 as usize]
    }

    /// Mutable access to a node (adversary orchestration, tests).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut FullNode {
        &mut self.nodes[id.0 as usize]
    }

    /// Best height across honest nodes.
    pub fn best_height(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.behavior() == NodeBehavior::Honest)
            .map(|n| n.chain().tip_height())
            .max()
            .unwrap_or(0)
    }

    /// Total blocks produced by the Poisson process so far.
    pub fn blocks_mined(&self) -> u64 {
        self.blocks_mined
    }

    /// Total messages delivered so far.
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Samples node addresses as a DNS seed would return them.
    pub fn dns_seed_sample(&mut self, count: usize) -> Vec<NodeId> {
        let total = self.nodes.len();
        self.rng
            .sample_indices(total, count)
            .into_iter()
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// Opens an external connection (an adapter link) to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn connect_external(&mut self, target: NodeId) -> ConnId {
        assert!((target.0 as usize) < self.nodes.len(), "unknown node");
        let conn = ConnId(self.next_conn);
        self.next_conn += 1;
        self.external.insert(conn, ExternalConn { target, inbox: Vec::new(), open: true });
        // The node treats the external link as a peer: it relays inv
        // announcements to it, exactly as Bitcoin nodes serve SPV peers.
        self.nodes[target.0 as usize].add_peer(PeerRef::External(conn));
        self.obs.metrics.inc("btcnet_external_connects_total");
        self.refresh_external_gauge();
        conn
    }

    fn refresh_external_gauge(&mut self) {
        let open = self.external.values().filter(|c| c.open).count();
        self.obs.metrics.set_gauge("btcnet_external_connections", open as i64);
    }

    /// Closes an external connection; any in-flight messages are dropped
    /// on arrival.
    pub fn disconnect_external(&mut self, conn: ConnId) {
        if let Some(c) = self.external.get_mut(&conn) {
            c.open = false;
            let target = c.target;
            self.nodes[target.0 as usize].remove_peer(PeerRef::External(conn));
            self.obs.metrics.inc("btcnet_external_disconnects_total");
            self.refresh_external_gauge();
        }
    }

    /// Returns `true` if the connection is open.
    pub fn external_is_open(&self, conn: ConnId) -> bool {
        self.external.get(&conn).map(|c| c.open).unwrap_or(false)
    }

    /// The node an external connection is attached to.
    pub fn external_target(&self, conn: ConnId) -> Option<NodeId> {
        self.external.get(&conn).filter(|c| c.open).map(|c| c.target)
    }

    /// Sends a message from an external connection to its node.
    pub fn send_external(&mut self, conn: ConnId, msg: Message) {
        let Some(c) = self.external.get(&conn) else { return };
        if !c.open {
            return;
        }
        let to = PeerRef::Node(c.target);
        self.schedule_delivery(PeerRef::External(conn), to, msg);
    }

    /// Drains messages delivered to an external connection.
    pub fn drain_external(&mut self, conn: ConnId) -> Vec<Message> {
        self.external.get_mut(&conn).map(|c| std::mem::take(&mut c.inbox)).unwrap_or_default()
    }

    /// Injects a transaction directly into a node's mempool (a local
    /// wallet submitting), relaying per protocol.
    pub fn submit_transaction(&mut self, node: NodeId, tx: Transaction) {
        self.obs.metrics.inc("btcnet_local_txs_total");
        let outgoing = self.nodes[node.0 as usize].accept_transaction(tx, None);
        self.route_all(PeerRef::Node(node), outgoing);
    }

    /// Injects a block as if `node` had mined it out of band (adversary
    /// fork delivery), relaying per protocol.
    pub fn submit_block(&mut self, node: NodeId, block: icbtc_bitcoin::Block) {
        let now_unix = self.unix_time(self.now);
        // Out-of-band injection is the adversary's tool; a block that does
        // not extend the node's current tip opens (or extends) a fork.
        let is_fork = block.header.prev_blockhash != self.nodes[node.0 as usize].chain().tip_hash();
        self.obs.metrics.inc("btcnet_adversary_blocks_total");
        if is_fork {
            self.obs.metrics.inc("btcnet_forks_observed_total");
        }
        self.obs.trace.event(
            "btcnet.adversary_block",
            self.now,
            &[
                ("node", FieldValue::U64(node.0 as u64)),
                ("fork", FieldValue::U64(is_fork as u64)),
            ],
        );
        let outgoing = self.nodes[node.0 as usize].accept_local_block(block, now_unix);
        self.route_all(PeerRef::Node(node), outgoing);
    }

    fn sample_latency(&mut self) -> SimDuration {
        self.rng
            .normal(self.config.latency_mean, self.config.latency_std)
            .max(SimDuration::from_micros(100))
    }

    fn route_all(&mut self, from: PeerRef, outgoing: Vec<(PeerRef, Message)>) {
        for (to, msg) in outgoing {
            self.schedule_delivery(from, to, msg);
        }
    }

    /// Installs (replaces) the fault schedule. Scheduled transitions in
    /// the past fire at the current simulated time — partitions, crashes
    /// and churn never move the clock backwards.
    ///
    /// # Panics
    ///
    /// Panics if the plan references a node id outside the network.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if let Some(max) = plan.max_node() {
            assert!((max.0 as usize) < self.nodes.len(), "fault plan references unknown {max}");
        }
        for (i, p) in plan.partitions.iter().enumerate() {
            self.events.push(p.start.max(self.now), NetEvent::PartitionStart(i));
            self.events.push(p.heal_at.max(self.now), NetEvent::PartitionHeal(i));
        }
        for (i, c) in plan.crashes.iter().enumerate() {
            self.events.push(c.at.max(self.now), NetEvent::CrashNode(i));
            self.events.push(c.restart_at.max(self.now), NetEvent::RestartNode(i));
        }
        if let Some(churn) = &plan.churn {
            self.events.push(churn.first_at.max(self.now), NetEvent::ChurnTick);
        }
        self.obs.trace.event(
            "btcnet.fault_plan_installed",
            self.now,
            &[
                ("partitions", FieldValue::U64(plan.partitions.len() as u64)),
                ("crashes", FieldValue::U64(plan.crashes.len() as u64)),
                ("misbehaving", FieldValue::U64(plan.misbehavior.len() as u64)),
            ],
        );
        self.faults = plan;
    }

    /// The installed fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Nodes currently crashed.
    pub fn crashed_nodes(&self) -> &BTreeSet<NodeId> {
        &self.crashed
    }

    /// Whether any scheduled partition is up right now.
    pub fn partition_active(&self) -> bool {
        self.faults.partitions.iter().any(|p| p.is_active(self.now))
    }

    fn count_fault(&mut self, kind: &'static str) {
        self.obs.metrics.inc_with("btcnet_faults_injected_total", &[("kind", kind)]);
    }

    fn refresh_fault_gauges(&mut self) {
        let active = self.faults.partitions.iter().filter(|p| p.is_active(self.now)).count();
        self.obs.metrics.set_gauge("btcnet_partition_active", active as i64);
        self.obs.metrics.set_gauge("btcnet_crashed_nodes", self.crashed.len() as i64);
    }

    /// The single scheduling chokepoint all traffic funnels through:
    /// link faults (loss, delay, jitter, reordering, duplication) are
    /// applied here, at send time, with a fixed RNG draw order so the
    /// schedule is a pure function of (seed, plan).
    fn schedule_delivery(&mut self, from: PeerRef, to: PeerRef, msg: Message) {
        // Every outbound message is encoded exactly once here; nested
        // under `event_dispatch` when sent while handling a delivery.
        let encode = self.obs.prof.enter("msg_encode");
        self.obs.prof.add(msg.modeled_cost());
        self.obs.prof.exit(encode);
        let mut delay = self.sample_latency();
        let link = self.faults.link;
        if link.is_active(self.now) {
            if link.loss_permille > 0 && self.rng.below(1000) < u64::from(link.loss_permille) {
                self.count_fault("loss");
                return;
            }
            if link.extra_delay > SimDuration::ZERO || link.jitter > SimDuration::ZERO {
                delay += link.extra_delay;
                if link.jitter > SimDuration::ZERO {
                    delay += SimDuration::from_nanos(self.rng.below(link.jitter.as_nanos()));
                }
                self.count_fault("delay");
            }
            if link.reorder_permille > 0 && self.rng.below(1000) < u64::from(link.reorder_permille)
            {
                delay += link.reorder_hold;
                self.count_fault("reorder");
            }
            if link.duplicate_permille > 0
                && self.rng.below(1000) < u64::from(link.duplicate_permille)
            {
                let extra = self.sample_latency();
                self.count_fault("duplicate");
                self.events.push(
                    self.now + delay + extra,
                    NetEvent::Deliver { to, from, msg: msg.clone() },
                );
            }
        }
        self.events.push(self.now + delay, NetEvent::Deliver { to, from, msg });
    }

    /// Delivery-time drop checks: crashed receivers and active
    /// partitions. Checked on arrival (not send) so a partition coming up
    /// mid-flight also severs already-queued traffic.
    fn fault_blocks_delivery(&mut self, from: PeerRef, to: PeerRef) -> bool {
        if let PeerRef::Node(id) = to {
            if self.crashed.contains(&id) {
                self.count_fault("crash_drop");
                return true;
            }
        }
        let severed = self
            .faults
            .partitions
            .iter()
            .any(|p| p.is_active(self.now) && p.separates(from, to));
        if severed {
            self.count_fault("partition_drop");
            return true;
        }
        false
    }

    /// The misbehaviour mode `node` applies to traffic from `from`, if
    /// any. Only external (adapter) endpoints are targeted: the node
    /// stays honest toward its gossip peers so the honest chain is
    /// unaffected.
    fn misbehavior_for(&self, node: NodeId, from: PeerRef) -> Option<Misbehavior> {
        if !matches!(from, PeerRef::External(_)) {
            return None;
        }
        self.faults.misbehavior.iter().find(|(n, _)| *n == node).map(|(_, m)| *m)
    }

    /// Builds the malicious reply for an intercepted request. `None`
    /// means "not intercepted — handle honestly".
    fn misbehave(
        &mut self,
        node: NodeId,
        kind: Misbehavior,
        from: PeerRef,
        msg: &Message,
    ) -> Option<Vec<(PeerRef, Message)>> {
        match (kind, msg) {
            (Misbehavior::Stall, Message::GetHeaders { .. } | Message::GetData(_)) => {
                Some(Vec::new())
            }
            (Misbehavior::MalformedHeaders, Message::GetHeaders { .. }) => {
                let headers = self.forged_invalid_headers(8);
                Some(vec![(from, Message::Headers(headers))])
            }
            (Misbehavior::Oversized, Message::GetHeaders { .. }) => {
                let h = self.config.network.genesis_block().header;
                Some(vec![(from, Message::Headers(vec![h; MAX_HEADERS_PER_MSG + 1]))])
            }
            (
                Misbehavior::InvalidPowBlocks | Misbehavior::TruncatedBlocks,
                Message::GetData(items),
            ) => {
                let mut out = Vec::new();
                let mut missing = Vec::new();
                for item in items {
                    match item {
                        Inventory::Block(hash) => {
                            match self.nodes[node.0 as usize].chain().block(hash) {
                                Some(block) => {
                                    let mut bad = block.clone();
                                    if kind == Misbehavior::TruncatedBlocks {
                                        bad.txdata.clear();
                                    } else {
                                        while bad.header.meets_pow_target() {
                                            bad.header.nonce = bad.header.nonce.wrapping_add(1);
                                        }
                                    }
                                    out.push((from, Message::BlockMsg(Box::new(bad))));
                                }
                                None => missing.push(*item),
                            }
                        }
                        Inventory::Transaction(_) => missing.push(*item),
                    }
                }
                if !missing.is_empty() {
                    out.push((from, Message::NotFound(missing)));
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// Headers that fail validation deterministically: they extend the
    /// genesis block (always known to any peer) but carry wrong
    /// difficulty bits, which the header pipeline checks *before* the
    /// proof-of-work lottery — so rejection does not depend on how easy
    /// the simulated target is to hit by accident.
    fn forged_invalid_headers(&mut self, count: usize) -> Vec<BlockHeader> {
        let genesis = self.config.network.genesis_block().header;
        let bad_bits = CompactTarget::from_consensus(genesis.bits.to_consensus() ^ 1);
        let time = self.unix_time(self.now);
        (0..count)
            .map(|_| BlockHeader {
                version: genesis.version,
                prev_blockhash: genesis.block_hash(),
                merkle_root: genesis.merkle_root,
                time,
                bits: bad_bits,
                nonce: self.rng.next_u32(),
            })
            .collect()
    }

    fn churn_tick(&mut self) {
        let Some(churn) = self.faults.churn else { return };
        if self.now > churn.until {
            return;
        }
        // Sort the open connections: HashMap iteration order must never
        // influence which connection the RNG closes.
        let mut open: Vec<ConnId> =
            self.external.iter().filter(|(_, c)| c.open).map(|(id, _)| *id).collect();
        open.sort();
        for _ in 0..churn.closes_per_tick {
            if open.is_empty() {
                break;
            }
            let victim = open.swap_remove(self.rng.index(open.len()));
            self.count_fault("churn_close");
            self.obs.trace.event(
                "btcnet.churn_close",
                self.now,
                &[("conn", FieldValue::U64(victim.0 as u64))],
            );
            self.disconnect_external(victim);
        }
        let next = self.now + churn.period;
        if next <= churn.until {
            self.events.push(next, NetEvent::ChurnTick);
        }
    }

    fn crash_node(&mut self, index: usize) {
        let Some(crash) = self.faults.crashes.get(index).copied() else { return };
        self.crashed.insert(crash.node);
        self.count_fault("crash");
        self.obs.trace.event(
            "btcnet.node_crash",
            self.now,
            &[
                ("node", FieldValue::U64(crash.node.0 as u64)),
                ("wipe", FieldValue::U64(crash.wipe_state as u64)),
            ],
        );
        self.refresh_fault_gauges();
    }

    fn restart_node(&mut self, index: usize) {
        let Some(crash) = self.faults.crashes.get(index).copied() else { return };
        if !self.crashed.remove(&crash.node) {
            return;
        }
        let node = &mut self.nodes[crash.node.0 as usize];
        if crash.wipe_state {
            node.reset_chain();
        }
        let requests = node.startup_sync_requests();
        self.count_fault("restart");
        self.obs.trace.event(
            "btcnet.node_restart",
            self.now,
            &[
                ("node", FieldValue::U64(crash.node.0 as u64)),
                ("wipe", FieldValue::U64(crash.wipe_state as u64)),
            ],
        );
        self.refresh_fault_gauges();
        self.route_all(PeerRef::Node(crash.node), requests);
    }

    /// Advances the simulation, processing all events up to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((at, event)) = self.events.pop_before(deadline) {
            self.now = at;
            match event {
                NetEvent::MineBlock => {
                    self.mine_one_block();
                    self.schedule_next_block();
                }
                NetEvent::Deliver { to, from, msg } => {
                    if self.fault_blocks_delivery(from, to) {
                        continue;
                    }
                    self.messages_delivered += 1;
                    self.obs.metrics.inc_with("btcnet_messages_total", &[("type", msg.kind())]);
                    // Profile the delivery: decode cost is the message's
                    // modeled size; replies encoded while handling nest
                    // under this frame via `schedule_delivery`.
                    let dispatch = self.obs.prof.enter("event_dispatch");
                    self.obs.prof.add(1);
                    let decode = self.obs.prof.enter("msg_decode");
                    self.obs.prof.add(msg.modeled_cost());
                    self.obs.prof.exit(decode);
                    match to {
                        PeerRef::Node(id) => {
                            let intercepted = match self.misbehavior_for(id, from) {
                                Some(kind) => self.misbehave(id, kind, from, &msg),
                                None => None,
                            };
                            match intercepted {
                                Some(replies) => {
                                    self.count_fault("misbehavior");
                                    self.route_all(to, replies);
                                }
                                None => {
                                    let now_unix = self.unix_time(self.now);
                                    let outgoing = self.nodes[id.0 as usize]
                                        .handle_message(from, msg, now_unix);
                                    self.route_all(to, outgoing);
                                }
                            }
                        }
                        PeerRef::External(conn) => {
                            if let Some(c) = self.external.get_mut(&conn) {
                                if c.open {
                                    c.inbox.push(msg);
                                }
                            }
                        }
                    }
                    self.obs.prof.exit(dispatch);
                }
                NetEvent::PartitionStart(i) => {
                    if let Some(p) = self.faults.partitions.get(i) {
                        let size = p.island.len() as u64;
                        self.count_fault("partition_start");
                        self.obs.trace.event(
                            "btcnet.partition_start",
                            self.now,
                            &[("island", FieldValue::U64(size))],
                        );
                    }
                    self.refresh_fault_gauges();
                }
                NetEvent::PartitionHeal(i) => {
                    if self.faults.partitions.get(i).is_some() {
                        self.count_fault("partition_heal");
                        self.obs.trace.event("btcnet.partition_heal", self.now, &[]);
                    }
                    self.refresh_fault_gauges();
                }
                NetEvent::CrashNode(i) => self.crash_node(i),
                NetEvent::RestartNode(i) => self.restart_node(i),
                NetEvent::ChurnTick => self.churn_tick(),
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Forces `node` to mine one block immediately, paying the coinbase
    /// to `payout_script` and including its mempool — deterministic block
    /// production for wallets and tests (the Poisson process continues
    /// independently).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn mine_block_paying(
        &mut self,
        node: NodeId,
        payout_script: Script,
    ) -> icbtc_bitcoin::BlockHash {
        let unix = self.unix_time(self.now);
        let limit = self.config.template_tx_limit;
        let extra_nonce = self.rng.next_u64();
        let (hash, outgoing) = {
            let node_ref = &mut self.nodes[node.0 as usize];
            let txs = node_ref.take_template_transactions(limit);
            let block = crate::miner::mine_block_at(
                node_ref.chain(),
                node_ref.chain().tip_hash(),
                txs,
                payout_script,
                extra_nonce,
                unix,
            );
            let hash = block.block_hash();
            let outgoing = node_ref.accept_local_block(block, unix);
            (hash, outgoing)
        };
        self.blocks_mined += 1;
        self.record_block_mined(node);
        self.route_all(PeerRef::Node(node), outgoing);
        hash
    }

    fn record_block_mined(&mut self, miner: NodeId) {
        let height = self.nodes[miner.0 as usize].chain().tip_height();
        self.obs.metrics.inc("btcnet_blocks_mined_total");
        self.obs.metrics.set_gauge("btcnet_best_height", self.best_height() as i64);
        self.obs.trace.event(
            "btcnet.block_mined",
            self.now,
            &[
                ("miner", FieldValue::U64(miner.0 as u64)),
                ("height", FieldValue::U64(height)),
            ],
        );
    }

    fn mine_one_block(&mut self) {
        // Winner selection: uniform over honest nodes (adversarial hash
        // power is modelled separately by the adversary module).
        let honest = self.config.honest_nodes;
        if honest == 0 {
            return;
        }
        let winner = NodeId(self.rng.index(honest) as u32);
        if self.crashed.contains(&winner) {
            // The winner is down; its hash power is simply absent this
            // round (the Poisson process keeps ticking).
            self.count_fault("miner_skip");
            return;
        }
        let unix = self.unix_time(self.now);
        let limit = self.config.template_tx_limit;
        let (block, outgoing) = {
            let node = &mut self.nodes[winner.0 as usize];
            let txs = node.take_template_transactions(limit);
            let block = crate::miner::mine_block_at(
                node.chain(),
                node.chain().tip_hash(),
                txs,
                Script::new_op_return(format!("miner-{}", winner.0).as_bytes()),
                self.rng.next_u64(),
                unix,
            );
            let outgoing = node.accept_local_block(block.clone(), unix);
            (block, outgoing)
        };
        let _ = block;
        self.blocks_mined += 1;
        self.record_block_mined(winner);
        self.route_all(PeerRef::Node(winner), outgoing);
    }
}

impl std::fmt::Debug for BtcNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BtcNetwork")
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("blocks_mined", &self.blocks_mined)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Inventory;

    #[test]
    fn blocks_propagate_to_all_honest_nodes() {
        let mut net = BtcNetwork::new(NetworkConfig::regtest(6), 1);
        net.run_until(SimTime::from_secs(4 * 3600));
        assert!(net.blocks_mined() > 5, "expected several blocks in 4h");
        let best = net.best_height();
        // Give gossip time to settle.
        net.run_until(net.now() + SimDuration::from_secs(60));
        for id in net.node_ids() {
            assert!(
                net.node(id).chain().tip_height() + 1 >= best,
                "node {id} lags: {} vs {best}",
                net.node(id).chain().tip_height()
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut net = BtcNetwork::new(NetworkConfig::regtest(4), seed);
            net.run_until(SimTime::from_secs(2 * 3600));
            (net.blocks_mined(), net.node(NodeId(0)).chain().tip_hash())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn poisson_rate_is_roughly_calibrated() {
        let mut config = NetworkConfig::regtest(3);
        config.mean_block_interval = SimDuration::from_secs(60);
        let mut net = BtcNetwork::new(config, 3);
        net.run_until(SimTime::from_secs(50 * 60 * 60));
        let blocks = net.blocks_mined() as f64;
        let expected = 50.0 * 60.0;
        assert!(
            (blocks / expected - 1.0).abs() < 0.15,
            "got {blocks} blocks, expected ~{expected}"
        );
    }

    #[test]
    fn transactions_get_mined() {
        let mut net = BtcNetwork::new(NetworkConfig::regtest(4), 5);
        let tx = Transaction {
            version: 2,
            inputs: vec![icbtc_bitcoin::TxIn::new(icbtc_bitcoin::OutPoint::new(
                icbtc_bitcoin::Txid([9; 32]),
                0,
            ))],
            outputs: vec![icbtc_bitcoin::TxOut::new(
                icbtc_bitcoin::Amount::from_sat(700),
                Script::new_p2wpkh(&[1; 20]),
            )],
            lock_time: 0,
        };
        let txid = tx.txid();
        net.submit_transaction(NodeId(0), tx);
        net.run_until(SimTime::from_secs(12 * 3600));
        // The tx must appear in some block on the best chain of node 0.
        let chain = net.node(NodeId(0)).chain();
        let mined = chain
            .best_chain_hashes()
            .iter()
            .filter_map(|h| chain.block(h))
            .any(|b| b.txdata.iter().any(|t| t.txid() == txid));
        assert!(mined, "transaction was not mined within 12 simulated hours");
    }

    #[test]
    fn external_connection_flow() {
        let mut net = BtcNetwork::new(NetworkConfig::regtest(3), 11);
        net.run_until(SimTime::from_secs(2 * 3600));
        let conn = net.connect_external(NodeId(0));
        assert!(net.external_is_open(conn));
        assert_eq!(net.external_target(conn), Some(NodeId(0)));

        net.send_external(conn, Message::GetHeaders {
            locator: vec![Network::Regtest.genesis_hash()],
            stop: icbtc_bitcoin::BlockHash::ZERO,
        });
        net.run_until(net.now() + SimDuration::from_secs(5));
        let inbox = net.drain_external(conn);
        assert_eq!(inbox.len(), 1);
        match &inbox[0] {
            Message::Headers(h) => assert_eq!(h.len() as u64, net.node(NodeId(0)).chain().tip_height()),
            other => panic!("expected headers, got {}", other.kind()),
        }

        // Fetch a block over the same link.
        let tip = net.node(NodeId(0)).chain().tip_hash();
        net.send_external(conn, Message::GetData(vec![Inventory::Block(tip)]));
        net.run_until(net.now() + SimDuration::from_secs(5));
        let inbox = net.drain_external(conn);
        assert!(matches!(inbox[0], Message::BlockMsg(_)));

        // After disconnect, nothing is delivered.
        net.disconnect_external(conn);
        net.send_external(conn, Message::Ping(1));
        net.run_until(net.now() + SimDuration::from_secs(5));
        assert!(net.drain_external(conn).is_empty());
    }

    #[test]
    fn dns_seed_sampling() {
        let mut net = BtcNetwork::new(NetworkConfig::regtest(10), 2);
        let sample = net.dns_seed_sample(4);
        assert_eq!(sample.len(), 4);
        let mut unique = sample.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 4);
        // Asking for more than exist returns all.
        assert_eq!(net.dns_seed_sample(50).len(), 10);
    }

    #[test]
    fn unix_time_mapping() {
        let net = BtcNetwork::new(NetworkConfig::regtest(1), 1);
        let genesis_time = Network::Regtest.genesis_block().header.time;
        assert!(net.unix_time(SimTime::ZERO) > genesis_time);
        assert_eq!(
            net.unix_time(SimTime::from_secs(100)) - net.unix_time(SimTime::ZERO),
            100
        );
    }
}

//! The simulated Bitcoin P2P message vocabulary.
//!
//! A faithful subset of the Bitcoin wire protocol — the messages the
//! paper's Bitcoin adapter actually exchanges with Bitcoin nodes
//! (§III-B): address gossip for discovery, header synchronization,
//! block download, and transaction relay.

use icbtc_bitcoin::{Block, BlockHash, BlockHeader, Transaction, Txid};

/// Identifier of a simulated Bitcoin full node (its "IP address").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "btc-node-{}", self.0)
    }
}

/// Identifier of an external connection into the network (a Bitcoin
/// adapter's link).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

impl std::fmt::Display for ConnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conn-{}", self.0)
    }
}

/// A message endpoint: an in-network node or an external adapter link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PeerRef {
    /// A simulated full node.
    Node(NodeId),
    /// An external (adapter) connection.
    External(ConnId),
}

impl std::fmt::Display for PeerRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerRef::Node(id) => write!(f, "{id}"),
            PeerRef::External(id) => write!(f, "{id}"),
        }
    }
}

/// An `inv`/`getdata` inventory entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inventory {
    /// A block by hash.
    Block(BlockHash),
    /// A transaction by txid.
    Transaction(Txid),
}

/// A P2P protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Request known peer addresses.
    GetAddr,
    /// Share known peer addresses.
    Addr(Vec<NodeId>),
    /// Request headers after the locator, up to a stop hash (zero = none).
    GetHeaders {
        /// Exponentially spaced hashes of the requester's best chain.
        locator: Vec<BlockHash>,
        /// Hash to stop at, or [`BlockHash::ZERO`] for "as many as allowed".
        stop: BlockHash,
    },
    /// Headers in response to `GetHeaders` (max 2000, as in Bitcoin).
    Headers(Vec<BlockHeader>),
    /// Announce inventory.
    Inv(Vec<Inventory>),
    /// Request announced inventory.
    GetData(Vec<Inventory>),
    /// A full block.
    BlockMsg(Box<Block>),
    /// A transaction.
    TxMsg(Transaction),
    /// Requested inventory is unavailable.
    NotFound(Vec<Inventory>),
    /// Liveness probe.
    Ping(u64),
    /// Liveness reply.
    Pong(u64),
}

impl Message {
    /// Returns `true` if the message violates the protocol's size caps —
    /// a well-behaved peer never sends one; the adapter scores and bans
    /// senders instead of processing the payload.
    pub fn is_oversized(&self) -> bool {
        match self {
            Message::Headers(h) => h.len() > MAX_HEADERS_PER_MSG,
            Message::Addr(a) => a.len() > MAX_ADDR_PER_MSG,
            Message::Inv(i) | Message::GetData(i) | Message::NotFound(i) => {
                i.len() > MAX_INV_PER_MSG
            }
            _ => false,
        }
    }

    /// Modeled service cost of encoding or decoding this message, in
    /// abstract work units roughly proportional to wire size. Drives the
    /// btcnet/adapter profiler frames; purely an observability model,
    /// never part of protocol behavior.
    pub fn modeled_cost(&self) -> u64 {
        match self {
            Message::GetAddr => 1,
            Message::Addr(a) => 1 + a.len() as u64,
            Message::GetHeaders { locator, .. } => 1 + locator.len() as u64,
            Message::Headers(h) => 1 + 80 * h.len() as u64,
            Message::Inv(i) | Message::GetData(i) | Message::NotFound(i) => {
                1 + 36 * i.len() as u64
            }
            Message::BlockMsg(b) => {
                80 + b.txdata.iter().map(|t| t.vsize() as u64).sum::<u64>()
            }
            Message::TxMsg(t) => t.vsize() as u64,
            Message::Ping(_) | Message::Pong(_) => 1,
        }
    }

    /// Short tag for tracing and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::GetAddr => "getaddr",
            Message::Addr(_) => "addr",
            Message::GetHeaders { .. } => "getheaders",
            Message::Headers(_) => "headers",
            Message::Inv(_) => "inv",
            Message::GetData(_) => "getdata",
            Message::BlockMsg(_) => "block",
            Message::TxMsg(_) => "tx",
            Message::NotFound(_) => "notfound",
            Message::Ping(_) => "ping",
            Message::Pong(_) => "pong",
        }
    }
}

/// Maximum headers per `headers` message, as in the Bitcoin protocol.
pub const MAX_HEADERS_PER_MSG: usize = 2000;

/// Maximum addresses per `addr` message.
pub const MAX_ADDR_PER_MSG: usize = 1000;

/// Maximum inventory entries per `inv`/`getdata`/`notfound` message, as
/// in the Bitcoin protocol.
pub const MAX_INV_PER_MSG: usize = 50_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_nonempty() {
        let msgs = [
            Message::GetAddr,
            Message::Addr(vec![]),
            Message::GetHeaders { locator: vec![], stop: BlockHash::ZERO },
            Message::Headers(vec![]),
            Message::Inv(vec![]),
            Message::GetData(vec![]),
            Message::TxMsg(Transaction::default()),
            Message::NotFound(vec![]),
            Message::Ping(0),
            Message::Pong(0),
        ];
        let kinds: std::collections::HashSet<&str> = msgs.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds.len(), msgs.len());
    }

    #[test]
    fn oversized_detection() {
        assert!(!Message::Headers(vec![]).is_oversized());
        let h = icbtc_bitcoin::Network::Regtest.genesis_block().header;
        assert!(!Message::Headers(vec![h; MAX_HEADERS_PER_MSG]).is_oversized());
        assert!(Message::Headers(vec![h; MAX_HEADERS_PER_MSG + 1]).is_oversized());
        assert!(Message::Addr(vec![NodeId(0); MAX_ADDR_PER_MSG + 1]).is_oversized());
        let item = Inventory::Block(BlockHash::ZERO);
        assert!(Message::Inv(vec![item; MAX_INV_PER_MSG + 1]).is_oversized());
        assert!(!Message::Ping(0).is_oversized());
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "btc-node-3");
        assert_eq!(ConnId(9).to_string(), "conn-9");
        assert_eq!(PeerRef::Node(NodeId(3)).to_string(), "btc-node-3");
        assert_eq!(PeerRef::External(ConnId(1)).to_string(), "conn-1");
    }
}

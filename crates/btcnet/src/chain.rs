//! Per-node chain state: header tree, block store, and validation.
//!
//! Every simulated full node keeps the complete directed tree of valid
//! headers it has seen (forks included — exactly the structure the paper's
//! §II-B defines), a store of full blocks, and tracks the tip with the
//! greatest accumulated work.

use std::collections::HashMap;

use icbtc_bitcoin::pow::{median_time_past, retarget, CompactTarget, Work};
use icbtc_bitcoin::{Block, BlockHash, BlockHeader, Network};

/// A header accepted into the tree, with its derived chain position.
#[derive(Clone, Copy, Debug)]
pub struct StoredHeader {
    /// The header itself.
    pub header: BlockHeader,
    /// Height above the genesis block.
    pub height: u64,
    /// Total work from genesis to this header inclusive.
    pub chain_work: Work,
}

/// Why a header or block was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The predecessor is not in the tree.
    OrphanHeader(BlockHash),
    /// The header hash does not meet its stated target.
    BadProofOfWork,
    /// The `bits` field disagrees with the retarget schedule.
    BadDifficultyBits {
        /// What the schedule requires.
        expected: CompactTarget,
        /// What the header carried.
        actual: CompactTarget,
    },
    /// Timestamp at or below the median of the previous 11 blocks.
    TimestampTooOld,
    /// Timestamp too far in the future relative to simulated now.
    TimestampTooNew,
    /// The block body is malformed (coinbase/Merkle rules).
    MalformedBlock,
    /// The block's header was never accepted.
    UnknownHeader(BlockHash),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::OrphanHeader(h) => write!(f, "orphan header: unknown parent {h}"),
            ValidationError::BadProofOfWork => write!(f, "header hash exceeds target"),
            ValidationError::BadDifficultyBits { expected, actual } => {
                write!(f, "wrong difficulty bits: expected {expected}, got {actual}")
            }
            ValidationError::TimestampTooOld => write!(f, "timestamp not above median time past"),
            ValidationError::TimestampTooNew => write!(f, "timestamp too far in the future"),
            ValidationError::MalformedBlock => write!(f, "malformed block body"),
            ValidationError::UnknownHeader(h) => write!(f, "block for unknown header {h}"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Maximum allowed clock skew for header timestamps (Bitcoin's rule).
pub const MAX_FUTURE_SKEW_SECS: u32 = 2 * 60 * 60;

/// The header tree plus block store of one node.
///
/// # Examples
///
/// ```
/// use icbtc_btcnet::chain::ChainStore;
/// use icbtc_bitcoin::Network;
///
/// let chain = ChainStore::new(Network::Regtest);
/// assert_eq!(chain.tip_height(), 0);
/// assert_eq!(chain.tip_hash(), Network::Regtest.genesis_hash());
/// ```
#[derive(Clone, Debug)]
pub struct ChainStore {
    network: Network,
    headers: HashMap<BlockHash, StoredHeader>,
    children: HashMap<BlockHash, Vec<BlockHash>>,
    blocks: HashMap<BlockHash, Block>,
    tip: BlockHash,
}

impl ChainStore {
    /// Creates a store seeded with the network's genesis block.
    pub fn new(network: Network) -> ChainStore {
        let genesis = network.genesis_block().clone();
        let hash = genesis.block_hash();
        let stored = StoredHeader {
            header: genesis.header,
            height: 0,
            chain_work: genesis.header.work(),
        };
        let mut headers = HashMap::new();
        headers.insert(hash, stored);
        let mut blocks = HashMap::new();
        blocks.insert(hash, genesis);
        ChainStore { network, headers, children: HashMap::new(), blocks, tip: hash }
    }

    /// The network this chain belongs to.
    pub fn network(&self) -> Network {
        self.network
    }

    /// Hash of the best (most-work) tip.
    pub fn tip_hash(&self) -> BlockHash {
        self.tip
    }

    /// Height of the best tip.
    pub fn tip_height(&self) -> u64 {
        self.headers[&self.tip].height
    }

    /// The stored entry for the best tip.
    pub fn tip(&self) -> &StoredHeader {
        &self.headers[&self.tip]
    }

    /// Looks up a stored header.
    pub fn header(&self, hash: &BlockHash) -> Option<&StoredHeader> {
        self.headers.get(hash)
    }

    /// Looks up a stored block.
    pub fn block(&self, hash: &BlockHash) -> Option<&Block> {
        self.blocks.get(hash)
    }

    /// Returns `true` if the full block is stored.
    pub fn has_block(&self, hash: &BlockHash) -> bool {
        self.blocks.contains_key(hash)
    }

    /// Number of headers in the tree (including genesis).
    pub fn header_count(&self) -> usize {
        self.headers.len()
    }

    /// Direct children of a header in the tree.
    pub fn children(&self, hash: &BlockHash) -> &[BlockHash] {
        self.children.get(hash).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The difficulty bits required for a block extending `prev`.
    pub fn expected_bits(&self, prev: &BlockHash) -> Option<CompactTarget> {
        let params = self.network.params();
        let prev_stored = self.headers.get(prev)?;
        let next_height = prev_stored.height + 1;
        if next_height % params.retarget_interval as u64 != 0 {
            return Some(prev_stored.header.bits);
        }
        // Retarget boundary: span the previous interval.
        let mut cursor = *prev_stored;
        for _ in 0..params.retarget_interval - 1 {
            let parent = self.headers.get(&cursor.header.prev_blockhash)?;
            cursor = *parent;
        }
        let actual = prev_stored.header.time.saturating_sub(cursor.header.time) as u64;
        Some(retarget(
            prev_stored.header.bits,
            actual.max(1),
            params.expected_timespan_secs(),
            params.pow_limit,
        ))
    }

    /// Median time past of the 11 headers ending at `hash`.
    pub fn median_time_past(&self, hash: &BlockHash) -> Option<u32> {
        let mut timestamps = Vec::with_capacity(11);
        let mut cursor = *self.headers.get(hash)?;
        loop {
            timestamps.push(cursor.header.time);
            if timestamps.len() == 11 || cursor.height == 0 {
                break;
            }
            cursor = *self.headers.get(&cursor.header.prev_blockhash)?;
        }
        timestamps.reverse();
        Some(median_time_past(&timestamps))
    }

    /// Validates a header against the tree: known parent, correct
    /// difficulty bits, proof of work, and timestamp window. This is the
    /// check the paper's adapter performs on every downloaded header
    /// (§III-B).
    ///
    /// # Errors
    ///
    /// Returns the specific [`ValidationError`].
    pub fn validate_header(
        &self,
        header: &BlockHeader,
        now_unix: u32,
    ) -> Result<(), ValidationError> {
        let prev = header.prev_blockhash;
        if !self.headers.contains_key(&prev) {
            return Err(ValidationError::OrphanHeader(prev));
        }
        let expected = self.expected_bits(&prev).expect("parent exists");
        if header.bits != expected {
            return Err(ValidationError::BadDifficultyBits { expected, actual: header.bits });
        }
        if !header.meets_pow_target() {
            return Err(ValidationError::BadProofOfWork);
        }
        let mtp = self.median_time_past(&prev).expect("parent exists");
        if header.time <= mtp {
            return Err(ValidationError::TimestampTooOld);
        }
        if header.time > now_unix.saturating_add(MAX_FUTURE_SKEW_SECS) {
            return Err(ValidationError::TimestampTooNew);
        }
        Ok(())
    }

    /// Accepts a validated header into the tree, updating the best tip by
    /// accumulated work. Returns `true` if the header was new.
    ///
    /// # Errors
    ///
    /// Re-runs validation; see [`ChainStore::validate_header`].
    pub fn accept_header(
        &mut self,
        header: BlockHeader,
        now_unix: u32,
    ) -> Result<bool, ValidationError> {
        let hash = header.block_hash();
        if self.headers.contains_key(&hash) {
            return Ok(false);
        }
        self.validate_header(&header, now_unix)?;
        let parent = self.headers[&header.prev_blockhash];
        let stored = StoredHeader {
            header,
            height: parent.height + 1,
            chain_work: parent.chain_work + header.work(),
        };
        self.headers.insert(hash, stored);
        self.children.entry(header.prev_blockhash).or_default().push(hash);
        if stored.chain_work > self.headers[&self.tip].chain_work {
            self.tip = hash;
        }
        Ok(true)
    }

    /// Accepts a full block: its header must validate (or already be
    /// known) and the body must be well-formed. Returns `true` if the
    /// block body was new.
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError::MalformedBlock`] for bad bodies and
    /// header errors otherwise.
    pub fn accept_block(&mut self, block: Block, now_unix: u32) -> Result<bool, ValidationError> {
        if !block.is_well_formed() {
            return Err(ValidationError::MalformedBlock);
        }
        let hash = block.block_hash();
        self.accept_header(block.header, now_unix)?;
        Ok(self.blocks.insert(hash, block).is_none())
    }

    /// Walks the best chain from the tip back to genesis, newest first.
    pub fn best_chain_hashes(&self) -> Vec<BlockHash> {
        let mut out = Vec::with_capacity(self.tip_height() as usize + 1);
        let mut cursor = self.tip;
        loop {
            out.push(cursor);
            let stored = &self.headers[&cursor];
            if stored.height == 0 {
                break;
            }
            cursor = stored.header.prev_blockhash;
        }
        out
    }

    /// Returns the hash at `height` on the best chain, if within range.
    pub fn best_chain_hash_at(&self, height: u64) -> Option<BlockHash> {
        let tip_height = self.tip_height();
        if height > tip_height {
            return None;
        }
        let mut cursor = self.tip;
        for _ in 0..(tip_height - height) {
            cursor = self.headers[&cursor].header.prev_blockhash;
        }
        Some(cursor)
    }

    /// Builds a block-locator (exponentially spaced hashes from the tip),
    /// as used in `getheaders`.
    pub fn locator(&self) -> Vec<BlockHash> {
        let mut out = Vec::new();
        let mut step = 1u64;
        let mut height = self.tip_height() as i64;
        while height > 0 {
            out.push(self.best_chain_hash_at(height as u64).expect("height in range"));
            if out.len() >= 10 {
                step *= 2;
            }
            height -= step as i64;
        }
        out.push(self.network.genesis_hash());
        out
    }

    /// Answers a `getheaders` request: up to `max` headers on the best
    /// chain after the first locator hash found on it.
    pub fn headers_after(&self, locator: &[BlockHash], max: usize) -> Vec<BlockHeader> {
        let best: Vec<BlockHash> = {
            let mut chain = self.best_chain_hashes();
            chain.reverse(); // genesis first
            chain
        };
        let position = |hash: &BlockHash| -> Option<usize> {
            let stored = self.headers.get(hash)?;
            let idx = stored.height as usize;
            (best.get(idx) == Some(hash)).then_some(idx)
        };
        let start = locator
            .iter()
            .find_map(position)
            .map(|idx| idx + 1)
            .unwrap_or(1); // fork locators fall back to after-genesis
        best[start.min(best.len())..]
            .iter()
            .take(max)
            .map(|h| self.headers[h].header)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::mine_block_on;
    use icbtc_bitcoin::Script;

    fn extend(chain: &mut ChainStore, tip: BlockHash, n: usize, salt: u64) -> Vec<BlockHash> {
        let mut prev = tip;
        let mut out = Vec::new();
        for i in 0..n {
            let block = mine_block_on(chain, prev, Vec::new(), Script::new_op_return(b"t"), salt + i as u64);
            let hash = block.block_hash();
            let now = block.header.time;
            chain.accept_block(block, now).unwrap();
            out.push(hash);
            prev = hash;
        }
        out
    }

    #[test]
    fn genesis_initialization() {
        let chain = ChainStore::new(Network::Regtest);
        assert_eq!(chain.tip_height(), 0);
        assert_eq!(chain.header_count(), 1);
        assert!(chain.has_block(&Network::Regtest.genesis_hash()));
    }

    #[test]
    fn linear_extension_moves_tip() {
        let mut chain = ChainStore::new(Network::Regtest);
        let genesis = chain.tip_hash();
        let hashes = extend(&mut chain, genesis, 5, 0);
        assert_eq!(chain.tip_height(), 5);
        assert_eq!(chain.tip_hash(), hashes[4]);
        assert_eq!(chain.best_chain_hash_at(0), Some(genesis));
        assert_eq!(chain.best_chain_hash_at(3), Some(hashes[2]));
        assert_eq!(chain.best_chain_hash_at(6), None);
    }

    #[test]
    fn fork_resolution_by_work() {
        let mut chain = ChainStore::new(Network::Regtest);
        let genesis = chain.tip_hash();
        let main = extend(&mut chain, genesis, 3, 0);
        // A shorter fork does not win.
        let fork = extend(&mut chain, genesis, 2, 1000);
        assert_eq!(chain.tip_hash(), main[2]);
        // Extending the fork past the main chain reorganizes.
        let fork2 = extend(&mut chain, fork[1], 2, 2000);
        assert_eq!(chain.tip_hash(), fork2[1]);
        assert_eq!(chain.tip_height(), 4);
        // Both forks' headers remain in the tree.
        assert!(chain.header(&main[2]).is_some());
        assert_eq!(chain.children(&genesis).len(), 2);
    }

    #[test]
    fn rejects_orphans_and_bad_pow() {
        let mut chain = ChainStore::new(Network::Regtest);
        let genesis = chain.tip_hash();
        let good = mine_block_on(&chain, genesis, Vec::new(), Script::new_op_return(b"x"), 0);

        let mut orphan = good.header;
        orphan.prev_blockhash = BlockHash([9; 32]);
        assert!(matches!(
            chain.accept_header(orphan, orphan.time),
            Err(ValidationError::OrphanHeader(_))
        ));

        // Find a nonce that breaks pow (regtest accepts ~half of hashes).
        let mut bad = good.header;
        for delta in 1..1000 {
            bad.nonce = good.header.nonce.wrapping_add(delta);
            if !bad.meets_pow_target() {
                break;
            }
        }
        assert!(!bad.meets_pow_target());
        assert_eq!(chain.accept_header(bad, bad.time), Err(ValidationError::BadProofOfWork));
    }

    #[test]
    fn rejects_wrong_bits() {
        let chain = ChainStore::new(Network::Regtest);
        let genesis = chain.tip_hash();
        let good = mine_block_on(&chain, genesis, Vec::new(), Script::new_op_return(b"x"), 0);
        let mut wrong = good.header;
        wrong.bits = CompactTarget::from_consensus(0x1d00ffff);
        assert!(matches!(
            chain.validate_header(&wrong, wrong.time),
            Err(ValidationError::BadDifficultyBits { .. })
        ));
    }

    #[test]
    fn rejects_bad_timestamps() {
        let chain = ChainStore::new(Network::Regtest);
        let genesis_time = Network::Regtest.genesis_block().header.time;
        let genesis = chain.tip_hash();
        let good = mine_block_on(&chain, genesis, Vec::new(), Script::new_op_return(b"x"), 0);

        let mut stale = good.header;
        stale.time = genesis_time; // equal to MTP of single-block history
        // Re-mine: timestamp is covered by pow, so adjust nonce.
        let stale = remine(stale);
        assert_eq!(
            chain.validate_header(&stale, good.header.time),
            Err(ValidationError::TimestampTooOld)
        );

        let mut future = good.header;
        future.time = genesis_time + MAX_FUTURE_SKEW_SECS + 100;
        let future = remine(future);
        assert_eq!(
            chain.validate_header(&future, genesis_time),
            Err(ValidationError::TimestampTooNew)
        );
    }

    fn remine(mut header: BlockHeader) -> BlockHeader {
        header.nonce = 0;
        while !header.meets_pow_target() {
            header.nonce += 1;
        }
        header
    }

    #[test]
    fn rejects_malformed_blocks() {
        let mut chain = ChainStore::new(Network::Regtest);
        let genesis = chain.tip_hash();
        let mut block = mine_block_on(&chain, genesis, Vec::new(), Script::new_op_return(b"x"), 0);
        block.txdata.clear();
        assert_eq!(
            chain.accept_block(block, 2_000_000_000),
            Err(ValidationError::MalformedBlock)
        );
    }

    #[test]
    fn duplicate_acceptance_is_idempotent() {
        let mut chain = ChainStore::new(Network::Regtest);
        let genesis = chain.tip_hash();
        let block = mine_block_on(&chain, genesis, Vec::new(), Script::new_op_return(b"x"), 0);
        let now = block.header.time;
        assert!(chain.accept_block(block.clone(), now).unwrap());
        assert!(!chain.accept_block(block, now).unwrap());
        assert_eq!(chain.header_count(), 2);
    }

    #[test]
    fn locator_and_headers_after() {
        let mut chain = ChainStore::new(Network::Regtest);
        let genesis = chain.tip_hash();
        extend(&mut chain, genesis, 30, 0);
        let locator = chain.locator();
        assert_eq!(locator[0], chain.tip_hash());
        assert_eq!(*locator.last().unwrap(), genesis);
        assert!(locator.len() < 30);

        // A peer at height 10 asks with its locator.
        let mut behind = ChainStore::new(Network::Regtest);
        // Replay first 10 blocks from the main chain.
        let mut hashes = chain.best_chain_hashes();
        hashes.reverse();
        for hash in &hashes[1..11] {
            let block = chain.block(hash).unwrap().clone();
            let now = block.header.time;
            behind.accept_block(block, now).unwrap();
        }
        let served = chain.headers_after(&behind.locator(), 2000);
        assert_eq!(served.len(), 20);
        assert_eq!(served[0].prev_blockhash, behind.tip_hash());
        // Max cap respected.
        assert_eq!(chain.headers_after(&behind.locator(), 5).len(), 5);
        // Unknown locator serves from genesis.
        assert_eq!(chain.headers_after(&[BlockHash([7; 32])], 2000).len(), 30);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ValidationError::OrphanHeader(BlockHash::ZERO),
            ValidationError::BadProofOfWork,
            ValidationError::TimestampTooOld,
            ValidationError::TimestampTooNew,
            ValidationError::MalformedBlock,
            ValidationError::UnknownHeader(BlockHash::ZERO),
            ValidationError::BadDifficultyBits {
                expected: CompactTarget::from_consensus(1),
                actual: CompactTarget::from_consensus(2),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! Adversarial machinery for the security experiments (§IV-A).
//!
//! The paper's threat model gives the attacker (a) a fraction φ of all
//! Bitcoin nodes, (b) hash power bounded per Definition IV.2, and (c)
//! fewer than n/3 IC replicas. This module provides the Bitcoin-side
//! tools: mining *valid* private forks at a bounded rate and racing them
//! against the honest chain.

use icbtc_bitcoin::{Block, BlockHash, Script};
use icbtc_sim::SimRng;

use crate::chain::ChainStore;
use crate::miner::mine_block_on;

/// A private fork under construction: a clone of the honest chain state
/// extended in secret from a chosen branch point.
///
/// # Examples
///
/// ```
/// use icbtc_btcnet::adversary::SecretForkMiner;
/// use icbtc_btcnet::chain::ChainStore;
/// use icbtc_bitcoin::Network;
///
/// let honest = ChainStore::new(Network::Regtest);
/// let mut fork = SecretForkMiner::branch_at(&honest, honest.tip_hash()).unwrap();
/// let blocks = fork.extend(3, 99);
/// assert_eq!(blocks.len(), 3);
/// assert_eq!(fork.fork_height(), 3);
/// ```
#[derive(Debug)]
pub struct SecretForkMiner {
    chain: ChainStore,
    fork_tip: BlockHash,
    branch_height: u64,
    mined: Vec<Block>,
}

impl SecretForkMiner {
    /// Starts a fork branching at `branch_point`, which must be a header
    /// known to `honest_view`. Returns `None` if the branch point is
    /// unknown.
    pub fn branch_at(honest_view: &ChainStore, branch_point: BlockHash) -> Option<SecretForkMiner> {
        let stored = honest_view.header(&branch_point)?;
        Some(SecretForkMiner {
            chain: honest_view.clone(),
            fork_tip: branch_point,
            branch_height: stored.height,
            mined: Vec::new(),
        })
    }

    /// Height of the branch point on the honest chain.
    pub fn branch_height(&self) -> u64 {
        self.branch_height
    }

    /// Number of fork blocks mined so far.
    pub fn fork_height(&self) -> u64 {
        self.mined.len() as u64
    }

    /// The fork's current tip hash.
    pub fn tip(&self) -> BlockHash {
        self.fork_tip
    }

    /// All fork blocks mined so far, oldest first.
    pub fn blocks(&self) -> &[Block] {
        &self.mined
    }

    /// Mines `count` further valid blocks on the fork. The blocks carry
    /// real proof of work at the honest difficulty (Definition IV.2's
    /// attacker mines at the same difficulty, just more slowly).
    pub fn extend(&mut self, count: usize, salt: u64) -> Vec<Block> {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let block = mine_block_on(
                &self.chain,
                self.fork_tip,
                Vec::new(),
                Script::new_op_return(b"attacker"),
                salt.wrapping_add(i as u64) | (1 << 63),
            );
            let now = block.header.time;
            self.chain
                .accept_block(block.clone(), now)
                .expect("attacker mines valid blocks");
            self.fork_tip = block.block_hash();
            self.mined.push(block.clone());
            out.push(block);
        }
        out
    }
}

/// Outcome of a mining race between the attacker and the honest network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceOutcome {
    /// Blocks the honest network found.
    pub honest_blocks: u64,
    /// Blocks the attacker found.
    pub attacker_blocks: u64,
}

impl RaceOutcome {
    /// Whether the attacker's chain ever led by at least `margin` blocks
    /// is not captured here; this is the end-state comparison only.
    pub fn attacker_leads_by(&self, margin: u64) -> bool {
        self.attacker_blocks >= self.honest_blocks + margin
    }
}

/// Simulates a block-finding race over `total_blocks` successive block
/// events, where each event is the attacker's with probability `alpha`
/// (its hash-power share). Returns the end state and, via
/// `max_attacker_lead`, the largest lead the attacker ever held.
///
/// This is the Monte-Carlo primitive behind the Lemma IV.2 experiment:
/// Definition IV.2 bounds the attacker so that a lead of `c*` has
/// negligible probability; the harness measures exactly that frequency.
pub fn mining_race(alpha: f64, total_blocks: u64, rng: &mut SimRng) -> (RaceOutcome, i64) {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be a probability");
    let mut honest = 0u64;
    let mut attacker = 0u64;
    let mut max_lead: i64 = 0;
    for _ in 0..total_blocks {
        if rng.chance(alpha) {
            attacker += 1;
        } else {
            honest += 1;
        }
        max_lead = max_lead.max(attacker as i64 - honest as i64);
    }
    (RaceOutcome { honest_blocks: honest, attacker_blocks: attacker }, max_lead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::Network;

    #[test]
    fn fork_blocks_are_valid_extensions() {
        let mut honest = ChainStore::new(Network::Regtest);
        // Grow the honest chain a little first.
        for i in 0..3 {
            let b = mine_block_on(&honest, honest.tip_hash(), Vec::new(), Script::new_op_return(b"h"), i);
            let now = b.header.time;
            honest.accept_block(b, now).unwrap();
        }
        let branch = honest.best_chain_hash_at(1).unwrap();
        let mut fork = SecretForkMiner::branch_at(&honest, branch).unwrap();
        assert_eq!(fork.branch_height(), 1);
        let blocks = fork.extend(4, 0);
        // The fork's blocks are valid when fed to the honest chain.
        for block in blocks {
            let now = block.header.time;
            honest.accept_block(block, now).unwrap();
        }
        // Fork is longer (1 + 4 = 5 > 3): honest view reorganizes.
        assert_eq!(honest.tip_height(), 5);
        assert_eq!(honest.tip_hash(), fork.tip());
    }

    #[test]
    fn branching_at_unknown_point_fails() {
        let honest = ChainStore::new(Network::Regtest);
        assert!(SecretForkMiner::branch_at(&honest, BlockHash([5; 32])).is_none());
    }

    #[test]
    fn race_statistics_match_alpha() {
        let mut rng = SimRng::seed_from(1);
        let (outcome, _) = mining_race(0.3, 10_000, &mut rng);
        let share = outcome.attacker_blocks as f64 / 10_000.0;
        assert!((share - 0.3).abs() < 0.02, "attacker share {share}");
        assert!(!outcome.attacker_leads_by(1));
    }

    #[test]
    fn majority_attacker_wins_races() {
        let mut rng = SimRng::seed_from(2);
        let (outcome, lead) = mining_race(0.9, 1_000, &mut rng);
        assert!(outcome.attacker_leads_by(100));
        assert!(lead > 100);
    }

    #[test]
    fn race_extremes() {
        let mut rng = SimRng::seed_from(3);
        let (all_honest, lead) = mining_race(0.0, 100, &mut rng);
        assert_eq!(all_honest.attacker_blocks, 0);
        assert_eq!(lead, 0);
        let (all_attacker, _) = mining_race(1.0, 100, &mut rng);
        assert_eq!(all_attacker.honest_blocks, 0);
    }
}

//! A deterministic simulation of the Bitcoin P2P network.
//!
//! This crate stands in for the real Bitcoin network in the reproduction
//! of *"Enabling Bitcoin Smart Contracts on the Internet Computer"*
//! (ICDCS 2025). The paper's Bitcoin adapter (§III-B) connects to real
//! Bitcoin nodes over the P2P protocol; here it connects to [`network::BtcNetwork`]
//! through external connections that speak the same message vocabulary:
//!
//! * [`messages`] — the P2P message subset the adapter uses (addr gossip,
//!   `getheaders`/`headers`, `inv`/`getdata`/`block`, `tx`).
//! * [`chain`] — per-node header trees with full validation (proof of
//!   work, retarget schedule, median-time-past) and fork tracking.
//! * [`node`] — the full-node state machine, honest or adversarial.
//! * [`miner`] — real (scaled-difficulty) proof-of-work block assembly.
//! * [`network`] — the event-driven fabric: topology, latency, Poisson
//!   block production, external adapter links.
//! * [`adversary`] — private-fork mining and hash-power race simulation
//!   for the §IV-A security experiments.
//! * [`faults`] — deterministic fault injection: link loss/jitter,
//!   partitions, crashes, churn, and misbehaving-peer modes, all driven
//!   by the network's seeded RNG.
//!
//! # Examples
//!
//! ```
//! use icbtc_btcnet::network::{BtcNetwork, NetworkConfig};
//! use icbtc_sim::SimTime;
//!
//! let mut net = BtcNetwork::new(NetworkConfig::regtest(5), 7);
//! net.run_until(SimTime::from_secs(3600));
//! println!("{} blocks in the first simulated hour", net.blocks_mined());
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod adversary;
pub mod chain;
pub mod faults;
pub mod messages;
pub mod miner;
pub mod network;
pub mod node;

pub use chain::{ChainStore, StoredHeader, ValidationError};
pub use faults::{Churn, Crash, FaultPlan, LinkFaults, Misbehavior, Partition, CHAOS_NODES};
pub use messages::{ConnId, Inventory, Message, NodeId, PeerRef};
pub use network::{BtcNetwork, NetworkConfig};
pub use node::{FullNode, NodeBehavior};

//! The simulated Bitcoin full node.
//!
//! A deterministic state machine: it receives one P2P message at a time
//! and returns the messages it wants delivered in response. The network
//! fabric ([`crate::network`]) owns routing, latency and time.

use std::collections::{HashMap, HashSet};

use icbtc_bitcoin::{Block, Network, Transaction, Txid};

use crate::chain::ChainStore;
use crate::messages::{
    Inventory, Message, NodeId, PeerRef, MAX_ADDR_PER_MSG, MAX_HEADERS_PER_MSG,
};

/// Behavioural profile of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeBehavior {
    /// Follows the protocol.
    Honest,
    /// Attacker-controlled: answers from its own (possibly forged) chain
    /// view, never relays honest inventory, and reports only
    /// attacker-controlled peers in address gossip.
    Adversarial,
}

/// A simulated Bitcoin full node.
///
/// # Examples
///
/// ```
/// use icbtc_btcnet::node::{FullNode, NodeBehavior};
/// use icbtc_btcnet::messages::{Message, NodeId, PeerRef};
/// use icbtc_bitcoin::Network;
///
/// let mut node = FullNode::new(NodeId(0), Network::Regtest, NodeBehavior::Honest);
/// let replies = node.handle_message(PeerRef::Node(NodeId(1)), Message::Ping(7), 0);
/// assert_eq!(replies, vec![(PeerRef::Node(NodeId(1)), Message::Pong(7))]);
/// ```
#[derive(Debug)]
pub struct FullNode {
    id: NodeId,
    behavior: NodeBehavior,
    chain: ChainStore,
    mempool: HashMap<Txid, Transaction>,
    mempool_order: Vec<Txid>,
    peers: Vec<PeerRef>,
    known_addrs: Vec<NodeId>,
    /// Inventory already announced to us (dedupes getdata).
    seen_inv: HashSet<Inventory>,
    /// Blocks that arrived before their parent, keyed by the missing
    /// parent hash; retried once the parent connects.
    orphan_blocks: HashMap<icbtc_bitcoin::BlockHash, Vec<Block>>,
}

impl FullNode {
    /// Creates a node with only the genesis block.
    pub fn new(id: NodeId, network: Network, behavior: NodeBehavior) -> FullNode {
        FullNode {
            id,
            behavior,
            chain: ChainStore::new(network),
            mempool: HashMap::new(),
            mempool_order: Vec::new(),
            peers: Vec::new(),
            known_addrs: Vec::new(),
            seen_inv: HashSet::new(),
            orphan_blocks: HashMap::new(),
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's behavioural profile.
    pub fn behavior(&self) -> NodeBehavior {
        self.behavior
    }

    /// Read access to the node's chain view.
    pub fn chain(&self) -> &ChainStore {
        &self.chain
    }

    /// Mutable access to the chain (used by the miner driver and by
    /// adversaries forging forks).
    pub fn chain_mut(&mut self) -> &mut ChainStore {
        &mut self.chain
    }

    /// The node's current gossip peers.
    pub fn peers(&self) -> &[PeerRef] {
        &self.peers
    }

    /// Replaces the gossip peer set (the network fabric wires topology).
    pub fn set_peers(&mut self, peers: Vec<PeerRef>) {
        self.peers = peers;
    }

    /// Adds a peer link if not present.
    pub fn add_peer(&mut self, peer: PeerRef) {
        if !self.peers.contains(&peer) {
            self.peers.push(peer);
        }
    }

    /// Removes a peer link.
    pub fn remove_peer(&mut self, peer: PeerRef) {
        self.peers.retain(|p| *p != peer);
    }

    /// Seeds the address book (used for discovery gossip).
    pub fn set_known_addrs(&mut self, addrs: Vec<NodeId>) {
        self.known_addrs = addrs;
    }

    /// Discards all chain, mempool and relay state — a crash that lost
    /// its disk. The peer links and address book survive (they model the
    /// node's configuration, not its database).
    pub fn reset_chain(&mut self) {
        self.chain = ChainStore::new(self.chain.network());
        self.mempool.clear();
        self.mempool_order.clear();
        self.seen_inv.clear();
        self.orphan_blocks.clear();
    }

    /// The initial-block-download requests a node issues on (re)start:
    /// one `getheaders` to every in-network peer. The replies drive the
    /// body-fetch path in the `Headers` handler until the node catches
    /// back up.
    pub fn startup_sync_requests(&self) -> Vec<(PeerRef, Message)> {
        self.peers
            .iter()
            .filter(|p| matches!(p, PeerRef::Node(_)))
            .map(|p| {
                (
                    *p,
                    Message::GetHeaders {
                        locator: self.chain.locator(),
                        stop: icbtc_bitcoin::BlockHash::ZERO,
                    },
                )
            })
            .collect()
    }

    /// Transactions currently in the mempool, oldest first.
    pub fn mempool(&self) -> impl Iterator<Item = &Transaction> {
        self.mempool_order.iter().filter_map(|txid| self.mempool.get(txid))
    }

    /// Returns `true` if the mempool holds `txid`.
    pub fn has_mempool_tx(&self, txid: &Txid) -> bool {
        self.mempool.contains_key(txid)
    }

    /// Number of mempool entries.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Drains up to `max` mempool transactions for a block template.
    pub fn take_template_transactions(&mut self, max: usize) -> Vec<Transaction> {
        let take: Vec<Txid> = self.mempool_order.iter().take(max).copied().collect();
        let mut out = Vec::with_capacity(take.len());
        for txid in take {
            if let Some(tx) = self.mempool.remove(&txid) {
                out.push(tx);
            }
        }
        self.mempool_order.retain(|t| self.mempool.contains_key(t));
        out
    }

    /// Accepts a locally produced (mined or injected) block and returns
    /// the relay announcements for all peers.
    pub fn accept_local_block(&mut self, block: Block, now_unix: u32) -> Vec<(PeerRef, Message)> {
        self.ingest_block(block, None, now_unix)
    }

    /// Shared block-ingestion path: accepts the block, buffers it as an
    /// orphan if the parent is missing, evicts confirmed transactions,
    /// relays, and retries any orphans the new block unblocks.
    fn ingest_block(
        &mut self,
        block: Block,
        from: Option<PeerRef>,
        now_unix: u32,
    ) -> Vec<(PeerRef, Message)> {
        let hash = block.block_hash();
        let parent = block.header.prev_blockhash;
        match self.chain.accept_block(block.clone(), now_unix) {
            Ok(true) => {
                self.seen_inv.insert(Inventory::Block(hash));
                let mut out = if self.behavior == NodeBehavior::Honest {
                    let confirmed: Vec<Txid> = self
                        .chain
                        .block(&hash)
                        .map(|b| b.txdata.iter().map(|t| t.txid()).collect())
                        .unwrap_or_default();
                    for txid in confirmed {
                        self.mempool.remove(&txid);
                    }
                    self.mempool_order.retain(|t| self.mempool.contains_key(t));
                    self.broadcast(Message::Inv(vec![Inventory::Block(hash)]), from)
                } else {
                    Vec::new()
                };
                // This block may be the missing parent of buffered orphans.
                if let Some(children) = self.orphan_blocks.remove(&hash) {
                    for child in children {
                        out.extend(self.ingest_block(child, from, now_unix));
                    }
                }
                out
            }
            Err(crate::chain::ValidationError::OrphanHeader(_)) => {
                // Out-of-order delivery: park the block until its parent
                // connects (bounded, to cap memory under garbage floods).
                let bucket = self.orphan_blocks.entry(parent).or_default();
                if bucket.len() < 16 && !bucket.iter().any(|b| b.block_hash() == hash) {
                    bucket.push(block);
                }
                // Recover the gap: if the block came from a peer, ask it
                // for the headers between our chain and the orphan. The
                // reply drives the body-fetch path — without this, a node
                // that missed an announcement (lossy link, partition,
                // crash) would wait forever for a parent nobody re-sends.
                match from {
                    Some(peer) => vec![(
                        peer,
                        Message::GetHeaders {
                            locator: self.chain.locator(),
                            stop: icbtc_bitcoin::BlockHash::ZERO,
                        },
                    )],
                    None => Vec::new(),
                }
            }
            _ => Vec::new(),
        }
    }

    /// Accepts a transaction into the mempool and returns relay
    /// announcements (empty if already known).
    pub fn accept_transaction(&mut self, tx: Transaction, from: Option<PeerRef>) -> Vec<(PeerRef, Message)> {
        let txid = tx.txid();
        if self.mempool.contains_key(&txid) {
            return Vec::new();
        }
        self.mempool.insert(txid, tx);
        self.mempool_order.push(txid);
        self.seen_inv.insert(Inventory::Transaction(txid));
        if self.behavior == NodeBehavior::Adversarial {
            // Adversarial nodes accept but never relay.
            return Vec::new();
        }
        self.broadcast(Message::Inv(vec![Inventory::Transaction(txid)]), from)
    }

    fn broadcast(&self, msg: Message, except: Option<PeerRef>) -> Vec<(PeerRef, Message)> {
        self.peers
            .iter()
            .filter(|p| Some(**p) != except)
            .map(|p| (*p, msg.clone()))
            .collect()
    }

    /// Handles one incoming message, returning the outgoing messages it
    /// produces. `now_unix` is the simulated Unix time used for header
    /// timestamp validation.
    pub fn handle_message(
        &mut self,
        from: PeerRef,
        msg: Message,
        now_unix: u32,
    ) -> Vec<(PeerRef, Message)> {
        match msg {
            Message::Ping(nonce) => vec![(from, Message::Pong(nonce))],
            Message::Pong(_) => Vec::new(),
            Message::GetAddr => {
                let addrs: Vec<NodeId> = if self.behavior == NodeBehavior::Adversarial {
                    // Eclipse tactic: advertise only attacker peers (here:
                    // the node's own peer list filtered to nodes).
                    self.peers
                        .iter()
                        .filter_map(|p| match p {
                            PeerRef::Node(id) => Some(*id),
                            PeerRef::External(_) => None,
                        })
                        .take(MAX_ADDR_PER_MSG)
                        .collect()
                } else {
                    self.known_addrs.iter().copied().take(MAX_ADDR_PER_MSG).collect()
                };
                vec![(from, Message::Addr(addrs))]
            }
            Message::Addr(addrs) => {
                for addr in addrs {
                    if addr != self.id && !self.known_addrs.contains(&addr) {
                        self.known_addrs.push(addr);
                    }
                }
                Vec::new()
            }
            Message::GetHeaders { locator, stop } => {
                let mut headers = self.chain.headers_after(&locator, MAX_HEADERS_PER_MSG);
                if stop != icbtc_bitcoin::BlockHash::ZERO {
                    if let Some(pos) =
                        headers.iter().position(|h| h.block_hash() == stop)
                    {
                        headers.truncate(pos + 1);
                    }
                }
                vec![(from, Message::Headers(headers))]
            }
            Message::Headers(headers) => {
                // Nodes learn forks from headers. Bodies of newly
                // accepted headers we do not hold yet are fetched right
                // away — this is the initial-block-download loop a node
                // runs after a (state-wiping) restart. A full batch means
                // the sender has more: ask again from the new locator.
                let full_batch = headers.len() >= MAX_HEADERS_PER_MSG;
                let mut fetch = Vec::new();
                for header in headers {
                    let hash = header.block_hash();
                    let newly = self.chain.accept_header(header, now_unix).unwrap_or(false);
                    // Fetch any known header whose body we lack — even if
                    // its inv was seen before: the earlier getdata (or its
                    // reply) may have been lost on a faulty link, and this
                    // headers exchange is exactly the recovery path.
                    let known = newly || self.chain.header(&hash).is_some();
                    if known && !self.chain.has_block(&hash) {
                        let item = Inventory::Block(hash);
                        if !fetch.contains(&item) {
                            self.seen_inv.insert(item);
                            fetch.push(item);
                        }
                    }
                }
                let mut out = Vec::new();
                if !fetch.is_empty() {
                    out.push((from, Message::GetData(fetch)));
                }
                if full_batch {
                    out.push((
                        from,
                        Message::GetHeaders {
                            locator: self.chain.locator(),
                            stop: icbtc_bitcoin::BlockHash::ZERO,
                        },
                    ));
                }
                out
            }
            Message::Inv(items) => {
                let mut wanted = Vec::new();
                for item in items {
                    if self.seen_inv.contains(&item) {
                        continue;
                    }
                    let have = match item {
                        Inventory::Block(hash) => self.chain.has_block(&hash),
                        Inventory::Transaction(txid) => self.mempool.contains_key(&txid),
                    };
                    if !have {
                        wanted.push(item);
                    }
                }
                if wanted.is_empty() {
                    Vec::new()
                } else {
                    for item in &wanted {
                        self.seen_inv.insert(*item);
                    }
                    vec![(from, Message::GetData(wanted))]
                }
            }
            Message::GetData(items) => {
                let mut out = Vec::new();
                let mut missing = Vec::new();
                for item in items {
                    match item {
                        Inventory::Block(hash) => match self.chain.block(&hash) {
                            Some(block) => {
                                out.push((from, Message::BlockMsg(Box::new(block.clone()))))
                            }
                            None => missing.push(item),
                        },
                        Inventory::Transaction(txid) => match self.mempool.get(&txid) {
                            Some(tx) => out.push((from, Message::TxMsg(tx.clone()))),
                            None => missing.push(item),
                        },
                    }
                }
                if !missing.is_empty() {
                    out.push((from, Message::NotFound(missing)));
                }
                out
            }
            Message::BlockMsg(block) => self.ingest_block(*block, Some(from), now_unix),
            Message::TxMsg(tx) => self.accept_transaction(tx, Some(from)),
            Message::NotFound(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::mine_block_on;
    use icbtc_bitcoin::{Amount, OutPoint, Script, TxIn, TxOut};

    fn node(id: u32) -> FullNode {
        FullNode::new(NodeId(id), Network::Regtest, NodeBehavior::Honest)
    }

    fn sample_tx(n: u8) -> Transaction {
        Transaction {
            version: 2,
            inputs: vec![TxIn::new(OutPoint::new(icbtc_bitcoin::Txid([n; 32]), 0))],
            outputs: vec![TxOut::new(Amount::from_sat(500), Script::new_p2wpkh(&[n; 20]))],
            lock_time: 0,
        }
    }

    #[test]
    fn ping_pong() {
        let mut n = node(0);
        let replies = n.handle_message(PeerRef::Node(NodeId(1)), Message::Ping(42), 0);
        assert_eq!(replies, vec![(PeerRef::Node(NodeId(1)), Message::Pong(42))]);
        assert!(n.handle_message(PeerRef::Node(NodeId(1)), Message::Pong(42), 0).is_empty());
    }

    #[test]
    fn addr_gossip() {
        let mut n = node(0);
        n.set_known_addrs(vec![NodeId(1), NodeId(2)]);
        let from = PeerRef::Node(NodeId(9));
        let replies = n.handle_message(from, Message::GetAddr, 0);
        assert_eq!(replies, vec![(from, Message::Addr(vec![NodeId(1), NodeId(2)]))]);
        // Learning new addresses, ignoring self and duplicates.
        n.handle_message(from, Message::Addr(vec![NodeId(0), NodeId(2), NodeId(3)]), 0);
        let replies = n.handle_message(from, Message::GetAddr, 0);
        assert_eq!(
            replies,
            vec![(from, Message::Addr(vec![NodeId(1), NodeId(2), NodeId(3)]))]
        );
    }

    #[test]
    fn inv_getdata_block_flow() {
        let mut a = node(0);
        let mut b = node(1);
        a.set_peers(vec![PeerRef::Node(NodeId(1))]);
        b.set_peers(vec![PeerRef::Node(NodeId(0))]);

        let block = mine_block_on(a.chain(), a.chain().tip_hash(), Vec::new(), Script::new_op_return(b"x"), 0);
        let now = block.header.time;
        let hash = block.block_hash();

        // A mines and announces.
        let announcements = a.accept_local_block(block, now);
        assert_eq!(announcements.len(), 1);
        let (to, inv) = &announcements[0];
        assert_eq!(*to, PeerRef::Node(NodeId(1)));

        // B requests the block.
        let requests = b.handle_message(PeerRef::Node(NodeId(0)), inv.clone(), now);
        assert_eq!(requests.len(), 1);
        let (_, getdata) = &requests[0];
        assert_eq!(getdata.kind(), "getdata");

        // A serves it; B accepts and would relay onward (no other peers).
        let served = a.handle_message(PeerRef::Node(NodeId(1)), getdata.clone(), now);
        assert_eq!(served.len(), 1);
        let relays = b.handle_message(PeerRef::Node(NodeId(0)), served[0].1.clone(), now);
        assert!(b.chain().has_block(&hash));
        assert_eq!(b.chain().tip_height(), 1);
        // Relay goes back only to non-sender peers — none here.
        assert!(relays.is_empty());

        // Duplicate inv is ignored.
        assert!(b.handle_message(PeerRef::Node(NodeId(0)), inv.clone(), now).is_empty());
    }

    #[test]
    fn getdata_for_unknown_returns_notfound() {
        let mut n = node(0);
        let item = Inventory::Block(icbtc_bitcoin::BlockHash([7; 32]));
        let replies = n.handle_message(PeerRef::Node(NodeId(1)), Message::GetData(vec![item]), 0);
        assert_eq!(replies, vec![(PeerRef::Node(NodeId(1)), Message::NotFound(vec![item]))]);
    }

    #[test]
    fn tx_relay_and_mempool() {
        let mut n = node(0);
        n.set_peers(vec![PeerRef::Node(NodeId(1)), PeerRef::Node(NodeId(2))]);
        let tx = sample_tx(1);
        let txid = tx.txid();
        let from = PeerRef::Node(NodeId(1));
        let relays = n.handle_message(from, Message::TxMsg(tx.clone()), 0);
        // Relayed to everyone except the sender.
        assert_eq!(relays.len(), 1);
        assert_eq!(relays[0].0, PeerRef::Node(NodeId(2)));
        assert!(n.has_mempool_tx(&txid));
        // Re-delivery does nothing.
        assert!(n.handle_message(from, Message::TxMsg(tx), 0).is_empty());
        assert_eq!(n.mempool_len(), 1);
    }

    #[test]
    fn block_confirmation_evicts_mempool() {
        let mut n = node(0);
        let tx = sample_tx(2);
        let txid = tx.txid();
        n.accept_transaction(tx.clone(), None);
        assert!(n.has_mempool_tx(&txid));

        let block = mine_block_on(n.chain(), n.chain().tip_hash(), vec![tx], Script::new_op_return(b"m"), 0);
        let now = block.header.time;
        n.handle_message(PeerRef::Node(NodeId(1)), Message::BlockMsg(Box::new(block)), now);
        assert!(!n.has_mempool_tx(&txid));
        assert_eq!(n.mempool_len(), 0);
    }

    #[test]
    fn template_extraction_preserves_order() {
        let mut n = node(0);
        for i in 1..=5 {
            n.accept_transaction(sample_tx(i), None);
        }
        let template = n.take_template_transactions(3);
        assert_eq!(template.len(), 3);
        assert_eq!(n.mempool_len(), 2);
        assert_eq!(template[0], sample_tx(1));
    }

    #[test]
    fn getheaders_serves_chain() {
        let mut n = node(0);
        for i in 0..5 {
            let block = mine_block_on(n.chain(), n.chain().tip_hash(), Vec::new(), Script::new_op_return(b"m"), i);
            let now = block.header.time;
            n.chain_mut().accept_block(block, now).unwrap();
        }
        let replies = n.handle_message(
            PeerRef::External(crate::messages::ConnId(0)),
            Message::GetHeaders {
                locator: vec![Network::Regtest.genesis_hash()],
                stop: icbtc_bitcoin::BlockHash::ZERO,
            },
            0,
        );
        assert_eq!(replies.len(), 1);
        match &replies[0].1 {
            Message::Headers(headers) => assert_eq!(headers.len(), 5),
            other => panic!("expected headers, got {}", other.kind()),
        }
    }

    #[test]
    fn out_of_order_blocks_are_parked_and_replayed() {
        // Regression: blocks delivered child-before-parent must not be
        // dropped (the orphan pool reconnects them).
        let mut n = node(0);
        let chain_src = {
            let mut c = crate::chain::ChainStore::new(Network::Regtest);
            let mut out = Vec::new();
            for i in 0..3 {
                let b = mine_block_on(&c, c.tip_hash(), Vec::new(), Script::new_op_return(b"o"), i);
                let now = b.header.time;
                c.accept_block(b.clone(), now).unwrap();
                out.push(b);
            }
            out
        };
        let now = chain_src.last().unwrap().header.time;
        let from = PeerRef::Node(NodeId(1));
        // Deliver 3, then 2, then 1.
        n.handle_message(from, Message::BlockMsg(Box::new(chain_src[2].clone())), now);
        assert_eq!(n.chain().tip_height(), 0, "orphan must not connect yet");
        n.handle_message(from, Message::BlockMsg(Box::new(chain_src[1].clone())), now);
        assert_eq!(n.chain().tip_height(), 0);
        let relays = n.handle_message(from, Message::BlockMsg(Box::new(chain_src[0].clone())), now);
        assert_eq!(n.chain().tip_height(), 3, "parent arrival replays the whole chain");
        // No peers configured, so no relays — but all blocks stored.
        assert!(relays.is_empty());
        for b in &chain_src {
            assert!(n.chain().has_block(&b.block_hash()));
        }
    }

    #[test]
    fn orphan_pool_is_bounded() {
        let mut n = node(0);
        let parent = icbtc_bitcoin::BlockHash([9; 32]);
        let chain = ChainStore::new(Network::Regtest);
        for i in 0..40u64 {
            let mut b = mine_block_on(&chain, chain.tip_hash(), Vec::new(), Script::new_op_return(b"x"), i);
            b.header.prev_blockhash = parent; // all orphans of one parent
            let now = b.header.time;
            n.handle_message(PeerRef::Node(NodeId(1)), Message::BlockMsg(Box::new(b)), now);
        }
        assert!(
            n.orphan_blocks.get(&parent).map(|v| v.len()).unwrap_or(0) <= 16,
            "orphan bucket must stay bounded"
        );
    }

    #[test]
    fn adversarial_node_does_not_relay() {
        let mut n = FullNode::new(NodeId(0), Network::Regtest, NodeBehavior::Adversarial);
        n.set_peers(vec![PeerRef::Node(NodeId(1)), PeerRef::Node(NodeId(2))]);
        let relays = n.handle_message(PeerRef::Node(NodeId(1)), Message::TxMsg(sample_tx(3)), 0);
        assert!(relays.is_empty());
        // Address gossip only reveals its own peers (eclipse tactic).
        let replies = n.handle_message(PeerRef::Node(NodeId(9)), Message::GetAddr, 0);
        assert_eq!(
            replies,
            vec![(PeerRef::Node(NodeId(9)), Message::Addr(vec![NodeId(1), NodeId(2)]))]
        );
    }
}

//! Block production for the simulated Bitcoin network.
//!
//! Mining is *real* proof of work against the (scaled-down) targets from
//! [`icbtc_bitcoin::network::Params`]: the miner assembles a template and
//! scans nonces until the double-SHA-256 header hash meets the compact
//! target. Block *timing* is driven by the network's Poisson process (see
//! [`crate::network`]); the nonce scan only decides validity, not tempo.

use icbtc_bitcoin::builder::coinbase_transaction;
use icbtc_bitcoin::{Amount, Block, BlockHash, BlockHeader, Script, Transaction};

use crate::chain::ChainStore;

/// Maximum serialized bytes of non-coinbase transactions per template;
/// a scaled-down stand-in for Bitcoin's 4M-weight limit.
pub const MAX_TEMPLATE_TX_BYTES: usize = 512 * 1024;

/// Mines a block on top of `prev` containing `transactions` (after the
/// coinbase paying `payout_script`), with `extra_nonce` distinguishing
/// miners.
///
/// The template's timestamp is one second past the parent's median time
/// past or the parent time, whichever is later, keeping validation happy
/// without modelling wall clocks inside the miner.
///
/// # Panics
///
/// Panics if `prev` is not in `chain`.
pub fn mine_block_on(
    chain: &ChainStore,
    prev: BlockHash,
    transactions: Vec<Transaction>,
    payout_script: Script,
    extra_nonce: u64,
) -> Block {
    let parent = chain.header(&prev).expect("mining on unknown parent");
    let params = chain.network().params();
    let height = parent.height + 1;
    let fees = Amount::ZERO; // fee accounting is tracked by wallets, not consensus, here
    let reward = params.block_subsidy.checked_add(fees).expect("subsidy below max money");
    let coinbase = coinbase_transaction(height, reward, payout_script, extra_nonce);

    let mut txdata = Vec::with_capacity(transactions.len() + 1);
    txdata.push(coinbase);
    let mut budget = MAX_TEMPLATE_TX_BYTES;
    for tx in transactions {
        let size = icbtc_bitcoin::encode::Encodable::encoded_len(&tx);
        if size > budget {
            continue;
        }
        budget -= size;
        txdata.push(tx);
    }

    let merkle = icbtc_bitcoin::merkle_root(&txdata.iter().map(|t| t.txid()).collect::<Vec<_>>());
    let mtp = chain.median_time_past(&prev).expect("parent exists");
    let time = mtp.max(parent.header.time).saturating_add(1);
    let bits = chain.expected_bits(&prev).expect("parent exists");

    let mut header = BlockHeader {
        version: 2,
        prev_blockhash: prev,
        merkle_root: merkle,
        time,
        bits,
        nonce: 0,
    };
    loop {
        if header.meets_pow_target() {
            return Block { header, txdata };
        }
        header.nonce = header.nonce.wrapping_add(1);
        if header.nonce == 0 {
            // Nonce space exhausted (astronomically unlikely at simulated
            // difficulty) — perturb the timestamp and rescan.
            header.time += 1;
        }
    }
}

/// Mines a block at a caller-supplied timestamp (used by the network
/// driver, which knows the simulated wall clock).
///
/// The timestamp is clamped into the valid window above the parent's
/// median time past.
///
/// # Panics
///
/// Panics if `prev` is not in `chain`.
pub fn mine_block_at(
    chain: &ChainStore,
    prev: BlockHash,
    transactions: Vec<Transaction>,
    payout_script: Script,
    extra_nonce: u64,
    unix_time: u32,
) -> Block {
    let mut block = mine_block_on(chain, prev, transactions, payout_script, extra_nonce);
    let mtp = chain.median_time_past(&prev).expect("parent exists");
    let clamped = unix_time.max(mtp + 1);
    if clamped != block.header.time {
        block.header.time = clamped;
        block.header.nonce = 0;
        while !block.header.meets_pow_target() {
            block.header.nonce = block.header.nonce.wrapping_add(1);
        }
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::Network;

    #[test]
    fn mined_blocks_are_valid() {
        let mut chain = ChainStore::new(Network::Regtest);
        for i in 0..10 {
            let block = mine_block_on(
                &chain,
                chain.tip_hash(),
                Vec::new(),
                Script::new_op_return(b"miner"),
                i,
            );
            assert!(block.header.meets_pow_target());
            assert!(block.is_well_formed());
            let now = block.header.time;
            assert!(chain.accept_block(block, now).unwrap());
        }
        assert_eq!(chain.tip_height(), 10);
    }

    #[test]
    fn different_extra_nonce_different_blocks() {
        let chain = ChainStore::new(Network::Regtest);
        let a = mine_block_on(&chain, chain.tip_hash(), Vec::new(), Script::new_op_return(b"a"), 1);
        let b = mine_block_on(&chain, chain.tip_hash(), Vec::new(), Script::new_op_return(b"a"), 2);
        assert_ne!(a.block_hash(), b.block_hash());
    }

    #[test]
    fn includes_transactions_within_budget() {
        let mut chain = ChainStore::new(Network::Regtest);
        // Spendable-looking transaction (validity is not checked by design).
        let tx = Transaction {
            version: 2,
            inputs: vec![icbtc_bitcoin::TxIn::new(icbtc_bitcoin::OutPoint::new(
                icbtc_bitcoin::Txid([1; 32]),
                0,
            ))],
            outputs: vec![icbtc_bitcoin::TxOut::new(
                Amount::from_sat(1000),
                Script::new_p2wpkh(&[2; 20]),
            )],
            lock_time: 0,
        };
        let block = mine_block_on(
            &chain,
            chain.tip_hash(),
            vec![tx.clone()],
            Script::new_op_return(b"m"),
            0,
        );
        assert_eq!(block.txdata.len(), 2);
        assert_eq!(block.txdata[1], tx);
        let now = block.header.time;
        chain.accept_block(block, now).unwrap();
    }

    #[test]
    fn mine_at_timestamp_clamps_to_mtp() {
        let chain = ChainStore::new(Network::Regtest);
        let genesis_time = Network::Regtest.genesis_block().header.time;
        let early = mine_block_at(
            &chain,
            chain.tip_hash(),
            Vec::new(),
            Script::new_op_return(b"m"),
            0,
            0, // long before genesis
        );
        assert!(early.header.time > genesis_time);
        assert!(early.header.meets_pow_target());

        let late = mine_block_at(
            &chain,
            chain.tip_hash(),
            Vec::new(),
            Script::new_op_return(b"m"),
            0,
            genesis_time + 1234,
        );
        assert_eq!(late.header.time, genesis_time + 1234);
        assert!(late.header.meets_pow_target());
    }
}

//! The Bitcoin adapter (§III-B of the paper).
//!
//! A per-replica process that (a) keeps ℓ connections into the Bitcoin
//! network, (b) downloads and validates *all* block headers (forks
//! included — the adapter performs no fork resolution by design, leaving
//! that to the canister's stability logic), (c) fetches blocks on demand,
//! (d) advertises outbound transactions, and (e) answers the canister's
//! `GetSuccessors` requests with **Algorithm 1**.

use std::collections::{HashMap, HashSet};

use icbtc_bitcoin::encode::Encodable;
use icbtc_bitcoin::{Block, BlockHash, BlockHeader};
use icbtc_btcnet::{BtcNetwork, ChainStore, ConnId, Inventory, Message};
use icbtc_core::{
    GetSuccessorsRequest, GetSuccessorsResponse, IntegrationParams, MAX_NEXT_HEADERS,
    MAX_RESPONSE_BLOCK_BYTES,
};
use icbtc_sim::obs::{FieldValue, Obs};
use icbtc_sim::{SimDuration, SimRng, SimTime};

use crate::discovery::ConnectionManager;
use crate::txcache::TransactionCache;

/// The Bitcoin adapter of one IC replica.
///
/// Drive it by alternating [`BitcoinAdapter::step`] (network upkeep) with
/// `net.run_until(..)`, and serve the canister with
/// [`BitcoinAdapter::handle_request`].
///
/// # Examples
///
/// ```
/// use icbtc_adapter::BitcoinAdapter;
/// use icbtc_btcnet::network::{BtcNetwork, NetworkConfig};
/// use icbtc_core::IntegrationParams;
/// use icbtc_bitcoin::Network;
/// use icbtc_sim::{SimDuration, SimTime};
///
/// let mut net = BtcNetwork::new(NetworkConfig::regtest(4), 1);
/// net.run_until(SimTime::from_secs(3600));
/// let params = IntegrationParams::for_network(Network::Regtest);
/// let mut adapter = BitcoinAdapter::new(params, 99);
/// // A few step/run iterations pull in the headers.
/// for _ in 0..30 {
///     adapter.step(&mut net);
///     net.run_until(net.now() + SimDuration::from_secs(2));
/// }
/// assert!(adapter.header_count() > 1);
/// ```
pub struct BitcoinAdapter {
    params: IntegrationParams,
    manager: ConnectionManager,
    store: ChainStore,
    txcache: TransactionCache,
    rng: SimRng,
    /// Blocks requested from peers and not yet received.
    inflight_blocks: HashMap<BlockHash, SimTime>,
    /// Per-connection: has a getheaders round-trip been issued recently?
    last_getheaders: SimTime,
    /// Peers' inventory announcements we have already chased.
    seen_inv: HashSet<BlockHash>,
    /// Observability endpoint (metrics + trace), component `"adapter"`.
    obs: Obs,
}

/// How long a block fetch may be outstanding before re-requesting.
const INFLIGHT_TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// Minimum spacing between header-sync rounds.
const GETHEADERS_INTERVAL: SimDuration = SimDuration::from_secs(5);

impl BitcoinAdapter {
    /// Creates an adapter for the configured network.
    pub fn new(params: IntegrationParams, seed: u64) -> BitcoinAdapter {
        BitcoinAdapter {
            manager: ConnectionManager::new(params),
            store: ChainStore::new(params.network),
            txcache: TransactionCache::new(SimDuration::from_secs(params.tx_cache_expiry_secs)),
            rng: SimRng::seed_from(seed),
            params,
            inflight_blocks: HashMap::new(),
            last_getheaders: SimTime::ZERO,
            seen_inv: HashSet::new(),
            obs: Obs::new("adapter"),
        }
    }

    /// Read access to the adapter's observability endpoint.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable access to the adapter's observability endpoint.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// The integration parameters in force.
    pub fn params(&self) -> &IntegrationParams {
        &self.params
    }

    /// The connection manager (discovery state).
    pub fn connection_manager(&self) -> &ConnectionManager {
        &self.manager
    }

    /// Number of validated headers held (including genesis).
    pub fn header_count(&self) -> usize {
        self.store.header_count()
    }

    /// Greatest header height seen.
    pub fn best_header_height(&self) -> u64 {
        self.store.tip_height()
    }

    /// Whether the full block for `hash` is stored locally.
    pub fn has_block(&self, hash: &BlockHash) -> bool {
        self.store.has_block(hash)
    }

    /// Number of cached outbound transactions.
    pub fn tx_cache_len(&self) -> usize {
        self.txcache.len()
    }

    /// One upkeep pass: maintain connections, run header sync, chase
    /// inventory, expire the transaction cache, drain and dispatch all
    /// inbound messages.
    pub fn step(&mut self, net: &mut BtcNetwork) {
        let now = net.now();
        self.manager.maintain(net, &mut self.rng);
        self.txcache.expire(now);

        // Periodic header sync against every connection.
        if now.saturating_since(self.last_getheaders) >= GETHEADERS_INTERVAL
            || self.last_getheaders == SimTime::ZERO
        {
            self.last_getheaders = now;
            let locator = self.store.locator();
            for conn in self.manager.connection_ids() {
                net.send_external(
                    conn,
                    Message::GetHeaders { locator: locator.clone(), stop: BlockHash::ZERO },
                );
                self.obs.metrics.inc("adapter_getheaders_sent_total");
            }
        }

        // Re-request timed-out block fetches.
        let stale: Vec<BlockHash> = self
            .inflight_blocks
            .iter()
            .filter(|(_, at)| now.saturating_since(**at) >= INFLIGHT_TIMEOUT)
            .map(|(h, _)| *h)
            .collect();
        for hash in stale {
            self.inflight_blocks.remove(&hash);
            self.obs.metrics.inc("adapter_block_refetch_total");
            self.request_block(net, hash);
        }

        // Proactive block download: the adapter's sync pipeline fetches
        // best-chain bodies ahead of canister requests (bounded
        // concurrency), so that Algorithm 1 can serve connected runs of
        // blocks instead of one per request round-trip.
        const MAX_INFLIGHT: usize = 24;
        if self.inflight_blocks.len() < MAX_INFLIGHT {
            let mut wanted = Vec::new();
            for hash in self.store.best_chain_hashes().into_iter().rev() {
                if self.inflight_blocks.len() + wanted.len() >= MAX_INFLIGHT {
                    break;
                }
                if !self.store.has_block(&hash) && !self.inflight_blocks.contains_key(&hash) {
                    wanted.push(hash);
                }
            }
            for hash in wanted {
                self.request_block(net, hash);
            }
        }

        // Drain inboxes.
        let conns = self.manager.connection_ids();
        for conn in conns {
            let inbox = net.drain_external(conn);
            for msg in inbox {
                self.handle_network_message(net, conn, msg);
            }
        }

        // Refresh the state gauges once per upkeep pass.
        let m = &mut self.obs.metrics;
        m.set_gauge("adapter_connections", self.manager.connections().len() as i64);
        m.set_gauge("adapter_known_addresses", self.manager.addresses().len() as i64);
        m.set_gauge("adapter_headers", self.store.header_count() as i64);
        m.set_gauge("adapter_tip_height", self.store.tip_height() as i64);
        m.set_gauge("adapter_tx_cache_size", self.txcache.len() as i64);
        m.set_gauge("adapter_inflight_blocks", self.inflight_blocks.len() as i64);
    }

    fn handle_network_message(&mut self, net: &mut BtcNetwork, conn: ConnId, msg: Message) {
        let now_unix = net.unix_time(net.now());
        self.obs.metrics.inc_with("adapter_messages_received_total", &[("type", msg.kind())]);
        match msg {
            Message::Addr(addrs) => {
                self.obs.metrics.add("adapter_addresses_learned_total", addrs.len() as u64);
                self.manager.learn_addresses(&addrs);
            }
            Message::Headers(headers) => {
                // Validate each header exactly as §III-B prescribes; store
                // every valid one, forks included, no resolution.
                self.obs.metrics.add("adapter_headers_received_total", headers.len() as u64);
                for header in headers {
                    match self.store.accept_header(header, now_unix) {
                        Ok(_) => self.obs.metrics.inc("adapter_headers_accepted_total"),
                        Err(_) => self.obs.metrics.inc("adapter_headers_rejected_total"),
                    }
                }
            }
            Message::Inv(items) => {
                let mut wanted = Vec::new();
                for item in items {
                    match item {
                        Inventory::Block(hash) => {
                            if !self.seen_inv.contains(&hash) {
                                self.seen_inv.insert(hash);
                                wanted.push(Inventory::Block(hash));
                            }
                        }
                        // The adapter is not interested in inbound
                        // transactions; it is not a mempool node.
                        Inventory::Transaction(_) => {}
                    }
                }
                if !wanted.is_empty() {
                    self.obs.metrics.add_with(
                        "adapter_getdata_sent_total",
                        &[("item", "block")],
                        wanted.len() as u64,
                    );
                    net.send_external(conn, Message::GetData(wanted));
                }
            }
            Message::BlockMsg(block) => {
                let hash = block.block_hash();
                self.inflight_blocks.remove(&hash);
                // Header-first: a block whose header does not validate is
                // discarded together with its body.
                match self.store.accept_block(*block, now_unix) {
                    Ok(_) => self.obs.metrics.inc("adapter_blocks_received_total"),
                    Err(_) => self.obs.metrics.inc("adapter_blocks_rejected_total"),
                }
            }
            Message::GetData(items) => {
                // Peers fetch transactions we advertised: cache hits are
                // served, misses are recorded (the tx expired or was never
                // ours).
                let total = self.manager.connections().len();
                for item in items {
                    if let Inventory::Transaction(txid) = item {
                        if let Some(tx) = self.txcache.get(&txid).cloned() {
                            self.obs.metrics.inc("adapter_txcache_hits_total");
                            net.send_external(conn, Message::TxMsg(tx));
                            self.txcache.mark_delivered(&txid, conn.0, total);
                        } else {
                            self.obs.metrics.inc("adapter_txcache_misses_total");
                        }
                    }
                }
            }
            Message::Ping(nonce) => net.send_external(conn, Message::Pong(nonce)),
            Message::GetAddr
            | Message::GetHeaders { .. }
            | Message::TxMsg(_)
            | Message::NotFound(_)
            | Message::Pong(_) => {}
        }
    }

    fn request_block(&mut self, net: &mut BtcNetwork, hash: BlockHash) {
        let conns = self.manager.connection_ids();
        if conns.is_empty() {
            return;
        }
        let conn = *self.rng.choose(&conns);
        self.obs.metrics.inc_with("adapter_getdata_sent_total", &[("item", "block")]);
        net.send_external(conn, Message::GetData(vec![Inventory::Block(hash)]));
        self.inflight_blocks.insert(hash, net.now());
    }

    /// **Algorithm 1**: serves a canister request `(β*, A, T)` from the
    /// local header tree `B_a`/`𝓑_a`, returning `[B, N]`.
    ///
    /// Outbound transactions are cached and advertised; the header tree is
    /// walked breadth-first from the anchor; available blocks extending
    /// the canister's set are returned subject to the 2 MiB soft cap and
    /// the height-dependent block-count rule; headers of missing blocks
    /// are returned in `N` (capped at 100) and their bodies requested
    /// asynchronously from peers.
    pub fn handle_request(
        &mut self,
        net: &mut BtcNetwork,
        request: &GetSuccessorsRequest,
    ) -> GetSuccessorsResponse {
        let now = net.now();
        let span = self.obs.trace.span_start(
            "adapter.get_successors",
            now,
            &[
                ("anchor_height", FieldValue::U64(request.anchor_height)),
                ("processed", FieldValue::U64(request.processed.len() as u64)),
                ("transactions", FieldValue::U64(request.transactions.len() as u64)),
            ],
        );
        self.obs.metrics.inc("adapter_requests_total");
        // Lines 1–3: cache and advertise outbound transactions.
        for tx in &request.transactions {
            let txid = self.txcache.insert(tx.clone(), now);
            self.obs.metrics.inc("adapter_txs_advertised_total");
            for conn in self.manager.connection_ids() {
                net.send_external(conn, Message::Inv(vec![Inventory::Transaction(txid)]));
            }
        }

        let anchor_hash = request.anchor.block_hash();
        let have: HashSet<BlockHash> = request
            .processed
            .iter()
            .copied()
            .chain(std::iter::once(anchor_hash))
            .collect();
        let max_blocks = self.max_blocks_at_height(request.anchor_height);

        let mut blocks: Vec<Block> = Vec::new();
        let mut returned: HashSet<BlockHash> = HashSet::new(); // the set 𝓑
        let mut next: Vec<BlockHeader> = Vec::new();
        let mut response_bytes = 0usize;
        let mut to_fetch: Vec<BlockHash> = Vec::new();

        // Lines 4–16: BFS over the header tree starting at β*.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(anchor_hash);
        while let Some(current) = queue.pop_front() {
            if next.len() >= MAX_NEXT_HEADERS {
                break;
            }
            let Some(stored) = self.store.header(&current) else { continue };
            let header = stored.header;
            let is_anchor = current == anchor_hash;

            if !is_anchor {
                let prev_connected =
                    have.contains(&header.prev_blockhash) || returned.contains(&header.prev_blockhash);
                if !have.contains(&current) && prev_connected {
                    match self.store.block(&current) {
                        Some(block) => {
                            let size = block.encoded_len();
                            let within_soft_cap =
                                response_bytes < MAX_RESPONSE_BLOCK_BYTES || blocks.is_empty();
                            if within_soft_cap && blocks.len() < max_blocks {
                                response_bytes += size;
                                blocks.push(block.clone());
                                returned.insert(current);
                            }
                        }
                        None => {
                            // Fetch asynchronously for a future request.
                            if !self.inflight_blocks.contains_key(&current) {
                                to_fetch.push(current);
                            }
                        }
                    }
                }
                if !have.contains(&current) && !returned.contains(&current) {
                    next.push(header);
                }
            }
            for child in self.store.children(&current) {
                queue.push_back(*child);
            }
        }

        for hash in to_fetch {
            self.request_block(net, hash);
        }
        let m = &mut self.obs.metrics;
        m.add("adapter_response_blocks_total", blocks.len() as u64);
        m.add("adapter_response_bytes_total", response_bytes as u64);
        m.observe("adapter_response_bytes", response_bytes as u64);
        self.obs.trace.span_end(
            span,
            net.now(),
            &[
                ("blocks", FieldValue::U64(blocks.len() as u64)),
                ("next", FieldValue::U64(next.len() as u64)),
                ("bytes", FieldValue::U64(response_bytes as u64)),
            ],
        );
        GetSuccessorsResponse { blocks, next }
    }

    /// The height-dependent cap on blocks per response: unbounded during
    /// bulk sync below the hard-coded height, a single block above it —
    /// the safeguard Lemma IV.3's proof relies on.
    fn max_blocks_at_height(&self, anchor_height: u64) -> usize {
        if anchor_height < self.params.bulk_sync_height {
            usize::MAX
        } else {
            1
        }
    }
}

impl std::fmt::Debug for BitcoinAdapter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitcoinAdapter")
            .field("network", &self.params.network)
            .field("headers", &self.store.header_count())
            .field("connections", &self.manager.connections().len())
            .field("tx_cache", &self.txcache.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::{Amount, Network, OutPoint, Script, Transaction, TxIn, TxOut, Txid};
    use icbtc_btcnet::network::NetworkConfig;
    use icbtc_btcnet::NodeId;

    fn sync_adapter(net: &mut BtcNetwork, adapter: &mut BitcoinAdapter, rounds: usize) {
        for _ in 0..rounds {
            adapter.step(net);
            net.run_until(net.now() + SimDuration::from_secs(3));
        }
    }

    fn setup(nodes: usize, hours: u64) -> (BtcNetwork, BitcoinAdapter) {
        let mut net = BtcNetwork::new(NetworkConfig::regtest(nodes), 42);
        net.run_until(SimTime::from_secs(hours * 3600));
        let params = IntegrationParams::for_network(Network::Regtest).with_connections(2);
        let adapter = BitcoinAdapter::new(params, 7);
        (net, adapter)
    }

    #[test]
    fn header_sync_reaches_network_tip() {
        let (mut net, mut adapter) = setup(4, 6);
        let tip = net.best_height();
        assert!(tip > 10, "need a real chain, got {tip}");
        sync_adapter(&mut net, &mut adapter, 40);
        assert_eq!(adapter.best_header_height(), net.best_height());
    }

    fn request_for_anchor(adapter: &BitcoinAdapter, processed: Vec<BlockHash>) -> GetSuccessorsRequest {
        GetSuccessorsRequest {
            anchor: adapter.params.network.genesis_block().header,
            anchor_height: 0,
            processed,
            transactions: Vec::new(),
        }
    }

    #[test]
    fn algorithm1_serves_blocks_in_connected_order() {
        let (mut net, mut adapter) = setup(4, 4);
        sync_adapter(&mut net, &mut adapter, 40);

        // First request: blocks may need fetching; iterate until served.
        let mut response = GetSuccessorsResponse::default();
        for _ in 0..40 {
            response = adapter.handle_request(&mut net, &request_for_anchor(&adapter, vec![]));
            if !response.blocks.is_empty() && response.next.is_empty() {
                break;
            }
            sync_adapter(&mut net, &mut adapter, 2);
        }
        assert!(!response.blocks.is_empty());
        // Every returned block connects to the anchor or an earlier block
        // in the response.
        let mut known: HashSet<BlockHash> =
            std::iter::once(Network::Regtest.genesis_hash()).collect();
        for block in &response.blocks {
            assert!(known.contains(&block.header.prev_blockhash), "disconnected block");
            known.insert(block.block_hash());
        }
    }

    #[test]
    fn algorithm1_respects_processed_set() {
        let (mut net, mut adapter) = setup(3, 4);
        sync_adapter(&mut net, &mut adapter, 40);
        let mut response = GetSuccessorsResponse::default();
        for _ in 0..40 {
            response = adapter.handle_request(&mut net, &request_for_anchor(&adapter, vec![]));
            if !response.blocks.is_empty() && response.next.is_empty() {
                break;
            }
            sync_adapter(&mut net, &mut adapter, 2);
        }
        let served: Vec<BlockHash> = response.blocks.iter().map(|b| b.block_hash()).collect();
        // Marking everything processed yields an empty response.
        let full = adapter.handle_request(&mut net, &request_for_anchor(&adapter, served.clone()));
        assert!(full.blocks.is_empty(), "all blocks already processed");
        // Marking all but the last: only the last is served again.
        let partial = adapter
            .handle_request(&mut net, &request_for_anchor(&adapter, served[..served.len() - 1].to_vec()));
        assert_eq!(partial.blocks.len(), 1);
        assert_eq!(partial.blocks[0].block_hash(), *served.last().unwrap());
    }

    #[test]
    fn algorithm1_single_block_above_bulk_sync_height() {
        let (mut net, mut adapter) = setup(3, 4);
        // Force single-block mode everywhere.
        adapter.params = adapter.params.with_bulk_sync_height(0);
        sync_adapter(&mut net, &mut adapter, 40);
        let mut response = GetSuccessorsResponse::default();
        for _ in 0..40 {
            response = adapter.handle_request(&mut net, &request_for_anchor(&adapter, vec![]));
            if !response.blocks.is_empty() {
                break;
            }
            sync_adapter(&mut net, &mut adapter, 2);
        }
        assert_eq!(response.blocks.len(), 1, "one block at a time above the boundary");
        // The remaining chain shows up as upcoming headers.
        assert!(!response.next.is_empty());
    }

    #[test]
    fn algorithm1_next_headers_capped() {
        let (mut net, mut adapter) = setup(3, 30);
        sync_adapter(&mut net, &mut adapter, 60);
        assert!(adapter.best_header_height() > MAX_NEXT_HEADERS as u64);
        // Before any blocks are fetched, everything lands in `next`.
        let mut fresh = BitcoinAdapter::new(adapter.params, 8);
        // Move the header tree over without blocks: sync headers only.
        for _ in 0..60 {
            fresh.step(&mut net);
            net.run_until(net.now() + SimDuration::from_secs(3));
            if fresh.best_header_height() == adapter.best_header_height() {
                break;
            }
        }
        let response = fresh.handle_request(&mut net, &request_for_anchor(&fresh, vec![]));
        assert!(response.next.len() <= MAX_NEXT_HEADERS);
    }

    #[test]
    fn outbound_transactions_reach_the_network() {
        let (mut net, mut adapter) = setup(4, 2);
        sync_adapter(&mut net, &mut adapter, 10);
        let tx = Transaction {
            version: 2,
            inputs: vec![TxIn::new(OutPoint::new(Txid([3; 32]), 0))],
            outputs: vec![TxOut::new(Amount::from_sat(250), Script::new_p2wpkh(&[9; 20]))],
            lock_time: 0,
        };
        let txid = tx.txid();
        let request = GetSuccessorsRequest {
            anchor: Network::Regtest.genesis_block().header,
            anchor_height: 0,
            processed: vec![],
            transactions: vec![tx],
        };
        adapter.handle_request(&mut net, &request);
        assert_eq!(adapter.tx_cache_len(), 1);
        // Let inv/getdata/tx propagate and gossip spread it.
        sync_adapter(&mut net, &mut adapter, 20);
        let in_mempools = (0..4)
            .filter(|i| net.node(NodeId(*i)).has_mempool_tx(&txid))
            .count();
        assert!(in_mempools >= 1, "transaction reached no mempool");
    }

    #[test]
    fn adapter_keeps_fork_headers() {
        let (mut net, mut adapter) = setup(3, 4);
        sync_adapter(&mut net, &mut adapter, 40);
        // Build a competing fork and feed it via the network.
        let honest_chain = net.node(NodeId(0)).chain().clone();
        let branch = honest_chain.best_chain_hash_at(honest_chain.tip_height().saturating_sub(2)).unwrap();
        let mut fork = icbtc_btcnet::adversary::SecretForkMiner::branch_at(&honest_chain, branch).unwrap();
        let fork_blocks = fork.extend(1, 5);
        net.submit_block(NodeId(0), fork_blocks[0].clone());
        sync_adapter(&mut net, &mut adapter, 20);
        // No fork resolution: the adapter stores both branches' headers.
        let before = adapter.header_count();
        assert!(before as u64 > adapter.best_header_height(), "fork header retained");
    }
}

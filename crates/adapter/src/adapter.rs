//! The Bitcoin adapter (§III-B of the paper).
//!
//! A per-replica process that (a) keeps ℓ connections into the Bitcoin
//! network, (b) downloads and validates *all* block headers (forks
//! included — the adapter performs no fork resolution by design, leaving
//! that to the canister's stability logic), (c) fetches blocks on demand,
//! (d) advertises outbound transactions, and (e) answers the canister's
//! `GetSuccessors` requests with **Algorithm 1**.

use std::collections::{BTreeMap, BTreeSet};

use icbtc_bitcoin::encode::Encodable;
use icbtc_bitcoin::{Block, BlockHash, BlockHeader};
use icbtc_btcnet::chain::ValidationError;
use icbtc_btcnet::{BtcNetwork, ChainStore, ConnId, Inventory, Message};
use icbtc_core::{
    GetSuccessorsRequest, GetSuccessorsResponse, IntegrationParams, MAX_NEXT_HEADERS,
    MAX_RESPONSE_BLOCK_BYTES,
};
use icbtc_sim::obs::{FieldValue, Obs};
use icbtc_sim::{SimDuration, SimRng, SimTime};

use crate::discovery::ConnectionManager;
use crate::peers::{Offence, PeerScorer, BAN_SCORE};
use crate::txcache::TransactionCache;

/// The Bitcoin adapter of one IC replica.
///
/// Drive it by alternating [`BitcoinAdapter::step`] (network upkeep) with
/// `net.run_until(..)`, and serve the canister with
/// [`BitcoinAdapter::handle_request`].
///
/// # Examples
///
/// ```
/// use icbtc_adapter::BitcoinAdapter;
/// use icbtc_btcnet::network::{BtcNetwork, NetworkConfig};
/// use icbtc_core::IntegrationParams;
/// use icbtc_bitcoin::Network;
/// use icbtc_sim::{SimDuration, SimTime};
///
/// let mut net = BtcNetwork::new(NetworkConfig::regtest(4), 1);
/// net.run_until(SimTime::from_secs(3600));
/// let params = IntegrationParams::for_network(Network::Regtest);
/// let mut adapter = BitcoinAdapter::new(params, 99);
/// // A few step/run iterations pull in the headers.
/// for _ in 0..30 {
///     adapter.step(&mut net);
///     net.run_until(net.now() + SimDuration::from_secs(2));
/// }
/// assert!(adapter.header_count() > 1);
/// ```
pub struct BitcoinAdapter {
    params: IntegrationParams,
    manager: ConnectionManager,
    store: ChainStore,
    txcache: TransactionCache,
    rng: SimRng,
    /// Blocks requested from peers and not yet received. Ordered so that
    /// iteration (and therefore the re-request schedule) is independent
    /// of hasher randomization.
    inflight_blocks: BTreeMap<BlockHash, InflightBlock>,
    /// Per-connection: has a getheaders round-trip been issued recently?
    last_getheaders: SimTime,
    /// Peers' inventory announcements we have already chased. Ordered and
    /// pruned (see [`SEEN_INV_HORIZON`]) so it stays bounded over soaks.
    seen_inv: BTreeSet<BlockHash>,
    /// Per-node misbehaviour scores (ban at [`BAN_SCORE`]).
    scorer: PeerScorer,
    /// Last time each live connection delivered any message.
    last_heard: BTreeMap<ConnId, SimTime>,
    /// Header-sync stall tracking: the last time the tip advanced.
    last_tip_height: u64,
    last_tip_advance: SimTime,
    /// Observability endpoint (metrics + trace), component `"adapter"`.
    obs: Obs,
}

/// One outstanding block fetch.
#[derive(Clone, Copy, Debug)]
struct InflightBlock {
    /// The connection the fetch was sent on — excluded from re-request
    /// peer selection when the fetch times out.
    conn: ConnId,
    /// When the fetch was issued.
    requested_at: SimTime,
    /// Prior attempts for this hash (drives the exponential backoff).
    attempts: u32,
}

/// Base timeout for an outstanding block fetch; doubles per failed
/// attempt up to `<<` [`MAX_BACKOFF_EXPONENT`].
const INFLIGHT_BASE_TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// Cap on the backoff doubling (30 s << 4 = 480 s).
const MAX_BACKOFF_EXPONENT: u32 = 4;

/// Minimum spacing between header-sync rounds.
const GETHEADERS_INTERVAL: SimDuration = SimDuration::from_secs(5);

/// A connection silent this long — while at least one *other* connection
/// keeps talking — is treated as stalled, scored, and rotated out. The
/// "other connection" condition keeps a global outage (we are
/// partitioned, every peer is silent) from banning the whole pool.
const PEER_SILENCE_TIMEOUT: SimDuration = SimDuration::from_secs(90);

/// If the best header height does not advance for this long despite live
/// connections, the adapter forces a fresh discovery round.
const HEADER_STALL_TIMEOUT: SimDuration = SimDuration::from_secs(1800);

/// `seen_inv` entries whose header sits this far below the tip are
/// pruned — deeper blocks are either stored already or unreachable via
/// inv anyway (they are fetched through the locator-driven sync path).
const SEEN_INV_HORIZON: u64 = 32;

/// The exponential re-request timeout after `attempts` failures.
fn backoff_timeout(attempts: u32) -> SimDuration {
    INFLIGHT_BASE_TIMEOUT * (1u64 << attempts.min(MAX_BACKOFF_EXPONENT))
}

/// Static label for the backoff-retry counter (labels must be
/// `&'static str` for the deterministic metrics registry).
fn attempt_bucket(attempt: u32) -> &'static str {
    match attempt {
        0 | 1 => "1",
        2 => "2",
        3 => "3",
        _ => "4+",
    }
}

/// Whether a header rejection is a *hard* protocol violation worth
/// scoring. Orphans are everyday out-of-order delivery; duplicates never
/// reach this path.
fn header_offence(err: &ValidationError) -> bool {
    matches!(
        err,
        ValidationError::BadProofOfWork
            | ValidationError::BadDifficultyBits { .. }
            | ValidationError::TimestampTooOld
            | ValidationError::TimestampTooNew
    )
}

/// Whether a block rejection is a hard violation: malformed bodies and
/// every hard header error. Orphan/unknown-parent cases stay benign.
fn block_offence(err: &ValidationError) -> bool {
    matches!(err, ValidationError::MalformedBlock) || header_offence(err)
}

impl BitcoinAdapter {
    /// Creates an adapter for the configured network.
    pub fn new(params: IntegrationParams, seed: u64) -> BitcoinAdapter {
        BitcoinAdapter {
            manager: ConnectionManager::new(params),
            store: ChainStore::new(params.network),
            txcache: TransactionCache::new(SimDuration::from_secs(params.tx_cache_expiry_secs)),
            rng: SimRng::seed_from(seed),
            params,
            inflight_blocks: BTreeMap::new(),
            last_getheaders: SimTime::ZERO,
            seen_inv: BTreeSet::new(),
            scorer: PeerScorer::new(),
            last_heard: BTreeMap::new(),
            last_tip_height: 0,
            last_tip_advance: SimTime::ZERO,
            obs: Obs::new("adapter"),
        }
    }

    /// Read access to the adapter's observability endpoint.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable access to the adapter's observability endpoint.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// The integration parameters in force.
    pub fn params(&self) -> &IntegrationParams {
        &self.params
    }

    /// The connection manager (discovery state).
    pub fn connection_manager(&self) -> &ConnectionManager {
        &self.manager
    }

    /// Number of validated headers held (including genesis).
    pub fn header_count(&self) -> usize {
        self.store.header_count()
    }

    /// Greatest header height seen.
    pub fn best_header_height(&self) -> u64 {
        self.store.tip_height()
    }

    /// Whether the full block for `hash` is stored locally.
    pub fn has_block(&self, hash: &BlockHash) -> bool {
        self.store.has_block(hash)
    }

    /// Number of cached outbound transactions.
    pub fn tx_cache_len(&self) -> usize {
        self.txcache.len()
    }

    /// Read access to the adapter's validated header/block store.
    pub fn chain(&self) -> &ChainStore {
        &self.store
    }

    /// Current size of the inventory dedupe set (bounded; see
    /// [`SEEN_INV_HORIZON`]).
    pub fn seen_inv_len(&self) -> usize {
        self.seen_inv.len()
    }

    /// Number of outstanding block fetches.
    pub fn inflight_len(&self) -> usize {
        self.inflight_blocks.len()
    }

    /// Read access to the per-peer misbehaviour scores.
    pub fn peer_scorer(&self) -> &PeerScorer {
        &self.scorer
    }

    /// One upkeep pass: maintain connections, run header sync, chase
    /// inventory, expire the transaction cache, drain and dispatch all
    /// inbound messages.
    pub fn step(&mut self, net: &mut BtcNetwork) {
        let now = net.now();
        self.manager.maintain(net, &mut self.rng);
        self.sync_peer_table(now);
        self.txcache.expire(now);
        self.detect_stalls(net);

        // Periodic header sync against every connection.
        if now.saturating_since(self.last_getheaders) >= GETHEADERS_INTERVAL
            || self.last_getheaders == SimTime::ZERO
        {
            self.last_getheaders = now;
            let locator = self.store.locator();
            for conn in self.manager.connection_ids() {
                net.send_external(
                    conn,
                    Message::GetHeaders { locator: locator.clone(), stop: BlockHash::ZERO },
                );
                self.obs.metrics.inc("adapter_getheaders_sent_total");
            }
        }

        // Re-request timed-out block fetches with exponential backoff,
        // rotating away from the peer that failed to serve.
        let stale: Vec<(BlockHash, InflightBlock)> = self
            .inflight_blocks
            .iter()
            .filter(|(_, f)| now.saturating_since(f.requested_at) >= backoff_timeout(f.attempts))
            .map(|(h, f)| (*h, *f))
            .collect();
        for (hash, inflight) in stale {
            self.inflight_blocks.remove(&hash);
            self.obs.metrics.inc("adapter_block_refetch_total");
            self.obs.metrics.inc_with(
                "adapter_block_backoff_retries_total",
                &[("attempt", attempt_bucket(inflight.attempts + 1))],
            );
            self.request_block_from(net, hash, Some(inflight.conn), inflight.attempts + 1);
        }

        // Proactive block download: the adapter's sync pipeline fetches
        // best-chain bodies ahead of canister requests (bounded
        // concurrency), so that Algorithm 1 can serve connected runs of
        // blocks instead of one per request round-trip.
        const MAX_INFLIGHT: usize = 24;
        if self.inflight_blocks.len() < MAX_INFLIGHT {
            let mut wanted = Vec::new();
            for hash in self.store.best_chain_hashes().into_iter().rev() {
                if self.inflight_blocks.len() + wanted.len() >= MAX_INFLIGHT {
                    break;
                }
                if !self.store.has_block(&hash) && !self.inflight_blocks.contains_key(&hash) {
                    wanted.push(hash);
                }
            }
            for hash in wanted {
                self.request_block(net, hash);
            }
        }

        // Drain inboxes.
        let conns = self.manager.connection_ids();
        for conn in conns {
            let inbox = net.drain_external(conn);
            for msg in inbox {
                self.last_heard.insert(conn, net.now());
                self.handle_network_message(net, conn, msg);
            }
        }

        self.prune_seen_inv();

        // Refresh the state gauges once per upkeep pass.
        let m = &mut self.obs.metrics;
        m.set_gauge("adapter_connections", self.manager.connections().len() as i64);
        m.set_gauge("adapter_known_addresses", self.manager.addresses().len() as i64);
        m.set_gauge("adapter_headers", self.store.header_count() as i64);
        m.set_gauge("adapter_tip_height", self.store.tip_height() as i64);
        m.set_gauge("adapter_tx_cache_size", self.txcache.len() as i64);
        m.set_gauge("adapter_inflight_blocks", self.inflight_blocks.len() as i64);
        m.set_gauge("adapter_seen_inv_size", self.seen_inv.len() as i64);
        m.set_gauge("adapter_banned_peers", self.manager.banned_len() as i64);
    }

    /// Reconciles the per-connection bookkeeping with the live
    /// connection set: dead connections are forgotten, new ones start
    /// their silence clock now.
    fn sync_peer_table(&mut self, now: SimTime) {
        let live: BTreeSet<ConnId> = self.manager.connection_ids().into_iter().collect();
        self.last_heard.retain(|c, _| live.contains(c));
        for conn in live {
            self.last_heard.entry(conn).or_insert(now);
        }
    }

    /// Stall detection, two layers:
    ///
    /// 1. *Per-connection silence*: a connection that delivered nothing
    ///    for [`PEER_SILENCE_TIMEOUT`] while some other connection kept
    ///    talking is scored and rotated out (reconnect-elsewhere).
    /// 2. *Global header stall*: if the tip has not advanced for
    ///    [`HEADER_STALL_TIMEOUT`] despite live connections, the whole
    ///    pool is suspect — force a fresh discovery round.
    fn detect_stalls(&mut self, net: &mut BtcNetwork) {
        let now = net.now();
        let tip = self.store.tip_height();
        if tip > self.last_tip_height {
            self.last_tip_height = tip;
            self.last_tip_advance = now;
        }

        let conns: Vec<(ConnId, icbtc_btcnet::NodeId)> = self.manager.connections().to_vec();
        if conns.len() > 1 {
            let any_live = self
                .last_heard
                .values()
                .any(|t| now.saturating_since(*t) < PEER_SILENCE_TIMEOUT);
            if any_live {
                for (conn, _) in conns {
                    let Some(heard) = self.last_heard.get(&conn).copied() else { continue };
                    if now.saturating_since(heard) < PEER_SILENCE_TIMEOUT {
                        continue;
                    }
                    self.obs.metrics.inc("adapter_peer_stalls_total");
                    let banned = self.punish(net, conn, Offence::Stall);
                    if !banned {
                        // Not bad enough to ban (yet): rotate to a
                        // different peer and keep the score on file.
                        self.manager.drop_connection(net, conn);
                    }
                    self.last_heard.remove(&conn);
                }
            }
        }

        if now.saturating_since(self.last_tip_advance) >= HEADER_STALL_TIMEOUT
            && !self.manager.connections().is_empty()
        {
            self.obs.metrics.inc("adapter_header_stalls_total");
            self.obs.trace.event(
                "adapter.header_stall",
                now,
                &[("tip", FieldValue::U64(self.store.tip_height()))],
            );
            self.manager.force_discovery();
            for conn in self.manager.connection_ids() {
                net.send_external(conn, Message::GetAddr);
            }
            // Rotate one connection so a fully-wedged pool makes room
            // for the peers discovery turns up.
            if let Some(&(victim, _)) = self.manager.connections().first() {
                self.manager.drop_connection(net, victim);
                self.last_heard.remove(&victim);
            }
            self.last_tip_advance = now; // re-arm
        }
    }

    /// Records an offence against the node behind `conn`; bans the node
    /// (severing its connections, purging its address, reconnecting
    /// elsewhere on the next maintain pass) once it reaches
    /// [`BAN_SCORE`]. Returns `true` if the ban landed.
    fn punish(&mut self, net: &mut BtcNetwork, conn: ConnId, offence: Offence) -> bool {
        self.obs
            .metrics
            .inc_with("adapter_peer_offences_total", &[("kind", offence.kind())]);
        let Some(node) = self.manager.node_for(conn) else {
            // The connection is already gone; nothing to attribute.
            return false;
        };
        let score = self.scorer.record(node, offence);
        if score < BAN_SCORE {
            return false;
        }
        let now = net.now();
        self.obs.metrics.inc("adapter_peer_bans_total");
        self.obs.trace.event(
            "adapter.peer_banned",
            now,
            &[
                ("node", FieldValue::U64(node.0 as u64)),
                ("score", FieldValue::U64(score as u64)),
            ],
        );
        self.scorer.forget(node);
        self.last_heard.remove(&conn);
        self.manager.ban(net, node, now);
        true
    }

    /// Drops `seen_inv` entries that can no longer matter: the block is
    /// stored, or its header sits deeper than [`SEEN_INV_HORIZON`] below
    /// the tip. Unknown hashes are kept — they are still being chased.
    fn prune_seen_inv(&mut self) {
        let tip = self.store.tip_height();
        let store = &self.store;
        self.seen_inv.retain(|hash| {
            if store.has_block(hash) {
                return false;
            }
            match store.header(hash) {
                Some(stored) => stored.height + SEEN_INV_HORIZON >= tip,
                None => true,
            }
        });
    }

    fn handle_network_message(&mut self, net: &mut BtcNetwork, conn: ConnId, msg: Message) {
        let now_unix = net.unix_time(net.now());
        self.obs.metrics.inc_with("adapter_messages_received_total", &[("type", msg.kind())]);
        if msg.is_oversized() {
            // Never process an over-limit payload; score the sender.
            self.obs.metrics.inc("adapter_oversized_messages_total");
            self.punish(net, conn, Offence::Oversized);
            return;
        }
        match msg {
            Message::Addr(addrs) => {
                self.obs.metrics.add("adapter_addresses_learned_total", addrs.len() as u64);
                self.manager.learn_addresses(&addrs);
            }
            Message::Headers(headers) => {
                // Validate each header exactly as §III-B prescribes; store
                // every valid one, forks included, no resolution. Hard
                // violations score the sender; once the ban lands the
                // rest of its batch is discarded.
                self.obs.metrics.add("adapter_headers_received_total", headers.len() as u64);
                let validate = self.obs.prof.enter("header_validate");
                for header in headers {
                    self.obs.prof.add(80);
                    match self.store.accept_header(header, now_unix) {
                        Ok(_) => self.obs.metrics.inc("adapter_headers_accepted_total"),
                        Err(err) => {
                            self.obs.metrics.inc("adapter_headers_rejected_total");
                            if header_offence(&err) && self.punish(net, conn, Offence::InvalidHeader)
                            {
                                break;
                            }
                        }
                    }
                }
                self.obs.prof.exit(validate);
            }
            Message::Inv(items) => {
                let mut wanted = Vec::new();
                for item in items {
                    match item {
                        Inventory::Block(hash) => {
                            if !self.seen_inv.contains(&hash) {
                                self.seen_inv.insert(hash);
                                wanted.push(Inventory::Block(hash));
                            }
                        }
                        // The adapter is not interested in inbound
                        // transactions; it is not a mempool node.
                        Inventory::Transaction(_) => {}
                    }
                }
                if !wanted.is_empty() {
                    self.obs.metrics.add_with(
                        "adapter_getdata_sent_total",
                        &[("item", "block")],
                        wanted.len() as u64,
                    );
                    net.send_external(conn, Message::GetData(wanted));
                }
            }
            Message::BlockMsg(block) => {
                let hash = block.block_hash();
                self.inflight_blocks.remove(&hash);
                // A fetched body completes its getdata round-trip; the
                // header-first check inside is a nested frame.
                let roundtrip = self.obs.prof.enter("getdata_roundtrip");
                let body_cost =
                    80 + block.txdata.iter().map(|t| t.vsize() as u64).sum::<u64>();
                self.obs.prof.add(body_cost);
                let validate = self.obs.prof.enter("header_validate");
                self.obs.prof.add(80);
                self.obs.prof.exit(validate);
                // Header-first: a block whose header does not validate is
                // discarded together with its body; hard violations
                // score the sender.
                let outcome = self.store.accept_block(*block, now_unix);
                self.obs.prof.exit(roundtrip);
                match outcome {
                    Ok(_) => self.obs.metrics.inc("adapter_blocks_received_total"),
                    Err(err) => {
                        self.obs.metrics.inc("adapter_blocks_rejected_total");
                        if block_offence(&err) {
                            self.punish(net, conn, Offence::InvalidBlock);
                        }
                    }
                }
            }
            Message::NotFound(items) => {
                // The peer does not hold something we asked for — benign
                // (inventory races happen), but re-request the block
                // immediately from a different connection.
                for item in items {
                    if let Inventory::Block(hash) = item {
                        if let Some(inflight) = self.inflight_blocks.remove(&hash) {
                            self.obs.metrics.inc("adapter_block_notfound_total");
                            self.request_block_from(net, hash, Some(conn), inflight.attempts);
                        }
                    }
                }
            }
            Message::GetData(items) => {
                // Peers fetch transactions we advertised: cache hits are
                // served, misses are recorded (the tx expired or was never
                // ours).
                let total = self.manager.connections().len();
                for item in items {
                    if let Inventory::Transaction(txid) = item {
                        if let Some(tx) = self.txcache.get(&txid).cloned() {
                            self.obs.metrics.inc("adapter_txcache_hits_total");
                            net.send_external(conn, Message::TxMsg(tx));
                            self.txcache.mark_delivered(&txid, conn.0, total);
                        } else {
                            self.obs.metrics.inc("adapter_txcache_misses_total");
                        }
                    }
                }
            }
            Message::Ping(nonce) => net.send_external(conn, Message::Pong(nonce)),
            Message::GetAddr | Message::GetHeaders { .. } | Message::TxMsg(_) | Message::Pong(_) => {
            }
        }
    }

    fn request_block(&mut self, net: &mut BtcNetwork, hash: BlockHash) {
        self.request_block_from(net, hash, None, 0);
    }

    /// Issues a `getdata` for `hash` on a random connection, excluding
    /// `exclude` (the peer a previous fetch failed on) whenever an
    /// alternative exists. `attempts` carries the backoff history.
    fn request_block_from(
        &mut self,
        net: &mut BtcNetwork,
        hash: BlockHash,
        exclude: Option<ConnId>,
        attempts: u32,
    ) {
        let mut conns = self.manager.connection_ids();
        if let Some(excluded) = exclude {
            if conns.len() > 1 {
                conns.retain(|c| *c != excluded);
            }
        }
        if conns.is_empty() {
            return;
        }
        let conn = *self.rng.choose(&conns);
        self.obs.metrics.inc_with("adapter_getdata_sent_total", &[("item", "block")]);
        // The request half of a getdata round-trip (36-byte inv entry);
        // the reply half is accounted when the body arrives.
        let roundtrip = self.obs.prof.enter("getdata_roundtrip");
        self.obs.prof.add(36);
        self.obs.prof.exit(roundtrip);
        net.send_external(conn, Message::GetData(vec![Inventory::Block(hash)]));
        self.inflight_blocks
            .insert(hash, InflightBlock { conn, requested_at: net.now(), attempts });
    }

    /// **Algorithm 1**: serves a canister request `(β*, A, T)` from the
    /// local header tree `B_a`/`𝓑_a`, returning `[B, N]`.
    ///
    /// Outbound transactions are cached and advertised; the header tree is
    /// walked breadth-first from the anchor; available blocks extending
    /// the canister's set are returned subject to the 2 MiB soft cap and
    /// the height-dependent block-count rule; headers of missing blocks
    /// are returned in `N` (capped at 100) and their bodies requested
    /// asynchronously from peers.
    pub fn handle_request(
        &mut self,
        net: &mut BtcNetwork,
        request: &GetSuccessorsRequest,
    ) -> GetSuccessorsResponse {
        let now = net.now();
        let span = self.obs.trace.span_start(
            "adapter.get_successors",
            now,
            &[
                ("anchor_height", FieldValue::U64(request.anchor_height)),
                ("processed", FieldValue::U64(request.processed.len() as u64)),
                ("transactions", FieldValue::U64(request.transactions.len() as u64)),
            ],
        );
        self.obs.metrics.inc("adapter_requests_total");
        let serve = self.obs.prof.enter("handle_request");
        // Lines 1–3: cache and advertise outbound transactions.
        for tx in &request.transactions {
            let txid = self.txcache.insert(tx.clone(), now);
            self.obs.metrics.inc("adapter_txs_advertised_total");
            for conn in self.manager.connection_ids() {
                net.send_external(conn, Message::Inv(vec![Inventory::Transaction(txid)]));
            }
        }

        let anchor_hash = request.anchor.block_hash();
        let have: BTreeSet<BlockHash> = request
            .processed
            .iter()
            .copied()
            .chain(std::iter::once(anchor_hash))
            .collect();
        let max_blocks = self.max_blocks_at_height(request.anchor_height);

        let mut blocks: Vec<Block> = Vec::new();
        let mut returned: BTreeSet<BlockHash> = BTreeSet::new(); // the set 𝓑
        let mut next: Vec<BlockHeader> = Vec::new();
        let mut response_bytes = 0usize;
        let mut to_fetch: Vec<BlockHash> = Vec::new();

        // Lines 4–16: BFS over the header tree starting at β*.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(anchor_hash);
        while let Some(current) = queue.pop_front() {
            if next.len() >= MAX_NEXT_HEADERS {
                break;
            }
            let Some(stored) = self.store.header(&current) else { continue };
            let header = stored.header;
            let is_anchor = current == anchor_hash;

            if !is_anchor {
                let prev_connected =
                    have.contains(&header.prev_blockhash) || returned.contains(&header.prev_blockhash);
                if !have.contains(&current) && prev_connected {
                    match self.store.block(&current) {
                        Some(block) => {
                            let size = block.encoded_len();
                            let within_soft_cap =
                                response_bytes < MAX_RESPONSE_BLOCK_BYTES || blocks.is_empty();
                            if within_soft_cap && blocks.len() < max_blocks {
                                response_bytes += size;
                                blocks.push(block.clone());
                                returned.insert(current);
                            }
                        }
                        None => {
                            // Fetch asynchronously for a future request.
                            if !self.inflight_blocks.contains_key(&current) {
                                to_fetch.push(current);
                            }
                        }
                    }
                }
                if !have.contains(&current) && !returned.contains(&current) {
                    next.push(header);
                }
            }
            for child in self.store.children(&current) {
                queue.push_back(*child);
            }
        }

        // Graceful degradation: a response that had to defer bodies is
        // still a valid (partial) response — the canister retries and the
        // async fetches fill the gap. Count them so soaks can see how
        // often the adapter degrades under faults.
        if !to_fetch.is_empty() {
            self.obs.metrics.inc("adapter_partial_responses_total");
        }
        for hash in to_fetch {
            self.request_block(net, hash);
        }
        // Serving cost is modeled as the bytes assembled into the
        // response (plus one unit so empty responses still register).
        self.obs.prof.add(1 + response_bytes as u64);
        self.obs.prof.exit(serve);
        let m = &mut self.obs.metrics;
        m.add("adapter_response_blocks_total", blocks.len() as u64);
        m.add("adapter_response_bytes_total", response_bytes as u64);
        m.observe("adapter_response_bytes", response_bytes as u64);
        self.obs.trace.span_end(
            span,
            net.now(),
            &[
                ("blocks", FieldValue::U64(blocks.len() as u64)),
                ("next", FieldValue::U64(next.len() as u64)),
                ("bytes", FieldValue::U64(response_bytes as u64)),
            ],
        );
        GetSuccessorsResponse { blocks, next }
    }

    /// The height-dependent cap on blocks per response: unbounded during
    /// bulk sync below the hard-coded height, a single block above it —
    /// the safeguard Lemma IV.3's proof relies on.
    fn max_blocks_at_height(&self, anchor_height: u64) -> usize {
        if anchor_height < self.params.bulk_sync_height {
            usize::MAX
        } else {
            1
        }
    }
}

impl std::fmt::Debug for BitcoinAdapter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitcoinAdapter")
            .field("network", &self.params.network)
            .field("headers", &self.store.header_count())
            .field("connections", &self.manager.connections().len())
            .field("tx_cache", &self.txcache.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    use icbtc_bitcoin::{Amount, Network, OutPoint, Script, Transaction, TxIn, TxOut, Txid};
    use icbtc_btcnet::network::NetworkConfig;
    use icbtc_btcnet::NodeId;

    fn sync_adapter(net: &mut BtcNetwork, adapter: &mut BitcoinAdapter, rounds: usize) {
        for _ in 0..rounds {
            adapter.step(net);
            net.run_until(net.now() + SimDuration::from_secs(3));
        }
    }

    fn setup(nodes: usize, hours: u64) -> (BtcNetwork, BitcoinAdapter) {
        let mut net = BtcNetwork::new(NetworkConfig::regtest(nodes), 42);
        net.run_until(SimTime::from_secs(hours * 3600));
        let params = IntegrationParams::for_network(Network::Regtest).with_connections(2);
        let adapter = BitcoinAdapter::new(params, 7);
        (net, adapter)
    }

    #[test]
    fn header_sync_reaches_network_tip() {
        let (mut net, mut adapter) = setup(4, 6);
        let tip = net.best_height();
        assert!(tip > 10, "need a real chain, got {tip}");
        sync_adapter(&mut net, &mut adapter, 40);
        assert_eq!(adapter.best_header_height(), net.best_height());
    }

    fn request_for_anchor(adapter: &BitcoinAdapter, processed: Vec<BlockHash>) -> GetSuccessorsRequest {
        GetSuccessorsRequest {
            anchor: adapter.params.network.genesis_block().header,
            anchor_height: 0,
            processed,
            transactions: Vec::new(),
        }
    }

    #[test]
    fn algorithm1_serves_blocks_in_connected_order() {
        let (mut net, mut adapter) = setup(4, 4);
        sync_adapter(&mut net, &mut adapter, 40);

        // First request: blocks may need fetching; iterate until served.
        let mut response = GetSuccessorsResponse::default();
        for _ in 0..40 {
            response = adapter.handle_request(&mut net, &request_for_anchor(&adapter, vec![]));
            if !response.blocks.is_empty() && response.next.is_empty() {
                break;
            }
            sync_adapter(&mut net, &mut adapter, 2);
        }
        assert!(!response.blocks.is_empty());
        // Every returned block connects to the anchor or an earlier block
        // in the response.
        let mut known: HashSet<BlockHash> =
            std::iter::once(Network::Regtest.genesis_hash()).collect();
        for block in &response.blocks {
            assert!(known.contains(&block.header.prev_blockhash), "disconnected block");
            known.insert(block.block_hash());
        }
    }

    #[test]
    fn algorithm1_respects_processed_set() {
        let (mut net, mut adapter) = setup(3, 4);
        sync_adapter(&mut net, &mut adapter, 40);
        let mut response = GetSuccessorsResponse::default();
        for _ in 0..40 {
            response = adapter.handle_request(&mut net, &request_for_anchor(&adapter, vec![]));
            if !response.blocks.is_empty() && response.next.is_empty() {
                break;
            }
            sync_adapter(&mut net, &mut adapter, 2);
        }
        let served: Vec<BlockHash> = response.blocks.iter().map(|b| b.block_hash()).collect();
        // Marking everything processed yields an empty response.
        let full = adapter.handle_request(&mut net, &request_for_anchor(&adapter, served.clone()));
        assert!(full.blocks.is_empty(), "all blocks already processed");
        // Marking all but the last: only the last is served again.
        let partial = adapter
            .handle_request(&mut net, &request_for_anchor(&adapter, served[..served.len() - 1].to_vec()));
        assert_eq!(partial.blocks.len(), 1);
        assert_eq!(partial.blocks[0].block_hash(), *served.last().unwrap());
    }

    #[test]
    fn algorithm1_single_block_above_bulk_sync_height() {
        let (mut net, mut adapter) = setup(3, 4);
        // Force single-block mode everywhere.
        adapter.params = adapter.params.with_bulk_sync_height(0);
        sync_adapter(&mut net, &mut adapter, 40);
        let mut response = GetSuccessorsResponse::default();
        for _ in 0..40 {
            response = adapter.handle_request(&mut net, &request_for_anchor(&adapter, vec![]));
            if !response.blocks.is_empty() {
                break;
            }
            sync_adapter(&mut net, &mut adapter, 2);
        }
        assert_eq!(response.blocks.len(), 1, "one block at a time above the boundary");
        // The remaining chain shows up as upcoming headers.
        assert!(!response.next.is_empty());
    }

    #[test]
    fn algorithm1_next_headers_capped() {
        let (mut net, mut adapter) = setup(3, 30);
        sync_adapter(&mut net, &mut adapter, 60);
        assert!(adapter.best_header_height() > MAX_NEXT_HEADERS as u64);
        // Before any blocks are fetched, everything lands in `next`.
        let mut fresh = BitcoinAdapter::new(adapter.params, 8);
        // Move the header tree over without blocks: sync headers only.
        for _ in 0..60 {
            fresh.step(&mut net);
            net.run_until(net.now() + SimDuration::from_secs(3));
            if fresh.best_header_height() == adapter.best_header_height() {
                break;
            }
        }
        let response = fresh.handle_request(&mut net, &request_for_anchor(&fresh, vec![]));
        assert!(response.next.len() <= MAX_NEXT_HEADERS);
    }

    #[test]
    fn outbound_transactions_reach_the_network() {
        let (mut net, mut adapter) = setup(4, 2);
        sync_adapter(&mut net, &mut adapter, 10);
        let tx = Transaction {
            version: 2,
            inputs: vec![TxIn::new(OutPoint::new(Txid([3; 32]), 0))],
            outputs: vec![TxOut::new(Amount::from_sat(250), Script::new_p2wpkh(&[9; 20]))],
            lock_time: 0,
        };
        let txid = tx.txid();
        let request = GetSuccessorsRequest {
            anchor: Network::Regtest.genesis_block().header,
            anchor_height: 0,
            processed: vec![],
            transactions: vec![tx],
        };
        adapter.handle_request(&mut net, &request);
        assert_eq!(adapter.tx_cache_len(), 1);
        // Let inv/getdata/tx propagate and gossip spread it.
        sync_adapter(&mut net, &mut adapter, 20);
        let in_mempools = (0..4)
            .filter(|i| net.node(NodeId(*i)).has_mempool_tx(&txid))
            .count();
        assert!(in_mempools >= 1, "transaction reached no mempool");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff_timeout(0), SimDuration::from_secs(30));
        assert_eq!(backoff_timeout(1), SimDuration::from_secs(60));
        assert_eq!(backoff_timeout(2), SimDuration::from_secs(120));
        assert_eq!(backoff_timeout(MAX_BACKOFF_EXPONENT), SimDuration::from_secs(480));
        assert_eq!(backoff_timeout(40), SimDuration::from_secs(480), "exponent capped");
    }

    /// Regression: a timed-out block fetch must not be re-requested from
    /// the very peer that failed to serve it while an alternative exists.
    #[test]
    fn rerequest_avoids_the_timed_out_peer() {
        let (mut net, mut adapter) = setup(4, 2);
        sync_adapter(&mut net, &mut adapter, 10);
        let conns = adapter.manager.connection_ids();
        assert_eq!(conns.len(), 2);
        let dead = conns[0];
        // Plant an outstanding fetch that is about to time out on `dead`.
        let hash = BlockHash([0xAB; 32]);
        adapter
            .inflight_blocks
            .insert(hash, InflightBlock { conn: dead, requested_at: net.now(), attempts: 0 });
        net.run_until(net.now() + INFLIGHT_BASE_TIMEOUT + SimDuration::from_secs(1));
        adapter.step(&mut net);
        let inflight = adapter.inflight_blocks.get(&hash).expect("fetch re-requested");
        assert_ne!(inflight.conn, dead, "re-request went back to the timed-out peer");
        assert_eq!(inflight.attempts, 1, "backoff history carried forward");
    }

    /// Satellite: `seen_inv` must stay bounded no matter how long the
    /// chain grows — entries are pruned once the block is stored or its
    /// header falls behind the locator horizon.
    #[test]
    fn seen_inv_stays_bounded_over_long_runs() {
        let (mut net, mut adapter) = setup(3, 2);
        sync_adapter(&mut net, &mut adapter, 10);
        let script = Script::new_p2wpkh(&[7; 20]);
        let mut max_seen = 0usize;
        for i in 0..10_000u32 {
            net.mine_block_paying(NodeId(0), script.clone());
            if i % 50 == 49 {
                adapter.step(&mut net);
                net.run_until(net.now() + SimDuration::from_secs(2));
                max_seen = max_seen.max(adapter.seen_inv_len());
            }
        }
        for _ in 0..10 {
            adapter.step(&mut net);
            net.run_until(net.now() + SimDuration::from_secs(3));
            max_seen = max_seen.max(adapter.seen_inv_len());
        }
        assert!(max_seen <= 256, "seen_inv grew to {max_seen} over a 10k-block run");
        assert!(
            adapter.seen_inv_len() <= 2 * SEEN_INV_HORIZON as usize,
            "seen_inv did not shrink back: {}",
            adapter.seen_inv_len()
        );
    }

    #[test]
    fn adapter_keeps_fork_headers() {
        let (mut net, mut adapter) = setup(3, 4);
        sync_adapter(&mut net, &mut adapter, 40);
        // Build a competing fork and feed it via the network.
        let honest_chain = net.node(NodeId(0)).chain().clone();
        let branch = honest_chain.best_chain_hash_at(honest_chain.tip_height().saturating_sub(2)).unwrap();
        let mut fork = icbtc_btcnet::adversary::SecretForkMiner::branch_at(&honest_chain, branch).unwrap();
        let fork_blocks = fork.extend(1, 5);
        net.submit_block(NodeId(0), fork_blocks[0].clone());
        sync_adapter(&mut net, &mut adapter, 20);
        // No fork resolution: the adapter stores both branches' headers.
        let before = adapter.header_count();
        assert!(before as u64 > adapter.best_header_height(), "fork header retained");
    }
}

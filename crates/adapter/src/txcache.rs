//! The adapter's outbound-transaction cache (§III-B).
//!
//! Transactions the Bitcoin canister wants transmitted are parked here,
//! advertised to every connected Bitcoin node, and served on `getdata`.
//! An entry lives until it has been transmitted to all connected peers or
//! until it expires (10 minutes in production) — the paper's best-effort
//! strategy, acceptable because mempool admission is never guaranteed.

use std::collections::BTreeMap;

use icbtc_bitcoin::{Transaction, Txid};
use icbtc_sim::{SimDuration, SimTime};

/// One cached outbound transaction.
#[derive(Debug, Clone)]
struct CacheEntry {
    tx: Transaction,
    expires_at: SimTime,
    delivered_to: Vec<u32>,
}

/// The outbound-transaction cache.
///
/// # Examples
///
/// ```
/// use icbtc_adapter::txcache::TransactionCache;
/// use icbtc_bitcoin::Transaction;
/// use icbtc_sim::{SimDuration, SimTime};
///
/// let mut cache = TransactionCache::new(SimDuration::from_mins(10));
/// let tx = Transaction::default();
/// let txid = tx.txid();
/// cache.insert(tx, SimTime::ZERO);
/// assert!(cache.get(&txid).is_some());
/// cache.expire(SimTime::ZERO + SimDuration::from_mins(11));
/// assert!(cache.get(&txid).is_none());
/// ```
#[derive(Debug, Default)]
pub struct TransactionCache {
    /// Ordered so that `txids()` (and the resulting advertisement order)
    /// is independent of hasher randomization.
    entries: BTreeMap<Txid, CacheEntry>,
    expiry: SimDuration,
}

impl TransactionCache {
    /// Creates a cache with the given entry lifetime.
    pub fn new(expiry: SimDuration) -> TransactionCache {
        TransactionCache { entries: BTreeMap::new(), expiry }
    }

    /// Inserts (or refreshes) a transaction at time `now`. Returns its
    /// txid.
    pub fn insert(&mut self, tx: Transaction, now: SimTime) -> Txid {
        let txid = tx.txid();
        self.entries.insert(
            txid,
            CacheEntry { tx, expires_at: now + self.expiry, delivered_to: Vec::new() },
        );
        txid
    }

    /// Looks up a cached transaction.
    pub fn get(&self, txid: &Txid) -> Option<&Transaction> {
        self.entries.get(txid).map(|e| &e.tx)
    }

    /// All cached txids.
    pub fn txids(&self) -> Vec<Txid> {
        self.entries.keys().copied().collect()
    }

    /// Number of cached transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records that `txid` was transmitted to connection `conn`; once a
    /// transaction has reached `total_connections` peers it is dropped.
    pub fn mark_delivered(&mut self, txid: &Txid, conn: u32, total_connections: usize) {
        let done = if let Some(entry) = self.entries.get_mut(txid) {
            if !entry.delivered_to.contains(&conn) {
                entry.delivered_to.push(conn);
            }
            entry.delivered_to.len() >= total_connections && total_connections > 0
        } else {
            false
        };
        if done {
            self.entries.remove(txid);
        }
    }

    /// Drops entries whose lifetime has passed. Returns how many were
    /// removed.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires_at > now);
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::{Amount, OutPoint, Script, TxIn, TxOut};

    fn tx(n: u8) -> Transaction {
        Transaction {
            version: 2,
            inputs: vec![TxIn::new(OutPoint::new(Txid([n; 32]), 0))],
            outputs: vec![TxOut::new(Amount::from_sat(100), Script::new_p2wpkh(&[n; 20]))],
            lock_time: 0,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut cache = TransactionCache::new(SimDuration::from_mins(10));
        let txid = cache.insert(tx(1), SimTime::ZERO);
        assert_eq!(cache.get(&txid), Some(&tx(1)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.txids(), vec![txid]);
    }

    #[test]
    fn expiry_removes_old_entries() {
        let mut cache = TransactionCache::new(SimDuration::from_mins(10));
        let a = cache.insert(tx(1), SimTime::ZERO);
        let b = cache.insert(tx(2), SimTime::from_secs(300));
        assert_eq!(cache.expire(SimTime::from_secs(601)), 1);
        assert!(cache.get(&a).is_none());
        assert!(cache.get(&b).is_some());
        // Exactly at the boundary the entry is gone (strict >).
        assert_eq!(cache.expire(SimTime::from_secs(900)), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn full_delivery_drops_entry() {
        let mut cache = TransactionCache::new(SimDuration::from_mins(10));
        let txid = cache.insert(tx(3), SimTime::ZERO);
        cache.mark_delivered(&txid, 0, 3);
        cache.mark_delivered(&txid, 1, 3);
        assert!(cache.get(&txid).is_some(), "2 of 3 peers served");
        // Duplicate delivery to the same peer does not count twice.
        cache.mark_delivered(&txid, 1, 3);
        assert!(cache.get(&txid).is_some());
        cache.mark_delivered(&txid, 2, 3);
        assert!(cache.get(&txid).is_none(), "all peers served");
    }

    #[test]
    fn reinsert_refreshes_expiry_and_deliveries() {
        let mut cache = TransactionCache::new(SimDuration::from_mins(10));
        let txid = cache.insert(tx(4), SimTime::ZERO);
        cache.mark_delivered(&txid, 0, 2);
        cache.insert(tx(4), SimTime::from_secs(540));
        // Old delivery record was reset; one more delivery is not enough.
        cache.mark_delivered(&txid, 1, 2);
        assert!(cache.get(&txid).is_some());
        // Expiry extended past the original 600s.
        assert_eq!(cache.expire(SimTime::from_secs(700)), 0);
        assert!(cache.get(&txid).is_some());
    }

    #[test]
    fn zero_connections_never_drops_via_delivery() {
        let mut cache = TransactionCache::new(SimDuration::from_mins(10));
        let txid = cache.insert(tx(5), SimTime::ZERO);
        cache.mark_delivered(&txid, 0, 0);
        assert!(cache.get(&txid).is_some());
    }
}

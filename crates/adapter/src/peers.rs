//! Per-peer misbehaviour scoring (mirrors the production
//! bitcoin-adapter's peer management).
//!
//! Every hard protocol violation a peer commits — invalid headers,
//! invalid or truncated blocks, oversized messages, stalled
//! connections — adds a weighted offence to that *node's* score (scores
//! follow the node, not the connection, so reconnecting does not launder
//! a bad reputation). Reaching [`BAN_SCORE`] gets the node banned: its
//! connections are severed, its address is purged from the pool, and the
//! connection manager reconnects elsewhere. Bans expire after
//! `discovery::BAN_DURATION` so a peer misclassified during an outage
//! can eventually serve again.
//!
//! Benign conditions are deliberately *not* scored: orphan headers
//! (out-of-order delivery), `notfound` replies (inventory races), and
//! slow block fetches (the backoff path handles those) are everyday
//! behaviour of honest peers on a degraded network.

use std::collections::{BTreeMap, BTreeSet};

use icbtc_btcnet::NodeId;

/// Score at which a peer is banned.
pub const BAN_SCORE: u32 = 100;

/// A hard protocol violation attributable to a peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Offence {
    /// A header that fails stateless/contextual validation for a reason
    /// other than a missing parent (bad PoW, wrong bits, bad timestamp).
    InvalidHeader,
    /// A block whose header or body is invalid (bad PoW, malformed).
    InvalidBlock,
    /// A message exceeding the protocol's size caps.
    Oversized,
    /// A connection that went silent while other peers kept talking.
    Stall,
}

impl Offence {
    /// The score this offence adds.
    pub fn weight(self) -> u32 {
        match self {
            Offence::InvalidHeader => 20,
            Offence::InvalidBlock => 34,
            Offence::Oversized => 50,
            Offence::Stall => 34,
        }
    }

    /// Static label for metrics.
    pub fn kind(self) -> &'static str {
        match self {
            Offence::InvalidHeader => "invalid-header",
            Offence::InvalidBlock => "invalid-block",
            Offence::Oversized => "oversized",
            Offence::Stall => "stall",
        }
    }

    /// All offence variants (for tests and docs).
    pub fn all() -> &'static [Offence] {
        &[Offence::InvalidHeader, Offence::InvalidBlock, Offence::Oversized, Offence::Stall]
    }
}

/// Accumulated misbehaviour scores, keyed by node so they survive
/// reconnects.
#[derive(Debug, Default)]
pub struct PeerScorer {
    scores: BTreeMap<NodeId, u32>,
}

impl PeerScorer {
    /// A scorer with no history.
    pub fn new() -> PeerScorer {
        PeerScorer::default()
    }

    /// Records an offence and returns the node's new score.
    pub fn record(&mut self, node: NodeId, offence: Offence) -> u32 {
        let score = self.scores.entry(node).or_insert(0);
        *score = score.saturating_add(offence.weight());
        *score
    }

    /// The node's current score (zero if clean).
    pub fn score(&self, node: NodeId) -> u32 {
        self.scores.get(&node).copied().unwrap_or(0)
    }

    /// Clears a node's history (called when the ban lands — the ban
    /// itself is the slate-wipe; after expiry the peer starts clean).
    pub fn forget(&mut self, node: NodeId) {
        self.scores.remove(&node);
    }

    /// Drops scores for nodes no longer of interest.
    pub fn retain_nodes(&mut self, keep: &BTreeSet<NodeId>) {
        self.scores.retain(|n, _| keep.contains(n));
    }

    /// Number of nodes with a nonzero score.
    pub fn tracked(&self) -> usize {
        self.scores.len()
    }

    /// Upper bound on how many offences of the *lightest* kind a peer
    /// can commit before the ban lands — the "bounded number of
    /// offences" guarantee.
    pub fn max_offences_to_ban() -> u32 {
        let min_weight = Offence::all().iter().map(|o| o.weight()).min().unwrap_or(1).max(1);
        BAN_SCORE.div_ceil(min_weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_offence_bans_within_the_bound() {
        for &offence in Offence::all() {
            let mut scorer = PeerScorer::new();
            let node = NodeId(7);
            let mut offences = 0;
            while scorer.record(node, offence) < BAN_SCORE {
                offences += 1;
                assert!(
                    offences <= PeerScorer::max_offences_to_ban(),
                    "{} never reaches the ban score",
                    offence.kind()
                );
            }
        }
    }

    #[test]
    fn scores_follow_the_node_and_forget_wipes_them() {
        let mut scorer = PeerScorer::new();
        scorer.record(NodeId(1), Offence::InvalidHeader);
        scorer.record(NodeId(1), Offence::InvalidHeader);
        assert_eq!(scorer.score(NodeId(1)), 2 * Offence::InvalidHeader.weight());
        assert_eq!(scorer.score(NodeId(2)), 0);
        assert_eq!(scorer.tracked(), 1);
        scorer.forget(NodeId(1));
        assert_eq!(scorer.score(NodeId(1)), 0);
        assert_eq!(scorer.tracked(), 0);
    }

    #[test]
    fn retain_drops_unlisted_nodes() {
        let mut scorer = PeerScorer::new();
        scorer.record(NodeId(1), Offence::Stall);
        scorer.record(NodeId(2), Offence::Stall);
        let keep: BTreeSet<NodeId> = std::iter::once(NodeId(2)).collect();
        scorer.retain_nodes(&keep);
        assert_eq!(scorer.score(NodeId(1)), 0);
        assert!(scorer.score(NodeId(2)) > 0);
    }

    #[test]
    fn weights_and_kinds_are_positive_and_distinct() {
        let kinds: BTreeSet<&str> = Offence::all().iter().map(|o| o.kind()).collect();
        assert_eq!(kinds.len(), Offence::all().len());
        assert!(Offence::all().iter().all(|o| o.weight() > 0));
    }
}

//! Bitcoin-node discovery and connection management (§III-B).
//!
//! The adapter keeps ℓ connections to uniformly random Bitcoin nodes,
//! discovered by recursively requesting addresses until the pool holds
//! `t_u` entries; whenever the pool drops below `t_l`, discovery resumes.
//! On mainnet `(t_l, t_u, ℓ) = (500, 2000, 5)`. Random selection over a
//! large pool is what Lemma IV.1's eclipse-resistance argument rests on.

use std::collections::BTreeMap;

use icbtc_btcnet::{BtcNetwork, ConnId, Message, NodeId};
use icbtc_core::IntegrationParams;
use icbtc_sim::{SimDuration, SimRng, SimTime};

/// How long a banned node stays banned. Long enough that a misbehaving
/// peer is effectively out of the picture for a soak, short enough that
/// a peer misclassified during an outage eventually serves again.
pub const BAN_DURATION: SimDuration = SimDuration::from_secs(3600);

/// The discovery state machine and connection pool of one adapter.
///
/// # Examples
///
/// ```
/// use icbtc_adapter::discovery::ConnectionManager;
/// use icbtc_btcnet::network::{BtcNetwork, NetworkConfig};
/// use icbtc_core::IntegrationParams;
/// use icbtc_bitcoin::Network;
/// use icbtc_sim::SimRng;
///
/// let mut net = BtcNetwork::new(NetworkConfig::regtest(8), 1);
/// let params = IntegrationParams::for_network(Network::Regtest).with_connections(3);
/// let mut rng = SimRng::seed_from(2);
/// let mut manager = ConnectionManager::new(params);
/// manager.maintain(&mut net, &mut rng);
/// assert_eq!(manager.connections().len(), 3);
/// ```
#[derive(Debug)]
pub struct ConnectionManager {
    params: IntegrationParams,
    addresses: Vec<NodeId>,
    connections: Vec<(ConnId, NodeId)>,
    discovering: bool,
    /// Banned nodes and when each ban expires. Ordered for deterministic
    /// iteration.
    banned: BTreeMap<NodeId, SimTime>,
}

impl ConnectionManager {
    /// Creates a manager with an empty address pool (discovery pending).
    pub fn new(params: IntegrationParams) -> ConnectionManager {
        ConnectionManager {
            params,
            addresses: Vec::new(),
            connections: Vec::new(),
            discovering: true,
            banned: BTreeMap::new(),
        }
    }

    /// The current address pool.
    pub fn addresses(&self) -> &[NodeId] {
        &self.addresses
    }

    /// The live connections.
    pub fn connections(&self) -> &[(ConnId, NodeId)] {
        &self.connections
    }

    /// The connection ids only.
    pub fn connection_ids(&self) -> Vec<ConnId> {
        self.connections.iter().map(|(c, _)| *c).collect()
    }

    /// Whether the manager is still collecting addresses.
    pub fn is_discovering(&self) -> bool {
        self.discovering
    }

    /// The node behind a live connection, if the connection is ours.
    pub fn node_for(&self, conn: ConnId) -> Option<NodeId> {
        self.connections.iter().find(|(c, _)| *c == conn).map(|(_, n)| *n)
    }

    /// Forces a fresh discovery round: the next maintain passes request
    /// addresses from every peer until the pool refills. Called by the
    /// adapter when header sync wedges.
    pub fn force_discovery(&mut self) {
        self.discovering = true;
    }

    /// Whether `node` is currently banned.
    pub fn is_banned(&self, node: NodeId) -> bool {
        self.banned.contains_key(&node)
    }

    /// Currently banned nodes, in id order.
    pub fn banned_nodes(&self) -> Vec<NodeId> {
        self.banned.keys().copied().collect()
    }

    /// Number of currently banned nodes.
    pub fn banned_len(&self) -> usize {
        self.banned.len()
    }

    /// Bans `node` for [`BAN_DURATION`]: severs its connections, purges
    /// its address from the pool, and leaves the next maintain pass to
    /// reconnect elsewhere.
    pub fn ban(&mut self, net: &mut BtcNetwork, node: NodeId, now: SimTime) {
        self.banned.insert(node, now + BAN_DURATION);
        self.addresses.retain(|a| *a != node);
        let severed: Vec<ConnId> =
            self.connections.iter().filter(|(_, n)| *n == node).map(|(c, _)| *c).collect();
        for conn in severed {
            self.drop_connection(net, conn);
        }
    }

    /// The pool's size cap: `t_u`, but never below ℓ so the adapter can
    /// always hold ℓ distinct targets.
    fn pool_cap(&self) -> usize {
        self.params.addr_high_watermark.max(self.params.connections)
    }

    /// Ingests addresses learned from `addr` gossip. Banned nodes are
    /// ignored and the pool is capped at `max(t_u, ℓ)` so it stays
    /// bounded no matter how much gossip arrives.
    pub fn learn_addresses(&mut self, addrs: &[NodeId]) {
        let cap = self.pool_cap();
        for addr in addrs {
            if self.addresses.len() >= cap {
                break;
            }
            if !self.banned.contains_key(addr) && !self.addresses.contains(addr) {
                self.addresses.push(*addr);
            }
        }
        if self.addresses.len() >= self.params.addr_high_watermark {
            self.discovering = false;
        }
    }

    /// Runs one maintenance pass:
    ///
    /// 1. seeds the pool from DNS when empty;
    /// 2. re-enters discovery if the pool fell below `t_l`, requesting
    ///    more addresses from connected peers;
    /// 3. tops connections up to ℓ, choosing targets uniformly at random
    ///    from the pool (service continues with ≥ 1 connection even while
    ///    discovery is incomplete, as in the paper).
    pub fn maintain(&mut self, net: &mut BtcNetwork, rng: &mut SimRng) {
        // Expire bans whose time has come.
        let now = net.now();
        self.banned.retain(|_, until| now < *until);

        // Drop connections the network closed underneath us.
        self.connections.retain(|(conn, _)| net.external_is_open(*conn));

        if self.addresses.is_empty() {
            let seeds = net.dns_seed_sample(self.params.addr_high_watermark.max(8));
            self.learn_addresses(&seeds);
        }
        // Re-enter discovery when the pool drops below `t_l` — or below
        // ℓ, so a ban-shrunk pool refills enough to reconnect elsewhere.
        if self.addresses.len() < self.params.addr_low_watermark.max(self.params.connections) {
            self.discovering = true;
        }
        if self.discovering {
            for (conn, _) in &self.connections {
                net.send_external(*conn, Message::GetAddr);
            }
            if self.addresses.len() >= self.params.addr_high_watermark {
                self.discovering = false;
            }
        }

        while self.connections.len() < self.params.connections && !self.addresses.is_empty() {
            let target = *rng.choose(&self.addresses);
            if self.connections.iter().any(|(_, n)| *n == target) && self.addresses.len() > self.connections.len() {
                continue; // avoid duplicate targets while alternatives exist
            }
            let conn = net.connect_external(target);
            self.connections.push((conn, target));
        }
    }

    /// Severs one connection (peer failure injection); the next
    /// [`ConnectionManager::maintain`] pass replaces it.
    pub fn drop_connection(&mut self, net: &mut BtcNetwork, conn: ConnId) {
        net.disconnect_external(conn);
        self.connections.retain(|(c, _)| *c != conn);
    }
}

/// Computes the probability that an adapter connecting to `l` uniformly
/// random nodes sees only corrupted ones, given corruption fraction
/// `phi` — the quantity behind Lemma IV.1 (`φ^ℓ` per adapter,
/// `1 − (1 − φ^ℓ)^n` for any of `n` adapters).
pub fn eclipse_probability(phi: f64, l: usize, n: usize) -> f64 {
    assert!((0.0..=1.0).contains(&phi), "phi must be a probability");
    let per_adapter = phi.powi(l as i32);
    1.0 - (1.0 - per_adapter).powi(n as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::Network;
    use icbtc_btcnet::network::NetworkConfig;

    fn setup(nodes: usize, connections: usize) -> (BtcNetwork, ConnectionManager, SimRng) {
        let net = BtcNetwork::new(NetworkConfig::regtest(nodes), 1);
        let params = IntegrationParams::for_network(Network::Regtest)
            .with_connections(connections);
        (net, ConnectionManager::new(params), SimRng::seed_from(7))
    }

    #[test]
    fn reaches_target_connection_count() {
        let (mut net, mut manager, mut rng) = setup(10, 5);
        manager.maintain(&mut net, &mut rng);
        assert_eq!(manager.connections().len(), 5);
        // Distinct targets when enough addresses exist.
        let mut targets: Vec<NodeId> = manager.connections().iter().map(|(_, n)| *n).collect();
        targets.sort();
        targets.dedup();
        assert_eq!(targets.len(), 5);
    }

    #[test]
    fn replaces_dropped_connections() {
        let (mut net, mut manager, mut rng) = setup(10, 3);
        manager.maintain(&mut net, &mut rng);
        let victim = manager.connections()[0].0;
        manager.drop_connection(&mut net, victim);
        assert_eq!(manager.connections().len(), 2);
        manager.maintain(&mut net, &mut rng);
        assert_eq!(manager.connections().len(), 3);
        assert!(!manager.connection_ids().contains(&victim));
    }

    #[test]
    fn discovery_stops_at_high_watermark() {
        let net = BtcNetwork::new(NetworkConfig::regtest(4), 1);
        let mut params = IntegrationParams::for_network(Network::Regtest);
        params.addr_low_watermark = 2;
        params.addr_high_watermark = 3;
        let mut manager = ConnectionManager::new(params);
        assert!(manager.is_discovering());
        manager.learn_addresses(&[NodeId(0), NodeId(1)]);
        assert!(manager.is_discovering());
        manager.learn_addresses(&[NodeId(1), NodeId(2)]);
        assert!(!manager.is_discovering());
        assert_eq!(manager.addresses().len(), 3, "duplicates ignored");
        let _ = net;
    }

    #[test]
    fn service_with_single_connection_possible() {
        // Even when the pool cannot reach t_u, connections are made.
        let (mut net, mut manager, mut rng) = setup(2, 1);
        manager.maintain(&mut net, &mut rng);
        assert_eq!(manager.connections().len(), 1);
    }

    #[test]
    fn bans_sever_purge_and_expire() {
        let (mut net, mut manager, mut rng) = setup(10, 3);
        manager.maintain(&mut net, &mut rng);
        let (conn, node) = manager.connections()[0];
        let now = net.now();
        manager.ban(&mut net, node, now);
        assert!(manager.is_banned(node));
        assert_eq!(manager.banned_len(), 1);
        assert_eq!(manager.banned_nodes(), vec![node]);
        assert!(!manager.connection_ids().contains(&conn));
        assert!(!manager.addresses().contains(&node));
        assert_eq!(manager.node_for(conn), None);
        // Gossip cannot smuggle the banned address back in.
        manager.learn_addresses(&[node]);
        assert!(!manager.addresses().contains(&node));
        // The next maintain pass reconnects elsewhere.
        manager.maintain(&mut net, &mut rng);
        net.run_until(now + SimDuration::from_secs(5));
        manager.maintain(&mut net, &mut rng);
        assert_eq!(manager.connections().len(), 3);
        assert!(manager.connections().iter().all(|(_, n)| *n != node));
        // Bans expire.
        net.run_until(now + BAN_DURATION + SimDuration::from_secs(1));
        manager.maintain(&mut net, &mut rng);
        assert!(!manager.is_banned(node));
        assert_eq!(manager.banned_len(), 0);
    }

    #[test]
    fn address_pool_is_bounded() {
        let mut params = IntegrationParams::for_network(Network::Regtest).with_connections(2);
        params.addr_high_watermark = 4;
        let mut manager = ConnectionManager::new(params);
        let flood: Vec<NodeId> = (0..100).map(NodeId).collect();
        manager.learn_addresses(&flood);
        assert_eq!(manager.addresses().len(), 4, "pool capped at max(t_u, ℓ)");
        assert!(!manager.is_discovering());
    }

    #[test]
    fn property_discovery_recovers_under_churn() {
        use icbtc_sim::{testkit, SimDuration};
        testkit::check(0xC0FF_EE5E, 24, |rng| {
            let mut net = BtcNetwork::new(NetworkConfig::regtest(8), rng.next_u64());
            let mut params = IntegrationParams::for_network(Network::Regtest).with_connections(3);
            params.addr_low_watermark = 2;
            params.addr_high_watermark = 4;
            let cap = params.addr_high_watermark.max(params.connections);
            let mut mrng = SimRng::seed_from(rng.next_u64());
            let mut manager = ConnectionManager::new(params);
            let mut banned_now: Option<NodeId> = None;
            for round in 0..25u32 {
                manager.maintain(&mut net, &mut mrng);
                // Invariant: the pool never exceeds its cap, and never
                // holds a banned address.
                assert!(manager.addresses().len() <= cap, "pool exceeded t_u");
                if let Some(node) = banned_now {
                    if manager.is_banned(node) {
                        assert!(!manager.addresses().contains(&node));
                        assert!(manager.connections().iter().all(|(_, n)| *n != node));
                    }
                }
                // Churn: close a random subset of connections; once in a
                // while ban a random live peer outright.
                let closes = testkit::usize_in(rng, 0..3);
                for _ in 0..closes {
                    let conns = manager.connection_ids();
                    if conns.is_empty() {
                        break;
                    }
                    let victim = conns[testkit::usize_in(rng, 0..conns.len())];
                    manager.drop_connection(&mut net, victim);
                }
                if round % 7 == 3 && !manager.connections().is_empty() {
                    let pick = testkit::usize_in(rng, 0..manager.connections().len());
                    let (_, node) = manager.connections()[pick];
                    let now = net.now();
                    manager.ban(&mut net, node, now);
                    banned_now = Some(node);
                }
                net.run_until(net.now() + SimDuration::from_secs(30));
            }
            // Recovery: with churn stopped, the pool and the connection
            // set climb back to target.
            for _ in 0..6 {
                manager.maintain(&mut net, &mut mrng);
                net.run_until(net.now() + SimDuration::from_secs(30));
            }
            assert_eq!(manager.connections().len(), 3, "pool did not recover to ℓ");
            assert!(manager.addresses().len() <= cap);
        });
    }

    #[test]
    fn eclipse_probability_formula() {
        // Lemma IV.1's example: n = 13, l = 5 ⇒ phi ≪ 0.6 keeps the
        // probability tiny.
        let p = eclipse_probability(0.1, 5, 13);
        assert!(p < 1e-3, "{p}");
        let p = eclipse_probability(0.5, 5, 13);
        assert!(p < 0.4, "{p}");
        // Extremes.
        assert_eq!(eclipse_probability(0.0, 5, 13), 0.0);
        assert!((eclipse_probability(1.0, 5, 13) - 1.0).abs() < 1e-12);
        // More links reduce the probability.
        assert!(eclipse_probability(0.5, 8, 13) < eclipse_probability(0.5, 5, 13));
    }
}

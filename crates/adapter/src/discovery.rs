//! Bitcoin-node discovery and connection management (§III-B).
//!
//! The adapter keeps ℓ connections to uniformly random Bitcoin nodes,
//! discovered by recursively requesting addresses until the pool holds
//! `t_u` entries; whenever the pool drops below `t_l`, discovery resumes.
//! On mainnet `(t_l, t_u, ℓ) = (500, 2000, 5)`. Random selection over a
//! large pool is what Lemma IV.1's eclipse-resistance argument rests on.

use icbtc_btcnet::{BtcNetwork, ConnId, Message, NodeId};
use icbtc_core::IntegrationParams;
use icbtc_sim::SimRng;

/// The discovery state machine and connection pool of one adapter.
///
/// # Examples
///
/// ```
/// use icbtc_adapter::discovery::ConnectionManager;
/// use icbtc_btcnet::network::{BtcNetwork, NetworkConfig};
/// use icbtc_core::IntegrationParams;
/// use icbtc_bitcoin::Network;
/// use icbtc_sim::SimRng;
///
/// let mut net = BtcNetwork::new(NetworkConfig::regtest(8), 1);
/// let params = IntegrationParams::for_network(Network::Regtest).with_connections(3);
/// let mut rng = SimRng::seed_from(2);
/// let mut manager = ConnectionManager::new(params);
/// manager.maintain(&mut net, &mut rng);
/// assert_eq!(manager.connections().len(), 3);
/// ```
#[derive(Debug)]
pub struct ConnectionManager {
    params: IntegrationParams,
    addresses: Vec<NodeId>,
    connections: Vec<(ConnId, NodeId)>,
    discovering: bool,
}

impl ConnectionManager {
    /// Creates a manager with an empty address pool (discovery pending).
    pub fn new(params: IntegrationParams) -> ConnectionManager {
        ConnectionManager { params, addresses: Vec::new(), connections: Vec::new(), discovering: true }
    }

    /// The current address pool.
    pub fn addresses(&self) -> &[NodeId] {
        &self.addresses
    }

    /// The live connections.
    pub fn connections(&self) -> &[(ConnId, NodeId)] {
        &self.connections
    }

    /// The connection ids only.
    pub fn connection_ids(&self) -> Vec<ConnId> {
        self.connections.iter().map(|(c, _)| *c).collect()
    }

    /// Whether the manager is still collecting addresses.
    pub fn is_discovering(&self) -> bool {
        self.discovering
    }

    /// Ingests addresses learned from `addr` gossip.
    pub fn learn_addresses(&mut self, addrs: &[NodeId]) {
        for addr in addrs {
            if !self.addresses.contains(addr) {
                self.addresses.push(*addr);
            }
        }
        if self.addresses.len() >= self.params.addr_high_watermark {
            self.discovering = false;
        }
    }

    /// Runs one maintenance pass:
    ///
    /// 1. seeds the pool from DNS when empty;
    /// 2. re-enters discovery if the pool fell below `t_l`, requesting
    ///    more addresses from connected peers;
    /// 3. tops connections up to ℓ, choosing targets uniformly at random
    ///    from the pool (service continues with ≥ 1 connection even while
    ///    discovery is incomplete, as in the paper).
    pub fn maintain(&mut self, net: &mut BtcNetwork, rng: &mut SimRng) {
        // Drop connections the network closed underneath us.
        self.connections.retain(|(conn, _)| net.external_is_open(*conn));

        if self.addresses.is_empty() {
            let seeds = net.dns_seed_sample(self.params.addr_high_watermark.max(8));
            self.learn_addresses(&seeds);
        }
        if self.addresses.len() < self.params.addr_low_watermark {
            self.discovering = true;
        }
        if self.discovering {
            for (conn, _) in &self.connections {
                net.send_external(*conn, Message::GetAddr);
            }
            if self.addresses.len() >= self.params.addr_high_watermark {
                self.discovering = false;
            }
        }

        while self.connections.len() < self.params.connections && !self.addresses.is_empty() {
            let target = *rng.choose(&self.addresses);
            if self.connections.iter().any(|(_, n)| *n == target) && self.addresses.len() > self.connections.len() {
                continue; // avoid duplicate targets while alternatives exist
            }
            let conn = net.connect_external(target);
            self.connections.push((conn, target));
        }
    }

    /// Severs one connection (peer failure injection); the next
    /// [`ConnectionManager::maintain`] pass replaces it.
    pub fn drop_connection(&mut self, net: &mut BtcNetwork, conn: ConnId) {
        net.disconnect_external(conn);
        self.connections.retain(|(c, _)| *c != conn);
    }
}

/// Computes the probability that an adapter connecting to `l` uniformly
/// random nodes sees only corrupted ones, given corruption fraction
/// `phi` — the quantity behind Lemma IV.1 (`φ^ℓ` per adapter,
/// `1 − (1 − φ^ℓ)^n` for any of `n` adapters).
pub fn eclipse_probability(phi: f64, l: usize, n: usize) -> f64 {
    assert!((0.0..=1.0).contains(&phi), "phi must be a probability");
    let per_adapter = phi.powi(l as i32);
    1.0 - (1.0 - per_adapter).powi(n as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::Network;
    use icbtc_btcnet::network::NetworkConfig;

    fn setup(nodes: usize, connections: usize) -> (BtcNetwork, ConnectionManager, SimRng) {
        let net = BtcNetwork::new(NetworkConfig::regtest(nodes), 1);
        let params = IntegrationParams::for_network(Network::Regtest)
            .with_connections(connections);
        (net, ConnectionManager::new(params), SimRng::seed_from(7))
    }

    #[test]
    fn reaches_target_connection_count() {
        let (mut net, mut manager, mut rng) = setup(10, 5);
        manager.maintain(&mut net, &mut rng);
        assert_eq!(manager.connections().len(), 5);
        // Distinct targets when enough addresses exist.
        let mut targets: Vec<NodeId> = manager.connections().iter().map(|(_, n)| *n).collect();
        targets.sort();
        targets.dedup();
        assert_eq!(targets.len(), 5);
    }

    #[test]
    fn replaces_dropped_connections() {
        let (mut net, mut manager, mut rng) = setup(10, 3);
        manager.maintain(&mut net, &mut rng);
        let victim = manager.connections()[0].0;
        manager.drop_connection(&mut net, victim);
        assert_eq!(manager.connections().len(), 2);
        manager.maintain(&mut net, &mut rng);
        assert_eq!(manager.connections().len(), 3);
        assert!(!manager.connection_ids().contains(&victim));
    }

    #[test]
    fn discovery_stops_at_high_watermark() {
        let net = BtcNetwork::new(NetworkConfig::regtest(4), 1);
        let mut params = IntegrationParams::for_network(Network::Regtest);
        params.addr_low_watermark = 2;
        params.addr_high_watermark = 3;
        let mut manager = ConnectionManager::new(params);
        assert!(manager.is_discovering());
        manager.learn_addresses(&[NodeId(0), NodeId(1)]);
        assert!(manager.is_discovering());
        manager.learn_addresses(&[NodeId(1), NodeId(2)]);
        assert!(!manager.is_discovering());
        assert_eq!(manager.addresses().len(), 3, "duplicates ignored");
        let _ = net;
    }

    #[test]
    fn service_with_single_connection_possible() {
        // Even when the pool cannot reach t_u, connections are made.
        let (mut net, mut manager, mut rng) = setup(2, 1);
        manager.maintain(&mut net, &mut rng);
        assert_eq!(manager.connections().len(), 1);
    }

    #[test]
    fn eclipse_probability_formula() {
        // Lemma IV.1's example: n = 13, l = 5 ⇒ phi ≪ 0.6 keeps the
        // probability tiny.
        let p = eclipse_probability(0.1, 5, 13);
        assert!(p < 1e-3, "{p}");
        let p = eclipse_probability(0.5, 5, 13);
        assert!(p < 0.4, "{p}");
        // Extremes.
        assert_eq!(eclipse_probability(0.0, 5, 13), 0.0);
        assert!((eclipse_probability(1.0, 5, 13) - 1.0).abs() < 1e-12);
        // More links reduce the probability.
        assert!(eclipse_probability(0.5, 8, 13) < eclipse_probability(0.5, 5, 13));
    }
}

//! The Bitcoin adapter — §III-B of *"Enabling Bitcoin Smart Contracts on
//! the Internet Computer"* (ICDCS 2025).
//!
//! The adapter is the paper's first core building block: a sandboxed
//! per-replica process that connects the IC node directly to the Bitcoin
//! P2P network, with no bridge in between. It is deliberately lightweight
//! — an SPV-like client that validates headers but performs *no fork
//! resolution*, leaving chain selection to the Bitcoin canister's
//! δ-stability logic.
//!
//! * [`discovery`] — DNS-seeded address collection with the `t_l`/`t_u`
//!   watermarks, ℓ uniformly random connections (Lemma IV.1), and
//!   time-limited peer bans.
//! * [`peers`] — per-node misbehaviour scoring feeding the ban logic.
//! * [`txcache`] — the 10-minute outbound transaction cache.
//! * [`BitcoinAdapter`] — header sync, block fetching with per-peer
//!   backoff and rotation, stall detection, and **Algorithm 1**
//!   ([`BitcoinAdapter::handle_request`]).

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod adapter;
pub mod discovery;
pub mod peers;
pub mod txcache;

pub use adapter::BitcoinAdapter;
pub use discovery::{eclipse_probability, ConnectionManager, BAN_DURATION};
pub use peers::{Offence, PeerScorer, BAN_SCORE};
pub use txcache::TransactionCache;

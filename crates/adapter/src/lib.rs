//! The Bitcoin adapter — §III-B of *"Enabling Bitcoin Smart Contracts on
//! the Internet Computer"* (ICDCS 2025).
//!
//! The adapter is the paper's first core building block: a sandboxed
//! per-replica process that connects the IC node directly to the Bitcoin
//! P2P network, with no bridge in between. It is deliberately lightweight
//! — an SPV-like client that validates headers but performs *no fork
//! resolution*, leaving chain selection to the Bitcoin canister's
//! δ-stability logic.
//!
//! * [`discovery`] — DNS-seeded address collection with the `t_l`/`t_u`
//!   watermarks and ℓ uniformly random connections (Lemma IV.1).
//! * [`txcache`] — the 10-minute outbound transaction cache.
//! * [`BitcoinAdapter`] — header sync, block fetching, and **Algorithm 1**
//!   ([`BitcoinAdapter::handle_request`]).

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod adapter;
pub mod discovery;
pub mod txcache;

pub use adapter::BitcoinAdapter;
pub use discovery::{eclipse_probability, ConnectionManager};
pub use txcache::TransactionCache;

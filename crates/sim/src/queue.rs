//! Time-ordered event queue with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A pending event: fire time, insertion sequence number, payload.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event (and, for
        // equal times, the earliest-inserted event) is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events are popped in non-decreasing time order; events scheduled for the
/// same instant are popped in insertion order, which keeps simulations
/// reproducible regardless of heap internals.
///
/// # Examples
///
/// ```
/// use icbtc_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(1), 'a');
/// q.push(SimTime::from_secs(1), 'b');
/// assert_eq!(q.pop().unwrap().1, 'a');
/// assert_eq!(q.pop().unwrap().1, 'b');
/// assert!(q.pop().is_none());
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Removes and returns the earliest event if it fires at or before
    /// `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(s) if s.at <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Returns the fire time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_secs(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "later");
        q.push(SimTime::from_secs(1), "sooner");
        assert_eq!(q.pop_before(SimTime::from_secs(2)).unwrap().1, "sooner");
        assert!(q.pop_before(SimTime::from_secs(2)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
    }

    mod properties {
        use super::*;
        use crate::testkit;

        /// Popped timestamps are always non-decreasing.
        #[test]
        fn monotone_pop() {
            testkit::check(0x51_0001, testkit::DEFAULT_CASES, |rng| {
                let times = testkit::vec_with(rng, 1..200, |r| testkit::u64_in(r, 0..1_000_000));
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.push(SimTime::from_nanos(*t), i);
                }
                let mut last = SimTime::ZERO;
                while let Some((at, _)) = q.pop() {
                    assert!(at >= last);
                    last = at;
                }
            });
        }

        /// Every pushed event is popped exactly once.
        #[test]
        fn conservation() {
            testkit::check(0x51_0002, testkit::DEFAULT_CASES, |rng| {
                let times = testkit::vec_with(rng, 0..100, |r| testkit::u64_in(r, 0..1000));
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.push(SimTime::from_nanos(*t), i);
                }
                let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
            });
        }
    }
}

//! Labelled metrics registry with deterministic snapshots.
//!
//! Modelled on the production `bitcoin-canister` metrics module: counters
//! and fixed-bucket `u64` histograms live in component state and are
//! rendered on demand. Everything is integer-valued so the JSON snapshot is
//! exact — two runs with the same seed produce byte-identical output.

use std::collections::BTreeMap;

use super::push_json_str;
use crate::metrics::{humanize, Table};

/// Version stamped into every JSON snapshot.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Default histogram bounds: a 1-2-5 ladder from 1 to 10^12.
///
/// Wide enough for byte counts, queue depths, and instruction counts alike;
/// register explicit bounds with [`MetricsRegistry::register_histogram`]
/// when a metric needs a tighter shape.
pub const DEFAULT_BOUNDS: &[u64] = &[
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    20_000_000_000,
    50_000_000_000,
    100_000_000_000,
    200_000_000_000,
    500_000_000_000,
    1_000_000_000_000,
];

/// Instruction-count bounds mirroring the production canister's
/// `InstructionHistogram`: 500M-instruction-wide buckets up to 10B, plus the
/// implicit +Inf bucket.
pub const INSTRUCTION_BOUNDS: &[u64] = &[
    500_000_000,
    1_000_000_000,
    1_500_000_000,
    2_000_000_000,
    2_500_000_000,
    3_000_000_000,
    3_500_000_000,
    4_000_000_000,
    4_500_000_000,
    5_000_000_000,
    5_500_000_000,
    6_000_000_000,
    6_500_000_000,
    7_000_000_000,
    7_500_000_000,
    8_000_000_000,
    8_500_000_000,
    9_000_000_000,
    9_500_000_000,
    10_000_000_000,
];

/// Canonical metric identity: name plus label pairs sorted by key.
///
/// Labels are `&'static str` on both sides — label *sets* are static by
/// construction, which keeps recording allocation-light and guarantees the
/// `BTreeMap` walk order is a pure function of what was recorded.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: &'static str,
    labels: Vec<(&'static str, &'static str)>,
}

impl Key {
    fn new(name: &'static str, labels: &[(&'static str, &'static str)]) -> Key {
        let mut labels = labels.to_vec();
        labels.sort_unstable();
        Key { name, labels }
    }
}

/// A histogram with fixed `u64` bucket upper bounds plus an implicit +Inf
/// bucket, as in the production canister's `InstructionHistogram`.
#[derive(Debug, Clone)]
pub struct FixedHistogram {
    bounds: &'static [u64],
    /// One count per bound, plus the trailing +Inf bucket.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl FixedHistogram {
    fn new(bounds: &'static [u64]) -> FixedHistogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
        FixedHistogram {
            bounds,
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Bucket upper bounds (exclusive of the +Inf bucket).
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts; the last entry is the +Inf bucket.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observed value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of observed values, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the quantile at `permille` (500 = p50, 990 = p99) by
    /// locating the bucket holding the rank-`⌈permille·count/1000⌉`
    /// observation and interpolating linearly inside it. Integer-only
    /// math; the error is bounded by the width of that bucket. Returns 0
    /// for an empty histogram.
    pub fn quantile_permille(&self, permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let permille = permille.min(1000);
        let rank = permille.saturating_mul(self.count).div_ceil(1000).max(1);
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                // Bucket value range, tightened by the observed min/max.
                let lo = if idx == 0 { self.min() } else { self.bounds[idx - 1] };
                let hi = if idx < self.bounds.len() { self.bounds[idx].min(self.max) } else { self.max };
                let lo = lo.min(hi);
                let pos = rank - cum; // 1..=c within this bucket
                let est = lo + (hi - lo).saturating_mul(pos) / c;
                return est.clamp(self.min(), self.max);
            }
            cum += c;
        }
        self.max
    }

    /// Estimated median (see [`FixedHistogram::quantile_permille`]).
    pub fn p50(&self) -> u64 {
        self.quantile_permille(500)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile_permille(900)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile_permille(990)
    }

    fn merge(&mut self, other: &FixedHistogram) {
        if self.bounds != other.bounds {
            return;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Deterministic registry of counters, gauges, and fixed-bucket histograms.
///
/// # Examples
///
/// ```
/// use icbtc_sim::obs::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.inc_with("btcnet_messages_total", &[("type", "inv")]);
/// m.inc_with("btcnet_messages_total", &[("type", "inv")]);
/// m.set_gauge("ic_ingress_queue_depth", 3);
/// m.observe("canister_ingest_instructions", 42);
/// assert_eq!(m.counter_with("btcnet_messages_total", &[("type", "inv")]), 2);
/// assert_eq!(m.gauge("ic_ingress_queue_depth"), 3);
/// assert!(m.snapshot_json().starts_with("{\n  \"schema_version\": 1"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, i64>,
    histograms: BTreeMap<Key, FixedHistogram>,
    /// Per-name bucket bounds; names not present use [`DEFAULT_BOUNDS`].
    bounds: BTreeMap<&'static str, &'static [u64]>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increments an unlabelled counter by 1.
    pub fn inc(&mut self, name: &'static str) {
        self.add_with(name, &[], 1);
    }

    /// Adds `delta` to an unlabelled counter.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        self.add_with(name, &[], delta);
    }

    /// Increments a labelled counter by 1.
    pub fn inc_with(&mut self, name: &'static str, labels: &[(&'static str, &'static str)]) {
        self.add_with(name, labels, 1);
    }

    /// Adds `delta` to a labelled counter.
    pub fn add_with(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
        delta: u64,
    ) {
        let slot = self.counters.entry(Key::new(name, labels)).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Sets an unlabelled gauge.
    pub fn set_gauge(&mut self, name: &'static str, value: i64) {
        self.set_gauge_with(name, &[], value);
    }

    /// Sets a labelled gauge.
    pub fn set_gauge_with(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
        value: i64,
    ) {
        self.gauges.insert(Key::new(name, labels), value);
    }

    /// Registers explicit bucket bounds for all histograms named `name`.
    ///
    /// Must be called before the first `observe` of that name to take
    /// effect; later calls are ignored for already-materialised label sets.
    pub fn register_histogram(&mut self, name: &'static str, bounds: &'static [u64]) {
        self.bounds.insert(name, bounds);
    }

    /// Records one observation into an unlabelled histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.observe_with(name, &[], value);
    }

    /// Records one observation into a labelled histogram.
    pub fn observe_with(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
        value: u64,
    ) {
        let bounds = self.bounds.get(name).copied().unwrap_or(DEFAULT_BOUNDS);
        self.histograms
            .entry(Key::new(name, labels))
            .or_insert_with(|| FixedHistogram::new(bounds))
            .observe(value);
    }

    /// Reads an unlabelled counter (0 if never recorded).
    // icbtc-lint: node-local -- metrics are per-replica observability state; replicated execution must never read them back
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counter_with(name, &[])
    }

    /// Reads a labelled counter (0 if never recorded).
    // icbtc-lint: node-local -- metrics are per-replica observability state; replicated execution must never read them back
    pub fn counter_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> u64 {
        self.counters.get(&Key::new(name, labels)).copied().unwrap_or(0)
    }

    /// Sums a counter across all label sets sharing `name`.
    // icbtc-lint: node-local -- metrics are per-replica observability state; replicated execution must never read them back
    pub fn counter_total(&self, name: &'static str) -> u64 {
        self.counters.iter().filter(|(k, _)| k.name == name).map(|(_, v)| *v).sum()
    }

    /// Reads an unlabelled gauge (0 if never set).
    // icbtc-lint: node-local -- metrics are per-replica observability state; replicated execution must never read them back
    pub fn gauge(&self, name: &'static str) -> i64 {
        self.gauge_with(name, &[])
    }

    /// Reads a labelled gauge (0 if never set).
    // icbtc-lint: node-local -- metrics are per-replica observability state; replicated execution must never read them back
    pub fn gauge_with(&self, name: &'static str, labels: &[(&'static str, &'static str)]) -> i64 {
        self.gauges.get(&Key::new(name, labels)).copied().unwrap_or(0)
    }

    /// Reads an unlabelled histogram, if any observation was recorded.
    // icbtc-lint: node-local -- metrics are per-replica observability state; replicated execution must never read them back
    pub fn histogram(&self, name: &'static str) -> Option<&FixedHistogram> {
        self.histogram_with(name, &[])
    }

    /// Reads a labelled histogram, if any observation was recorded.
    // icbtc-lint: node-local -- metrics are per-replica observability state; replicated execution must never read them back
    pub fn histogram_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> Option<&FixedHistogram> {
        self.histograms.get(&Key::new(name, labels))
    }

    /// Returns `true` if nothing has been recorded.
    // icbtc-lint: node-local -- metrics are per-replica observability state; replicated execution must never read them back
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Number of distinct (name, labels) series across all metric kinds.
    // icbtc-lint: node-local -- metrics are per-replica observability state; replicated execution must never read them back
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Folds another registry into this one: counters and histogram buckets
    /// add, gauges sum. Used to aggregate per-replica registries (e.g. the
    /// 13 adapters of a subnet) into one snapshot; histograms with
    /// mismatched bounds keep the existing shape.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (&name, &bounds) in &other.bounds {
            self.bounds.entry(name).or_insert(bounds);
        }
        for (key, value) in &other.counters {
            let slot = self.counters.entry(key.clone()).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        for (key, value) in &other.gauges {
            let slot = self.gauges.entry(key.clone()).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        for (key, hist) in &other.histograms {
            match self.histograms.get_mut(key) {
                Some(mine) => mine.merge(hist),
                None => {
                    self.histograms.insert(key.clone(), hist.clone());
                }
            }
        }
    }

    /// Renders the snapshot as aligned text tables (for reports).
    // icbtc-lint: node-local -- metrics are per-replica observability state; replicated execution must never read them back
    pub fn snapshot_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let mut t = Table::new(vec!["counter", "labels", "value"]);
            for (key, value) in &self.counters {
                t.row(vec![key.name.to_string(), format_labels(&key.labels), humanize(*value as f64)]);
            }
            out.push_str(&t.to_string());
        }
        if !self.gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let mut t = Table::new(vec!["gauge", "labels", "value"]);
            for (key, value) in &self.gauges {
                t.row(vec![key.name.to_string(), format_labels(&key.labels), humanize(*value as f64)]);
            }
            out.push_str(&t.to_string());
        }
        if !self.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let mut t = Table::new(vec!["histogram", "labels", "count", "mean", "min", "max"]);
            for (key, hist) in &self.histograms {
                t.row(vec![
                    key.name.to_string(),
                    format_labels(&key.labels),
                    humanize(hist.count() as f64),
                    humanize(hist.mean()),
                    humanize(hist.min() as f64),
                    humanize(hist.max() as f64),
                ]);
            }
            out.push_str(&t.to_string());
        }
        out
    }

    /// Renders the snapshot as JSON (`schema_version` 1).
    ///
    /// Every value is an integer and every list is walked in `BTreeMap`
    /// order, so equal registries render byte-identical strings.
    // icbtc-lint: node-local -- metrics are per-replica observability state; replicated execution must never read them back
    pub fn snapshot_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {SNAPSHOT_SCHEMA_VERSION},\n"));

        out.push_str("  \"counters\": [");
        let mut first = true;
        for (key, value) in &self.counters {
            push_entry_prefix(&mut out, &mut first);
            push_name_labels(&mut out, key);
            out.push_str(&format!(", \"value\": {value}}}"));
        }
        close_list(&mut out, first);
        out.push(',');
        out.push('\n');

        out.push_str("  \"gauges\": [");
        let mut first = true;
        for (key, value) in &self.gauges {
            push_entry_prefix(&mut out, &mut first);
            push_name_labels(&mut out, key);
            out.push_str(&format!(", \"value\": {value}}}"));
        }
        close_list(&mut out, first);
        out.push(',');
        out.push('\n');

        out.push_str("  \"histograms\": [");
        let mut first = true;
        for (key, hist) in &self.histograms {
            push_entry_prefix(&mut out, &mut first);
            push_name_labels(&mut out, key);
            out.push_str(&format!(", \"count\": {}, \"sum\": {}", hist.count(), hist.sum()));
            out.push_str(&format!(
                ", \"p50\": {}, \"p90\": {}, \"p99\": {}",
                hist.p50(),
                hist.p90(),
                hist.p99()
            ));
            out.push_str(", \"bounds\": [");
            for (i, b) in hist.bounds().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&b.to_string());
            }
            out.push_str("], \"buckets\": [");
            for (i, c) in hist.buckets().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.to_string());
            }
            out.push_str("]}");
        }
        close_list(&mut out, first);
        out.push('\n');
        out.push('}');
        out.push('\n');
        out
    }
}

fn push_entry_prefix(out: &mut String, first: &mut bool) {
    if *first {
        out.push('\n');
        *first = false;
    } else {
        out.push_str(",\n");
    }
    out.push_str("    ");
}

fn push_name_labels(out: &mut String, key: &Key) {
    out.push_str("{\"name\": ");
    push_json_str(out, key.name);
    out.push_str(", \"labels\": {");
    for (i, (k, v)) in key.labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_str(out, k);
        out.push_str(": ");
        push_json_str(out, v);
    }
    out.push('}');
}

fn close_list(out: &mut String, was_empty: bool) {
    if was_empty {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
}

fn format_labels(labels: &[(&'static str, &'static str)]) -> String {
    if labels.is_empty() {
        return "-".to_string();
    }
    let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut m = MetricsRegistry::new();
        m.inc_with("msgs", &[("type", "inv")]);
        m.add_with("msgs", &[("type", "inv")], 2);
        m.inc_with("msgs", &[("type", "block")]);
        assert_eq!(m.counter_with("msgs", &[("type", "inv")]), 3);
        assert_eq!(m.counter_with("msgs", &[("type", "block")]), 1);
        assert_eq!(m.counter_with("msgs", &[("type", "tx")]), 0);
        assert_eq!(m.counter_total("msgs"), 4);
    }

    #[test]
    fn label_order_is_canonicalised() {
        let mut m = MetricsRegistry::new();
        m.inc_with("c", &[("a", "1"), ("b", "2")]);
        m.inc_with("c", &[("b", "2"), ("a", "1")]);
        assert_eq!(m.counter_with("c", &[("b", "2"), ("a", "1")]), 2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("depth", 5);
        m.set_gauge("depth", -2);
        assert_eq!(m.gauge("depth"), -2);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut m = MetricsRegistry::new();
        m.register_histogram("lat", &[10, 100]);
        for v in [1, 10, 11, 1000] {
            m.observe("lat", v);
        }
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.buckets(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1022);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 255.5).abs() < 1e-9);
    }

    /// Exact percentile of a value set, matching the estimator's rank
    /// convention: the rank-`⌈permille·count/1000⌉` smallest value.
    fn oracle(values: &mut [u64], permille: u64) -> u64 {
        values.sort_unstable();
        let rank = (permille * values.len() as u64).div_ceil(1000).max(1);
        values[rank as usize - 1]
    }

    /// Width of the histogram bucket that contains `value` — the
    /// estimator's documented error bound.
    fn bucket_width(bounds: &[u64], value: u64) -> u64 {
        let idx = bounds.partition_point(|&b| b < value);
        let lo = if idx == 0 { 0 } else { bounds[idx - 1] };
        let hi = if idx < bounds.len() { bounds[idx] } else { u64::MAX };
        hi - lo
    }

    #[test]
    fn percentiles_are_exact_on_bucket_aligned_uniform() {
        let mut m = MetricsRegistry::new();
        let mut values: Vec<u64> = (1..=1000).collect();
        for &v in &values {
            m.observe("lat", v);
        }
        let h = m.histogram("lat").unwrap();
        // Uniform 1..=1000 interpolates exactly on the 1-2-5 ladder.
        assert_eq!(h.p50(), oracle(&mut values, 500));
        assert_eq!(h.p90(), oracle(&mut values, 900));
        assert_eq!(h.p99(), oracle(&mut values, 990));
    }

    #[test]
    fn percentiles_within_bucket_width_of_oracle_on_skewed_distributions() {
        // Heavy head, long tail: 900 small values, 100 spread large ones.
        let mut values: Vec<u64> = Vec::new();
        values.extend(std::iter::repeat_n(37u64, 900));
        values.extend((0..100).map(|i| 10_000 + 137 * i));
        let mut m = MetricsRegistry::new();
        for &v in &values {
            m.observe("lat", v);
        }
        let h = m.histogram("lat").unwrap();
        for permille in [500, 900, 990] {
            let exact = oracle(&mut values, permille);
            let est = h.quantile_permille(permille);
            let band = bucket_width(DEFAULT_BOUNDS, exact);
            assert!(
                est.abs_diff(exact) <= band,
                "p{permille}: estimate {est} vs oracle {exact} exceeds bucket width {band}"
            );
        }
    }

    #[test]
    fn percentiles_clamp_to_observed_range() {
        let mut m = MetricsRegistry::new();
        for _ in 0..1000 {
            m.observe("lat", 42);
        }
        let h = m.histogram("lat").unwrap();
        // A point mass never interpolates outside [min, max].
        assert_eq!((h.p50(), h.p90(), h.p99()), (42, 42, 42));
        let empty = MetricsRegistry::new();
        assert!(empty.histogram("lat").is_none());
    }

    #[test]
    fn snapshot_json_includes_integer_percentiles() {
        let mut m = MetricsRegistry::new();
        m.register_histogram("lat", &[10, 100]);
        for v in [1, 10, 11, 99] {
            m.observe("lat", v);
        }
        let json = m.snapshot_json();
        let h = m.histogram("lat").unwrap();
        assert!(json.contains(&format!(
            "\"p50\": {}, \"p90\": {}, \"p99\": {}",
            h.p50(),
            h.p90(),
            h.p99()
        )));
        assert!(!json.contains('.'), "percentiles must render as integers");
    }

    #[test]
    fn histogram_default_bounds_cover_wide_range() {
        let mut m = MetricsRegistry::new();
        m.observe("x", 0);
        m.observe("x", u64::MAX);
        let h = m.histogram("x").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(*h.buckets().last().unwrap(), 1);
    }

    #[test]
    fn empty_histogram_reads_as_zero() {
        let mut m = MetricsRegistry::new();
        m.register_histogram("never", INSTRUCTION_BOUNDS);
        assert!(m.histogram("never").is_none());
        m.observe("once", 7);
        let h = m.histogram("once").unwrap();
        assert_eq!((h.min(), h.max(), h.count()), (7, 7, 1));
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add("c", 1);
        b.add("c", 2);
        a.set_gauge("g", 10);
        b.set_gauge("g", 5);
        a.observe("h", 3);
        b.observe("h", 5);
        a.merge_from(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), 15);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 8);
    }

    #[test]
    fn snapshot_json_is_stable_and_integer_only() {
        let mut m = MetricsRegistry::new();
        m.inc_with("msgs", &[("type", "inv")]);
        m.set_gauge("depth", 4);
        m.register_histogram("lat", &[10]);
        m.observe("lat", 3);
        let json = m.snapshot_json();
        assert_eq!(json, m.snapshot_json());
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("{\"name\": \"msgs\", \"labels\": {\"type\": \"inv\"}, \"value\": 1}"));
        assert!(json.contains("\"bounds\": [10], \"buckets\": [1, 0]"));
        assert!(!json.contains('.'), "snapshot must not contain float values");
    }

    #[test]
    fn empty_snapshot_renders() {
        let m = MetricsRegistry::new();
        let json = m.snapshot_json();
        assert!(json.contains("\"counters\": []"));
        assert_eq!(m.snapshot_text(), "");
        assert!(m.is_empty());
    }

    #[test]
    fn snapshot_text_lists_all_kinds() {
        let mut m = MetricsRegistry::new();
        m.inc("a_total");
        m.set_gauge_with("b", &[("node", "0")], 2);
        m.observe("c", 9);
        let text = m.snapshot_text();
        assert!(text.contains("a_total"));
        assert!(text.contains("node=0"));
        assert!(text.contains("histogram"));
    }

    mod properties {
        use super::*;
        use crate::testkit;

        /// The snapshot is a pure function of recorded values — the order
        /// in which series are first touched must not matter.
        #[test]
        fn snapshot_independent_of_registration_order() {
            testkit::check(0x0B5_0001, 64, |rng| {
                let names: [&'static str; 4] = ["alpha", "beta", "gamma", "delta"];
                let mut ops: Vec<(usize, u64)> = (0..names.len())
                    .map(|i| (i, testkit::u64_in(rng, 1..1000)))
                    .collect();

                let mut forward = MetricsRegistry::new();
                for (i, v) in &ops {
                    forward.add(names[*i], *v);
                    forward.set_gauge(names[*i], *v as i64);
                    forward.observe(names[*i], *v);
                }

                // Shuffle deterministically via the harness RNG.
                for i in (1..ops.len()).rev() {
                    let j = testkit::u64_in(rng, 0..(i as u64 + 1)) as usize;
                    ops.swap(i, j);
                }
                let mut shuffled = MetricsRegistry::new();
                for (i, v) in &ops {
                    shuffled.add(names[*i], *v);
                    shuffled.set_gauge(names[*i], *v as i64);
                    shuffled.observe(names[*i], *v);
                }

                assert_eq!(forward.snapshot_json(), shuffled.snapshot_json());
                assert_eq!(forward.snapshot_text(), shuffled.snapshot_text());
            });
        }
    }
}

//! `icbtc-obs`: deterministic observability for the simulation runtime.
//!
//! Three parts, all zero-dependency and fully deterministic:
//!
//! * [`MetricsRegistry`] — monotonic counters, gauges, and fixed-bucket
//!   histograms with static label sets. Storage is `BTreeMap`-backed so a
//!   snapshot walks metrics in a canonical order: the same seed always
//!   renders byte-identical text and JSON snapshots.
//! * [`Trace`] — structured `span_start` / `span_end` / `event` records
//!   stamped with sim-time (never wall-clock) and a monotonic sequence
//!   number, held in a ring buffer and dumpable as JSONL.
//! * [`Profiler`] — a sampling-free hierarchical frame profiler that
//!   attributes metered instructions / modeled service units to a stack
//!   of named frames, with per-frame self/total cost and call counts.
//!
//! Every runtime layer (adapter, canister, IC subnet, btcnet) owns an
//! [`Obs`] instance; benches and tests read experiment numbers back out of
//! the registry instead of keeping hand-rolled tallies, so the instrumented
//! path and the reported path are the same code.
//!
//! # Determinism contract
//!
//! * Timestamps come from [`SimTime`](crate::SimTime) only.
//! * Metric values are integers (`u64` counters / histogram buckets, `i64`
//!   gauges); no float appears in the JSON snapshot, so rendering is exact.
//! * Iteration order is the `BTreeMap` key order of `(name, sorted labels)`.
//! * Trace sequence numbers are assigned in call order; a given seed
//!   produces the identical call order and therefore identical dumps.

mod prof;
mod registry;
mod trace;

pub use prof::{FrameStat, FrameToken, ProfScope, Profiler};
pub use registry::{
    FixedHistogram, MetricsRegistry, DEFAULT_BOUNDS, INSTRUCTION_BOUNDS, SNAPSHOT_SCHEMA_VERSION,
};
pub use trace::{FieldValue, SpanId, Trace, TraceKind, TraceRecord, DEFAULT_TRACE_CAPACITY};

/// One observability endpoint: a metrics registry plus a trace buffer,
/// tagged with the component (layer) that owns it.
///
/// # Examples
///
/// ```
/// use icbtc_sim::obs::Obs;
/// use icbtc_sim::SimTime;
///
/// let mut obs = Obs::new("adapter");
/// obs.metrics.inc("adapter_blocks_received_total");
/// obs.trace.event("adapter.block_received", SimTime::from_secs(5), &[]);
/// assert_eq!(obs.metrics.counter("adapter_blocks_received_total"), 1);
/// assert_eq!(obs.trace.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Obs {
    /// Labelled counters, gauges, and fixed-bucket histograms.
    pub metrics: MetricsRegistry,
    /// Ring-buffered structured trace.
    pub trace: Trace,
    /// Deterministic hierarchical frame profiler.
    pub prof: Profiler,
}

impl Obs {
    /// Creates an endpoint with the default trace capacity.
    pub fn new(component: &'static str) -> Obs {
        Obs::with_trace_capacity(component, DEFAULT_TRACE_CAPACITY)
    }

    /// Creates an endpoint whose trace ring buffer holds `capacity` records.
    pub fn with_trace_capacity(component: &'static str, capacity: usize) -> Obs {
        Obs {
            metrics: MetricsRegistry::new(),
            trace: Trace::new(component, capacity),
            prof: Profiler::new(),
        }
    }

    /// The component tag stamped on every trace record.
    pub fn component(&self) -> &'static str {
        self.trace.component()
    }
}

/// Appends `s` to `out` as a JSON string literal (with surrounding quotes).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_control_and_quotes() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn obs_carries_component_tag() {
        let obs = Obs::new("canister");
        assert_eq!(obs.component(), "canister");
    }
}

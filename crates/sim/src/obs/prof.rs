//! Deterministic, sampling-free hierarchical profiler.
//!
//! The profiler attributes *work units* — metered instructions on the
//! canister path, modeled service-time units on the adapter/ic/btcnet
//! paths — to a stack of named frames. There is no sampling and no
//! wall-clock anywhere: a frame's cost is the difference of an explicit
//! monotonic clock read at entry and exit, so two same-seed runs produce
//! byte-identical reports (the same contract as the rest of `obs`).
//!
//! # Frame model
//!
//! Frames form a tree rooted at a synthetic root node. Entering frame
//! `b` while `a` is open creates (or reuses) the tree path `a;b`. On
//! exit, the frame's **total** is `exit_clock - enter_clock` and its
//! **self** cost is the total minus the totals of the child frames that
//! closed beneath it. The invariant maintained throughout:
//!
//! > the sum of `self` over all frames equals the root total.
//!
//! # Clocks
//!
//! Two ways to drive the clock:
//!
//! * **External clock** — [`Profiler::enter_at`] / [`Profiler::exit_at`]
//!   take the clock value explicitly. The canister path uses the meter's
//!   instruction counter as the clock, so frames account exactly the
//!   instructions charged between entry and exit.
//! * **Internal work clock** — [`Profiler::enter`] / [`Profiler::exit`] /
//!   [`Profiler::add`] drive a private `u64` accumulator. Layers without
//!   a meter (adapter, btcnet) call `add(units)` for each piece of
//!   modeled work; the open frame stack attributes it.
//!
//! # Unbalanced exits
//!
//! `exit_at` closes every frame *deeper than* the exited token at the
//! exit clock, so an early return that skips inner `exit` calls still
//! leaves the stack balanced (and [`ProfScope`] makes the common case a
//! drop guard). Exiting an already-closed token is a no-op.

use std::collections::BTreeMap;

/// Handle for an open frame; pass it back to [`Profiler::exit_at`] (or
/// [`Profiler::exit`]). Tokens are stack positions: exiting a token also
/// closes any frames opened above it that were never exited explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "unexited frames only close when an enclosing token exits"]
pub struct FrameToken {
    /// Stack index of the frame this token opened.
    index: usize,
}

/// Aggregated statistics of one frame (one tree node), as reported by
/// [`Profiler::frames`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameStat {
    /// `;`-joined path from the root, e.g. `"ingest_block;script_parse"`.
    pub path: String,
    /// Leaf frame name.
    pub name: &'static str,
    /// Nesting depth (1 = direct child of the root).
    pub depth: usize,
    /// Work units spent in this frame excluding child frames.
    pub self_units: u64,
    /// Work units spent in this frame including child frames.
    pub total_units: u64,
    /// Number of times the frame was entered.
    pub calls: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct FrameNode {
    name: &'static str,
    parent: usize,
    self_units: u64,
    total_units: u64,
    calls: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ActiveFrame {
    node: usize,
    enter_clock: u64,
    /// Sum of totals of child frames that closed under this frame.
    child_units: u64,
}

/// Deterministic hierarchical frame profiler. Integer-only state; all
/// iteration is `BTreeMap`/index ordered, so same-seed runs render
/// byte-identical reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profiler {
    /// Node 0 is the synthetic root (`name = "root"`, parent = 0).
    nodes: Vec<FrameNode>,
    /// `(parent node index, child name) -> child node index`.
    children: BTreeMap<(usize, &'static str), usize>,
    stack: Vec<ActiveFrame>,
    /// Internal work clock for layers without an external meter.
    work: u64,
    max_depth: usize,
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new()
    }
}

const ROOT: usize = 0;

impl Profiler {
    /// Creates an empty profiler (just the synthetic root).
    pub fn new() -> Profiler {
        Profiler {
            nodes: vec![FrameNode {
                name: "root",
                parent: ROOT,
                self_units: 0,
                total_units: 0,
                calls: 0,
            }],
            children: BTreeMap::new(),
            stack: Vec::new(),
            work: 0,
            max_depth: 0,
        }
    }

    fn child_node(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&idx) = self.children.get(&(parent, name)) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(FrameNode { name, parent, self_units: 0, total_units: 0, calls: 0 });
        self.children.insert((parent, name), idx);
        idx
    }

    /// Opens a frame at an explicit clock value (e.g. the meter's
    /// instruction counter). The clock must be monotonic between this
    /// call and the matching [`Profiler::exit_at`].
    pub fn enter_at(&mut self, name: &'static str, clock: u64) -> FrameToken {
        let parent = self.stack.last().map(|f| f.node).unwrap_or(ROOT);
        let node = self.child_node(parent, name);
        self.nodes[node].calls += 1;
        let index = self.stack.len();
        self.stack.push(ActiveFrame { node, enter_clock: clock, child_units: 0 });
        if self.stack.len() > self.max_depth {
            self.max_depth = self.stack.len();
        }
        FrameToken { index }
    }

    /// Closes the frame opened by `token` (and any deeper frames that
    /// were never explicitly exited — early returns stay balanced) at an
    /// explicit clock value. Exiting an already-closed token is a no-op.
    pub fn exit_at(&mut self, token: FrameToken, clock: u64) {
        while self.stack.len() > token.index {
            let Some(frame) = self.stack.pop() else { return };
            let total = clock.saturating_sub(frame.enter_clock);
            let node = &mut self.nodes[frame.node];
            node.total_units += total;
            node.self_units += total.saturating_sub(frame.child_units);
            match self.stack.last_mut() {
                Some(parent) => parent.child_units += total,
                // A depth-1 frame closed: its total rolls into the root,
                // keeping Σ self == root total.
                None => self.nodes[ROOT].total_units += total,
            }
        }
    }

    /// Opens a frame on the internal work clock.
    pub fn enter(&mut self, name: &'static str) -> FrameToken {
        let clock = self.work;
        self.enter_at(name, clock)
    }

    /// Closes a frame opened on the internal work clock.
    pub fn exit(&mut self, token: FrameToken) {
        let clock = self.work;
        self.exit_at(token, clock);
    }

    /// Advances the internal work clock by `units` of modeled work,
    /// attributing them to the innermost open frame.
    pub fn add(&mut self, units: u64) {
        self.work = self.work.saturating_add(units);
    }

    /// Opens a frame on the internal work clock and returns a drop guard
    /// that closes it — early returns and `?` exits stay balanced.
    pub fn scope(&mut self, name: &'static str) -> ProfScope<'_> {
        let token = self.enter(name);
        ProfScope { prof: self, token }
    }

    /// Number of frames currently open.
    // icbtc-lint: node-local -- profile state is per-replica diagnostics
    pub fn in_flight(&self) -> usize {
        self.stack.len()
    }

    /// Total work units accounted at the root (the sum of all frames'
    /// self units).
    // icbtc-lint: node-local -- profile state is per-replica diagnostics
    pub fn root_total(&self) -> u64 {
        self.nodes[ROOT].total_units
    }

    /// Deepest stack observed.
    // icbtc-lint: node-local -- profile state is per-replica diagnostics
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// `true` if no frame has ever closed with nonzero cost.
    // icbtc-lint: node-local -- profile state is per-replica diagnostics
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.stack.is_empty()
    }

    /// All frames in deterministic depth-first order (children visited
    /// in name order), paths `;`-joined from the root.
    // icbtc-lint: node-local -- profile reads are per-replica diagnostics
    pub fn frames(&self) -> Vec<FrameStat> {
        let mut out = Vec::new();
        self.walk(ROOT, &mut String::new(), 0, &mut out);
        out
    }

    fn walk(&self, node: usize, path: &mut String, depth: usize, out: &mut Vec<FrameStat>) {
        // `children` is keyed `(parent, name)`, so a range over one parent
        // yields that parent's children in name order.
        let kids: Vec<(&'static str, usize)> = self
            .children
            .range((node, "")..)
            .take_while(|((p, _), _)| *p == node)
            .map(|((_, name), idx)| (*name, *idx))
            .collect();
        for (name, idx) in kids {
            let saved = path.len();
            if !path.is_empty() {
                path.push(';');
            }
            path.push_str(name);
            let n = &self.nodes[idx];
            out.push(FrameStat {
                path: path.clone(),
                name,
                depth: depth + 1,
                self_units: n.self_units,
                total_units: n.total_units,
                calls: n.calls,
            });
            self.walk(idx, path, depth + 1, out);
            path.truncate(saved);
        }
    }

    /// Merges `other`'s accumulated frames into `self`, matching frames
    /// by path from the root. Open stacks are not merged — only closed
    /// (accounted) cost moves.
    pub fn merge_from(&mut self, other: &Profiler) {
        self.graft(ROOT, other, ROOT);
        self.nodes[ROOT].total_units += other.nodes[ROOT].total_units;
        if other.max_depth > self.max_depth {
            self.max_depth = other.max_depth;
        }
    }

    /// Merges `other` under a child of the root named `label`, so several
    /// components' profiles can live in one tree without path collisions.
    /// `label` absorbs `other`'s root total as its own total.
    pub fn merge_under(&mut self, label: &'static str, other: &Profiler) {
        let slot = self.child_node(ROOT, label);
        self.graft(slot, other, ROOT);
        let grafted = other.nodes[ROOT].total_units;
        self.nodes[slot].total_units += grafted;
        self.nodes[ROOT].total_units += grafted;
        let depth = other.max_depth + 1;
        if depth > self.max_depth {
            self.max_depth = depth;
        }
    }

    fn graft(&mut self, my_parent: usize, other: &Profiler, other_parent: usize) {
        let kids: Vec<(&'static str, usize)> = other
            .children
            .range((other_parent, "")..)
            .take_while(|((p, _), _)| *p == other_parent)
            .map(|((_, name), idx)| (*name, *idx))
            .collect();
        for (name, other_idx) in kids {
            let mine = self.child_node(my_parent, name);
            let theirs = &other.nodes[other_idx];
            self.nodes[mine].self_units += theirs.self_units;
            self.nodes[mine].total_units += theirs.total_units;
            self.nodes[mine].calls += theirs.calls;
            self.graft(mine, other, other_idx);
        }
    }

    /// Renders the deterministic profile report: a header, the top-`n`
    /// frames by self cost, and collapsed-stack flamegraph lines
    /// (`a;b;c <self_units>`). Integer-only; byte-identical across
    /// same-seed runs.
    // icbtc-lint: node-local -- profile reports are per-replica diagnostics
    pub fn render_report(&self, top_n: usize) -> String {
        let frames = self.frames();
        let mut out = String::new();
        out.push_str("# profile report (deterministic, units = instructions / modeled service units)\n");
        out.push_str(&format!(
            "frames: {}  max_depth: {}  root_total: {}\n",
            frames.len(),
            self.max_depth,
            self.root_total(),
        ));
        out.push_str(&format!("\n## top {top_n} frames by self cost\n"));
        out.push_str(&format!(
            "{:>20}  {:>20}  {:>10}  frame\n",
            "self_units", "total_units", "calls"
        ));
        let mut by_self: Vec<&FrameStat> = frames.iter().collect();
        // Deterministic order: self cost descending, path ascending on ties.
        by_self.sort_by(|a, b| b.self_units.cmp(&a.self_units).then_with(|| a.path.cmp(&b.path)));
        for stat in by_self.iter().take(top_n) {
            out.push_str(&format!(
                "{:>20}  {:>20}  {:>10}  {}\n",
                stat.self_units, stat.total_units, stat.calls, stat.path
            ));
        }
        out.push_str("\n## collapsed stacks\n");
        for stat in &frames {
            if stat.self_units > 0 {
                out.push_str(&format!("{} {}\n", stat.path, stat.self_units));
            }
        }
        out
    }
}

/// Drop guard returned by [`Profiler::scope`]: closes its frame on the
/// internal work clock when dropped, however the scope is left.
#[derive(Debug)]
pub struct ProfScope<'a> {
    prof: &'a mut Profiler,
    token: FrameToken,
}

impl ProfScope<'_> {
    /// Adds `units` of modeled work inside this frame.
    pub fn add(&mut self, units: u64) {
        self.prof.add(units);
    }

    /// The underlying profiler, for opening a nested frame.
    pub fn prof(&mut self) -> &mut Profiler {
        self.prof
    }
}

impl Drop for ProfScope<'_> {
    fn drop(&mut self) {
        self.prof.exit(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_and_total_attribution() {
        let mut p = Profiler::new();
        let a = p.enter_at("a", 0);
        let b = p.enter_at("b", 10);
        p.exit_at(b, 40);
        p.exit_at(a, 100);
        let frames = p.frames();
        let a = frames.iter().find(|f| f.path == "a").unwrap();
        let b = frames.iter().find(|f| f.path == "a;b").unwrap();
        assert_eq!(a.total_units, 100);
        assert_eq!(a.self_units, 70);
        assert_eq!(b.total_units, 30);
        assert_eq!(b.self_units, 30);
        assert_eq!(p.root_total(), 100);
        assert_eq!(p.max_depth(), 2);
    }

    #[test]
    fn self_sums_to_root_total() {
        let mut p = Profiler::new();
        for round in 0..5u64 {
            let base = round * 1000;
            let a = p.enter_at("a", base);
            let b = p.enter_at("b", base + 3);
            let c = p.enter_at("c", base + 10);
            p.exit_at(c, base + 50);
            p.exit_at(b, base + 70);
            let d = p.enter_at("d", base + 80);
            p.exit_at(d, base + 95);
            p.exit_at(a, base + 200);
        }
        let sum: u64 = p.frames().iter().map(|f| f.self_units).sum();
        assert_eq!(sum, p.root_total());
        assert_eq!(p.root_total(), 5 * 200);
    }

    #[test]
    fn early_returns_are_healed_by_outer_exit() {
        let mut p = Profiler::new();
        let outer = p.enter_at("outer", 0);
        let _inner = p.enter_at("inner", 10);
        // `inner` never exits explicitly (early return); the outer exit
        // closes it at the same clock.
        p.exit_at(outer, 100);
        assert_eq!(p.in_flight(), 0);
        let frames = p.frames();
        let inner = frames.iter().find(|f| f.path == "outer;inner").unwrap();
        assert_eq!(inner.total_units, 90);
        let sum: u64 = frames.iter().map(|f| f.self_units).sum();
        assert_eq!(sum, p.root_total());
    }

    #[test]
    fn double_exit_is_a_noop() {
        let mut p = Profiler::new();
        let a = p.enter_at("a", 0);
        p.exit_at(a, 10);
        p.exit_at(a, 50);
        assert_eq!(p.root_total(), 10);
        assert_eq!(p.frames()[0].calls, 1);
    }

    #[test]
    fn scope_guard_balances_on_early_return() {
        fn work(p: &mut Profiler, bail: bool) -> Option<u64> {
            let mut scope = p.scope("work");
            scope.add(7);
            if bail {
                return None; // drop closes the frame
            }
            scope.add(3);
            Some(10)
        }
        let mut p = Profiler::new();
        assert_eq!(work(&mut p, true), None);
        assert_eq!(work(&mut p, false), Some(10));
        assert_eq!(p.in_flight(), 0);
        let frames = p.frames();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].self_units, 17);
        assert_eq!(frames[0].calls, 2);
        let sum: u64 = frames.iter().map(|f| f.self_units).sum();
        assert_eq!(sum, p.root_total());
    }

    #[test]
    fn merge_from_matches_paths() {
        let build = |scale: u64| {
            let mut p = Profiler::new();
            let a = p.enter_at("a", 0);
            let b = p.enter_at("b", scale);
            p.exit_at(b, 3 * scale);
            p.exit_at(a, 4 * scale);
            p
        };
        let mut p = build(10);
        p.merge_from(&build(100));
        let frames = p.frames();
        let a = frames.iter().find(|f| f.path == "a").unwrap();
        assert_eq!(a.total_units, 40 + 400);
        assert_eq!(a.calls, 2);
        let sum: u64 = frames.iter().map(|f| f.self_units).sum();
        assert_eq!(sum, p.root_total());
    }

    #[test]
    fn merge_under_prefixes_components() {
        let mut component = Profiler::new();
        let a = component.enter_at("hot", 0);
        component.exit_at(a, 42);
        let mut merged = Profiler::new();
        merged.merge_under("canister", &component);
        let frames = merged.frames();
        assert!(frames.iter().any(|f| f.path == "canister;hot" && f.total_units == 42));
        assert_eq!(merged.root_total(), 42);
        let sum: u64 = frames.iter().map(|f| f.self_units).sum();
        assert_eq!(sum, merged.root_total());
    }

    #[test]
    fn report_is_deterministic_and_collapsed_stacks_render() {
        let build = || {
            let mut p = Profiler::new();
            let a = p.enter_at("ingest", 0);
            let b = p.enter_at("hashing", 5);
            p.exit_at(b, 30);
            p.exit_at(a, 50);
            p.render_report(8)
        };
        let report = build();
        assert_eq!(report, build());
        assert!(report.contains("ingest;hashing 25\n"));
        assert!(report.contains("ingest 25\n"));
        assert!(report.contains("root_total: 50"));
    }

    #[test]
    fn internal_work_clock_attributes_added_units() {
        let mut p = Profiler::new();
        let a = p.enter("dispatch");
        p.add(100);
        let b = p.enter("encode");
        p.add(40);
        p.exit(b);
        p.exit(a);
        let frames = p.frames();
        let dispatch = frames.iter().find(|f| f.path == "dispatch").unwrap();
        let encode = frames.iter().find(|f| f.path == "dispatch;encode").unwrap();
        assert_eq!(dispatch.self_units, 100);
        assert_eq!(encode.self_units, 40);
        assert_eq!(p.root_total(), 140);
    }
}

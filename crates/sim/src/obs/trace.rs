//! Structured, ring-buffered event trace stamped with sim-time.
//!
//! Records carry a monotonic sequence number assigned in call order: two
//! runs with the same seed issue the same calls in the same order, so the
//! JSONL dump is byte-identical. Timestamps are [`SimTime`] — wall-clock is
//! banned from the runtime (lint rule ICL001), and the trace respects that.

use std::collections::VecDeque;

use super::push_json_str;
use crate::SimTime;

/// Default ring-buffer capacity (records).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// What a [`TraceRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The opening edge of a span; its `span` field is its own sequence
    /// number, which the matching [`TraceKind::SpanEnd`] repeats.
    SpanStart,
    /// The closing edge of a span.
    SpanEnd,
    /// A point event with no duration.
    Event,
}

impl TraceKind {
    fn as_str(self) -> &'static str {
        match self {
            TraceKind::SpanStart => "span_start",
            TraceKind::SpanEnd => "span_end",
            TraceKind::Event => "event",
        }
    }
}

/// Handle returned by [`Trace::span_start`]; pass to [`Trace::span_end`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

impl SpanId {
    /// The sequence number of the span's start record.
    pub fn seq(self) -> u64 {
        self.0
    }
}

/// A field value attached to a trace record. Only integers and static
/// strings are representable, keeping the JSONL dump exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldValue {
    /// Unsigned integer payload (counts, heights, byte sizes).
    U64(u64),
    /// Signed integer payload.
    I64(i64),
    /// Static string payload (message kinds, method names).
    Str(&'static str),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Monotonic sequence number (keeps counting even when the ring drops
    /// old records).
    pub seq: u64,
    /// Sim-time at which the record was emitted.
    pub at: SimTime,
    /// Record kind.
    pub kind: TraceKind,
    /// Event or span name, e.g. `"adapter.get_successors"`.
    pub name: &'static str,
    /// For span edges, the sequence number of the span's start record.
    pub span: Option<u64>,
    /// Structured payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Ring buffer of [`TraceRecord`]s for one component.
///
/// # Examples
///
/// ```
/// use icbtc_sim::obs::{FieldValue, Trace};
/// use icbtc_sim::SimTime;
///
/// let mut trace = Trace::new("adapter", 128);
/// let span = trace.span_start("adapter.get_successors", SimTime::from_secs(1), &[]);
/// trace.event("adapter.block_received", SimTime::from_secs(2), &[("height", FieldValue::U64(7))]);
/// trace.span_end(span, SimTime::from_secs(3), &[("blocks", FieldValue::U64(1))]);
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace.dump_jsonl().lines().count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    component: &'static str,
    capacity: usize,
    records: VecDeque<TraceRecord>,
    next_seq: u64,
    dropped: u64,
}

impl Trace {
    /// Creates a trace whose ring buffer holds up to `capacity` records
    /// (capacity 0 disables recording entirely).
    pub fn new(component: &'static str, capacity: usize) -> Trace {
        Trace {
            component,
            capacity,
            records: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// The component tag stamped on every dumped record.
    pub fn component(&self) -> &'static str {
        self.component
    }

    /// Opens a span; close it with [`Trace::span_end`].
    pub fn span_start(
        &mut self,
        name: &'static str,
        at: SimTime,
        fields: &[(&'static str, FieldValue)],
    ) -> SpanId {
        let seq = self.next_seq;
        self.push(TraceRecord {
            seq,
            at,
            kind: TraceKind::SpanStart,
            name,
            span: Some(seq),
            fields: fields.to_vec(),
        });
        SpanId(seq)
    }

    /// Closes a span opened by [`Trace::span_start`].
    pub fn span_end(&mut self, span: SpanId, at: SimTime, fields: &[(&'static str, FieldValue)]) {
        self.push(TraceRecord {
            seq: self.next_seq,
            at,
            kind: TraceKind::SpanEnd,
            name: "",
            span: Some(span.0),
            fields: fields.to_vec(),
        });
    }

    /// Emits a point event.
    pub fn event(&mut self, name: &'static str, at: SimTime, fields: &[(&'static str, FieldValue)]) {
        self.push(TraceRecord {
            seq: self.next_seq,
            at,
            kind: TraceKind::Event,
            name,
            span: None,
            fields: fields.to_vec(),
        });
    }

    fn push(&mut self, record: TraceRecord) {
        self.next_seq += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Records currently held (oldest first).
    // icbtc-lint: node-local -- trace buffers are per-replica diagnostics; replicated execution must never read them
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records currently held.
    // icbtc-lint: node-local -- per-replica trace occupancy
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no records are held.
    // icbtc-lint: node-local -- per-replica trace occupancy
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Ring-buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records evicted (or never stored, when capacity is 0).
    // icbtc-lint: node-local -- per-replica drop count depends on local buffer pressure
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discards all held records; sequence numbering continues.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Dumps held records as JSONL, one record per line, oldest first.
    // icbtc-lint: node-local -- trace dumps are per-replica diagnostics
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str("{\"component\": ");
            push_json_str(&mut out, self.component);
            out.push_str(&format!(", \"seq\": {}, \"t_ns\": {}, \"kind\": ", record.seq, record.at.as_nanos()));
            push_json_str(&mut out, record.kind.as_str());
            if !record.name.is_empty() {
                out.push_str(", \"name\": ");
                push_json_str(&mut out, record.name);
            }
            if let Some(span) = record.span {
                out.push_str(&format!(", \"span\": {span}"));
            }
            out.push_str(", \"fields\": {");
            for (i, (k, v)) in record.fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_json_str(&mut out, k);
                out.push_str(": ");
                match v {
                    FieldValue::U64(n) => out.push_str(&n.to_string()),
                    FieldValue::I64(n) => out.push_str(&n.to_string()),
                    FieldValue::Str(s) => push_json_str(&mut out, s),
                }
            }
            out.push_str("}}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let mut trace = Trace::new("test", 16);
        let s = trace.span_start("a", t(0), &[]);
        trace.event("b", t(1), &[]);
        trace.span_end(s, t(2), &[]);
        let seqs: Vec<u64> = trace.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(trace.records().nth(2).unwrap().span, Some(0));
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut trace = Trace::new("test", 2);
        trace.event("a", t(0), &[]);
        trace.event("b", t(1), &[]);
        trace.event("c", t(2), &[]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 1);
        let names: Vec<&str> = trace.records().map(|r| r.name).collect();
        assert_eq!(names, vec!["b", "c"]);
        // Sequence numbering keeps counting past evictions.
        trace.event("d", t(3), &[]);
        assert_eq!(trace.records().last().unwrap().seq, 3);
    }

    #[test]
    fn zero_capacity_discards_everything() {
        let mut trace = Trace::new("test", 0);
        trace.event("a", t(0), &[]);
        assert!(trace.is_empty());
        assert_eq!(trace.dropped(), 1);
    }

    #[test]
    fn jsonl_dump_shape() {
        let mut trace = Trace::new("ic", 8);
        let s = trace.span_start("ic.round", t(5), &[("round", FieldValue::U64(1))]);
        trace.span_end(s, t(6), &[("msgs", FieldValue::U64(2)), ("maker", FieldValue::Str("n3"))]);
        let dump = trace.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"component\": \"ic\", \"seq\": 0, \"t_ns\": 5000000000, \"kind\": \"span_start\", \
             \"name\": \"ic.round\", \"span\": 0, \"fields\": {\"round\": 1}}"
        );
        assert!(lines[1].contains("\"kind\": \"span_end\", \"span\": 0"));
        assert!(lines[1].contains("\"maker\": \"n3\""));
    }

    #[test]
    fn dump_is_deterministic() {
        let build = || {
            let mut trace = Trace::new("x", 4);
            trace.event("e", t(1), &[("v", FieldValue::I64(-3))]);
            trace.dump_jsonl()
        };
        assert_eq!(build(), build());
    }
}

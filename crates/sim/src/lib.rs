//! Deterministic discrete-event simulation kernel for the icbtc workspace.
//!
//! Every simulated component in this repository — the Bitcoin P2P network,
//! the Internet Computer subnet, the Bitcoin adapter — advances on the same
//! virtual clock and draws randomness from seeded generators, so every
//! experiment in the evaluation harness is exactly reproducible from a seed.
//!
//! The kernel is deliberately small:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution virtual clock.
//! * [`EventQueue`] — a time-ordered queue with deterministic FIFO tie-breaks.
//! * [`SimRng`] — a seeded random generator with the distribution helpers the
//!   simulations need (exponential inter-arrival times, rough normals, …).
//! * [`metrics`] — sample histograms, counters and series used by the
//!   benchmark harness to regenerate the paper's figures.
//! * [`obs`] — the deterministic observability layer: a labelled metrics
//!   registry and a sim-time-stamped structured trace, embedded in every
//!   runtime component and rendered as byte-stable snapshots.
//! * [`testkit`] — a seeded property-testing harness used by every crate's
//!   randomized tests, so the whole workspace tests offline with no
//!   external dependencies.
//!
//! # Examples
//!
//! ```
//! use icbtc_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::ZERO + SimDuration::from_millis(5), "world");
//! queue.push(SimTime::ZERO + SimDuration::from_millis(1), "hello");
//! let (t1, first) = queue.pop().unwrap();
//! let (t2, second) = queue.pop().unwrap();
//! assert_eq!((first, second), ("hello", "world"));
//! assert!(t1 < t2);
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod metrics;
pub mod obs;
mod queue;
mod rng;
pub mod testkit;
mod time;

pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};

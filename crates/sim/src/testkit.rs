//! A small in-repo property-testing harness.
//!
//! Replaces the external `proptest` dependency with a deterministic,
//! zero-dependency runner built on [`SimRng`]. A property is a closure
//! over a seeded generator; [`check`] runs it for a fixed number of
//! cases, each with an independently derived case seed, and prints the
//! reproducing seed before re-raising the panic when a case fails:
//!
//! ```text
//! testkit: property failed at seed=0xbeef case=17/256; rerun with replay(0x1d0b0c61a53f6e12, ...)
//! ```
//!
//! To debug a failure, paste the printed case seed into [`replay`] in a
//! scratch test and iterate on exactly the failing input.
//!
//! # Examples
//!
//! ```
//! use icbtc_sim::testkit;
//!
//! testkit::check(0xADD5_EED, 256, |rng| {
//!     let xs = testkit::vec_with(rng, 1..50, |r| testkit::u64_in(r, 0..1000));
//!     let total: u64 = xs.iter().sum();
//!     assert!(total <= 1000 * xs.len() as u64);
//! });
//! ```

use std::cell::Cell;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};

use crate::SimRng;

/// Default number of cases per property, matching the tier-1 acceptance
/// bar of ≥256 deterministic cases per ported module.
pub const DEFAULT_CASES: u32 = 256;

thread_local! {
    /// The (seed, case index, case seed) of the most recent failure on
    /// this thread, for the harness's own self-tests.
    static LAST_FAILURE: Cell<Option<(u64, u32, u64)>> = const { Cell::new(None) };
}

/// Returns the `(seed, case, case_seed)` triple of the most recent
/// property failure on this thread, if any. Primarily for testing the
/// harness itself.
pub fn last_failure() -> Option<(u64, u32, u64)> {
    LAST_FAILURE.with(|f| f.get())
}

/// Runs `property` for `cases` deterministic cases derived from `seed`.
///
/// Each case gets a fresh [`SimRng`] seeded with an independent 64-bit
/// case seed drawn from a generator stream over `seed`, so cases do not
/// share state and any one of them can be replayed in isolation with
/// [`replay`]. If the property panics, the harness prints the top-level
/// seed, the case index, and the case seed, then resumes the panic so
/// the test still fails normally.
pub fn check<F: FnMut(&mut SimRng)>(seed: u64, cases: u32, mut property: F) {
    let mut seq = SimRng::seed_from(seed);
    for case in 0..cases {
        let case_seed = seq.next_u64();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            let mut rng = SimRng::seed_from(case_seed);
            property(&mut rng);
        }));
        if let Err(payload) = outcome {
            LAST_FAILURE.with(|f| f.set(Some((seed, case, case_seed))));
            eprintln!(
                "testkit: property failed at seed={seed:#x} case={case}/{cases}; \
                 rerun with replay({case_seed:#x}, ...)"
            );
            panic::resume_unwind(payload);
        }
    }
}

/// Re-runs a single property case from the case seed printed by
/// [`check`] on failure.
pub fn replay<F: FnMut(&mut SimRng)>(case_seed: u64, mut property: F) {
    let mut rng = SimRng::seed_from(case_seed);
    property(&mut rng);
}

/// Uniform `u64` in `range` (`start..end`, end exclusive).
///
/// # Panics
///
/// Panics if the range is empty.
pub fn u64_in(rng: &mut SimRng, range: Range<u64>) -> u64 {
    assert!(range.start < range.end, "u64_in requires a non-empty range");
    range.start + rng.below(range.end - range.start)
}

/// Uniform `u64` over the full 64-bit domain.
pub fn u64_any(rng: &mut SimRng) -> u64 {
    rng.next_u64()
}

/// Uniform `u32` over the full 32-bit domain.
pub fn u32_any(rng: &mut SimRng) -> u32 {
    rng.next_u32()
}

/// Uniform `i32` over the full 32-bit domain.
pub fn i32_any(rng: &mut SimRng) -> i32 {
    rng.next_u32() as i32
}

/// Uniform `usize` in `range` (`start..end`, end exclusive).
///
/// # Panics
///
/// Panics if the range is empty.
pub fn usize_in(rng: &mut SimRng, range: Range<usize>) -> usize {
    assert!(range.start < range.end, "usize_in requires a non-empty range");
    range.start + rng.below((range.end - range.start) as u64) as usize
}

/// Uniform `f64` in `range` (`start..end`, end exclusive).
pub fn f64_in(rng: &mut SimRng, range: Range<f64>) -> f64 {
    range.start + rng.unit() * (range.end - range.start)
}

/// A uniformly random byte array, e.g. a 32-byte hash or a 20-byte
/// witness program: `byte_array::<32>(rng)`.
pub fn byte_array<const N: usize>(rng: &mut SimRng) -> [u8; N] {
    let mut out = [0u8; N];
    rng.fill_bytes(&mut out);
    out
}

/// A uniformly random `[u64; 4]` limb vector, the raw form of the
/// workspace's 256-bit integers.
pub fn limbs4(rng: &mut SimRng) -> [u64; 4] {
    [rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()]
}

/// A byte vector with uniformly random length drawn from `len_range`.
pub fn bytes(rng: &mut SimRng, len_range: Range<usize>) -> Vec<u8> {
    let len = usize_in(rng, len_range);
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

/// A vector of `gen`-produced elements with uniformly random length
/// drawn from `len_range`.
pub fn vec_with<T>(rng: &mut SimRng, len_range: Range<usize>, mut gen: impl FnMut(&mut SimRng) -> T) -> Vec<T> {
    let len = usize_in(rng, len_range);
    (0..len).map(|_| gen(rng)).collect()
}

/// `k` distinct indices from `[0, len)` in random order (all of them if
/// `k >= len`); thin wrapper over [`SimRng::sample_indices`] so subset
/// selection reads as a generator in property bodies.
pub fn subset(rng: &mut SimRng, len: usize, k: usize) -> Vec<usize> {
    rng.sample_indices(len, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_is_deterministic_across_runs() {
        let mut first = Vec::new();
        check(7, 16, |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        check(7, 16, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        // 16 cases ran, each with a distinct stream.
        assert_eq!(first.len(), 16);
        let mut dedup = first.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
    }

    /// A deliberately failing property reports its seed: the panic
    /// propagates out of `check`, the failure record carries the exact
    /// case seed that was printed, and `replay` on that seed reproduces
    /// the failing input.
    #[test]
    fn failing_property_reports_replayable_seed() {
        let failure = panic::catch_unwind(|| {
            check(0xBAD, DEFAULT_CASES, |rng| {
                let v = rng.next_u64();
                assert!(v % 2 == 1, "deliberate failure on even draw {v}");
            });
        });
        // The property fails within the first few cases (even u64 draws
        // are common), and the panic propagates out of check().
        assert!(failure.is_err(), "deliberately failing property must fail");

        let (seed, case, case_seed) = last_failure().expect("failure must be recorded");
        assert_eq!(seed, 0xBAD);
        // The recorded case seed is exactly the one check() derived for
        // that case index from the top-level seed.
        let mut seq = SimRng::seed_from(0xBAD);
        let expected_case_seed = (0..=case).map(|_| seq.next_u64()).last().unwrap();
        assert_eq!(case_seed, expected_case_seed);

        // Replaying the reported seed reproduces the failing input.
        let replayed = panic::catch_unwind(|| {
            replay(case_seed, |rng| {
                let v = rng.next_u64();
                assert!(v % 2 == 1, "deliberate failure on even draw {v}");
            });
        });
        assert!(replayed.is_err(), "replay must reproduce the failure");
    }

    #[test]
    fn generators_respect_bounds() {
        check(3, DEFAULT_CASES, |rng| {
            assert!((5..17).contains(&u64_in(rng, 5..17)));
            assert!((2..9).contains(&usize_in(rng, 2..9)));
            let f = f64_in(rng, -2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let v = bytes(rng, 0..33);
            assert!(v.len() < 33);
            let xs = vec_with(rng, 1..5, |r| u64_in(r, 0..10));
            assert!(!xs.is_empty() && xs.len() < 5 && xs.iter().all(|&x| x < 10));
            let picked = subset(rng, 20, 6);
            assert_eq!(picked.len(), 6);
            assert!(picked.iter().all(|&i| i < 20));
        });
    }

    #[test]
    fn byte_array_sizes() {
        check(4, 64, |rng| {
            let a: [u8; 20] = byte_array(rng);
            let b: [u8; 32] = byte_array(rng);
            // Different draws from the same stream.
            assert_ne!(&a[..], &b[..20]);
            let l = limbs4(rng);
            assert_eq!(l.len(), 4);
        });
    }
}

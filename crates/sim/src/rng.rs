//! Seeded randomness with the distribution helpers the simulations need.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::SimDuration;

/// A seeded random generator for deterministic simulations.
///
/// Wraps [`rand::rngs::StdRng`] and adds the sampling helpers used across
/// the workspace: exponential inter-arrival times (Poisson block
/// production), approximately normal latencies, and subset selection for
/// peer discovery.
///
/// # Examples
///
/// ```
/// use icbtc_sim::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated component its own deterministic stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// Returns the next random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniformly random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        self.inner.gen_range(0..bound)
    }

    /// Returns a uniformly random `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index() requires a non-empty collection");
        self.inner.gen_range(0..len)
    }

    /// Returns a uniformly random `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Samples an exponential waiting time with the given mean, as used for
    /// Poisson arrival processes (e.g. Bitcoin block discovery).
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        // Inverse-CDF sampling; (1 - u) avoids ln(0).
        let u: f64 = self.unit();
        let sample = -(1.0 - u).ln() * mean.as_secs_f64();
        SimDuration::from_secs_f64(sample)
    }

    /// Samples an approximately normal duration with the given mean and
    /// standard deviation, truncated at zero.
    ///
    /// Uses the Irwin–Hall approximation (sum of 12 uniforms), which is
    /// plenty for latency modelling.
    pub fn normal(&mut self, mean: SimDuration, std_dev: SimDuration) -> SimDuration {
        let z: f64 = (0..12).map(|_| self.unit()).sum::<f64>() - 6.0;
        let sample = mean.as_secs_f64() + z * std_dev.as_secs_f64();
        SimDuration::from_secs_f64(sample.max(0.0))
    }

    /// Samples a log-normal-ish heavy-tailed duration: a normal body with an
    /// occasional multiplicative tail, used for wide-area latencies.
    pub fn heavy_tail(&mut self, mean: SimDuration, std_dev: SimDuration, tail_p: f64, tail_mul: u64) -> SimDuration {
        let base = self.normal(mean, std_dev);
        if self.chance(tail_p) {
            base * tail_mul
        } else {
            base
        }
    }

    /// Returns a reference to a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Selects `k` distinct indices uniformly at random from `[0, len)`
    /// (all of them if `k >= len`), in random order.
    ///
    /// Runs in `O(k)` expected time for `k ≪ len` (rejection sampling)
    /// and `O(len)` otherwise (partial Fisher–Yates).
    pub fn sample_indices(&mut self, len: usize, k: usize) -> Vec<usize> {
        let k = k.min(len);
        if k * 8 <= len {
            // Sparse case: rejection sampling avoids materializing the
            // whole index range.
            let mut picked = Vec::with_capacity(k);
            while picked.len() < k {
                let candidate = self.index(len);
                if !picked.contains(&candidate) {
                    picked.push(candidate);
                }
            }
            return picked;
        }
        let mut indices: Vec<usize> = (0..len).collect();
        for i in 0..k {
            let j = i + self.index(len - i);
            indices.swap(i, j);
        }
        indices.truncate(k);
        indices
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_produces_independent_deterministic_streams() {
        let mut root1 = SimRng::seed_from(1);
        let mut root2 = SimRng::seed_from(1);
        let mut c1 = root1.fork();
        let mut c2 = root2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(11);
        let mean = SimDuration::from_secs(600);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exponential(mean).as_secs_f64()).sum();
        let avg = total / n as f64;
        assert!((avg - 600.0).abs() < 15.0, "sample mean {avg} too far from 600");
    }

    #[test]
    fn normal_is_truncated_at_zero() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let d = rng.normal(SimDuration::from_millis(10), SimDuration::from_millis(50));
            assert!(d.as_secs_f64() >= 0.0);
        }
    }

    #[test]
    fn sample_indices_are_distinct_and_bounded() {
        let mut rng = SimRng::seed_from(5);
        let picked = rng.sample_indices(100, 5);
        assert_eq!(picked.len(), 5);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert!(picked.iter().all(|&i| i < 100));
        // Asking for more than available returns everything.
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(7.5));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(13);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

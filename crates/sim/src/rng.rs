//! Seeded randomness with the distribution helpers the simulations need.
//!
//! The generator is implemented entirely in this crate — no external
//! crates — so the workspace builds offline and every random stream is
//! reproducible from a printed 64-bit seed, on any platform, forever.

use crate::SimDuration;

/// Golden-gamma increment of the SplitMix64 sequence.
const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Advances a SplitMix64 state and returns the next output.
///
/// SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators") is the canonical way to expand a 64-bit seed into the
/// 256-bit state of a xoshiro generator: every output is a bijection of
/// the state, so no seed can produce the all-zero xoshiro state.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded random generator for deterministic simulations.
///
/// The core is xoshiro256++ (Blackman & Vigna) with its 256-bit state
/// expanded from a 64-bit seed via SplitMix64, plus the sampling helpers
/// used across the workspace: exponential inter-arrival times (Poisson
/// block production), approximately normal latencies, and subset
/// selection for peer discovery.
///
/// # Examples
///
/// Streams are fully determined by the seed, with a pinned first output:
///
/// ```
/// use icbtc_sim::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), 0xd076_4d4f_4476_689f);
/// assert_eq!(b.next_u64(), 0xd076_4d4f_4476_689f);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated component its own deterministic stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// Returns the next random `u64` (one xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next random `u32` (the high half of a `u64` step,
    /// which carries the better-mixed bits).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Returns a uniformly random value in `[0, bound)`.
    ///
    /// Uses rejection sampling, so the result is exactly uniform (no
    /// modulo bias) and remains deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Largest value v such that [0, v] contains a whole number of
        // `bound`-sized buckets; draws above it are rejected.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniformly random `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index() requires a non-empty collection");
        self.below(len as u64) as usize
    }

    /// Returns a uniformly random `f64` in `[0, 1)`, built from the top
    /// 53 bits of one `u64` step.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Samples an exponential waiting time with the given mean, as used for
    /// Poisson arrival processes (e.g. Bitcoin block discovery).
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        // Inverse-CDF sampling; (1 - u) avoids ln(0).
        let u: f64 = self.unit();
        let sample = -(1.0 - u).ln() * mean.as_secs_f64();
        SimDuration::from_secs_f64(sample)
    }

    /// Samples an approximately normal duration with the given mean and
    /// standard deviation, truncated at zero.
    ///
    /// Uses the Irwin–Hall approximation (sum of 12 uniforms), which is
    /// plenty for latency modelling.
    pub fn normal(&mut self, mean: SimDuration, std_dev: SimDuration) -> SimDuration {
        let z: f64 = (0..12).map(|_| self.unit()).sum::<f64>() - 6.0;
        let sample = mean.as_secs_f64() + z * std_dev.as_secs_f64();
        SimDuration::from_secs_f64(sample.max(0.0))
    }

    /// Samples a log-normal-ish heavy-tailed duration: a normal body with an
    /// occasional multiplicative tail, used for wide-area latencies.
    pub fn heavy_tail(&mut self, mean: SimDuration, std_dev: SimDuration, tail_p: f64, tail_mul: u64) -> SimDuration {
        let base = self.normal(mean, std_dev);
        if self.chance(tail_p) {
            base * tail_mul
        } else {
            base
        }
    }

    /// Returns a reference to a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Selects `k` distinct indices uniformly at random from `[0, len)`
    /// (all of them if `k >= len`), in random order.
    ///
    /// Runs in `O(k)` expected time for `k ≪ len` (rejection sampling)
    /// and `O(len)` otherwise (partial Fisher–Yates).
    pub fn sample_indices(&mut self, len: usize, k: usize) -> Vec<usize> {
        let k = k.min(len);
        if k * 8 <= len {
            // Sparse case: rejection sampling avoids materializing the
            // whole index range.
            let mut picked = Vec::with_capacity(k);
            while picked.len() < k {
                let candidate = self.index(len);
                if !picked.contains(&candidate) {
                    picked.push(candidate);
                }
            }
            return picked;
        }
        let mut indices: Vec<usize> = (0..len).collect();
        for i in 0..k {
            let j = i + self.index(len - i);
            indices.swap(i, j);
        }
        indices.truncate(k);
        indices
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First outputs of SplitMix64 from state 0, as published in the
    /// reference implementation's test vectors.
    #[test]
    fn splitmix64_known_answers() {
        let mut state = 0u64;
        let produced: Vec<u64> = (0..4).map(|_| splitmix64(&mut state)).collect();
        assert_eq!(
            produced,
            vec![0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f, 0xf88bb8a8724c81ec]
        );
    }

    /// xoshiro256++ outputs for SplitMix64-expanded seeds, computed with
    /// an independent implementation of the reference algorithms.
    #[test]
    fn xoshiro_known_answers() {
        let mut rng = SimRng::seed_from(42);
        let produced: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(
            produced,
            vec![
                0xd0764d4f4476689f,
                0x519e4174576f3791,
                0xfbe07cfb0c24ed8c,
                0xb37d9f600cd835b8,
                0xcb231c3874846a73,
                0x968d9f004e50de7d,
                0x201718ff221a3556,
                0x9ae94e070ed8cb46,
            ]
        );
        let mut zero = SimRng::seed_from(0);
        assert_eq!(zero.next_u64(), 0x53175d61490b23df);
        assert_eq!(zero.next_u64(), 0x61da6f3dc380d507);
        let mut seven = SimRng::seed_from(7);
        assert_eq!(seven.next_u64(), 0x0e2c1a002aae913d);
        assert_eq!(seven.next_u64(), 0x2c0fc8ddfa4e9e14);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_produces_independent_deterministic_streams() {
        let mut root1 = SimRng::seed_from(1);
        let mut root2 = SimRng::seed_from(1);
        let mut c1 = root1.fork();
        let mut c2 = root2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        // The child stream is not a suffix of the parent stream: the next
        // 64 parent outputs never coincide positionally with the child's.
        let child_head: Vec<u64> = (0..64).map(|_| c1.next_u64()).collect();
        let parent_tail: Vec<u64> = (0..64).map(|_| root1.next_u64()).collect();
        assert_ne!(child_head, parent_tail);
    }

    #[test]
    fn fill_bytes_matches_word_stream_and_handles_ragged_tails() {
        for len in [0usize, 1, 3, 7, 8, 9, 16, 31] {
            let mut a = SimRng::seed_from(99);
            let mut buf = vec![0u8; len];
            a.fill_bytes(&mut buf);
            // Rebuild the expectation from the raw word stream.
            let mut b = SimRng::seed_from(99);
            let mut expect = Vec::with_capacity(len);
            while expect.len() < len {
                let word = b.next_u64().to_le_bytes();
                let take = (len - expect.len()).min(8);
                expect.extend_from_slice(&word[..take]);
            }
            assert_eq!(buf, expect, "len {len}");
        }
    }

    #[test]
    fn below_is_bounded_and_hits_all_small_values() {
        let mut rng = SimRng::seed_from(17);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
        // A bound of one is degenerate but legal.
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        SimRng::seed_from(1).below(0);
    }

    #[test]
    #[should_panic(expected = "non-empty collection")]
    fn index_empty_panics() {
        SimRng::seed_from(1).index(0);
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut rng = SimRng::seed_from(23);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        // Satellite requirement: sample mean within 5% of 1/λ over 100k draws.
        let mut rng = SimRng::seed_from(11);
        let mean = SimDuration::from_secs(600);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| rng.exponential(mean).as_secs_f64()).sum();
        let avg = total / n as f64;
        assert!((avg - 600.0).abs() < 30.0, "sample mean {avg} more than 5% from 600");
    }

    #[test]
    fn normal_is_truncated_at_zero() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let d = rng.normal(SimDuration::from_millis(10), SimDuration::from_millis(50));
            assert!(d.as_secs_f64() >= 0.0);
        }
    }

    #[test]
    fn sample_indices_are_distinct_and_bounded() {
        let mut rng = SimRng::seed_from(5);
        let picked = rng.sample_indices(100, 5);
        assert_eq!(picked.len(), 5);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert!(picked.iter().all(|&i| i < 100));
        // Asking for more than available returns everything.
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(7.5));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(13);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

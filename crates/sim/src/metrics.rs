//! Measurement primitives used by the evaluation harness.
//!
//! The benchmark binaries regenerate the paper's figures as printed series;
//! these types collect samples, compute the summary statistics the paper
//! reports (means, medians, percentiles), and render aligned text tables.

use std::fmt;

/// A collection of `f64` samples with percentile queries.
///
/// Samples are kept verbatim (the experiments here collect at most a few
/// hundred thousand points), so percentiles are exact.
///
/// # Examples
///
/// ```
/// use icbtc_sim::metrics::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=100 {
///     h.record(v as f64);
/// }
/// assert_eq!(h.percentile(50.0), 50.0);
/// assert_eq!(h.min(), 1.0);
/// assert_eq!(h.max(), 100.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "histogram sample must not be NaN");
        self.samples.push(value);
        self.sorted = false;
    }

    /// Returns the number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Returns the smallest sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Returns the largest sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Returns the `p`-th percentile (0–100) using nearest-rank, or 0 if
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1).min(self.samples.len() - 1)]
    }

    /// Returns the median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Returns a view of the raw samples (unspecified order).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A labelled (x, y) series, printed as two aligned columns — the textual
/// equivalent of one line in a paper figure.
///
/// # Examples
///
/// ```
/// use icbtc_sim::metrics::Series;
/// let mut s = Series::new("utxo_count");
/// s.push(1.0, 10.0);
/// s.push(2.0, 20.0);
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Series { name: name.into(), points: Vec::new() }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Returns the series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the recorded points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Returns the mean of the y values, or 0 if empty.
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# series: {}", self.name)?;
        for (x, y) in &self.points {
            writeln!(f, "{x:>16.4} {y:>20.4}")?;
        }
        Ok(())
    }
}

/// A simple aligned text table for experiment reports.
///
/// # Examples
///
/// ```
/// use icbtc_sim::metrics::Table;
/// let mut t = Table::new(vec!["metric", "paper", "measured"]);
/// t.row(vec!["p50 latency".into(), "<10 s".into(), "9.2 s".into()]);
/// assert!(t.to_string().contains("p50 latency"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity must match headers");
        self.rows.push(cells);
    }

    /// Returns the number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                write!(f, "{:<width$}  ", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Formats a large count with engineering suffixes (k, M, B, T) for reports.
///
/// # Examples
///
/// ```
/// assert_eq!(icbtc_sim::metrics::humanize(21_600_000_000.0), "21.60B");
/// assert_eq!(icbtc_sim::metrics::humanize(950.0), "950.00");
/// ```
pub fn humanize(value: f64) -> String {
    let abs = value.abs();
    if abs >= 1e12 {
        format!("{:.2}T", value / 1e12)
    } else if abs >= 1e9 {
        format!("{:.2}B", value / 1e9)
    } else if abs >= 1e6 {
        format!("{:.2}M", value / 1e6)
    } else if abs >= 1e3 {
        format!("{:.2}k", value / 1e3)
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.median(), 3.0);
        assert_eq!(h.percentile(100.0), 5.0);
        assert_eq!(h.percentile(0.0), 1.0);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.percentile(90.0), 0.0);
    }

    #[test]
    fn single_sample_min_max_agree() {
        let mut h = Histogram::new();
        h.record(42.5);
        assert_eq!(h.min(), 42.5);
        assert_eq!(h.max(), 42.5);
        assert_eq!(h.mean(), 42.5);
    }

    #[test]
    fn negative_samples_keep_sign() {
        // The old `pipe_finite` chain would have zeroed nothing here, but
        // make the contract explicit: min/max pass negative values through.
        let mut h = Histogram::new();
        h.record(-3.0);
        h.record(-1.0);
        assert_eq!(h.min(), -3.0);
        assert_eq!(h.max(), -1.0);
    }

    #[test]
    fn empty_series_renders_header_only() {
        let s = Series::new("empty");
        let text = s.to_string();
        assert_eq!(text, "# series: empty\n");
        assert!(s.is_empty());
        assert_eq!(s.mean_y(), 0.0);
    }

    #[test]
    fn series_mean_y_single_point() {
        let mut s = Series::new("one");
        s.push(3.0, 7.5);
        assert_eq!(s.mean_y(), 7.5);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn table_with_zero_rows_renders_header_and_rule() {
        let t = Table::new(vec!["col_a", "col_b"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("col_a"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic]
    fn nan_sample_panics() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    fn percentile_after_more_records_resorts() {
        let mut h = Histogram::new();
        h.record(10.0);
        assert_eq!(h.median(), 10.0);
        h.record(1.0);
        h.record(2.0);
        assert_eq!(h.median(), 2.0);
    }

    #[test]
    fn series_rendering() {
        let mut s = Series::new("latency");
        s.push(1.0, 0.5);
        s.push(2.0, 0.7);
        let text = s.to_string();
        assert!(text.contains("# series: latency"));
        assert_eq!(text.lines().count(), 3);
        assert!((s.mean_y() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn table_rendering_aligns() {
        let mut t = Table::new(vec!["a", "long header"]);
        t.row(vec!["x".into(), "y".into()]);
        t.row(vec!["wider cell".into(), "z".into()]);
        let text = t.to_string();
        assert!(text.contains("long header"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    #[should_panic]
    fn table_arity_mismatch_panics() {
        let mut t = Table::new(vec!["one"]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn humanize_ranges() {
        assert_eq!(humanize(1_500.0), "1.50k");
        assert_eq!(humanize(2_000_000.0), "2.00M");
        assert_eq!(humanize(3.2e12), "3.20T");
        assert_eq!(humanize(12.0), "12.00");
    }

    mod properties {
        use super::*;
        use crate::testkit;

        /// Percentiles are monotone in p and bounded by min/max.
        #[test]
        fn percentile_monotone() {
            testkit::check(0x3E_0001, testkit::DEFAULT_CASES, |rng| {
                let mut vals = testkit::vec_with(rng, 1..300, |r| testkit::f64_in(r, -1e9..1e9));
                let mut h = Histogram::new();
                for v in &vals {
                    h.record(*v);
                }
                vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let p25 = h.percentile(25.0);
                let p50 = h.percentile(50.0);
                let p75 = h.percentile(75.0);
                assert!(p25 <= p50 && p50 <= p75);
                assert!(h.min() <= p25 && p75 <= h.max());
            });
        }
    }
}

//! Virtual time for the simulation kernel.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and cheap to copy. Arithmetic with
/// [`SimDuration`] is saturating on underflow and panics on overflow in
/// debug builds, matching integer semantics.
///
/// # Examples
///
/// ```
/// use icbtc_sim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_nanos(), 2_000_000_000);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time in whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the time in seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier time, saturating to zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time, measured in nanoseconds.
///
/// # Examples
///
/// ```
/// use icbtc_sim::SimDuration;
/// assert_eq!(SimDuration::from_millis(1500), SimDuration::from_micros(1_500_000));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration::from_secs(mins * 60)
    }

    /// Creates a duration from fractional seconds, truncating below 1 ns.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9) as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration in seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimTime::from_secs(1).as_millis(), 1000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        assert_eq!(t - SimDuration::from_secs(4), SimTime::from_secs(6));
        // Saturating subtraction.
        assert_eq!(SimTime::from_secs(1) - SimDuration::from_secs(5), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs(1) - SimDuration::from_secs(5), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs(2) * 3, SimDuration::from_secs(6));
        assert_eq!(SimDuration::from_secs(6) / 3, SimDuration::from_secs(2));
    }

    #[test]
    fn float_conversions() {
        assert!((SimDuration::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimDuration::from_secs_f64(0.25), SimDuration::from_millis(250));
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::from_secs(1)).is_empty());
        assert!(!format!("{}", SimDuration::from_secs(1)).is_empty());
    }
}

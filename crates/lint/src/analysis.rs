//! Whole-workspace analysis: per-file token rules, then the syntactic
//! parser → call graph → dataflow rules pipeline, then centralized
//! suppression application with usage tracking (which powers ICL014).
//!
//! The pipeline (DESIGN.md §6):
//!
//! 1. **Lex** every file once; locate test regions.
//! 2. **Token rules** ICL001–ICL010 per file, under the crate scope
//!    matrix ([`crate::workspace::rules_for`]).
//! 3. **Parse** items/impls/fns/calls ([`crate::parser`]) for every
//!    library source (entry points, tests and benches are seeded
//!    entry code and stay out of the replicated call graph).
//! 4. **Call graph** rooted at the update entry points
//!    ([`crate::callgraph`]), then the dataflow rules:
//!    * ICL011 panic reachability (accepts `allow(no-panic)`
//!      suppressions, so one written invariant covers both views);
//!    * ICL012 node-local taint (markers from [`crate::suppress`]);
//!    * ICL013 metering completeness for `canister` loops.
//! 5. **Suppressions** applied centrally; every `(directive, rule)`
//!    pair that never matched a finding becomes an ICL014 violation.
//!
//! Everything is deterministic: inputs are sorted by path, the graph
//! uses `BTreeMap`s and a deterministic BFS, so two runs over the same
//! tree produce byte-identical reports (the verify.sh double-run gate).

use crate::callgraph::{CallGraph, FnNode};
use crate::engine::{
    self, raw_findings, structural_suppression_violations, FileContext, FileReport, Suppressed,
    Violation,
};
use crate::lexer::lex;
use crate::parser::{self, StructDef};
use crate::rules::{Finding, Rule};
use crate::suppress::{self, Suppression};
use crate::workspace::rules_for;
use std::collections::BTreeSet;
use std::time::Instant; // lint runs host-side; the wall-clock rule is not in this crate's scope

/// One source file handed to [`analyze_workspace`].
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Workspace-relative, `/`-separated path (stable report key).
    pub rel_path: String,
    pub ctx: FileContext,
    pub source: String,
}

/// The workspace-level result: per-file reports plus phase timings.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// `(rel_path, report)` sorted by path; every input appears.
    pub reports: Vec<(String, FileReport)>,
    /// `(phase or rule, microseconds)` — only rendered under `--timings`
    /// so the default output stays byte-identical across runs.
    pub timings_us: Vec<(&'static str, u128)>,
}

impl WorkspaceReport {
    pub fn violation_count(&self) -> usize {
        self.reports.iter().map(|(_, r)| r.violations.len()).sum()
    }

    pub fn suppressed_count(&self) -> usize {
        self.reports.iter().map(|(_, r)| r.suppressed.len()).sum()
    }
}

/// A dataflow finding before suppression: where it anchors plus its
/// call-chain evidence.
struct FlowFinding {
    file_idx: usize,
    finding: Finding,
    chain: Vec<String>,
}

/// Runs the full pipeline over `inputs` (typically
/// [`crate::workspace::discover`] + file reads, but tests feed
/// in-memory sources — e.g. the seeded qcache-injection test).
pub fn analyze_workspace(inputs: &[FileInput]) -> WorkspaceReport {
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    order.sort_by(|&a, &b| inputs[a].rel_path.cmp(&inputs[b].rel_path));

    let mut timings: Vec<(&'static str, u128)> = Vec::new();
    let time = |label: &'static str, start: Instant, timings: &mut Vec<_>| {
        timings.push((label, start.elapsed().as_micros()));
    };

    // Phase 1+2: lex, test regions, token rules, suppressions.
    let t0 = Instant::now();
    struct PerFile {
        regions: Vec<(u32, u32)>,
        token_findings: Vec<Finding>,
        sups: Vec<Suppression>,
        structural: Vec<Violation>,
    }
    let mut per_file: Vec<PerFile> = Vec::with_capacity(inputs.len());
    for &i in &order {
        let f = &inputs[i];
        let tokens = lex(&f.source);
        let regions = engine::test_regions(&tokens);
        let active = rules_for(&f.ctx.crate_name);
        let token_findings = raw_findings(&tokens, &regions, &f.ctx, &active);
        let (sups, bad, _markers) = suppress::parse(&f.source);
        let structural = structural_suppression_violations(&sups, &bad);
        per_file.push(PerFile { regions, token_findings, sups, structural });
    }
    time("lex+token-rules", t0, &mut timings);

    // Phase 3: parse library sources into fn items and struct defs.
    let t0 = Instant::now();
    let mut nodes: Vec<FnNode> = Vec::new();
    let mut structs: Vec<StructDef> = Vec::new();
    for (slot, &i) in order.iter().enumerate() {
        let f = &inputs[i];
        if f.ctx.is_entry_or_test {
            continue;
        }
        let parsed = parser::parse_file(&f.source);
        structs.extend(parsed.structs);
        let regions = &per_file[slot].regions;
        let in_tests = |line: u32| regions.iter().any(|&(s, e)| s <= line && line <= e);
        for item in parsed.fns {
            if in_tests(item.line) {
                continue; // test helpers never join the replicated graph
            }
            nodes.push(FnNode {
                file: f.rel_path.clone(),
                crate_name: f.ctx.crate_name.clone(),
                item,
            });
        }
    }
    time("parse", t0, &mut timings);

    // Phase 4: call graph + reachability.
    let t0 = Instant::now();
    let graph = CallGraph::build(nodes, &structs);
    time("callgraph", t0, &mut timings);

    let file_slot = |path: &str| -> Option<usize> {
        order.iter().position(|&i| inputs[i].rel_path == path)
    };

    // ICL011 — panic reachability.
    let t0 = Instant::now();
    let mut flow: Vec<FlowFinding> = Vec::new();
    for n in 0..graph.nodes.len() {
        if !graph.is_reachable(n) {
            continue;
        }
        let node = &graph.nodes[n];
        let chain = graph.chain(n);
        let root = chain.first().cloned().unwrap_or_default();
        for site in &node.item.panics {
            if let Some(file_idx) = file_slot(&node.file) {
                flow.push(FlowFinding {
                    file_idx,
                    finding: Finding {
                        rule: Rule::PanicReachability,
                        line: site.line,
                        message: format!(
                            "`{}` in `{}` is reachable from update entry `{root}`",
                            site.what,
                            node.qualified_name()
                        ),
                    },
                    chain: chain.clone(),
                });
            }
        }
    }
    time("ICL011-panic-reachability", t0, &mut timings);

    // ICL012 — node-local taint. Anchors at the replicated call site
    // (the BFS parent edge), where the fix belongs.
    let t0 = Instant::now();
    for (n, node) in graph.nodes.iter().enumerate() {
        let Some(reason) = &node.item.node_local else { continue };
        if !graph.is_reachable(n) {
            continue;
        }
        let chain = graph.chain(n);
        let root = chain.first().cloned().unwrap_or_default();
        let (anchor_file, anchor_line) = match graph.parent_edge(n) {
            Some((p, line)) => (graph.nodes[p].file.clone(), line),
            None => (node.file.clone(), node.item.line),
        };
        if let Some(file_idx) = file_slot(&anchor_file) {
            flow.push(FlowFinding {
                file_idx,
                finding: Finding {
                    rule: Rule::NodeLocalTaint,
                    line: anchor_line,
                    message: format!(
                        "node-local `{}` ({reason}) is reachable from update entry `{root}`",
                        node.qualified_name()
                    ),
                },
                chain,
            });
        }
    }
    time("ICL012-node-local-taint", t0, &mut timings);

    // ICL013 — metering completeness for canister loops.
    let t0 = Instant::now();
    let metered = graph.metering_closure();
    for (n, node) in graph.nodes.iter().enumerate() {
        if node.crate_name != "canister"
            || !graph.is_reachable(n)
            || metered[n]
            || node.item.loops.is_empty()
        {
            continue;
        }
        let chain = graph.chain(n);
        let root = chain.first().cloned().unwrap_or_default();
        let mut lines: Vec<u32> = node.item.loops.clone();
        lines.sort_unstable();
        lines.dedup();
        for line in lines {
            if let Some(file_idx) = file_slot(&node.file) {
                flow.push(FlowFinding {
                    file_idx,
                    finding: Finding {
                        rule: Rule::MeteringCompleteness,
                        line,
                        message: format!(
                            "loop in `{}` on the update path from `{root}` records no metering::* constant in its call closure",
                            node.qualified_name()
                        ),
                    },
                    chain: chain.clone(),
                });
            }
        }
    }
    time("ICL013-metering-completeness", t0, &mut timings);

    // Phase 5: suppression application with usage tracking, then ICL014.
    let t0 = Instant::now();
    let mut reports: Vec<(String, FileReport)> = Vec::new();
    for (slot, &i) in order.iter().enumerate() {
        let f = &inputs[i];
        let pf = &per_file[slot];
        let mut report = FileReport::default();
        report.violations.extend(pf.structural.iter().cloned());
        // `(directive index, listed rule name)` pairs that matched.
        let mut used: BTreeSet<(usize, String)> = BTreeSet::new();

        let apply = |finding: &Finding,
                         chain: &[String],
                         report: &mut FileReport,
                         used: &mut BTreeSet<(usize, String)>| {
            let name = finding.rule.name();
            // ICL011 accepts `no-panic` invariants: the written reason
            // justifies the panic site, not the rule that saw it.
            let alias =
                if finding.rule == Rule::PanicReachability { Some("no-panic") } else { None };
            let hit = pf.sups.iter().enumerate().find_map(|(k, s)| {
                if s.covers(name, finding.line) {
                    Some((k, name.to_string(), s))
                } else if let Some(a) = alias {
                    s.covers(a, finding.line).then(|| (k, a.to_string(), s))
                } else {
                    None
                }
            });
            match hit {
                Some((k, matched, s)) => {
                    used.insert((k, matched));
                    report.suppressed.push(Suppressed {
                        rule: finding.rule,
                        line: finding.line,
                        reason: s.reason.clone(),
                    });
                }
                None => report.violations.push(Violation {
                    rule: finding.rule,
                    line: finding.line,
                    message: finding.message.clone(),
                    chain: chain.to_vec(),
                }),
            }
        };

        for finding in &pf.token_findings {
            apply(finding, &[], &mut report, &mut used);
        }
        for ff in flow.iter().filter(|ff| ff.file_idx == slot) {
            apply(&ff.finding, &ff.chain, &mut report, &mut used);
        }

        // ICL014 — stale suppressions. Unknown rule names are already
        // ICL009; `no-panic` directives count as used when ICL011
        // consumed them.
        for (k, s) in pf.sups.iter().enumerate() {
            for r in &s.rules {
                if Rule::from_name(r).is_none() {
                    continue;
                }
                if !used.contains(&(k, r.clone())) {
                    report.violations.push(Violation {
                        rule: Rule::StaleSuppression,
                        line: s.line,
                        message: format!(
                            "stale suppression: `{r}` does not fire on the covered line{}",
                            if s.file_wide { "s (file-wide)" } else { "" }
                        ),
                        chain: Vec::new(),
                    });
                }
            }
        }

        report.violations.sort_by_key(|v| (v.line, v.rule.id()));
        report.suppressed.sort_by_key(|s| (s.line, s.rule.id()));
        reports.push((f.rel_path.clone(), report));
    }
    time("suppressions+ICL014", t0, &mut timings);

    WorkspaceReport { reports, timings_us: timings }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(path: &str, krate: &str, src: &str) -> FileInput {
        FileInput {
            rel_path: path.to_string(),
            ctx: FileContext {
                crate_name: krate.to_string(),
                is_crate_root: false,
                is_entry_or_test: false,
            },
            source: src.to_string(),
        }
    }

    fn violations_of<'a>(ws: &'a WorkspaceReport, path: &str) -> &'a Vec<Violation> {
        &ws.reports.iter().find(|(p, _)| p == path).unwrap().1.violations
    }

    #[test]
    fn panic_reachability_crosses_crates() {
        let ws = analyze_workspace(&[
            input(
                "crates/canister/src/a.rs",
                "canister",
                "pub fn dispatch() { decode_header(b); }\n",
            ),
            input(
                "crates/bitcoin/src/h.rs",
                "bitcoin",
                "pub fn decode_header(b: &[u8]) -> Header { parse(b).unwrap() }\n",
            ),
        ]);
        let v = violations_of(&ws, "crates/bitcoin/src/h.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::PanicReachability);
        assert_eq!(v[0].chain, vec!["dispatch", "decode_header"]);
    }

    #[test]
    fn no_panic_invariant_carries_over_to_icl011() {
        let ws = analyze_workspace(&[input(
            "crates/canister/src/a.rs",
            "canister",
            "pub fn try_ingest_block(x: Option<u32>) {\n    x.expect(\"seeded\"); // icbtc-lint: allow(no-panic) -- invariant: seeded by construction\n}\n",
        )]);
        let (_, r) = &ws.reports[0];
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // Both the token rule (ICL006, canister is hot-path) and the
        // reachability rule (ICL011) are waived by the one invariant.
        assert_eq!(r.suppressed.len(), 2);
    }

    #[test]
    fn unreachable_panics_are_not_icl011() {
        let ws = analyze_workspace(&[input(
            "crates/bitcoin/src/h.rs",
            "bitcoin",
            "pub fn diagnostics_only(x: Option<u32>) { x.unwrap(); }\n",
        )]);
        let (_, r) = &ws.reports[0];
        // bitcoin is outside the ICL006 scope and the fn is unreachable
        // from the update roots → clean.
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn node_local_taint_fires_at_the_replicated_call_site() {
        let ws = analyze_workspace(&[input(
            "crates/canister/src/c.rs",
            "canister",
            "// icbtc-lint: node-local -- contents differ per replica\n\
             fn cache_peek() -> u32 { 0 }\n\
             pub fn ingest_response() { let _ = cache_peek(); }\n\
             pub fn execute_query() { let _ = other_peek(); }\n\
             // icbtc-lint: node-local -- query plane only\n\
             fn other_peek() -> u32 { 1 }\n",
        )]);
        let v = violations_of(&ws, "crates/canister/src/c.rs");
        // Only the update-path read fires; the query-plane read is exempt
        // because execute_query is not an update root.
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NodeLocalTaint);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn metering_completeness_accepts_closure_charges() {
        let ws = analyze_workspace(&[input(
            "crates/canister/src/s.rs",
            "canister",
            "pub fn try_ingest_block(xs: &[u32]) {\n    for x in xs { apply(*x); }\n    for y in xs { free_scan(*y); }\n}\n\
             fn apply(x: u32) { let _ = metering::PARSE_TX; }\n\
             fn free_scan(_x: u32) { let mut n = 0; while n < 3 { n += 1; } }\n",
        )]);
        let v = violations_of(&ws, "crates/canister/src/s.rs");
        // try_ingest_block's closure reaches metering via `apply`, so its
        // own loops pass; `free_scan` has a loop and a charge-free
        // closure → one finding.
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::MeteringCompleteness);
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn stale_suppression_is_a_finding() {
        let ws = analyze_workspace(&[input(
            "crates/canister/src/s.rs",
            "canister",
            "// icbtc-lint: allow(float) -- stale: the float is long gone\nfn clean() {}\n",
        )]);
        let v = violations_of(&ws, "crates/canister/src/s.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::StaleSuppression);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn live_suppression_is_not_stale() {
        let ws = analyze_workspace(&[input(
            "crates/canister/src/s.rs",
            "canister",
            "fn f() -> u64 { let x = 1.5; x as u64 } // icbtc-lint: allow(float) -- reporting only\n",
        )]);
        let (_, r) = &ws.reports[0];
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn double_run_is_identical() {
        let inputs = [
            input(
                "crates/canister/src/a.rs",
                "canister",
                "pub fn dispatch() { helper(); }\nfn helper() { x.unwrap(); }\n",
            ),
            input("crates/bitcoin/src/b.rs", "bitcoin", "pub fn stray() { y.unwrap(); }\n"),
        ];
        let a = analyze_workspace(&inputs);
        let b = analyze_workspace(&inputs);
        assert_eq!(format!("{:?}", a.reports), format!("{:?}", b.reports));
    }
}

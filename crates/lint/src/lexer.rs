//! A lightweight Rust lexer: just enough token structure for rule matching.
//!
//! The goal is *not* a conforming Rust grammar — it is to make lint rules
//! match tokens instead of raw text, so that `"std::time"` inside a string
//! literal, `HashMap` inside a doc comment, or `'a` lifetime ticks never
//! produce false positives. The tricky cases the lexer must get right:
//!
//! * line comments (`//`) and *nested* block comments (`/* /* */ */`);
//! * string, byte-string and char literals with escapes;
//! * raw strings with arbitrary hash fences (`r##"…"##`, `br#"…"#`);
//! * lifetime ticks (`'a`) versus char literals (`'a'`, `'\n'`);
//! * numeric literals, classified as integer or float (`1e8`, `2f64`,
//!   `1.5` are floats; `0x1f`, `1_000`, `1..2` range endpoints are not).

/// The coarse classification a lint rule can match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`std`, `fn`, `HashMap`).
    Ident,
    /// A lifetime tick such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A char literal such as `'x'` or `'\n'`.
    Char,
    /// A string or byte-string literal (cooked, with escapes).
    Str,
    /// A raw string literal (`r"…"`, `r#"…"#`, `br##"…"##`).
    RawStr,
    /// An integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// A floating-point literal (`1.5`, `1e8`, `2f64`).
    Float,
    /// Any other single punctuation character (`:`, `!`, `{`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Lexes `source` into a token stream, dropping comments and whitespace.
///
/// The lexer never fails: unterminated literals or comments simply consume
/// the rest of the input. (The compiler proper reports those; the linter
/// runs on code that already builds.)
pub fn lex(source: &str) -> Vec<Token> {
    lex_with_comments(source).0
}

/// Like [`lex`], but also returns every `//` line comment as
/// `(line, text-after-the-slashes)`. Because this goes through the real
/// lexer, a `"// …"` sequence inside a string or raw-string literal is
/// *not* a comment — which is what makes suppression parsing sound.
pub fn lex_with_comments(source: &str) -> (Vec<Token>, Vec<(u32, String)>) {
    let mut lexer = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
        comments: Vec::new(),
    };
    let tokens = lexer.run();
    (tokens, lexer.comments)
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
    comments: Vec<(u32, String)>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(ch) = c {
            self.pos += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(&mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line),
                '\'' => self.tick(line),
                'r' | 'b' if self.raw_or_byte_prefix() => {}
                _ if c == '_' || c.is_alphabetic() => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        std::mem::take(&mut self.out)
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump(); // '/'
        self.bump(); // '/'
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push((line, text));
    }

    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `rb…` is not Rust.
    /// Returns true if it consumed a literal; false if the leading `r`/`b`
    /// is just the start of an identifier.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let line = self.line;
        let c0 = self.peek(0).unwrap();
        // b"…"  (cooked byte string)
        if c0 == 'b' && self.peek(1) == Some('"') {
            self.bump();
            self.string_literal(line);
            return true;
        }
        // b'…'  (byte char)
        if c0 == 'b' && self.peek(1) == Some('\'') {
            self.bump();
            self.char_literal(line);
            return true;
        }
        // r"…" / r#…  or  br"…" / br#…
        let hash_start = match (c0, self.peek(1)) {
            ('r', Some('"')) | ('r', Some('#')) => 1,
            ('b', Some('r')) if matches!(self.peek(2), Some('"') | Some('#')) => 2,
            _ => return false,
        };
        // Count the hash fence.
        let mut hashes = 0usize;
        while self.peek(hash_start + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hash_start + hashes) != Some('"') {
            return false; // e.g. the identifier `r#try` (raw identifier)
        }
        for _ in 0..hash_start + hashes + 1 {
            self.bump();
        }
        // Scan until `"` followed by `hashes` hashes.
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        text.push(c);
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokenKind::RawStr, text, line);
        true
    }

    fn string_literal(&mut self, line: u32) {
        self.bump(); // opening '"'
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push('\\');
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// Disambiguates lifetimes (`'a`) from char literals (`'a'`, `'\n'`).
    fn tick(&mut self, line: u32) {
        // A char literal is 'X' or '\…'; a lifetime is '<ident> with no
        // closing quote. `'a'` → char; `'a` followed by anything but `'`
        // → lifetime.
        match self.peek(1) {
            Some('\\') => self.char_literal(line),
            Some(c) if c == '_' || c.is_alphabetic() => {
                if self.peek(2) == Some('\'') {
                    self.char_literal(line);
                } else {
                    self.bump(); // tick
                    let mut name = String::from("'");
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            name.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Lifetime, name, line);
                }
            }
            _ => self.char_literal(line),
        }
    }

    fn char_literal(&mut self, line: u32) {
        self.bump(); // opening tick
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push('\\');
                        text.push(esc);
                    }
                }
                '\'' => break,
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Char, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut is_float = false;
        // Radix prefixes never contain floats.
        let hex_like = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('o') | Some('b') | Some('X'));
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' || (hex_like && c.is_ascii_hexdigit()) {
                text.push(c);
                self.bump();
            } else if !hex_like && c == '.' {
                // `1.5` is a float; `1..2` and `1.method()` are not.
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        is_float = true;
                        text.push(c);
                        self.bump();
                    }
                    _ => break,
                }
            } else if !hex_like && (c == 'e' || c == 'E') {
                // Exponent: `1e8`, `1E-4`. Only if followed by digit or
                // sign+digit — otherwise it is a suffix/ident boundary.
                let next = self.peek(1);
                let nextnext = self.peek(2);
                let exp = match next {
                    Some(d) if d.is_ascii_digit() => true,
                    Some('+') | Some('-') => matches!(nextnext, Some(d) if d.is_ascii_digit()),
                    _ => false,
                };
                if exp {
                    is_float = true;
                    text.push(c);
                    self.bump();
                    if matches!(self.peek(0), Some('+') | Some('-')) {
                        text.push(self.bump().unwrap());
                    }
                } else {
                    break;
                }
            } else if c == 'x' || c == 'o' || c == 'X' {
                // part of 0x / 0o prefix
                if hex_like && text.len() == 1 {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            } else if c == '_' || c.is_alphanumeric() {
                // Suffix: u64, i32, f64, usize…
                let mut suffix = String::new();
                while let Some(s) = self.peek(0) {
                    if s == '_' || s.is_alphanumeric() {
                        suffix.push(s);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if suffix == "f32" || suffix == "f64" {
                    is_float = true;
                }
                text.push_str(&suffix);
                break;
            } else {
                break;
            }
        }
        let kind = if is_float { TokenKind::Float } else { TokenKind::Int };
        self.push(kind, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("use std::time::Instant;");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "use".into()),
                (TokenKind::Ident, "std".into()),
                (TokenKind::Punct, ":".into()),
                (TokenKind::Punct, ":".into()),
                (TokenKind::Ident, "time".into()),
                (TokenKind::Punct, ":".into()),
                (TokenKind::Punct, ":".into()),
                (TokenKind::Ident, "Instant".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex("a\nb\n\nc");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn comments_are_dropped() {
        assert_eq!(kinds("a // HashMap\nb"), kinds("a\nb"));
        assert_eq!(kinds("a /* HashMap */ b"), kinds("a b"));
    }

    #[test]
    fn floats_vs_ints() {
        assert_eq!(kinds("1.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e8")[0].0, TokenKind::Float);
        assert_eq!(kinds("1E-4")[0].0, TokenKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("3f32")[0].0, TokenKind::Float);
        assert_eq!(kinds("42")[0].0, TokenKind::Int);
        assert_eq!(kinds("0xff")[0].0, TokenKind::Int);
        assert_eq!(kinds("1_000u64")[0].0, TokenKind::Int);
        // Range endpoints are two ints, not a float.
        let r = kinds("1..2");
        assert_eq!(r[0].0, TokenKind::Int);
        assert_eq!(r[3].0, TokenKind::Int);
    }
}

//! The rule set: stable IDs, matching logic, and per-rule documentation.
//!
//! Every rule has a stable numeric ID (`ICL001`…) used in JSON output and
//! a short name (`wall-clock`) used in suppression comments. Rules match
//! on the token stream produced by [`crate::lexer`]; which rules run on
//! which crate is decided by the scope matrix in [`crate::workspace`].

use crate::lexer::{Token, TokenKind};

/// All lint rules, in ID order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// ICL001 — no wall-clock reads (`std::time::Instant`, `SystemTime`)
    /// in consensus-critical crates. Replicated execution must derive all
    /// time from the deterministic simulation clock (`SimTime`), or
    /// replicas diverge (paper §II-A: deterministic state machine
    /// replication; Definition II.1 is evaluated on block timestamps,
    /// never host time).
    WallClock,
    /// ICL002 — no `std::thread` in consensus-critical crates: scheduling
    /// order is nondeterministic across replicas.
    Thread,
    /// ICL003 — no `std::env` in consensus-critical crates: environment
    /// variables differ per replica and would fork replicated state.
    ProcessEnv,
    /// ICL004 — no floating-point arithmetic in consensus-critical
    /// crates. IEEE-754 evaluation can differ across targets/opt-levels
    /// (x87 vs SSE, FMA contraction), which breaks bit-for-bit replica
    /// agreement on δ-stability (Definition II.1) and cycles accounting.
    Float,
    /// ICL005 — no `HashMap`/`HashSet` in replicated-state crates or the
    /// adapter: iteration order is randomized per process, so any
    /// fold/iteration over one diverges across replicas — and, in the
    /// adapter, across the two same-seed runs the chaos determinism gate
    /// diffs byte-for-byte. Use `BTreeMap`/`BTreeSet`.
    UnorderedCollections,
    /// ICL006 — no `unwrap()`/`expect()`/`panic!`/`unreachable!`/`todo!`
    /// in non-test code of the adapter and canister hot paths
    /// (Algorithms 1–2): a panic in the adapter drops the replica's
    /// Bitcoin connectivity; a trap in the canister aborts the round's
    /// message. Return errors instead, or suppress with a written
    /// invariant.
    NoPanic,
    /// ICL007 — no `SimRng::seed_from(<literal>)` outside seeded entry
    /// points (binaries, examples, tests). Library code must thread the
    /// seed from the experiment harness or fork an existing generator;
    /// a buried constant seed silently correlates supposedly independent
    /// randomness streams and defeats seed-sweep reproducibility.
    RngSeed,
    /// ICL008 — every crate root must carry `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// ICL009 — malformed suppression comment (missing reason, unknown
    /// rule name, bad syntax). Emitted by the engine, not token matching.
    SuppressionReason,
    /// ICL010 — no `println!`/`eprintln!` (or `print!`/`eprint!`) in the
    /// instrumented runtime crates (`adapter`, `canister`, `ic`,
    /// `btcnet`). Ad-hoc stdout writes are invisible to the deterministic
    /// observability layer: they bypass the metrics registry and the
    /// sim-time-stamped trace, interleave nondeterministically with real
    /// output, and cannot be byte-compared across same-seed runs. Record
    /// through `Obs` (counters/gauges/histograms or trace events)
    /// instead. Bench binaries and tests are seeded entry points and
    /// remain exempt.
    PrintOutput,
    /// ICL011 — cross-procedural panic reachability. Any
    /// `unwrap()`/`expect()`/`panic!`-class site *transitively reachable*
    /// from a replicated update entry point (`dispatch`/`execute`,
    /// `ingest_response`/`process_response`, `ingest_block`/
    /// `try_ingest_block`) is flagged wherever it lives — including
    /// crates outside the per-file `no-panic` scope, such as `bitcoin`
    /// and `core`. A trap anywhere on the update path aborts the round's
    /// message on every replica (paper §III), so the whole call graph is
    /// in scope, not just the hot-path crates. Findings carry the full
    /// call chain from the entry point; `allow(no-panic)` suppressions
    /// carry over so one written invariant covers both rules.
    PanicReachability,
    /// ICL012 — node-local taint. A function marked
    /// `// icbtc-lint: node-local -- <why>` at its definition (the query
    /// cache, obs registry reads, trace reads) must be unreachable from
    /// replicated update execution: its result depends on per-replica
    /// state, so reading it on the update path forks replicated state.
    /// Query-plane reads are exempt — queries are served per-replica by
    /// design (paper §III-D).
    NodeLocalTaint,
    /// ICL013 — metering completeness. Every loop (`for`/`while`/`loop`)
    /// in the `canister` crate reachable from an update entry point must
    /// record a `metering::*` constant somewhere in its function's call
    /// closure, so the §IV-B instruction cost model cannot silently
    /// drift from the code it prices.
    MeteringCompleteness,
    /// ICL014 — stale suppression. An `allow(<rule>)` directive on a
    /// line where that rule no longer produces a finding is itself a
    /// finding: dead suppressions rot as code moves, and a stale written
    /// invariant is worse than none.
    StaleSuppression,
}

pub const ALL_RULES: &[Rule] = &[
    Rule::WallClock,
    Rule::Thread,
    Rule::ProcessEnv,
    Rule::Float,
    Rule::UnorderedCollections,
    Rule::NoPanic,
    Rule::RngSeed,
    Rule::ForbidUnsafe,
    Rule::SuppressionReason,
    Rule::PrintOutput,
    Rule::PanicReachability,
    Rule::NodeLocalTaint,
    Rule::MeteringCompleteness,
    Rule::StaleSuppression,
];

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "ICL001",
            Rule::Thread => "ICL002",
            Rule::ProcessEnv => "ICL003",
            Rule::Float => "ICL004",
            Rule::UnorderedCollections => "ICL005",
            Rule::NoPanic => "ICL006",
            Rule::RngSeed => "ICL007",
            Rule::ForbidUnsafe => "ICL008",
            Rule::SuppressionReason => "ICL009",
            Rule::PrintOutput => "ICL010",
            Rule::PanicReachability => "ICL011",
            Rule::NodeLocalTaint => "ICL012",
            Rule::MeteringCompleteness => "ICL013",
            Rule::StaleSuppression => "ICL014",
        }
    }

    /// The short name used in `allow(...)` suppressions.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::Thread => "thread",
            Rule::ProcessEnv => "process-env",
            Rule::Float => "float",
            Rule::UnorderedCollections => "unordered-collections",
            Rule::NoPanic => "no-panic",
            Rule::RngSeed => "rng-seed",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::SuppressionReason => "suppression-reason",
            Rule::PrintOutput => "print-output",
            Rule::PanicReachability => "panic-reachable",
            Rule::NodeLocalTaint => "node-local-taint",
            Rule::MeteringCompleteness => "unmetered-loop",
            Rule::StaleSuppression => "stale-suppression",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// Whether the rule also applies inside `#[cfg(test)]` / `#[test]`
    /// regions. Wall-clock, threads and env reads make even tests flaky
    /// and are banned everywhere in scoped crates; the remaining rules
    /// only guard replicated execution, which tests are not part of.
    pub fn applies_in_tests(self) -> bool {
        matches!(self, Rule::WallClock | Rule::Thread | Rule::ProcessEnv | Rule::ForbidUnsafe)
    }

    pub fn short_description(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock read in consensus-critical code",
            Rule::Thread => "OS threading in consensus-critical code",
            Rule::ProcessEnv => "environment access in consensus-critical code",
            Rule::Float => "floating-point arithmetic in consensus-critical code",
            Rule::UnorderedCollections => "randomized-iteration-order collection in replicated state",
            Rule::NoPanic => "panic path in adapter/canister hot path",
            Rule::RngSeed => "hard-coded RNG seed outside a seeded entry point",
            Rule::ForbidUnsafe => "crate root missing #![forbid(unsafe_code)]",
            Rule::SuppressionReason => "malformed lint suppression",
            Rule::PrintOutput => "stdout/stderr write bypassing the observability layer",
            Rule::PanicReachability => "panic site reachable from a replicated update entry point",
            Rule::NodeLocalTaint => "node-local function reachable from replicated execution",
            Rule::MeteringCompleteness => "unmetered loop on a replicated update path",
            Rule::StaleSuppression => "suppression for a rule that no longer fires here",
        }
    }
}

/// One token-level finding, before suppression filtering.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub line: u32,
    pub message: String,
}

/// Is `tokens[i..]` the start of the path `a :: b`?
fn is_path2(tokens: &[Token], i: usize, a: &str, b: &str) -> bool {
    tokens.len() > i + 3
        && tokens[i].is_ident(a)
        && tokens[i + 1].is_punct(':')
        && tokens[i + 2].is_punct(':')
        && tokens[i + 3].is_ident(b)
}

/// Runs every token-level rule in `active` over the stream and collects
/// findings. `tokens` must come from [`crate::lexer::lex`].
pub fn scan(tokens: &[Token], active: &[Rule]) -> Vec<Finding> {
    let mut out = Vec::new();
    let on = |r: Rule| active.contains(&r);
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            // Float literals are the only non-ident trigger.
            if t.kind == TokenKind::Float && on(Rule::Float) {
                out.push(Finding {
                    rule: Rule::Float,
                    line: t.line,
                    message: format!("floating-point literal `{}`", t.text),
                });
            }
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" if on(Rule::WallClock) => out.push(Finding {
                rule: Rule::WallClock,
                line: t.line,
                message: format!(
                    "`{}` reads the host clock; replicated code must use the simulation clock (SimTime)",
                    t.text
                ),
            }),
            "std" if on(Rule::Thread) && is_path2(tokens, i, "std", "thread") => {
                out.push(Finding {
                    rule: Rule::Thread,
                    line: t.line,
                    message: "`std::thread` introduces scheduling nondeterminism".into(),
                })
            }
            "std" if on(Rule::ProcessEnv) && is_path2(tokens, i, "std", "env") => {
                out.push(Finding {
                    rule: Rule::ProcessEnv,
                    line: t.line,
                    message: "`std::env` reads per-replica state into replicated execution".into(),
                })
            }
            "f32" | "f64" if on(Rule::Float) => out.push(Finding {
                rule: Rule::Float,
                line: t.line,
                message: format!("`{}` type in consensus-critical code", t.text),
            }),
            "HashMap" | "HashSet" if on(Rule::UnorderedCollections) => out.push(Finding {
                rule: Rule::UnorderedCollections,
                line: t.line,
                message: format!(
                    "`{}` iteration order is randomized per process; use `BTree{}` in replicated state",
                    t.text,
                    &t.text[4..]
                ),
            }),
            "unwrap" | "expect"
                if on(Rule::NoPanic)
                    && i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                out.push(Finding {
                    rule: Rule::NoPanic,
                    line: t.line,
                    message: format!("`.{}()` can trap a hot path; return an error instead", t.text),
                })
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if on(Rule::NoPanic)
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
                    // `#[allow(unreachable_…)]`-style attr idents don't
                    // carry a `!`, so the bang check is sufficient, but
                    // exclude macro *definitions* (`macro_rules!` names).
                    && !(i > 0 && tokens[i - 1].is_ident("macro_rules")) =>
            {
                out.push(Finding {
                    rule: Rule::NoPanic,
                    line: t.line,
                    message: format!("`{}!` can trap a hot path; return an error instead", t.text),
                })
            }
            "println" | "eprintln" | "print" | "eprint"
                if on(Rule::PrintOutput)
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
                    && !(i > 0 && tokens[i - 1].is_ident("macro_rules")) =>
            {
                out.push(Finding {
                    rule: Rule::PrintOutput,
                    line: t.line,
                    message: format!(
                        "`{}!` bypasses the observability layer; record through `Obs` (metrics or trace) instead",
                        t.text
                    ),
                })
            }
            "SimRng"
                if on(Rule::RngSeed)
                    && is_path2(tokens, i, "SimRng", "seed_from")
                    && tokens.get(i + 4).is_some_and(|n| n.is_punct('('))
                    && tokens.get(i + 5).is_some_and(|n| n.kind == TokenKind::Int) =>
            {
                out.push(Finding {
                    rule: Rule::RngSeed,
                    line: t.line,
                    message: format!(
                        "`SimRng::seed_from({})` hard-codes a seed in library code; thread the seed from the entry point or fork an existing generator",
                        tokens[i + 5].text
                    ),
                })
            }
            _ => {}
        }
    }
    out
}

/// Checks the crate-root requirement: `#![forbid(unsafe_code)]` must be
/// present. Returns a finding at line 1 if it is missing.
pub fn check_crate_root(tokens: &[Token]) -> Option<Finding> {
    for i in 0..tokens.len() {
        if tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('['))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
            && tokens.get(i + 4).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
        {
            return None;
        }
    }
    Some(Finding {
        rule: Rule::ForbidUnsafe,
        line: 1,
        message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn ids_and_names_are_stable_and_unique() {
        let mut ids: Vec<_> = ALL_RULES.iter().map(|r| r.id()).collect();
        let mut names: Vec<_> = ALL_RULES.iter().map(|r| r.name()).collect();
        ids.sort_unstable();
        ids.dedup();
        names.sort_unstable();
        names.dedup();
        assert_eq!(ids.len(), ALL_RULES.len());
        assert_eq!(names.len(), ALL_RULES.len());
        assert_eq!(Rule::Float.id(), "ICL004");
        assert_eq!(Rule::from_name("no-panic"), Some(Rule::NoPanic));
    }

    #[test]
    fn hashmap_in_comment_or_string_is_clean() {
        let toks = lex("// HashMap\nlet s = \"HashMap\"; let r = r#\"HashSet\"#;");
        assert!(scan(&toks, ALL_RULES).is_empty());
    }

    #[test]
    fn method_call_required_for_unwrap() {
        // A function *named* unwrap, or the bare ident, is not a finding.
        let toks = lex("fn unwrap() {}");
        assert!(scan(&toks, &[Rule::NoPanic]).is_empty());
        let toks = lex("x.unwrap();");
        assert_eq!(scan(&toks, &[Rule::NoPanic]).len(), 1);
    }

    #[test]
    fn seed_from_literal_vs_variable() {
        let toks = lex("SimRng::seed_from(42)");
        assert_eq!(scan(&toks, &[Rule::RngSeed]).len(), 1);
        let toks = lex("SimRng::seed_from(seed)");
        assert!(scan(&toks, &[Rule::RngSeed]).is_empty());
    }

    #[test]
    fn print_macros_require_bang() {
        let toks = lex("println!(\"tip {}\", h);");
        assert_eq!(scan(&toks, &[Rule::PrintOutput]).len(), 1);
        let toks = lex("eprintln!(\"oops\");");
        assert_eq!(scan(&toks, &[Rule::PrintOutput]).len(), 1);
        // A function or method named `print` is not a macro invocation.
        let toks = lex("fn print(&self) {} self.print();");
        assert!(scan(&toks, &[Rule::PrintOutput]).is_empty());
        // Doc comments and strings never trigger.
        let toks = lex("// println!(\"x\")\nlet s = \"println!\";");
        assert!(scan(&toks, &[Rule::PrintOutput]).is_empty());
        // Defining a macro named `println` is not an invocation.
        let toks = lex("macro_rules! println { () => {} }");
        assert!(scan(&toks, &[Rule::PrintOutput]).is_empty());
    }

    #[test]
    fn forbid_unsafe_detection() {
        assert!(check_crate_root(&lex("#![forbid(unsafe_code)]\npub mod a;")).is_none());
        assert!(check_crate_root(&lex("pub mod a;")).is_some());
    }
}

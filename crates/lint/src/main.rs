//! The `icbtc-lint` binary: walks the workspace, runs the scoped rule
//! set on every source file, and reports violations.
//!
//! ```text
//! icbtc-lint [--root DIR] [--json] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` unsuppressed violations found, `2` usage or
//! I/O error. The `--json` schema is documented in DESIGN.md and carries
//! `schema_version: 1`.

#![forbid(unsafe_code)]

use icbtc_lint::engine::{analyze_source, FileReport};
use icbtc_lint::json;
use icbtc_lint::rules::ALL_RULES;
use icbtc_lint::workspace::{discover, rules_for};
use std::path::PathBuf;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut root = PathBuf::from(".");
    let mut emit_json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => emit_json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root requires a directory"),
            },
            "--list-rules" => {
                for r in ALL_RULES {
                    println!("{}  {:<22}  {}", r.id(), r.name(), r.short_description());
                }
                return 0;
            }
            "--help" | "-h" => {
                println!("usage: icbtc-lint [--root DIR] [--json] [--list-rules]");
                return 0;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    // Default root: walk up from CWD to the workspace root (the directory
    // holding Cargo.toml + crates/), so the binary works from any subdir.
    if root.as_os_str() == "." {
        let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        loop {
            if cur.join("crates").is_dir() && cur.join("Cargo.toml").is_file() {
                root = cur;
                break;
            }
            if !cur.pop() {
                break;
            }
        }
    }

    let files = match discover(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("icbtc-lint: cannot walk {}: {e}", root.display());
            return 2;
        }
    };
    if files.is_empty() {
        eprintln!("icbtc-lint: no source files under {}", root.display());
        return 2;
    }

    let mut reports: Vec<(String, FileReport)> = Vec::new();
    let mut total_violations = 0usize;
    let mut total_suppressed = 0usize;
    for file in &files {
        let source = match std::fs::read_to_string(&file.abs_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("icbtc-lint: cannot read {}: {e}", file.rel_path);
                return 2;
            }
        };
        let active = rules_for(&file.ctx.crate_name);
        let report = analyze_source(&source, &file.ctx, &active);
        total_violations += report.violations.len();
        total_suppressed += report.suppressed.len();
        reports.push((file.rel_path.clone(), report));
    }

    if emit_json {
        print_json(&root.display().to_string(), files.len(), &reports);
    } else {
        print_human(files.len(), total_suppressed, &reports);
    }
    if total_violations > 0 {
        1
    } else {
        0
    }
}

fn usage(msg: &str) -> i32 {
    eprintln!("icbtc-lint: {msg}\nusage: icbtc-lint [--root DIR] [--json] [--list-rules]");
    2
}

fn print_human(n_files: usize, n_suppressed: usize, reports: &[(String, FileReport)]) {
    let mut n_violations = 0usize;
    for (path, report) in reports {
        for v in &report.violations {
            n_violations += 1;
            println!("{path}:{}: [{} {}] {}", v.line, v.rule.id(), v.rule.name(), v.message);
        }
    }
    if n_violations == 0 {
        println!(
            "icbtc-lint: OK — {n_files} files clean ({n_suppressed} finding(s) suppressed with reasons)"
        );
    } else {
        println!(
            "icbtc-lint: FAIL — {n_violations} violation(s) across {n_files} files ({n_suppressed} suppressed)"
        );
        println!(
            "  suppress only with: // icbtc-lint: allow(<rule>) -- <reason>   (see DESIGN.md)"
        );
    }
}

fn print_json(root: &str, n_files: usize, reports: &[(String, FileReport)]) {
    let mut violations = Vec::new();
    let mut suppressed = Vec::new();
    for (path, report) in reports {
        for v in &report.violations {
            violations.push(json::object(&[
                ("rule_id", json::string(v.rule.id())),
                ("rule", json::string(v.rule.name())),
                ("file", json::string(path)),
                ("line", v.line.to_string()),
                ("message", json::string(&v.message)),
            ]));
        }
        for s in &report.suppressed {
            suppressed.push(json::object(&[
                ("rule_id", json::string(s.rule.id())),
                ("rule", json::string(s.rule.name())),
                ("file", json::string(path)),
                ("line", s.line.to_string()),
                ("reason", json::string(&s.reason)),
            ]));
        }
    }
    let n_violations = violations.len();
    let doc = json::object(&[
        ("schema_version", "1".to_string()),
        ("tool", json::string("icbtc-lint")),
        ("root", json::string(root)),
        ("files_checked", n_files.to_string()),
        ("violation_count", n_violations.to_string()),
        ("violations", json::array(violations)),
        ("suppressed", json::array(suppressed)),
    ]);
    println!("{doc}");
}

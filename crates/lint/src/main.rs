//! The `icbtc-lint` binary: walks the workspace, runs the per-file token
//! rules *and* the cross-procedural dataflow rules (call graph rooted at
//! the replicated update entry points), and reports violations.
//!
//! ```text
//! icbtc-lint [--root DIR] [--json] [--timings] [--only FILE]… [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` unsuppressed violations found, `2` usage or
//! I/O error. The `--json` schema is documented in DESIGN.md and carries
//! `schema_version: 2` (adds `chain` evidence on dataflow findings and,
//! under `--timings`, per-phase wall times). Without `--timings` the
//! output is a deterministic function of the source tree — verify.sh
//! diffs two runs byte-for-byte.

#![forbid(unsafe_code)]

use icbtc_lint::analysis::{analyze_workspace, FileInput, WorkspaceReport};
use icbtc_lint::engine::FileReport;
use icbtc_lint::json;
use icbtc_lint::rules::ALL_RULES;
use icbtc_lint::workspace::discover;
use std::path::PathBuf;

const USAGE: &str = "usage: icbtc-lint [--root DIR] [--json] [--timings] [--only FILE]... [--list-rules]";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut root = PathBuf::from(".");
    let mut emit_json = false;
    let mut emit_timings = false;
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => emit_json = true,
            "--timings" => emit_timings = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root requires a directory"),
            },
            "--only" => match args.next() {
                Some(path) => only.push(path.replace('\\', "/")),
                None => return usage("--only requires a workspace-relative file path"),
            },
            "--list-rules" => {
                for r in ALL_RULES {
                    println!("{}  {:<22}  {}", r.id(), r.name(), r.short_description());
                }
                return 0;
            }
            "--help" | "-h" => {
                print_help();
                return 0;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    // Default root: walk up from CWD to the workspace root (the directory
    // holding Cargo.toml + crates/), so the binary works from any subdir.
    if root.as_os_str() == "." {
        let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        loop {
            if cur.join("crates").is_dir() && cur.join("Cargo.toml").is_file() {
                root = cur;
                break;
            }
            if !cur.pop() {
                break;
            }
        }
    }

    let files = match discover(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("icbtc-lint: cannot walk {}: {e}", root.display());
            return 2;
        }
    };
    if files.is_empty() {
        eprintln!("icbtc-lint: no source files under {}", root.display());
        return 2;
    }

    let mut inputs: Vec<FileInput> = Vec::with_capacity(files.len());
    for file in &files {
        let source = match std::fs::read_to_string(&file.abs_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("icbtc-lint: cannot read {}: {e}", file.rel_path);
                return 2;
            }
        };
        inputs.push(FileInput {
            rel_path: file.rel_path.clone(),
            ctx: file.ctx.clone(),
            source,
        });
    }

    // Whole-workspace analysis (the call graph needs every file even when
    // only a subset is *reported*).
    let ws = analyze_workspace(&inputs);
    let reported: Vec<&(String, FileReport)> = ws
        .reports
        .iter()
        .filter(|(path, _)| only.is_empty() || only.iter().any(|o| path == o))
        .collect();
    let n_violations: usize = reported.iter().map(|(_, r)| r.violations.len()).sum();
    let n_suppressed: usize = reported.iter().map(|(_, r)| r.suppressed.len()).sum();

    if emit_json {
        print_json(&root.display().to_string(), inputs.len(), &ws, &reported, emit_timings);
    } else {
        print_human(inputs.len(), n_suppressed, &reported, &only);
        if emit_timings {
            for (phase, us) in &ws.timings_us {
                println!("  timing {phase:<28} {us:>8} µs");
            }
        }
    }
    if n_violations > 0 {
        1
    } else {
        0
    }
}

fn usage(msg: &str) -> i32 {
    eprintln!("icbtc-lint: {msg}\n{USAGE}");
    2
}

fn print_help() {
    println!("{USAGE}");
    println!();
    println!("Static analysis for the icbtc workspace: per-file determinism rules");
    println!("(ICL001-ICL010) plus cross-procedural dataflow rules on a workspace");
    println!("call graph rooted at the replicated update entry points:");
    println!("  ICL011 panic-reachable    unwrap/expect/panic! reachable from an update entry");
    println!("  ICL012 node-local-taint   node-local fns (qcache, obs reads) on the update path");
    println!("  ICL013 unmetered-loop     canister loop with no metering::* in its call closure");
    println!("  ICL014 stale-suppression  allow(...) that no longer matches a finding");
    println!();
    println!("options:");
    println!("  --root DIR     workspace root (default: walk up to Cargo.toml + crates/)");
    println!("  --json         machine-readable report (schema_version 2)");
    println!("  --timings      per-phase wall times (omitted by default so two runs");
    println!("                 over the same tree are byte-identical)");
    println!("  --only FILE    report findings only for this workspace-relative path");
    println!("                 (repeatable; analysis still covers the whole workspace)");
    println!("  --list-rules   print the rule catalogue and exit");
    println!();
    println!("suppressions:   // icbtc-lint: allow(<rule>) -- <reason>");
    println!("node-local:     // icbtc-lint: node-local -- <why per-replica>   (above a fn)");
    println!("See DESIGN.md \"Static analysis\" for the full pipeline and JSON schema.");
}

fn print_human(
    n_files: usize,
    n_suppressed: usize,
    reports: &[&(String, FileReport)],
    only: &[String],
) {
    let mut n_violations = 0usize;
    for (path, report) in reports {
        for v in &report.violations {
            n_violations += 1;
            if v.chain.is_empty() {
                println!("{path}:{}: [{} {}] {}", v.line, v.rule.id(), v.rule.name(), v.message);
            } else {
                println!(
                    "{path}:{}: [{} {}] {} (via {})",
                    v.line,
                    v.rule.id(),
                    v.rule.name(),
                    v.message,
                    v.chain.join(" -> ")
                );
            }
        }
    }
    let scope = if only.is_empty() {
        format!("{n_files} files")
    } else {
        format!("{} of {n_files} files", reports.len())
    };
    if n_violations == 0 {
        println!(
            "icbtc-lint: OK — {scope} clean ({n_suppressed} finding(s) suppressed with reasons)"
        );
    } else {
        println!(
            "icbtc-lint: FAIL — {n_violations} violation(s) across {scope} ({n_suppressed} suppressed)"
        );
        println!(
            "  suppress only with: // icbtc-lint: allow(<rule>) -- <reason>   (see DESIGN.md)"
        );
    }
}

fn print_json(
    root: &str,
    n_files: usize,
    ws: &WorkspaceReport,
    reports: &[&(String, FileReport)],
    emit_timings: bool,
) {
    let mut violations = Vec::new();
    let mut suppressed = Vec::new();
    for (path, report) in reports {
        for v in &report.violations {
            let mut fields = vec![
                ("rule_id", json::string(v.rule.id())),
                ("rule", json::string(v.rule.name())),
                ("file", json::string(path)),
                ("line", v.line.to_string()),
                ("message", json::string(&v.message)),
            ];
            if !v.chain.is_empty() {
                let chain = json::array(v.chain.iter().map(|s| json::string(s)).collect());
                fields.push(("chain", chain));
            }
            violations.push(json::object(&fields));
        }
        for s in &report.suppressed {
            suppressed.push(json::object(&[
                ("rule_id", json::string(s.rule.id())),
                ("rule", json::string(s.rule.name())),
                ("file", json::string(path)),
                ("line", s.line.to_string()),
                ("reason", json::string(&s.reason)),
            ]));
        }
    }
    let n_violations = violations.len();
    let mut fields = vec![
        ("schema_version", "2".to_string()),
        ("tool", json::string("icbtc-lint")),
        ("root", json::string(root)),
        ("files_checked", n_files.to_string()),
        ("files_reported", reports.len().to_string()),
        ("violation_count", n_violations.to_string()),
        ("violations", json::array(violations)),
        ("suppressed", json::array(suppressed)),
    ];
    let timings;
    if emit_timings {
        timings = json::object(
            &ws.timings_us
                .iter()
                .map(|(phase, us)| (*phase, us.to_string()))
                .collect::<Vec<_>>(),
        );
        fields.push(("timings_us", timings));
    }
    let doc = json::object(&fields);
    println!("{doc}");
}

//! Lightweight syntactic front end: items, impl blocks, fn signatures,
//! call and path expressions — no type inference.
//!
//! The parser walks the [`crate::lexer`] token stream once and extracts
//! exactly what the call-graph layer ([`crate::callgraph`]) needs:
//!
//! * **fn items** with their name, enclosing `impl` type, body line span,
//!   return-type hint, and typed parameters;
//! * **struct definitions** as `field → type` maps, so receiver chains
//!   like `self.state.utxos.balance(…)` resolve through fields;
//! * **call sites**: bare calls, `path::fn(…)`, `Type::method(…)`, and
//!   method calls with their receiver chain (`self.qcache.get(…)`);
//! * **panic-class sites** (`.unwrap()`, `.expect()`, `panic!` family),
//!   **loops** (`for`/`while`/`loop`) and **metering references**
//!   (`metering::*`, `.charge(…)`, `.charge_per_byte(…)`);
//! * **node-local markers** (`// icbtc-lint: node-local -- <why>`)
//!   attached to the fn defined directly below (or on) the marker line.
//!
//! Everything here is an approximation by design — generics, macros and
//! trait dispatch are skipped, not modeled. The resolution rules in
//! [`crate::callgraph`] are written so that the approximation errs
//! towards *missing* edges for ambiguous names (documented
//! under-approximation) rather than inventing wrong ones.

use crate::lexer::{lex_with_comments, Token, TokenKind};
use crate::suppress;

/// One receiver-chain segment of a method call, left to right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainSeg {
    /// `.field` access.
    Field(String),
    /// `.helper()` intermediate call (resolved via return-type hints).
    Call(String),
}

/// Where a method call's receiver chain starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainRoot {
    /// `self.…` — resolved against the enclosing impl type.
    SelfVar,
    /// A named local/param (`meter.charge(…)`) — resolved if the name
    /// has a typed parameter or `let x: T` / `let x = T::…` binding.
    Var(String),
    /// Anything else (parenthesised expression, literal, macro output).
    Expr,
}

/// One call expression inside a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `helper(…)` or `module::helper(…)` — a free-function call.
    Free(String),
    /// `Type::method(…)` (`Self::` is rewritten to the impl type).
    Qualified { ty: String, method: String },
    /// `recv.method(…)` with the parsed receiver chain.
    Method { root: ChainRoot, chain: Vec<ChainSeg>, method: String },
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    pub line: u32,
    pub callee: Callee,
}

/// A token that can panic at runtime (`.unwrap()`, `panic!`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    pub line: u32,
    /// Display form, e.g. `".unwrap()"` or `"panic!"`.
    pub what: String,
}

/// One parsed fn item (with a body; trait method *declarations* are
/// skipped so they never shadow the implementing methods).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl` type (`impl Foo` / `impl Trait for Foo` → `Foo`).
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Last line of the body.
    pub end_line: u32,
    /// Return-type hint: the payload type for `Result<T, _>`/`Option<T>`,
    /// otherwise the last type-ish path segment. `None` for `()`.
    pub ret: Option<String>,
    /// `param name → type hint` for typed, non-self parameters.
    pub params: Vec<(String, String)>,
    /// Reason text if a `node-local` marker sits on/above the signature.
    pub node_local: Option<String>,
    pub calls: Vec<CallSite>,
    pub loops: Vec<u32>,
    pub panics: Vec<PanicSite>,
    /// Whether the body references `metering::*` or `.charge*(…)`.
    pub has_metering: bool,
}

/// A struct definition: `field name → first capitalised type segment`.
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<(String, String)>,
}

/// Everything extracted from one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructDef>,
}

/// Keywords that can directly precede a `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "in", "as", "move", "ref", "let",
    "fn", "impl", "pub", "use", "mod", "where", "break", "continue", "await", "dyn", "crate",
    "super", "box", "yield", "static", "const", "type", "trait", "enum", "struct", "union",
];

/// Parses one file. Never panics: unknown constructs are skipped.
pub fn parse_file(source: &str) -> ParsedFile {
    let (tokens, _comments) = lex_with_comments(source);
    let (_, _, markers) = suppress::parse(source);
    let mut out = ParsedFile::default();
    parse_items(&tokens, 0, tokens.len(), None, &markers, &mut out);
    out
}

/// Index of the matching close brace for the open brace at `open`
/// (falls back to `end` when unbalanced — truncated/hostile input).
fn match_brace(tokens: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end.saturating_sub(1)
}

/// Skips a `<…>` generic list starting at `i` (which must be `<`),
/// returning the index just past the matching `>`. Bails out at `{`/`;`
/// so malformed input cannot loop.
fn skip_generics(tokens: &[Token], mut i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    while i < end {
        let t = &tokens[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth <= 0 {
                return i + 1;
            }
        } else if t.is_punct('{') || t.is_punct(';') {
            return i;
        }
        i += 1;
    }
    end
}

/// Recursive item-level walk over `tokens[start..end]`.
fn parse_items(
    tokens: &[Token],
    start: usize,
    end: usize,
    impl_type: Option<&str>,
    markers: &[suppress::NodeLocalMarker],
    out: &mut ParsedFile,
) {
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            // A stray block (const initialiser, static table) is opaque.
            if t.is_punct('{') {
                i = match_brace(tokens, i, end) + 1;
                continue;
            }
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                let (ty, body_open) = parse_impl_header(tokens, i + 1, end);
                match body_open {
                    Some(open) => {
                        let close = match_brace(tokens, open, end);
                        parse_items(tokens, open + 1, close, ty.as_deref(), markers, out);
                        i = close + 1;
                    }
                    None => i += 1,
                }
            }
            "mod" if tokens.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) => {
                // Inline module: recurse (names stay flat per crate).
                if tokens.get(i + 2).is_some_and(|n| n.is_punct('{')) {
                    let close = match_brace(tokens, i + 2, end);
                    parse_items(tokens, i + 3, close, None, markers, out);
                    i = close + 1;
                } else {
                    i += 2;
                }
            }
            "struct" if tokens.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) => {
                let name = tokens[i + 1].text.clone();
                let mut j = i + 2;
                if tokens.get(j).is_some_and(|n| n.is_punct('<')) {
                    j = skip_generics(tokens, j, end);
                }
                // `where` clauses may precede the body.
                while j < end && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                if j < end && tokens[j].is_punct('{') {
                    let close = match_brace(tokens, j, end);
                    out.structs
                        .push(StructDef { name, fields: parse_fields(tokens, j + 1, close) });
                    i = close + 1;
                } else {
                    i = j + 1; // tuple/unit struct
                }
            }
            "enum" | "trait" | "union" => {
                // Opaque: skip to (and over) the body so variant paylods
                // and default methods are not misread as call sites.
                let mut j = i + 1;
                while j < end && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                if j < end && tokens[j].is_punct('{') {
                    i = match_brace(tokens, j, end) + 1;
                } else {
                    i = j + 1;
                }
            }
            "fn" if tokens.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) => {
                let after = parse_fn(tokens, i, end, impl_type, markers, out);
                i = after;
            }
            _ => i += 1,
        }
    }
}

/// Parses the header after an `impl` keyword; returns the impl type's
/// last path segment and the index of the body's `{`.
fn parse_impl_header(tokens: &[Token], mut i: usize, end: usize) -> (Option<String>, Option<usize>) {
    if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_generics(tokens, i, end);
    }
    let mut ty: Option<String> = None;
    while i < end {
        let t = &tokens[i];
        if t.is_punct('{') {
            return (ty, Some(i));
        }
        if t.is_punct(';') {
            return (ty, None);
        }
        if t.is_ident("for") {
            // `impl Trait for Type` — the type comes after `for`.
            ty = None;
            i += 1;
            continue;
        }
        if t.is_ident("where") {
            // Type is settled; scan forward for the body.
            while i < end && !tokens[i].is_punct('{') && !tokens[i].is_punct(';') {
                i += 1;
            }
            continue;
        }
        if t.kind == TokenKind::Ident && ty.is_none() {
            // Take the last segment of the (possibly qualified) path.
            let mut name = t.text.clone();
            let mut j = i + 1;
            while j + 1 < end && tokens[j].is_punct(':') && tokens[j + 1].is_punct(':') {
                if let Some(seg) = tokens.get(j + 2).filter(|s| s.kind == TokenKind::Ident) {
                    name = seg.text.clone();
                    j += 3;
                } else {
                    break;
                }
            }
            if tokens.get(j).is_some_and(|n| n.is_punct('<')) {
                j = skip_generics(tokens, j, end);
            }
            ty = Some(name);
            i = j;
            continue;
        }
        i += 1;
    }
    (ty, None)
}

/// Parses `field: Type` pairs inside a struct body.
fn parse_fields(tokens: &[Token], start: usize, end: usize) -> Vec<(String, String)> {
    let mut fields = Vec::new();
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        // Skip attributes on fields.
        if t.is_punct('#') && tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            let mut depth = 0usize;
            i += 1;
            while i < end {
                if tokens[i].is_punct('[') {
                    depth += 1;
                } else if tokens[i].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
            i += 1;
            continue;
        }
        if t.kind == TokenKind::Ident
            && !t.is_ident("pub")
            && !t.is_ident("crate")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            let name = t.text.clone();
            // Type span: until a `,` at zero angle depth, or the end.
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut ty: Option<String> = None;
            while j < end {
                let u = &tokens[j];
                if u.is_punct('<') {
                    angle += 1;
                } else if u.is_punct('>') {
                    angle -= 1;
                } else if u.is_punct(',') && angle <= 0 {
                    break;
                } else if ty.is_none()
                    && u.kind == TokenKind::Ident
                    && u.text.starts_with(|c: char| c.is_ascii_uppercase())
                {
                    ty = Some(u.text.clone());
                }
                j += 1;
            }
            if let Some(ty) = ty {
                fields.push((name, ty));
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    fields
}

/// Parses one `fn` item starting at the `fn` keyword (`tokens[at]`).
/// Pushes a [`FnItem`] when the fn has a body; returns the index just
/// past the item.
fn parse_fn(
    tokens: &[Token],
    at: usize,
    end: usize,
    impl_type: Option<&str>,
    markers: &[suppress::NodeLocalMarker],
    out: &mut ParsedFile,
) -> usize {
    let name = tokens[at + 1].text.clone();
    let fn_line = tokens[at].line;
    let mut i = at + 2;
    if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_generics(tokens, i, end);
    }
    // Parameter list.
    let mut params = Vec::new();
    if tokens.get(i).is_some_and(|t| t.is_punct('(')) {
        let mut depth = 0i32;
        let open = i;
        while i < end {
            if tokens[i].is_punct('(') {
                depth += 1;
            } else if tokens[i].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            i += 1;
        }
        params = parse_params(tokens, open + 1, i.min(end));
        i += 1;
    }
    // Return type hint.
    let mut ret: Option<String> = None;
    if tokens.get(i).is_some_and(|t| t.is_punct('-'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('>'))
    {
        let span_start = i + 2;
        let mut j = span_start;
        while j < end
            && !tokens[j].is_punct('{')
            && !tokens[j].is_punct(';')
            && !tokens[j].is_ident("where")
        {
            j += 1;
        }
        ret = ret_hint(&tokens[span_start..j]);
        i = j;
    }
    // `where` clause.
    while i < end && !tokens[i].is_punct('{') && !tokens[i].is_punct(';') {
        i += 1;
    }
    if i >= end || tokens[i].is_punct(';') {
        return i + 1; // trait method declaration — no body, no node
    }
    let close = match_brace(tokens, i, end);
    let node_local = markers
        .iter()
        .find(|m| m.line == fn_line || m.line + 1 == fn_line)
        .map(|m| m.reason.clone());
    let mut item = FnItem {
        name,
        impl_type: impl_type.map(str::to_string),
        line: fn_line,
        end_line: tokens.get(close).map(|t| t.line).unwrap_or(fn_line),
        ret,
        params,
        node_local,
        calls: Vec::new(),
        loops: Vec::new(),
        panics: Vec::new(),
        has_metering: false,
    };
    scan_body(tokens, i + 1, close, impl_type, &mut item);
    out.fns.push(item);
    close + 1
}

/// `name: Type` pairs from a parameter list (skips `self` receivers and
/// pattern parameters).
fn parse_params(tokens: &[Token], start: usize, end: usize) -> Vec<(String, String)> {
    // Same shape as struct fields: `ident : Type` separated by commas.
    parse_fields(tokens, start, end)
        .into_iter()
        .filter(|(n, _)| n != "self")
        .collect()
}

/// Return-type hint: for `Result<T, _>` / `Option<T>` the first generic
/// argument's first capitalised segment, otherwise the last capitalised
/// segment of the span.
fn ret_hint(span: &[Token]) -> Option<String> {
    let first = span.iter().find(|t| t.kind == TokenKind::Ident)?;
    if (first.is_ident("Result") || first.is_ident("Option"))
        && span.iter().any(|t| t.is_punct('<'))
    {
        // First capitalised ident *after* the wrapper, before a `,`.
        let mut seen_wrapper = false;
        for t in span {
            if !seen_wrapper {
                seen_wrapper = std::ptr::eq(t, first);
                continue;
            }
            if t.is_punct(',') {
                break;
            }
            if t.kind == TokenKind::Ident && t.text.starts_with(|c: char| c.is_ascii_uppercase()) {
                return Some(t.text.clone());
            }
        }
        return None;
    }
    span.iter()
        .rev()
        .find(|t| {
            t.kind == TokenKind::Ident && t.text.starts_with(|c: char| c.is_ascii_uppercase())
        })
        .map(|t| t.text.clone())
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Scans a fn body for calls, loops, panic sites and metering references.
fn scan_body(tokens: &[Token], start: usize, end: usize, impl_type: Option<&str>, item: &mut FnItem) {
    // Minimal local-type environment: typed params plus `let x: T` /
    // `let x = T::…` bindings (last binding wins, matching shadowing).
    let mut var_types: Vec<(String, String)> = item.params.clone();
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let next = tokens.get(i + 1);
        match t.text.as_str() {
            "for" | "while" | "loop"
                if !next.is_some_and(|n| n.is_punct('<')) // HRTB `for<'a>`
                    =>
            {
                item.loops.push(t.line);
            }
            "unwrap" | "expect"
                if i > start
                    && tokens[i - 1].is_punct('.')
                    && next.is_some_and(|n| n.is_punct('(')) =>
            {
                item.panics.push(PanicSite { line: t.line, what: format!(".{}()", t.text) });
            }
            "charge" | "charge_per_byte"
                if i > start
                    && tokens[i - 1].is_punct('.')
                    && next.is_some_and(|n| n.is_punct('(')) =>
            {
                item.has_metering = true;
                if let Some(call) = method_call(tokens, start, i, impl_type, &var_types) {
                    item.calls.push(call);
                }
            }
            "metering"
                if next.is_some_and(|n| n.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|n| n.is_punct(':')) =>
            {
                item.has_metering = true;
            }
            "let" => {
                // `let NAME : Type = …` or `let NAME = Type::…` /
                // `let mut NAME …`.
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|n| n.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name_tok) = tokens.get(j).filter(|n| n.kind == TokenKind::Ident) {
                    let name = name_tok.text.clone();
                    if tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
                        && !tokens.get(j + 2).is_some_and(|n| n.is_punct(':'))
                    {
                        if let Some(ty) = tokens[j + 2..end.min(j + 10)]
                            .iter()
                            .take_while(|u| !u.is_punct('=') && !u.is_punct(';'))
                            .find(|u| {
                                u.kind == TokenKind::Ident
                                    && u.text.starts_with(|c: char| c.is_ascii_uppercase())
                            })
                        {
                            var_types.retain(|(n, _)| n != &name);
                            var_types.push((name, ty.text.clone()));
                        }
                    } else if tokens.get(j + 1).is_some_and(|n| n.is_punct('='))
                        && tokens.get(j + 2).is_some_and(|n| {
                            n.kind == TokenKind::Ident
                                && n.text.starts_with(|c: char| c.is_ascii_uppercase())
                        })
                        && tokens.get(j + 3).is_some_and(|n| n.is_punct(':'))
                        && tokens.get(j + 4).is_some_and(|n| n.is_punct(':'))
                    {
                        var_types.retain(|(n, _)| n != &name);
                        var_types.push((name, tokens[j + 2].text.clone()));
                    }
                }
            }
            _ => {}
        }
        // Macro invocation: `ident ! (`.
        if next.is_some_and(|n| n.is_punct('!'))
            && tokens
                .get(i + 2)
                .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
            && !(i > 0 && tokens[i - 1].is_ident("macro_rules"))
        {
            if PANIC_MACROS.contains(&t.text.as_str()) {
                item.panics.push(PanicSite { line: t.line, what: format!("{}!", t.text) });
            }
            i += 1;
            continue;
        }
        // Call expression: `ident (`.
        if next.is_some_and(|n| n.is_punct('(')) && !(i > 0 && tokens[i - 1].is_ident("fn")) {
            let prev_dot = i > start && tokens[i - 1].is_punct('.');
            let prev_path = i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':');
            if prev_dot {
                // `.unwrap(`/`.expect(`/`.charge(` already handled above.
                if !matches!(t.text.as_str(), "unwrap" | "expect" | "charge" | "charge_per_byte")
                {
                    if let Some(call) = method_call(tokens, start, i, impl_type, &var_types) {
                        item.calls.push(call);
                    }
                }
            } else if prev_path {
                if let Some(call) = path_call(tokens, i, impl_type) {
                    item.calls.push(call);
                }
            } else if !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                && t.text.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
            {
                // Bare lowercase ident: free-function call. Uppercase
                // bare idents (`Some(…)`, tuple structs) are constructors.
                item.calls.push(CallSite { line: t.line, callee: Callee::Free(t.text.clone()) });
            }
        }
        i += 1;
    }
    item.loops.dedup();
}

/// Builds a [`Callee::Qualified`]/[`Callee::Free`] for a `path::name(`
/// call whose final ident sits at `i`.
fn path_call(tokens: &[Token], i: usize, impl_type: Option<&str>) -> Option<CallSite> {
    // Walk the path backwards: `… seg :: seg :: name(`.
    let mut segs: Vec<String> = vec![tokens[i].text.clone()];
    let mut j = i;
    while j >= 3 && tokens[j - 1].is_punct(':') && tokens[j - 2].is_punct(':') {
        let seg = &tokens[j - 3];
        if seg.kind == TokenKind::Ident {
            segs.push(seg.text.clone());
            j -= 3;
        } else if seg.is_punct('>') {
            // Turbofish / qualified generics — give up on the full path
            // but keep what we have.
            break;
        } else {
            break;
        }
    }
    segs.reverse();
    let line = tokens[i].line;
    let method = segs.last()?.clone();
    let qualifier = segs.get(segs.len().wrapping_sub(2));
    match qualifier {
        Some(q) if q == "Self" => impl_type.map(|ty| CallSite {
            line,
            callee: Callee::Qualified { ty: ty.to_string(), method },
        }),
        Some(q) if q.starts_with(|c: char| c.is_ascii_uppercase()) => Some(CallSite {
            line,
            callee: Callee::Qualified { ty: q.clone(), method },
        }),
        _ => Some(CallSite { line, callee: Callee::Free(method) }),
    }
}

/// Builds a [`Callee::Method`] for `recv.method(` whose method ident
/// sits at `i`, by walking the receiver chain backwards.
fn method_call(
    tokens: &[Token],
    start: usize,
    i: usize,
    _impl_type: Option<&str>,
    var_types: &[(String, String)],
) -> Option<CallSite> {
    let line = tokens[i].line;
    let method = tokens[i].text.clone();
    let mut chain: Vec<ChainSeg> = Vec::new();
    let mut j = i as isize - 2; // token before the `.`
    let root = loop {
        if j < start as isize {
            break ChainRoot::Expr;
        }
        let t = &tokens[j as usize];
        if t.is_punct('?') {
            j -= 1;
            continue;
        }
        if t.is_punct(')') {
            // Match back to the opening paren, then expect the call name.
            let mut depth = 0i32;
            let mut k = j;
            while k >= start as isize {
                if tokens[k as usize].is_punct(')') {
                    depth += 1;
                } else if tokens[k as usize].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            if k <= start as isize {
                break ChainRoot::Expr;
            }
            let name_idx = k - 1;
            let name = &tokens[name_idx as usize];
            if name.kind != TokenKind::Ident {
                break ChainRoot::Expr;
            }
            chain.push(ChainSeg::Call(name.text.clone()));
            if name_idx > start as isize && tokens[(name_idx - 1) as usize].is_punct('.') {
                j = name_idx - 2;
                continue;
            }
            // The call itself is the chain root (`helper().method()`).
            break ChainRoot::Expr;
        }
        if t.kind == TokenKind::Ident {
            let prev_is_dot = j > start as isize && tokens[(j - 1) as usize].is_punct('.');
            if prev_is_dot {
                chain.push(ChainSeg::Field(t.text.clone()));
                j -= 2;
                continue;
            }
            if t.is_ident("self") {
                break ChainRoot::SelfVar;
            }
            break ChainRoot::Var(t.text.clone());
        }
        break ChainRoot::Expr;
    };
    chain.reverse();
    // Resolve a typed local root into a virtual `self`-like chain by
    // prefixing the variable's type as a qualified first hop: the
    // callgraph layer understands `Var` roots via `var_types`, so just
    // record the resolved type name in the root.
    let root = match root {
        ChainRoot::Var(name) => match var_types.iter().rev().find(|(n, _)| n == &name) {
            Some((_, ty)) => ChainRoot::Var(ty.clone()),
            None => ChainRoot::Var(name),
        },
        other => other,
    };
    Some(CallSite { line, callee: Callee::Method { root, chain, method } })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(src)
    }

    #[test]
    fn extracts_fn_items_with_impl_types() {
        let p = parse(
            "struct Foo { bar: Baz }\n\
             impl Foo {\n    pub fn go(&self) -> u32 { 1 }\n}\n\
             impl fmt::Debug for Foo { fn fmt(&self) {} }\n\
             fn free_fn() {}\n",
        );
        let names: Vec<_> =
            p.fns.iter().map(|f| (f.impl_type.clone(), f.name.clone())).collect();
        assert_eq!(
            names,
            vec![
                (Some("Foo".into()), "go".into()),
                (Some("Foo".into()), "fmt".into()),
                (None, "free_fn".into()),
            ]
        );
        assert_eq!(p.structs[0].fields, vec![("bar".to_string(), "Baz".to_string())]);
    }

    #[test]
    fn receiver_chains_resolve_through_fields_and_calls() {
        let p = parse(
            "impl C {\n fn go(&mut self) { self.qcache.get(k); self.utxos().balance(a); }\n}\n",
        );
        let calls = &p.fns[0].calls;
        assert_eq!(
            calls[0].callee,
            Callee::Method {
                root: ChainRoot::SelfVar,
                chain: vec![ChainSeg::Field("qcache".into())],
                method: "get".into()
            }
        );
        // `self.utxos()` is recorded as its own call *and* as the
        // receiver hop of `.balance(…)`.
        assert!(calls.iter().any(|c| c.callee
            == Callee::Method {
                root: ChainRoot::SelfVar,
                chain: vec![],
                method: "utxos".into()
            }));
        assert!(calls.iter().any(|c| c.callee
            == Callee::Method {
                root: ChainRoot::SelfVar,
                chain: vec![ChainSeg::Call("utxos".into())],
                method: "balance".into()
            }));
    }

    #[test]
    fn qualified_free_and_bare_calls() {
        let p = parse(
            "fn f(m: &mut Meter) { OutPoint::new(t, 0); codec::outpoint_key(&o); helper(); m.charge(x); }\n",
        );
        let calls = &p.fns[0].calls;
        assert!(matches!(&calls[0].callee, Callee::Qualified { ty, method }
            if ty == "OutPoint" && method == "new"));
        assert!(matches!(&calls[1].callee, Callee::Free(n) if n == "outpoint_key"));
        assert!(matches!(&calls[2].callee, Callee::Free(n) if n == "helper"));
        // `m.charge(x)` resolves m through the typed param and marks metering.
        assert!(matches!(&calls[3].callee, Callee::Method { root: ChainRoot::Var(ty), .. }
            if ty == "Meter"));
        assert!(p.fns[0].has_metering);
    }

    #[test]
    fn panic_sites_and_loops() {
        let p = parse(
            "fn f(x: Option<u32>) {\n x.unwrap();\n for i in 0..3 { }\n panic!(\"no\");\n while y { }\n}\n",
        );
        let f = &p.fns[0];
        assert_eq!(f.panics.len(), 2);
        assert_eq!(f.panics[0].what, ".unwrap()");
        assert_eq!(f.panics[1].what, "panic!");
        assert_eq!(f.loops, vec![3, 5]);
    }

    #[test]
    fn ret_hints_unwrap_result_and_option() {
        let p = parse(
            "fn a() -> Result<GetUtxosResponse, ApiError> { q() }\n\
             fn b() -> Option<&'static Block> { None }\n\
             fn c() -> &UtxoSet { u() }\n",
        );
        assert_eq!(p.fns[0].ret.as_deref(), Some("GetUtxosResponse"));
        assert_eq!(p.fns[1].ret.as_deref(), Some("Block"));
        assert_eq!(p.fns[2].ret.as_deref(), Some("UtxoSet"));
    }

    #[test]
    fn node_local_marker_attaches_to_the_fn_below() {
        let p = parse(
            "// icbtc-lint: node-local -- per-replica cache\nfn get() {}\nfn other() {}\n",
        );
        assert_eq!(p.fns[0].node_local.as_deref(), Some("per-replica cache"));
        assert!(p.fns[1].node_local.is_none());
    }

    #[test]
    fn trait_method_declarations_have_no_body_and_no_node() {
        let p = parse("trait T { fn decl(&self); fn with_default(&self) { x.unwrap(); } }\n");
        // The whole trait body is opaque.
        assert!(p.fns.is_empty());
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in ["fn", "impl {", "fn f(", "struct S {", "fn f() { a.b.(", "}}}{{{", "fn f() -> {"] {
            let _ = parse_file(src);
        }
    }
}

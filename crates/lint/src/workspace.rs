//! Workspace discovery and the per-crate rule scope matrix.
//!
//! Which rules guard which crate follows the paper's architecture:
//!
//! * **Consensus-critical** (`bitcoin`, `canister`, `ic`, `core`): code
//!   that executes inside (or feeds values into) the replicated state
//!   machine. Gets the determinism rules: `wall-clock`, `thread`,
//!   `process-env`, `float`.
//! * **Replicated-state** (`adapter`, `canister`, `core`, `ic`): code
//!   whose data structures are the replicated state — or, for the
//!   adapter, feed deterministic soak tests that diff two same-seed
//!   runs byte-for-byte. Additionally gets `unordered-collections`.
//! * **Hot-path** (`adapter`, `canister`): Algorithm 1 and Algorithm 2
//!   request handling. Additionally gets `no-panic`.
//! * **Observability-scoped** (`adapter`, `canister`, `ic`, `btcnet`):
//!   the instrumented runtime layers. Additionally gets `print-output`
//!   so stdout writes cannot bypass the deterministic metrics/trace
//!   layer (bench binaries and tests stay exempt).
//! * Every crate gets `rng-seed`, `forbid-unsafe` and
//!   `suppression-reason`.

use crate::engine::FileContext;
use crate::rules::Rule;
use std::path::{Path, PathBuf};

pub const CONSENSUS_CRITICAL: &[&str] = &["bitcoin", "canister", "ic", "core"];
pub const REPLICATED_STATE: &[&str] = &["adapter", "canister", "core", "ic"];
pub const HOT_PATH: &[&str] = &["adapter", "canister"];
pub const OBSERVABILITY_SCOPED: &[&str] = &["adapter", "canister", "ic", "btcnet"];

/// Resolves the active rule list for a crate (name without `icbtc-`
/// prefix; the umbrella crate is `"icbtc"`).
pub fn rules_for(crate_name: &str) -> Vec<Rule> {
    let mut rules = vec![Rule::RngSeed, Rule::ForbidUnsafe, Rule::SuppressionReason];
    if CONSENSUS_CRITICAL.contains(&crate_name) {
        rules.extend([Rule::WallClock, Rule::Thread, Rule::ProcessEnv, Rule::Float]);
    }
    if REPLICATED_STATE.contains(&crate_name) {
        rules.push(Rule::UnorderedCollections);
    }
    if HOT_PATH.contains(&crate_name) {
        rules.push(Rule::NoPanic);
    }
    if OBSERVABILITY_SCOPED.contains(&crate_name) {
        rules.push(Rule::PrintOutput);
    }
    rules
}

/// One source file queued for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    pub abs_path: PathBuf,
    pub ctx: FileContext,
}

/// Discovers every lintable `.rs` file under the workspace root:
/// `crates/*/{src,tests,benches}` plus the umbrella crate's `src/`,
/// `tests/` and `examples/`. Lint fixtures (any path containing a
/// `fixtures` component) are skipped — they intentionally contain
/// violations. The result is sorted by path so runs are deterministic.
pub fn discover(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();

    // Member crates.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in read_dir_sorted(&crates_dir)? {
            if !entry.is_dir() {
                continue;
            }
            let crate_name =
                entry.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
            for sub in ["src", "tests", "benches", "examples"] {
                collect(root, &entry.join(sub), &crate_name, sub != "src", &mut files)?;
            }
        }
    }
    // Umbrella crate.
    collect(root, &root.join("src"), "icbtc", false, &mut files)?;
    collect(root, &root.join("tests"), "icbtc", true, &mut files)?;
    collect(root, &root.join("examples"), "icbtc", true, &mut files)?;

    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn read_dir_sorted(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    Ok(entries)
}

fn collect(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    entry_or_test: bool,
    out: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
            if name == "fixtures" {
                continue;
            }
            // `src/bin/*` are seeded entry points.
            let sub_entry = entry_or_test || name == "bin";
            collect(root, &path, crate_name, sub_entry, out)?;
            continue;
        }
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
        let is_crate_root = !entry_or_test
            && (rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs") || rel == "src/lib.rs");
        out.push(SourceFile {
            rel_path: rel,
            abs_path: path.clone(),
            ctx: FileContext {
                crate_name: crate_name.to_string(),
                is_crate_root,
                is_entry_or_test: entry_or_test || file_name == "build.rs",
            },
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_matrix() {
        let canister = rules_for("canister");
        assert!(canister.contains(&Rule::Float));
        assert!(canister.contains(&Rule::UnorderedCollections));
        assert!(canister.contains(&Rule::NoPanic));
        let adapter = rules_for("adapter");
        assert!(adapter.contains(&Rule::NoPanic));
        assert!(!adapter.contains(&Rule::Float));
        // The adapter's iteration order feeds the deterministic chaos
        // soaks, so it carries the ordered-collections rule too.
        assert!(adapter.contains(&Rule::UnorderedCollections));
        // The four instrumented runtime layers get print-output; the
        // bench and sim crates (seeded entry points / harness) do not.
        for c in ["adapter", "canister", "ic", "btcnet"] {
            assert!(rules_for(c).contains(&Rule::PrintOutput), "{c}");
        }
        assert!(!rules_for("bench").contains(&Rule::PrintOutput));
        assert!(!rules_for("sim").contains(&Rule::PrintOutput));
        let sim = rules_for("sim");
        assert_eq!(sim, vec![Rule::RngSeed, Rule::ForbidUnsafe, Rule::SuppressionReason]);
        // Every crate carries the structural rules.
        for c in ["bitcoin", "btcnet", "tecdsa", "bench", "lint", "icbtc"] {
            assert!(rules_for(c).contains(&Rule::ForbidUnsafe), "{c}");
        }
    }

    #[test]
    fn storage_engine_sources_are_linted_under_the_full_canister_scope() {
        // The paged storage engine *is* the replicated state: its pages
        // hold the UTXO set every replica must agree on byte-for-byte.
        // Guard against the module (a subdirectory, not a flat file)
        // slipping out of discovery or into the lenient entry/test bucket
        // where no-panic / no-float / no-HashMap would not apply.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = discover(&root).expect("workspace discovery");
        for module in ["mod.rs", "page.rs", "btree.rs", "codec.rs"] {
            let rel = format!("crates/canister/src/storage/{module}");
            let file = files
                .iter()
                .find(|f| f.rel_path == rel)
                .unwrap_or_else(|| panic!("{rel} not discovered"));
            assert_eq!(file.ctx.crate_name, "canister", "{rel}");
            assert!(!file.ctx.is_entry_or_test, "{rel} must get the strict rule scope");
            assert!(!file.ctx.is_crate_root, "{rel}");
        }
    }
}

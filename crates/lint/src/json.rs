//! A minimal JSON string builder — the workspace is hermetic (no serde),
//! and the linter's output schema is small and flat enough to emit by
//! hand. The schema is documented in DESIGN.md §"Static analysis" and is
//! versioned via the top-level `schema_version` field.

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builds a JSON object from pre-rendered `"key": value` fragments.
pub fn object(fields: &[(&str, String)]) -> String {
    let body = fields
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape(k), v))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{body}}}")
}

pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

pub fn array(items: Vec<String>) -> String {
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_shape() {
        let o = object(&[("a", "1".into()), ("b", string("x\"y"))]);
        assert_eq!(o, "{\"a\":1,\"b\":\"x\\\"y\"}");
    }
}

//! `icbtc-lint` — in-repo determinism & safety static analysis.
//!
//! The paper's correctness story rests on the adapter and canister being
//! *deterministic replicated state machines* (§II-A): δ-stability
//! (Definition II.1) and Algorithms 1–2 are only sound if every replica
//! computes bit-identical state. A single `HashMap` iteration in
//! replicated code, a wall-clock read, or target-dependent float rounding
//! silently invalidates every security lemma the harness reproduces.
//!
//! The workspace is hermetic (no registry dependencies since PR 1), so
//! clippy plugins and `syn` are unavailable; this crate is the in-repo
//! substrate that enforces those invariants instead, and is wired into
//! tier-1 verification (`scripts/verify.sh`).
//!
//! The analysis is layered (DESIGN.md §"Static analysis"): a lexer and
//! per-file token rules at the bottom, then a lightweight syntactic
//! parser feeding a workspace call graph rooted at the replicated
//! update entry points, with three cross-procedural dataflow rules on
//! top (panic reachability, node-local taint, metering completeness).
//!
//! * [`lexer`] — a lightweight Rust lexer so rules match tokens, not raw
//!   text (comments, strings, raw strings, lifetimes are handled).
//! * [`rules`] — the rule set with stable IDs (`ICL001`–`ICL014`).
//! * [`suppress`] — `// icbtc-lint: allow(<rule>) -- <reason>` inline
//!   suppressions (reason mandatory) and `node-local` definition markers.
//! * [`engine`] — per-file analysis with `#[cfg(test)]` region exemption.
//! * [`parser`] — syntactic items/impls/fns/calls extraction (no type
//!   inference).
//! * [`callgraph`] — the workspace call graph, update-entry roots, and
//!   deterministic reachability.
//! * [`analysis`] — the whole-workspace pipeline: token rules + dataflow
//!   rules + centralized suppressions + stale-suppression detection.
//! * [`workspace`] — crate discovery and the rule scope matrix.
//! * [`json`] — the machine-readable output encoder.
//!
//! See DESIGN.md §"Static analysis & determinism invariants" for the rule
//! catalogue and the rationale tying each rule to the paper section it
//! protects.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod analysis;
pub mod callgraph;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod suppress;
pub mod workspace;

//! `icbtc-lint` — in-repo determinism & safety static analysis.
//!
//! The paper's correctness story rests on the adapter and canister being
//! *deterministic replicated state machines* (§II-A): δ-stability
//! (Definition II.1) and Algorithms 1–2 are only sound if every replica
//! computes bit-identical state. A single `HashMap` iteration in
//! replicated code, a wall-clock read, or target-dependent float rounding
//! silently invalidates every security lemma the harness reproduces.
//!
//! The workspace is hermetic (no registry dependencies since PR 1), so
//! clippy plugins and `syn` are unavailable; this crate is the in-repo
//! substrate that enforces those invariants instead, and is wired into
//! tier-1 verification (`scripts/verify.sh`).
//!
//! * [`lexer`] — a lightweight Rust lexer so rules match tokens, not raw
//!   text (comments, strings, raw strings, lifetimes are handled).
//! * [`rules`] — the rule set with stable IDs (`ICL001`–`ICL009`).
//! * [`suppress`] — `// icbtc-lint: allow(<rule>) -- <reason>` inline
//!   suppressions; the reason is mandatory.
//! * [`engine`] — per-file analysis with `#[cfg(test)]` region exemption.
//! * [`workspace`] — crate discovery and the rule scope matrix.
//! * [`json`] — the machine-readable output encoder.
//!
//! See DESIGN.md §"Static analysis & determinism invariants" for the rule
//! catalogue and the rationale tying each rule to the paper section it
//! protects.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod engine;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod workspace;

//! Inline suppression comments.
//!
//! A violation can be waived only with an explicit, *reasoned* comment:
//!
//! ```text
//! // icbtc-lint: allow(float) -- display-only USD conversion, not consensus
//! // icbtc-lint: allow(no-panic, float) -- invariant: genesis always present
//! // icbtc-lint: allow-file(float) -- whole file is reporting-only
//! ```
//!
//! `allow(...)` waives the named rules on the comment's own line and the
//! line immediately below it (so it can trail the offending expression or
//! sit on its own line above it). `allow-file(...)` waives the rules for
//! the entire file and must appear within the first 40 lines.
//!
//! The ` -- <reason>` clause is mandatory: a suppression without a reason
//! is itself reported as a violation (`suppression-reason`, ICL009), as is
//! one naming an unknown rule. Suppressions are parsed from the raw source
//! (they live in comments, which the lexer drops).

/// One parsed suppression directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule *names* (e.g. `"float"`), not IDs.
    pub rules: Vec<String>,
    /// 1-based line of the comment.
    pub line: u32,
    /// Whether this is `allow-file` (whole file) or `allow` (line + next).
    pub file_wide: bool,
    pub reason: String,
}

/// A malformed suppression (missing reason, empty rule list, bad syntax).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadSuppression {
    pub line: u32,
    pub message: String,
}

/// A `node-local` definition marker: the function defined on this line
/// (or the next) depends on per-replica state and must never be called
/// from replicated update execution (rule ICL012).
///
/// ```text
/// // icbtc-lint: node-local -- tip-keyed cache; contents differ per replica
/// pub fn get(&mut self, key: CacheKey) -> Option<&CanisterReply> { … }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeLocalMarker {
    /// 1-based line of the comment.
    pub line: u32,
    pub reason: String,
}

const MARKER: &str = "icbtc-lint:";
const FILE_WIDE_WINDOW: u32 = 40;

/// Scans `source` for suppression directives.
///
/// Comments are extracted through the lexer
/// ([`crate::lexer::lex_with_comments`]), so a `"// icbtc-lint: …"`
/// sequence inside a string literal can never suppress anything. The
/// directive must be the first thing in its comment (doc-comment markers
/// and whitespace aside); prose that merely *mentions* the marker
/// mid-sentence is ignored.
pub fn parse(source: &str) -> (Vec<Suppression>, Vec<BadSuppression>, Vec<NodeLocalMarker>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    let mut markers = Vec::new();
    for (line, text) in crate::lexer::lex_with_comments(source).1 {
        // `line_comment` strips the leading `//`; also strip the third
        // doc-comment char (`/` or `!`) and leading whitespace.
        let text = text.strip_prefix(['/', '!']).unwrap_or(&text);
        let Some(rest) = text.trim_start().strip_prefix(MARKER) else { continue };
        let rest = rest.trim_start();
        if let Some(tail) = rest.strip_prefix("node-local") {
            let reason = tail.trim_start().strip_prefix("--").map(|r| r.trim()).unwrap_or("");
            if reason.is_empty() {
                bad.push(BadSuppression {
                    line,
                    message: "node-local marker requires a reason: `-- <why per-replica>`".into(),
                });
            } else {
                markers.push(NodeLocalMarker { line, reason: reason.to_string() });
            }
            continue;
        }
        let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow") {
            (false, r)
        } else {
            bad.push(BadSuppression {
                line,
                message: format!("unknown directive after `{MARKER}` (expected `allow(…)`, `allow-file(…)` or `node-local`)"),
            });
            continue;
        };
        let rest = rest.trim_start();
        let Some(close) = rest.find(')') else {
            bad.push(BadSuppression { line, message: "missing `(` `)` rule list".into() });
            continue;
        };
        let Some(inner) = rest[..close].strip_prefix('(') else {
            bad.push(BadSuppression { line, message: "missing `(` before rule list".into() });
            continue;
        };
        let rules: Vec<String> =
            inner.split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
        if rules.is_empty() {
            bad.push(BadSuppression { line, message: "empty rule list".into() });
            continue;
        }
        let tail = rest[close + 1..].trim_start();
        let reason = tail.strip_prefix("--").map(|r| r.trim()).unwrap_or("");
        if reason.is_empty() {
            bad.push(BadSuppression {
                line,
                message: "suppression requires a reason: `-- <why this is sound>`".into(),
            });
            continue;
        }
        if file_wide && line > FILE_WIDE_WINDOW {
            bad.push(BadSuppression {
                line,
                message: format!("`allow-file` must appear in the first {FILE_WIDE_WINDOW} lines"),
            });
            continue;
        }
        ok.push(Suppression { rules, line, file_wide, reason: reason.to_string() });
    }
    (ok, bad, markers)
}

impl Suppression {
    /// Does this directive waive `rule` at `line`?
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        if !self.rules.iter().any(|r| r == rule) {
            return false;
        }
        self.file_wide || line == self.line || line == self.line + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_line_and_file_directives() {
        let src = "\
let x = 1.0; // icbtc-lint: allow(float) -- reporting only
// icbtc-lint: allow-file(no-panic) -- fixture
";
        let (ok, bad, _) = parse(src);
        assert!(bad.is_empty());
        assert_eq!(ok.len(), 2);
        assert!(!ok[0].file_wide);
        assert_eq!(ok[0].rules, vec!["float"]);
        assert_eq!(ok[0].reason, "reporting only");
        assert!(ok[1].file_wide);
    }

    #[test]
    fn reason_is_mandatory() {
        let (ok, bad, _) = parse("// icbtc-lint: allow(float)\n");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
        let (ok, bad, _) = parse("// icbtc-lint: allow(float) -- \n");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn marker_inside_string_is_ignored() {
        let (ok, bad, markers) = parse("let s = \"icbtc-lint: allow(float) -- nope\";\n");
        assert!(ok.is_empty());
        assert!(bad.is_empty());
        assert!(markers.is_empty());
    }

    #[test]
    fn node_local_marker_parses_and_requires_reason() {
        let (ok, bad, markers) =
            parse("// icbtc-lint: node-local -- per-replica cache\nfn get() {}\n");
        assert!(ok.is_empty());
        assert!(bad.is_empty());
        assert_eq!(markers, vec![NodeLocalMarker { line: 1, reason: "per-replica cache".into() }]);
        let (_, bad, markers) = parse("// icbtc-lint: node-local\nfn get() {}\n");
        assert!(markers.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn coverage_window() {
        let s = Suppression {
            rules: vec!["float".into()],
            line: 10,
            file_wide: false,
            reason: "r".into(),
        };
        assert!(s.covers("float", 10));
        assert!(s.covers("float", 11));
        assert!(!s.covers("float", 12));
        assert!(!s.covers("no-panic", 10));
    }
}

//! Per-file analysis: lex, locate test regions, run the scoped rules,
//! then filter findings through the suppression directives.

use crate::lexer::{lex, Token};
use crate::rules::{check_crate_root, scan, Finding, Rule};
use crate::suppress;

/// Where a file sits in the workspace — decides which rules run and how.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Crate name without the `icbtc-` prefix (`"canister"`, `"core"`…).
    pub crate_name: String,
    /// `src/lib.rs` or `src/main.rs` of a crate.
    pub is_crate_root: bool,
    /// Integration tests, benches, examples, and `src/bin/*` binaries:
    /// these are seeded entry points, exempt from the non-test-only rules.
    pub is_entry_or_test: bool,
}

/// A finding that survived suppression filtering.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    pub line: u32,
    pub message: String,
    /// Call-chain evidence (`root → … → site`) for the cross-procedural
    /// rules (ICL011–013); empty for token-level findings.
    pub chain: Vec<String>,
}

/// A finding that was waived, kept for reporting (`--json` includes them
/// so CI dashboards can audit the suppression debt).
#[derive(Debug, Clone)]
pub struct Suppressed {
    pub rule: Rule,
    pub line: u32,
    pub reason: String,
}

#[derive(Debug, Default)]
pub struct FileReport {
    pub violations: Vec<Violation>,
    pub suppressed: Vec<Suppressed>,
}

/// Finds `(start_line, end_line)` ranges covered by `#[cfg(test)]` or
/// `#[test]` items, by brace matching from the attribute. An attribute
/// whose item has no body (`#[cfg(test)] use …;`) covers nothing.
pub fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_test_attr(tokens, i) {
            let start_line = tokens[i].line;
            // Walk to the item's opening brace, stopping at `;` (bodiless
            // item) — but skip over any further attribute lists first.
            let mut j = i;
            let mut body_start = None;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('{') {
                    body_start = Some(j);
                    break;
                }
                if t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body_start {
                let mut depth = 0usize;
                let mut k = open;
                while k < tokens.len() {
                    if tokens[k].is_punct('{') {
                        depth += 1;
                    } else if tokens[k].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                let end_line = tokens.get(k).map(|t| t.line).unwrap_or(u32::MAX);
                regions.push((start_line, end_line));
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// `# [ cfg ( test ) ]` or `# [ test ]` (also matches within
/// `cfg(all(test, …))`-style lists by looking for the `test` ident
/// anywhere inside the attribute brackets).
fn is_test_attr(tokens: &[Token], i: usize) -> bool {
    if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
        return false;
    }
    // Scan the bracketed attribute body for a bare `test`/`cfg(test…)`.
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut relevant = false;
    for t in &tokens[i + 1..] {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_ident("test") {
            saw_test = true;
        } else if t.is_ident("cfg") {
            relevant = true;
        } else if t.is_ident("not") {
            // `#[cfg(not(test))]` guards *non*-test code.
            return false;
        }
    }
    // `#[test]` is exactly one ident; `#[cfg(test)]` needs both.
    saw_test && (relevant || tokens.get(i + 2).is_some_and(|t| t.is_ident("test")))
}

/// Analyzes one file's source under the given context and active rules.
///
/// `active` is the scope-resolved rule list for this crate (see
/// [`crate::workspace::rules_for`]); test-region and entry-point
/// exemptions are applied here on top of it.
pub fn analyze_source(source: &str, ctx: &FileContext, active: &[Rule]) -> FileReport {
    let tokens = lex(source);
    let regions = test_regions(&tokens);
    let findings = raw_findings(&tokens, &regions, ctx, active);

    // Suppressions.
    let (sups, bad, _markers) = suppress::parse(source);
    let mut report = FileReport::default();
    for v in structural_suppression_violations(&sups, &bad) {
        report.violations.push(v);
    }
    for f in findings {
        match sups.iter().find(|s| s.covers(f.rule.name(), f.line)) {
            Some(s) => report.suppressed.push(Suppressed {
                rule: f.rule,
                line: f.line,
                reason: s.reason.clone(),
            }),
            None => report.violations.push(Violation {
                rule: f.rule,
                line: f.line,
                message: f.message,
                chain: Vec::new(),
            }),
        }
    }
    report.violations.sort_by_key(|v| (v.line, v.rule.id()));
    report
}

/// Token-level findings for one file, pre-suppression: the scoped rule
/// scan plus the crate-root check, with test-region and entry-point
/// exemptions applied. Shared by [`analyze_source`] and the workspace
/// analysis in [`crate::analysis`].
pub fn raw_findings(
    tokens: &[Token],
    regions: &[(u32, u32)],
    ctx: &FileContext,
    active: &[Rule],
) -> Vec<Finding> {
    let in_tests = |line: u32| regions.iter().any(|&(s, e)| s <= line && line <= e);
    let mut findings: Vec<Finding> = Vec::new();
    let scannable: Vec<Rule> = active
        .iter()
        .copied()
        .filter(|r| !matches!(r, Rule::ForbidUnsafe | Rule::SuppressionReason))
        .filter(|r| !ctx.is_entry_or_test || r.applies_in_tests())
        .collect();
    for f in scan(tokens, &scannable) {
        if !f.rule.applies_in_tests() && in_tests(f.line) {
            continue;
        }
        findings.push(f);
    }
    if ctx.is_crate_root && active.contains(&Rule::ForbidUnsafe) {
        if let Some(f) = check_crate_root(tokens) {
            findings.push(f);
        }
    }
    findings
}

/// ICL009 violations for malformed directives and unknown rule names.
pub fn structural_suppression_violations(
    sups: &[suppress::Suppression],
    bad: &[suppress::BadSuppression],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for b in bad {
        out.push(Violation {
            rule: Rule::SuppressionReason,
            line: b.line,
            message: b.message.clone(),
            chain: Vec::new(),
        });
    }
    for s in sups {
        for r in &s.rules {
            if Rule::from_name(r).is_none() {
                out.push(Violation {
                    rule: Rule::SuppressionReason,
                    line: s.line,
                    message: format!("unknown rule `{r}` in suppression"),
                    chain: Vec::new(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx() -> FileContext {
        FileContext {
            crate_name: "canister".into(),
            is_crate_root: false,
            is_entry_or_test: false,
        }
    }

    #[test]
    fn test_module_is_exempt_from_non_test_rules() {
        let src = "\
#![forbid(unsafe_code)]
fn hot(x: Option<u32>) -> u32 { x.unwrap() }
#[cfg(test)]
mod tests {
    #[test]
    fn ok() { Some(1).unwrap(); }
}
";
        let r = analyze_source(src, &lib_ctx(), &[Rule::NoPanic]);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].line, 2);
    }

    #[test]
    fn wall_clock_applies_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests { use std::time::Instant; }\n";
        let r = analyze_source(src, &lib_ctx(), &[Rule::WallClock]);
        assert_eq!(r.violations.len(), 1);
    }

    #[test]
    fn suppression_moves_finding_to_suppressed() {
        let src = "// icbtc-lint: allow(no-panic) -- invariant: always Some\nx.unwrap();\n";
        let r = analyze_source(src, &lib_ctx(), &[Rule::NoPanic]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].reason, "invariant: always Some");
    }

    #[test]
    fn reasonless_suppression_is_a_violation() {
        let src = "// icbtc-lint: allow(no-panic)\nx.unwrap();\n";
        let r = analyze_source(src, &lib_ctx(), &[Rule::NoPanic]);
        // The unwrap still fires AND the bad suppression fires.
        assert_eq!(r.violations.len(), 2);
    }

    #[test]
    fn bodiless_cfg_test_item_covers_nothing() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn hot() { x.unwrap(); }\n";
        let r = analyze_source(src, &lib_ctx(), &[Rule::NoPanic]);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].line, 3);
    }
}

//! Workspace call graph over the parsed fn items, rooted at the
//! replicated update entry points.
//!
//! ## Edge resolution (documented approximation)
//!
//! * `Type::method(…)` and `Self::method(…)` resolve exactly against the
//!   workspace's impl blocks.
//! * `helper(…)` / `module::helper(…)` resolve to free functions of the
//!   caller's crate first, then its (transitive) dependency crates.
//! * `recv.method(…)` resolves when the receiver chain roots at `self`
//!   or a typed local (`fn f(meter: &mut Meter)`, `let t: HeaderTree`),
//!   stepping through struct fields and return-type hints
//!   (`self.state.utxos.balance(…)`, `self.utxos().len()`).
//! * Any other method call falls back to a **unique-name** match: if
//!   exactly one workspace method carries the name (and the name is not
//!   a common std-library method), an edge is added; an ambiguous name
//!   adds **no** edge. The graph therefore under-approximates — it never
//!   invents an edge between same-named methods of different types.
//!
//! ## Roots
//!
//! The replicated update entry points (paper §III): the canister's
//! `execute`/`dispatch` (every `CanisterCall` runs replicated through
//! them), `ingest_response`/`process_response` (Algorithm 2), and the
//! stable-store ingest `ingest_block`/`try_ingest_block`. The query
//! plane (`execute_query`/`query_cached`/`query`) is deliberately *not*
//! a root: queries are served per-replica, which is exactly why
//! node-local reads are legal there (rule ICL012).

use crate::parser::{Callee, ChainRoot, ChainSeg, FnItem, StructDef};
use std::collections::{BTreeMap, BTreeSet};

/// Replicated update entry points: `(crate, fn name)`.
pub const UPDATE_ROOTS: &[(&str, &str)] = &[
    ("canister", "execute"),
    ("canister", "dispatch"),
    ("canister", "ingest_response"),
    ("canister", "process_response"),
    ("canister", "ingest_block"),
    ("canister", "try_ingest_block"),
];

/// Per-replica query entry points, exempt from node-local taint.
pub const QUERY_ROOTS: &[(&str, &str)] =
    &[("canister", "execute_query"), ("canister", "query_cached"), ("canister", "query")];

/// In-workspace crate dependency matrix (crate name without the
/// `icbtc-` prefix → direct path dependencies). Kept in sync with the
/// `Cargo.toml`s by `dep_matrix_matches_cargo_manifests` below.
const CRATE_DEPS: &[(&str, &[&str])] = &[
    ("sim", &[]),
    ("bitcoin", &["sim"]),
    ("tecdsa", &["sim", "bitcoin"]),
    ("btcnet", &["sim", "bitcoin"]),
    ("ic", &["sim"]),
    ("core", &["bitcoin"]),
    ("adapter", &["sim", "bitcoin", "btcnet", "core"]),
    ("canister", &["bitcoin", "ic", "core", "sim"]),
    ("lint", &[]),
    ("bench", &["icbtc"]),
    (
        "icbtc",
        &["sim", "bitcoin", "tecdsa", "btcnet", "ic", "core", "adapter", "canister"],
    ),
];

/// Method names with well-known std-library meanings: never resolved by
/// the unique-name fallback, because a lone workspace method of the same
/// name would capture every `Vec`/`BTreeMap`/`Option` call in the tree.
const STD_METHOD_NAMES: &[&str] = &[
    "len", "is_empty", "get", "get_mut", "insert", "remove", "push", "pop", "iter", "iter_mut",
    "next", "clone", "contains", "contains_key", "extend", "drain", "clear", "last", "first",
    "take", "split", "join", "parse", "fmt", "eq", "cmp", "hash", "to_string", "entry", "keys",
    "values", "sort", "map", "and_then", "unwrap_or", "unwrap_or_else", "unwrap_or_default",
    "min", "max", "count", "rev", "filter", "fold", "any", "all", "find", "enumerate", "zip",
    "abs", "new", "default", "from", "into", "as_ref", "as_mut", "write", "read", "flush",
    "retain", "append", "starts_with", "ends_with", "to_vec", "as_slice", "as_bytes", "get_or",
];

/// One graph node: a fn item plus where it lives.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Crate name without the `icbtc-` prefix.
    pub crate_name: String,
    pub item: FnItem,
}

impl FnNode {
    /// `Type::name` or `name` — the display form used in call chains.
    pub fn qualified_name(&self) -> String {
        match &self.item.impl_type {
            Some(ty) => format!("{ty}::{}", self.item.name),
            None => self.item.name.clone(),
        }
    }
}

/// The resolved workspace call graph with update-root reachability.
#[derive(Debug)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// Adjacency: `edges[caller] = [(callee, call line), …]`, sorted.
    pub edges: Vec<Vec<(usize, u32)>>,
    /// Node indices of the update roots, in discovery order.
    pub roots: Vec<usize>,
    /// BFS parent edge towards the nearest root: `(caller, call line)`.
    parent: Vec<Option<(usize, u32)>>,
    reachable: Vec<bool>,
}

impl CallGraph {
    /// Builds the graph. `structs` must contain every struct definition
    /// in the workspace (fields resolve across files of a crate and,
    /// via pub fields, across crates). Nodes keep the input order, so
    /// deterministic input ⇒ deterministic graph.
    pub fn build(mut nodes: Vec<FnNode>, structs: &[StructDef]) -> CallGraph {
        nodes.sort_by(|a, b| (&a.file, a.item.line).cmp(&(&b.file, b.item.line)));
        let scope = transitive_deps();

        // Lookup tables.
        let mut methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free_fns: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut method_ret: BTreeMap<(&str, &str), &str> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            match &n.item.impl_type {
                Some(ty) => {
                    methods.entry((ty, &n.item.name)).or_default().push(i);
                    if let Some(ret) = &n.item.ret {
                        method_ret.entry((ty, &n.item.name)).or_insert(ret);
                    }
                }
                None => free_fns.entry(&n.item.name).or_default().push(i),
            }
        }
        let mut fields: BTreeMap<(&str, &str), &str> = BTreeMap::new();
        for s in structs {
            for (f, ty) in &s.fields {
                fields.entry((&s.name, f)).or_insert(ty);
            }
        }

        let in_scope = |caller_crate: &str, idx: usize, nodes: &[FnNode]| -> bool {
            let c = &nodes[idx].crate_name;
            c == caller_crate
                || scope.get(caller_crate).is_some_and(|deps| deps.contains(c.as_str()))
        };

        let mut edges: Vec<Vec<(usize, u32)>> = vec![Vec::new(); nodes.len()];
        for i in 0..nodes.len() {
            let caller_crate = nodes[i].crate_name.clone();
            let impl_type = nodes[i].item.impl_type.clone();
            for call in nodes[i].item.calls.clone() {
                let mut targets: Vec<usize> = Vec::new();
                match &call.callee {
                    Callee::Free(name) => {
                        if let Some(cands) = free_fns.get(name.as_str()) {
                            let visible: Vec<usize> = cands
                                .iter()
                                .copied()
                                .filter(|&t| in_scope(&caller_crate, t, &nodes))
                                .collect();
                            // Same-crate definitions shadow dependency ones.
                            let local: Vec<usize> = visible
                                .iter()
                                .copied()
                                .filter(|&t| nodes[t].crate_name == caller_crate)
                                .collect();
                            targets = if local.is_empty() { visible } else { local };
                        }
                    }
                    Callee::Qualified { ty, method } => {
                        if let Some(cands) = methods.get(&(ty.as_str(), method.as_str())) {
                            targets = cands
                                .iter()
                                .copied()
                                .filter(|&t| in_scope(&caller_crate, t, &nodes))
                                .collect();
                        }
                    }
                    Callee::Method { root, chain, method } => {
                        let start_ty: Option<&str> = match root {
                            ChainRoot::SelfVar => impl_type.as_deref(),
                            ChainRoot::Var(ty)
                                if ty.starts_with(|c: char| c.is_ascii_uppercase()) =>
                            {
                                Some(ty.as_str())
                            }
                            _ => None,
                        };
                        let mut resolved = false;
                        if let Some(mut ty) = start_ty {
                            let mut ok = true;
                            for seg in chain {
                                let next = match seg {
                                    ChainSeg::Field(f) => {
                                        fields.get(&(ty, f.as_str())).copied()
                                    }
                                    ChainSeg::Call(m) => {
                                        method_ret.get(&(ty, m.as_str())).copied()
                                    }
                                };
                                match next {
                                    Some(n) => ty = n,
                                    None => {
                                        ok = false;
                                        break;
                                    }
                                }
                            }
                            if ok {
                                resolved = true;
                                if let Some(cands) = methods.get(&(ty, method.as_str())) {
                                    targets = cands
                                        .iter()
                                        .copied()
                                        .filter(|&t| in_scope(&caller_crate, t, &nodes))
                                        .collect();
                                }
                                // A typed receiver whose method is not in
                                // the workspace is std/external: no edge,
                                // no fallback.
                            }
                        }
                        if !resolved && !STD_METHOD_NAMES.contains(&method.as_str()) {
                            // Unique-name fallback over visible methods.
                            let mut cands: Vec<usize> = Vec::new();
                            for ((_, m), idxs) in &methods {
                                if *m == method.as_str() {
                                    cands.extend(
                                        idxs.iter()
                                            .copied()
                                            .filter(|&t| in_scope(&caller_crate, t, &nodes)),
                                    );
                                }
                            }
                            if cands.len() == 1 {
                                targets = cands;
                            }
                        }
                    }
                }
                for t in targets {
                    edges[i].push((t, call.line));
                }
            }
            edges[i].sort_unstable();
            edges[i].dedup();
        }

        let roots: Vec<usize> = (0..nodes.len())
            .filter(|&i| {
                UPDATE_ROOTS
                    .iter()
                    .any(|(c, f)| nodes[i].crate_name == *c && nodes[i].item.name == *f)
            })
            .collect();

        // Deterministic BFS: shortest call chain to the nearest root.
        let mut parent: Vec<Option<(usize, u32)>> = vec![None; nodes.len()];
        let mut reachable = vec![false; nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for &r in &roots {
            if !reachable[r] {
                reachable[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &(t, line) in &edges[n] {
                if !reachable[t] {
                    reachable[t] = true;
                    parent[t] = Some((n, line));
                    queue.push_back(t);
                }
            }
        }

        CallGraph { nodes, edges, roots, parent, reachable }
    }

    pub fn is_reachable(&self, n: usize) -> bool {
        self.reachable[n]
    }

    /// The BFS parent edge of `n` towards its nearest update root
    /// (`None` for roots themselves).
    pub fn parent_edge(&self, n: usize) -> Option<(usize, u32)> {
        self.parent[n]
    }

    /// The shortest call chain `root → … → n` as qualified fn names.
    pub fn chain(&self, n: usize) -> Vec<String> {
        let mut rev = vec![n];
        let mut cur = n;
        while let Some((p, _)) = self.parent[cur] {
            rev.push(p);
            cur = p;
        }
        rev.iter().rev().map(|&i| self.nodes[i].qualified_name()).collect()
    }

    /// Whether any node in the downward call closure of `n` (including
    /// `n` itself) references a `metering::*` constant or `.charge*()`.
    /// Used by ICL013: a loop is considered priced if its function's
    /// closure records instructions somewhere.
    pub fn metering_closure(&self) -> Vec<bool> {
        let mut metered: Vec<bool> = self.nodes.iter().map(|n| n.item.has_metering).collect();
        // Fixpoint over the (possibly cyclic) graph.
        loop {
            let mut changed = false;
            for i in 0..self.nodes.len() {
                if metered[i] {
                    continue;
                }
                if self.edges[i].iter().any(|&(t, _)| metered[t]) {
                    metered[i] = true;
                    changed = true;
                }
            }
            if !changed {
                return metered;
            }
        }
    }
}

/// `crate → set of (transitively) visible dependency crates`.
fn transitive_deps() -> BTreeMap<&'static str, BTreeSet<&'static str>> {
    let direct: BTreeMap<&str, &[&str]> = CRATE_DEPS.iter().copied().collect();
    let mut out: BTreeMap<&'static str, BTreeSet<&'static str>> = BTreeMap::new();
    for (name, _) in CRATE_DEPS {
        let mut seen: BTreeSet<&'static str> = BTreeSet::new();
        let mut stack: Vec<&'static str> = direct.get(name).map(|d| d.to_vec()).unwrap_or_default();
        while let Some(d) = stack.pop() {
            if seen.insert(d) {
                if let Some(next) = direct.get(d) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        out.insert(name, seen);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn graph_of(files: &[(&str, &str, &str)]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut structs = Vec::new();
        for (path, krate, src) in files {
            let parsed = parse_file(src);
            structs.extend(parsed.structs);
            for item in parsed.fns {
                nodes.push(FnNode {
                    file: path.to_string(),
                    crate_name: krate.to_string(),
                    item,
                });
            }
        }
        CallGraph::build(nodes, &structs)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.nodes.iter().position(|n| n.item.name == name).unwrap()
    }

    #[test]
    fn free_call_reaches_across_crates() {
        let g = graph_of(&[
            ("crates/canister/src/a.rs", "canister", "pub fn ingest_block() { retarget(1); }"),
            ("crates/bitcoin/src/pow.rs", "bitcoin", "pub fn retarget(x: u32) -> u32 { x }"),
        ]);
        assert!(g.is_reachable(idx(&g, "retarget")));
        assert_eq!(g.chain(idx(&g, "retarget")), vec!["ingest_block", "retarget"]);
    }

    #[test]
    fn field_chain_resolves_methods() {
        let g = graph_of(&[(
            "crates/canister/src/c.rs",
            "canister",
            "struct C { q: Cache }\n\
             struct Cache { n: u64 }\n\
             impl C { pub fn dispatch(&mut self) { self.q.peek(); } }\n\
             impl Cache { pub fn peek(&self) -> u64 { self.n } }\n",
        )]);
        assert!(g.is_reachable(idx(&g, "peek")));
    }

    #[test]
    fn ambiguous_method_names_add_no_edge() {
        let g = graph_of(&[(
            "crates/canister/src/c.rs",
            "canister",
            "impl A { pub fn dispatch(&self, x: &X) { x.step(); } }\n\
             impl B { pub fn step(&self) {} }\n\
             impl D { pub fn step(&self) {} }\n",
        )]);
        // Two candidates named `step`, untyped receiver → no edge.
        assert!(!g.is_reachable(idx(&g, "step")));
    }

    #[test]
    fn typed_receiver_with_external_method_does_not_fall_back() {
        let g = graph_of(&[(
            "crates/canister/src/c.rs",
            "canister",
            "struct C { m: BTreeMap }\n\
             impl C { pub fn dispatch(&self) { self.m.fetch(); } }\n\
             impl Other { pub fn fetch(&self) {} }\n",
        )]);
        // `self.m` resolves to BTreeMap; `BTreeMap::fetch` is not in the
        // workspace, so no unique-name fallback to `Other::fetch`.
        assert!(!g.is_reachable(idx(&g, "fetch")));
    }

    #[test]
    fn dep_matrix_matches_cargo_manifests() {
        // Cross-check CRATE_DEPS against the real Cargo.tomls: every
        // `icbtc-*` path dependency in [dependencies] must be listed.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for (name, deps) in CRATE_DEPS {
            let manifest = if *name == "icbtc" {
                root.join("Cargo.toml")
            } else {
                root.join("crates").join(name).join("Cargo.toml")
            };
            let text = std::fs::read_to_string(&manifest).expect("manifest");
            let mut in_deps = false;
            let mut found: Vec<&str> = Vec::new();
            for line in text.lines() {
                let line = line.trim();
                if line.starts_with('[') {
                    in_deps = line == "[dependencies]";
                    continue;
                }
                if in_deps {
                    if let Some(dep) = line.strip_prefix("icbtc-") {
                        // `icbtc-sim.workspace = true` or `icbtc-sim = {…}`.
                        let d = dep
                            .split(['=', ' ', '.'])
                            .next()
                            .unwrap_or_default()
                            .trim();
                        if let Some(d) = CRATE_DEPS.iter().map(|(n, _)| *n).find(|n| *n == d) {
                            found.push(d);
                        }
                    } else if line.starts_with("icbtc.")
                        || line.starts_with("icbtc ")
                        || line.starts_with("icbtc=")
                    {
                        found.push("icbtc");
                    }
                }
            }
            found.sort_unstable();
            let mut expected: Vec<&str> = deps.to_vec();
            expected.sort_unstable();
            assert_eq!(found, expected, "dependency matrix drift for crate `{name}`");
        }
    }
}

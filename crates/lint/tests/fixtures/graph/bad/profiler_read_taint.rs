// ICL012 (crate `canister`): a profiler read API is node-local — each
// replica accumulates its own frame tree — so branching replicated
// ingestion on a report value forks replicated state. The finding
// anchors at the read inside the update path.
// icbtc-lint: node-local -- profile reports are per-replica diagnostics
pub fn profile_root_total() -> u64 {
    0
}

pub fn ingest_block(raw: &[u8]) -> usize {
    if profile_root_total() > 1_000_000 {
        return 0;
    }
    raw.len()
}

// ICL013 (crate `canister`): a loop on the update path whose call
// closure records no metering constant.
pub fn ingest_block(raw: &[u8]) -> u64 {
    let mut acc = 0u64;
    for byte in raw {
        acc += *byte as u64;
    }
    acc
}

// ICL012 (crate `canister`): a node-local read reachable from a
// replicated update entry point. The finding anchors at the call site
// inside the update path.
// icbtc-lint: node-local -- per-replica cache occupancy, for observability only
pub fn cache_len() -> usize {
    0
}

pub fn ingest_block(_raw: &[u8]) -> usize {
    cache_len()
}

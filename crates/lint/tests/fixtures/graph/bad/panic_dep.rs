// ICL011 site (crate `bitcoin`): ICL006 no-panic is not scoped to this
// crate, so only the reachability rule fires here.
pub fn decode_header(raw: &[u8]) -> u64 {
    let first = raw.first().copied();
    first.unwrap() as u64
}

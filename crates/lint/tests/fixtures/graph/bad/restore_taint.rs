// ICL012 (crate `canister`): a restore path that consults node-local
// state. A restarted replica rebuilding replicated state from a
// checkpoint must not read its own query cache or profiler — those
// differ per replica, so any value flowing from them forks the rebuilt
// state. The finding anchors at the read inside the restore helper,
// reachable from the update entry point that triggers recovery.
// icbtc-lint: node-local -- per-replica cache occupancy, for observability only
pub fn cache_len() -> usize {
    0
}

fn restore_checkpoint(_bytes: &[u8]) -> usize {
    // Seeding the restored state from cache occupancy is the defect.
    cache_len()
}

pub fn ingest_response(bytes: &[u8]) -> usize {
    restore_checkpoint(bytes)
}

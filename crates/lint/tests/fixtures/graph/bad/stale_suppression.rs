// ICL014 (crate `canister`): a suppression for a rule that does not
// fire on the covered lines is itself a finding.
pub fn quiet() -> u64 {
    41 + 1 // icbtc-lint: allow(wall-clock) -- stale: nothing here reads a clock
}

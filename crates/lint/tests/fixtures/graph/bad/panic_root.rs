// ICL011 driver (crate `canister`): an update entry point whose call
// chain crosses into a dependency crate that panics. The finding is
// reported at the panic site in the *other* file.
pub fn ingest_block(raw: &[u8]) -> u64 {
    decode_header(raw)
}

// Driver for `panic_dep_suppressed.rs`: the update root reaches the
// suppressed panic site.
pub fn ingest_block(raw: &[u8]) -> u64 {
    decode_header(raw)
}

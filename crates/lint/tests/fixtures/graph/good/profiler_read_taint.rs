// ICL012 clean pair: the profiler read feeds a diagnostics endpoint on
// the query plane, which runs on a single replica — exactly how
// `profile_report()` is meant to be consumed.
// icbtc-lint: node-local -- profile reports are per-replica diagnostics
pub fn profile_root_total() -> u64 {
    0
}

pub fn query_profile(_raw: &[u8]) -> u64 {
    profile_root_total()
}

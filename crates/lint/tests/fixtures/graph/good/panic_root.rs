// ICL011 clean pair: the same dependency panic exists, but no update
// entry point reaches it — query-plane reads are exempt by graph
// structure, not by annotation.
pub fn query(raw: &[u8]) -> u64 {
    decode_header(raw)
}

// ICL011 clean pair (crate `bitcoin`): the panic *is* reachable from an
// update root in the driver file, but the site carries an invariant-
// backed `allow(no-panic)` — the token-rule suppression carries over to
// the reachability rule.
pub fn decode_header(raw: &[u8]) -> u64 {
    let first = raw.first().copied();
    first.unwrap() as u64 // icbtc-lint: allow(no-panic) -- invariant: caller validated raw is non-empty
}

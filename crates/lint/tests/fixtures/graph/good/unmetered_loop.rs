// ICL013 clean pair: the loop's call closure records a metering
// constant (through a helper, exercising the downward closure).
pub fn ingest_block(raw: &[u8]) -> u64 {
    let mut acc = 0u64;
    for byte in raw {
        acc += charge_one(*byte);
    }
    acc
}

fn charge_one(byte: u8) -> u64 {
    let cost = metering::PARSE_TX;
    byte as u64 + cost
}

// ICL012 clean pair: the same node-local read is fine on the query
// plane — a single replica inspecting its own checkpoint metadata
// never feeds replicated execution.
// icbtc-lint: node-local -- per-replica cache occupancy, for observability only
pub fn cache_len() -> usize {
    0
}

fn checkpoint_summary(_bytes: &[u8]) -> usize {
    cache_len()
}

pub fn query(bytes: &[u8]) -> usize {
    checkpoint_summary(bytes)
}

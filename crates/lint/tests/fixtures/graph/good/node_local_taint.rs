// ICL012 clean pair: the node-local read is only reachable from the
// query plane, which runs on a single replica.
// icbtc-lint: node-local -- per-replica cache occupancy, for observability only
pub fn cache_len() -> usize {
    0
}

pub fn query(_raw: &[u8]) -> usize {
    cache_len()
}

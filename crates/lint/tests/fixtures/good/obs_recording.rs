// GOOD: runtime layers report through the observability layer, not
// stdout. Counters and trace events are deterministic and seed-stable;
// test modules may still print freely.
pub struct Layer {
    ingested: u64,
}

impl Layer {
    pub fn ingest(&mut self, _height: u64) {
        // obs.metrics.inc("canister_blocks_ingested_total") in real code;
        // modelled here without the dependency so the fixture lexes alone.
        self.ingested = self.ingested.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn debug_printing_in_tests_is_exempt() {
        println!("tests are not replicated execution");
    }
}

// GOOD: the seed is threaded in from the entry point, not hard-coded.
pub struct Component {
    rng: SimRng,
}
impl Component {
    pub fn new(seed: u64) -> Self {
        Component { rng: SimRng::seed_from(seed) }
    }
    pub fn child(&mut self) -> SimRng {
        self.rng.fork()
    }
}

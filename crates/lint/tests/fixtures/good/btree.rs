// GOOD: deterministic-iteration collections in replicated state.
use std::collections::{BTreeMap, BTreeSet};
pub struct Utxos {
    by_height: BTreeMap<u64, Vec<u8>>,
    seen: BTreeSet<u64>,
}

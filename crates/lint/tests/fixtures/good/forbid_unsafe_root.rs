//! GOOD: a crate root carrying the required attribute.
#![forbid(unsafe_code)]
pub mod something {}

// GOOD: banned names appearing only in comments, strings, raw strings
// and char-adjacent positions must not fire: HashMap, Instant, panic!.
/* nested /* block comment: std::thread::spawn HashMap */ still comment */
pub fn tricky<'a>(s: &'a str) -> String {
    let cooked = "HashMap // std::time::Instant \" escaped";
    let raw = r#"SimRng::seed_from(42) "quoted" HashSet"#;
    let hashy = r##"raw with "# inside"##;
    let tick: char = 'x';
    let newline = '\n';
    let _lifetime_user: &'a str = s;
    format!("{cooked}{raw}{hashy}{tick}{newline}")
}

// GOOD: a file-wide waiver covers every float below.
// icbtc-lint: allow-file(float) -- whole module is reporting-only output
pub fn ratio(a: u64, b: u64) -> f64 {
    a as f64 / b as f64
}
pub fn percent(a: u64, b: u64) -> f64 {
    100.0 * ratio(a, b)
}

// GOOD: each float is waived with a reasoned line suppression, either on
// the line above or trailing the offending expression.
// icbtc-lint: allow(float) -- display-only conversion, not replicated state
pub fn to_btc(sats: u64) -> f64 {
    sats as f64 / 100_000_000.0 // icbtc-lint: allow(float) -- display-only conversion
}

// GOOD: unwrap/expect confined to #[cfg(test)] code is exempt.
pub fn anchor(headers: &[u64]) -> Option<u64> {
    headers.last().copied()
}
#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        assert_eq!(super::anchor(&[1, 2]).unwrap(), 2);
        let m: std::collections::HashMap<u8, u8> = Default::default();
        assert!(m.is_empty());
    }
}

// BAD: suppression naming a rule that does not exist (ICL009).
// icbtc-lint: allow(no-such-rule) -- typo in the rule name
pub fn f() {}

// BAD: ad-hoc stdout/stderr writes in an instrumented runtime crate
// (ICL010). These bypass the deterministic metrics registry and trace,
// so same-seed runs are no longer byte-comparable.
pub fn ingest(height: u64) {
    println!("ingested block at height {height}");
}

pub fn warn_reorg(depth: u64) {
    eprintln!("reorg of depth {depth}");
}

// BAD: panic paths in an adapter/canister hot path (ICL006).
pub fn anchor(headers: &[u64]) -> u64 {
    if headers.is_empty() {
        panic!("no headers");
    }
    *headers.last().unwrap()
}

// BAD: floating-point arithmetic in consensus-critical code (ICL004).
pub fn stability(work: u64, reference: u64) -> f64 {
    work as f64 / reference as f64
}

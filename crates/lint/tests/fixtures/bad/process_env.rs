// BAD: environment access in consensus-critical code (ICL003).
pub fn delta() -> u64 {
    std::env::var("DELTA").unwrap_or_default().parse().unwrap_or(144)
}

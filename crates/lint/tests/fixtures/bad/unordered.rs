// BAD: randomized-iteration-order collection in replicated state (ICL005).
use std::collections::HashMap;
pub struct Utxos {
    by_height: HashMap<u64, Vec<u8>>,
}

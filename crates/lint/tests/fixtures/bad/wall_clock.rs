// BAD: reads the host clock in consensus-critical code (ICL001).
pub fn elapsed() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos() as u64
}

// BAD: hard-coded RNG seed in library code (ICL007).
pub fn jitter() -> u64 {
    let mut rng = SimRng::seed_from(42);
    rng.next_u64()
}

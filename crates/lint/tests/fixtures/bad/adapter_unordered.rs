//! Fixture: `HashMap` state in the adapter crate. Iteration order feeds
//! the re-request schedule, so two same-seed chaos runs diverge — ICL005
//! covers the adapter precisely to keep the determinism gate meaningful.

use std::collections::HashMap;

pub struct InflightTable {
    blocks: HashMap<u64, u64>,
}

impl InflightTable {
    pub fn oldest(&self) -> Option<u64> {
        // Non-deterministic: first key depends on hasher randomization.
        self.blocks.keys().next().copied()
    }
}

// BAD: OS threading in consensus-critical code (ICL002).
pub fn fanout() {
    std::thread::spawn(|| {});
}

// BAD: a crate root without #![forbid(unsafe_code)] (ICL008).
pub mod something;

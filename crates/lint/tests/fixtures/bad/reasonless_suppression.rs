// BAD: suppression without the mandatory reason clause (ICL009),
// and the unsuppressed finding still fires.
pub fn anchor(headers: &[u64]) -> u64 {
    // icbtc-lint: allow(no-panic)
    *headers.last().unwrap()
}

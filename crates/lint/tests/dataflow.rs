//! Cross-procedural dataflow rule tests: the `fixtures/graph` corpus
//! (bad/good pairs for ICL011–ICL014), property tests for the syntactic
//! front end, order-invariance of the whole-workspace analysis, and a
//! seeded-defect test proving ICL012 catches a node-local read injected
//! into the real ingest path.

use icbtc_lint::analysis::{analyze_workspace, FileInput, WorkspaceReport};
use icbtc_lint::engine::FileContext;
use icbtc_lint::parser;
use icbtc_lint::workspace::discover;
use icbtc_sim::testkit;
use std::path::Path;

/// Wraps a fixture as a non-entry source file of `crate_name`.
fn input(crate_name: &str, file: &str, source: &str) -> FileInput {
    FileInput {
        rel_path: format!("crates/{crate_name}/src/{file}"),
        ctx: FileContext {
            crate_name: crate_name.into(),
            is_crate_root: false,
            is_entry_or_test: false,
        },
        source: source.into(),
    }
}

/// Sorted, deduped violation rule IDs across the whole workspace.
fn ws_ids(inputs: &[FileInput]) -> Vec<&'static str> {
    let ws = analyze_workspace(inputs);
    let mut ids: Vec<&'static str> = ws
        .reports
        .iter()
        .flat_map(|(_, r)| r.violations.iter().map(|v| v.rule.id()))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

// ---------------------------------------------------------------------
// Fixture corpus: bad/good pairs per dataflow rule
// ---------------------------------------------------------------------

#[test]
fn bad_panic_reachable_across_crates() {
    let inputs = vec![
        input("canister", "root.rs", include_str!("fixtures/graph/bad/panic_root.rs")),
        input("bitcoin", "dep.rs", include_str!("fixtures/graph/bad/panic_dep.rs")),
    ];
    assert_eq!(ws_ids(&inputs), vec!["ICL011"]);
    // The finding lives at the panic site in the dependency crate and
    // carries the full call chain from the update root.
    let ws = analyze_workspace(&inputs);
    let (path, report) = ws
        .reports
        .iter()
        .find(|(_, r)| !r.violations.is_empty())
        .expect("one file has findings");
    assert_eq!(path, "crates/bitcoin/src/dep.rs");
    let v = &report.violations[0];
    assert!(v.chain.iter().any(|f| f.contains("ingest_block")), "chain {:?}", v.chain);
    assert!(v.message.contains("reachable from update entry"), "{}", v.message);
}

#[test]
fn good_panic_unreachable_from_query_plane() {
    // Same panic site, but only the query plane reaches it.
    let inputs = vec![
        input("canister", "root.rs", include_str!("fixtures/graph/good/panic_root.rs")),
        input("bitcoin", "dep.rs", include_str!("fixtures/graph/bad/panic_dep.rs")),
    ];
    assert_eq!(ws_ids(&inputs), Vec::<&str>::new());
}

#[test]
fn good_panic_suppression_carries_over() {
    // The panic is reachable from an update root but carries an
    // invariant-backed allow(no-panic): ICL011 honors it, and the used
    // suppression does not trip ICL014.
    let inputs = vec![
        input("canister", "root.rs", include_str!("fixtures/graph/good/panic_root_suppressed.rs")),
        input("bitcoin", "dep.rs", include_str!("fixtures/graph/good/panic_dep_suppressed.rs")),
    ];
    assert_eq!(ws_ids(&inputs), Vec::<&str>::new());
    let ws = analyze_workspace(&inputs);
    let suppressed: Vec<&'static str> = ws
        .reports
        .iter()
        .flat_map(|(_, r)| r.suppressed.iter().map(|s| s.rule.id()))
        .collect();
    assert!(suppressed.contains(&"ICL011"), "suppressed: {suppressed:?}");
}

#[test]
fn bad_node_local_taint_on_update_path() {
    let inputs =
        vec![input("canister", "taint.rs", include_str!("fixtures/graph/bad/node_local_taint.rs"))];
    assert_eq!(ws_ids(&inputs), vec!["ICL012"]);
}

#[test]
fn good_node_local_read_from_query_plane() {
    let inputs = vec![input(
        "canister",
        "taint.rs",
        include_str!("fixtures/graph/good/node_local_taint.rs"),
    )];
    assert_eq!(ws_ids(&inputs), Vec::<&str>::new());
}

#[test]
fn bad_profiler_read_on_update_path() {
    let inputs = vec![input(
        "canister",
        "prof_taint.rs",
        include_str!("fixtures/graph/bad/profiler_read_taint.rs"),
    )];
    assert_eq!(ws_ids(&inputs), vec!["ICL012"]);
}

#[test]
fn good_profiler_read_from_query_plane() {
    let inputs = vec![input(
        "canister",
        "prof_taint.rs",
        include_str!("fixtures/graph/good/profiler_read_taint.rs"),
    )];
    assert_eq!(ws_ids(&inputs), Vec::<&str>::new());
}

#[test]
fn bad_node_local_read_in_restore_path() {
    // A checkpoint-restore helper that seeds rebuilt state from the
    // query cache, reached from an update root — the recovery-subsystem
    // shape ICL012 must keep catching.
    let inputs = vec![input(
        "canister",
        "restore.rs",
        include_str!("fixtures/graph/bad/restore_taint.rs"),
    )];
    assert_eq!(ws_ids(&inputs), vec!["ICL012"]);
    let ws = analyze_workspace(&inputs);
    let v = &ws.reports[0].1.violations[0];
    assert!(v.chain.iter().any(|f| f.contains("restore_checkpoint")), "chain {:?}", v.chain);
}

#[test]
fn good_checkpoint_inspection_from_query_plane() {
    let inputs = vec![input(
        "canister",
        "restore.rs",
        include_str!("fixtures/graph/good/restore_taint.rs"),
    )];
    assert_eq!(ws_ids(&inputs), Vec::<&str>::new());
}

#[test]
fn bad_unmetered_loop_on_update_path() {
    let inputs =
        vec![input("canister", "scan.rs", include_str!("fixtures/graph/bad/unmetered_loop.rs"))];
    assert_eq!(ws_ids(&inputs), vec!["ICL013"]);
}

#[test]
fn good_metered_loop_through_call_closure() {
    let inputs =
        vec![input("canister", "scan.rs", include_str!("fixtures/graph/good/unmetered_loop.rs"))];
    assert_eq!(ws_ids(&inputs), Vec::<&str>::new());
}

#[test]
fn bad_stale_suppression_is_flagged() {
    let inputs = vec![input(
        "canister",
        "stale.rs",
        include_str!("fixtures/graph/bad/stale_suppression.rs"),
    )];
    assert_eq!(ws_ids(&inputs), vec!["ICL014"]);
    let ws = analyze_workspace(&inputs);
    let v = &ws.reports[0].1.violations[0];
    assert!(v.message.contains("stale suppression"), "{}", v.message);
}

// ---------------------------------------------------------------------
// Properties: the front end never panics; analysis is order-invariant
// ---------------------------------------------------------------------

#[test]
fn parser_never_panics_on_token_soup() {
    const PIECES: &[&str] = &[
        "fn", "impl", "for", "{", "}", "(", ")", "::", ".", ",", ";", "->", "<", ">", "x", "Type",
        "self", "Self", "let", "=", "unwrap", "panic", "!", "#", "[", "]", "loop", "while",
        "match", "&", "mut", "'a", "\"str\"", "0x1f", "where", "..", "?", "//", "mod", "pub",
    ];
    testkit::check(0x11C7_0011, 256, |rng| {
        let len = rng.index(300);
        let mut src = String::new();
        for _ in 0..len {
            src.push_str(PIECES[rng.index(PIECES.len())]);
            src.push(if rng.chance(0.8) { ' ' } else { '\n' });
        }
        let _ = parser::parse_file(&src);
    });
}

#[test]
fn parser_never_panics_on_byte_soup() {
    testkit::check(0x11C7_0012, 256, |rng| {
        let len = rng.index(200);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parser::parse_file(&src);
    });
}

#[test]
fn analysis_is_deterministic_and_input_order_invariant() {
    let mut inputs = vec![
        input("canister", "root.rs", include_str!("fixtures/graph/bad/panic_root.rs")),
        input("bitcoin", "dep.rs", include_str!("fixtures/graph/bad/panic_dep.rs")),
        input("canister", "taint.rs", include_str!("fixtures/graph/bad/node_local_taint.rs")),
        input("canister", "scan.rs", include_str!("fixtures/graph/bad/unmetered_loop.rs")),
        input("canister", "stale.rs", include_str!("fixtures/graph/bad/stale_suppression.rs")),
    ];
    fn render(inputs: &[FileInput]) -> String {
        let ws = analyze_workspace(inputs);
        let mut out = String::new();
        for (path, report) in &ws.reports {
            for v in &report.violations {
                out.push_str(&format!(
                    "{path}:{}:{} {} {:?}\n",
                    v.line,
                    v.rule.id(),
                    v.message,
                    v.chain
                ));
            }
        }
        out
    }
    let base = render(&inputs);
    assert!(!base.is_empty());
    testkit::check(0x11C7_0013, 32, |rng| {
        for i in (1..inputs.len()).rev() {
            let j = rng.index(i + 1);
            inputs.swap(i, j);
        }
        assert_eq!(render(&inputs), base, "analysis output depends on input order");
    });
}

// ---------------------------------------------------------------------
// Seeded defect: ICL012 must catch a qcache read injected into the
// real ingest path
// ---------------------------------------------------------------------

fn icl012_count(ws: &WorkspaceReport) -> usize {
    ws.reports
        .iter()
        .flat_map(|(_, r)| r.violations.iter())
        .filter(|v| v.rule.id() == "ICL012")
        .count()
}

#[test]
fn seeded_qcache_read_in_ingest_path_is_caught() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = discover(&root).expect("workspace discovery");
    let mut inputs: Vec<FileInput> = files
        .iter()
        .map(|f| FileInput {
            rel_path: f.rel_path.clone(),
            ctx: f.ctx.clone(),
            source: std::fs::read_to_string(&f.abs_path).expect("readable source"),
        })
        .collect();

    let clean = analyze_workspace(&inputs);
    assert_eq!(icl012_count(&clean), 0, "the shipped workspace must be ICL012-clean");

    // Inject a node-local cache read into the replicated ingest path.
    let canister = inputs
        .iter_mut()
        .find(|i| i.rel_path == "crates/canister/src/canister.rs")
        .expect("canister.rs present");
    let anchor = "let dropped = self.qcache.invalidate();";
    assert!(canister.source.contains(anchor), "injection anchor moved — update this test");
    canister.source = canister.source.replace(
        anchor,
        "let dropped = self.qcache.invalidate();\n        let _probe = self.qcache.len();",
    );

    let seeded = analyze_workspace(&inputs);
    assert!(icl012_count(&seeded) >= 1, "the seeded qcache read must be flagged by ICL012");
}

//! The self-test corpus: every fixture under `tests/fixtures/bad` must
//! produce exactly the expected rule findings, and every fixture under
//! `tests/fixtures/good` must come out clean. The fixtures are analyzed
//! under the strictest scope (a replicated-state, hot-path,
//! consensus-critical crate) so each rule is live.

use icbtc_lint::engine::{analyze_source, FileContext};
use icbtc_lint::rules::Rule;
use icbtc_lint::workspace::rules_for;

fn strict_ctx(is_crate_root: bool) -> FileContext {
    FileContext { crate_name: "canister".into(), is_crate_root, is_entry_or_test: false }
}

/// Runs a fixture under the `canister` scope (which activates every rule)
/// and returns the sorted violation rule IDs.
fn ids(source: &str, is_crate_root: bool) -> Vec<&'static str> {
    let report = analyze_source(source, &strict_ctx(is_crate_root), &rules_for("canister"));
    let mut ids: Vec<&'static str> =
        report.violations.iter().map(|v| v.rule.id()).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

macro_rules! bad_fixture {
    ($test:ident, $file:literal, $( $id:literal ),+) => {
        #[test]
        fn $test() {
            let src = include_str!(concat!("fixtures/bad/", $file));
            let found = ids(src, $file == "missing_forbid_unsafe.rs");
            let expected: Vec<&str> = vec![$( $id ),+];
            assert_eq!(found, expected, "fixture {}", $file);
        }
    };
}

// `process_env.rs` also unwraps; `wall_clock.rs` is pure ICL001.
bad_fixture!(bad_wall_clock, "wall_clock.rs", "ICL001");
bad_fixture!(bad_thread, "thread.rs", "ICL002");
bad_fixture!(bad_process_env, "process_env.rs", "ICL003");
bad_fixture!(bad_float, "float.rs", "ICL004");
bad_fixture!(bad_unordered, "unordered.rs", "ICL005");
bad_fixture!(bad_no_panic, "no_panic.rs", "ICL006");
bad_fixture!(bad_rng_seed, "rng_seed.rs", "ICL007");
bad_fixture!(bad_missing_forbid_unsafe, "missing_forbid_unsafe.rs", "ICL008");
bad_fixture!(bad_reasonless_suppression, "reasonless_suppression.rs", "ICL006", "ICL009");
bad_fixture!(bad_unknown_rule, "unknown_rule_suppression.rs", "ICL009");
bad_fixture!(bad_print_output, "print_output.rs", "ICL010");

macro_rules! good_fixture {
    ($test:ident, $file:literal) => {
        #[test]
        fn $test() {
            let src = include_str!(concat!("fixtures/good/", $file));
            let found = ids(src, $file == "forbid_unsafe_root.rs");
            assert!(found.is_empty(), "fixture {} should be clean, got {:?}", $file, found);
        }
    };
}

good_fixture!(good_suppressed_float, "suppressed_float.rs");
good_fixture!(good_allow_file, "allow_file.rs");
good_fixture!(good_btree, "btree.rs");
good_fixture!(good_test_module_unwrap, "test_module_unwrap.rs");
good_fixture!(good_seeded_param, "seeded_param.rs");
good_fixture!(good_forbid_unsafe_root, "forbid_unsafe_root.rs");
good_fixture!(good_tricky_lexing, "tricky_lexing.rs");
good_fixture!(good_obs_recording, "obs_recording.rs");

/// ICL005 extends to the adapter crate: its iteration order feeds the
/// deterministic chaos soaks, so unordered collections are flagged under
/// the adapter's own (non-strict) scope too.
#[test]
fn adapter_scope_flags_unordered_collections() {
    let src = include_str!("fixtures/bad/adapter_unordered.rs");
    let ctx =
        FileContext { crate_name: "adapter".into(), is_crate_root: false, is_entry_or_test: false };
    let report = analyze_source(src, &ctx, &rules_for("adapter"));
    let mut found: Vec<&'static str> = report.violations.iter().map(|v| v.rule.id()).collect();
    assert!(found.len() >= 2, "both the import and the field flag: {:?}", report.violations);
    found.sort_unstable();
    found.dedup();
    assert_eq!(found, vec!["ICL005"], "{:?}", report.violations);
}

#[test]
fn suppressions_are_reported_not_dropped() {
    let src = include_str!("fixtures/good/suppressed_float.rs");
    let report = analyze_source(src, &strict_ctx(false), &rules_for("canister"));
    assert!(report.violations.is_empty());
    assert!(
        report.suppressed.len() >= 2,
        "waived findings must stay auditable: {:?}",
        report.suppressed
    );
    assert!(report.suppressed.iter().all(|s| !s.reason.is_empty()));
}

#[test]
fn no_panic_counts_every_site() {
    let src = include_str!("fixtures/bad/no_panic.rs");
    let report = analyze_source(src, &strict_ctx(false), &[Rule::NoPanic]);
    // `panic!` and `.unwrap()` are two distinct findings.
    assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
}

//! Lexer edge cases that, mishandled, would turn the linter into a
//! false-positive machine: raw strings with hash fences, nested block
//! comments, comment markers inside string literals, and the `'a`
//! lifetime-versus-`'a'` char-literal ambiguity.

use icbtc_lint::lexer::{lex, lex_with_comments, Token, TokenKind};

fn idents(tokens: &[Token]) -> Vec<&str> {
    tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect()
}

#[test]
fn raw_string_with_hashes() {
    let toks = lex(r####"let x = r##"contains "# and HashMap"##;"####);
    let raws: Vec<&Token> = toks.iter().filter(|t| t.kind == TokenKind::RawStr).collect();
    assert_eq!(raws.len(), 1);
    assert_eq!(raws[0].text, r##"contains "# and HashMap"##);
    // The HashMap inside the raw string must not surface as an ident.
    assert_eq!(idents(&toks), vec!["let", "x"]);
}

#[test]
fn raw_string_fence_mismatch_keeps_scanning() {
    // A `"` followed by too few hashes does not close the literal.
    let toks = lex(r###"r##"a "# b"## c"###);
    let raw = toks.iter().find(|t| t.kind == TokenKind::RawStr).unwrap();
    assert_eq!(raw.text, r##"a "# b"##);
    assert!(toks.iter().any(|t| t.is_ident("c")));
}

#[test]
fn byte_and_raw_byte_strings() {
    let toks = lex(r##"let a = b"bytes"; let b = br#"raw HashSet"#;"##);
    assert!(toks.iter().any(|t| t.kind == TokenKind::Str && t.text == "bytes"));
    assert!(toks.iter().any(|t| t.kind == TokenKind::RawStr && t.text == "raw HashSet"));
    assert!(!idents(&toks).contains(&"HashSet"));
}

#[test]
fn nested_block_comments() {
    let toks = lex("a /* outer /* inner HashMap */ still outer */ b");
    assert_eq!(idents(&toks), vec!["a", "b"]);
}

#[test]
fn unterminated_block_comment_consumes_rest() {
    let toks = lex("a /* never closed HashMap");
    assert_eq!(idents(&toks), vec!["a"]);
}

#[test]
fn line_comment_marker_inside_string_literal() {
    let (toks, comments) = lex_with_comments("let s = \"// not a comment\"; real();");
    // The string is one Str token, the call after it is still lexed…
    assert!(toks.iter().any(|t| t.kind == TokenKind::Str && t.text == "// not a comment"));
    assert!(toks.iter().any(|t| t.is_ident("real")));
    // …and no comment was recorded.
    assert!(comments.is_empty());
}

#[test]
fn escaped_quote_does_not_end_string() {
    let toks = lex(r#"let s = "a\"b // still string \" c"; d"#);
    let strs: Vec<&Token> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert!(toks.iter().any(|t| t.is_ident("d")));
}

#[test]
fn lifetime_tick_vs_char_literal() {
    // `'a` in a generic position is a lifetime; `'a'` is a char.
    let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let q = '\\''; }");
    let lifetimes: Vec<&Token> = toks.iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
    let chars: Vec<&Token> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
    assert_eq!(lifetimes.len(), 2);
    assert!(lifetimes.iter().all(|t| t.text == "'a"));
    assert_eq!(chars.len(), 3);
    assert_eq!(chars[0].text, "a");
    assert_eq!(chars[1].text, "\\n");
    assert_eq!(chars[2].text, "\\'");
}

#[test]
fn static_lifetime_and_underscore_lifetime() {
    let toks = lex("let x: &'static str = y; let z: &'_ u8 = w;");
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["'static", "'_"]);
}

#[test]
fn comment_text_and_lines_are_preserved() {
    let (_, comments) = lex_with_comments("a();\n// one\nb(); // two\n");
    assert_eq!(comments, vec![(2, " one".to_string()), (3, " two".to_string())]);
}

#[test]
fn doc_comments_are_line_comments_too() {
    let (_, comments) = lex_with_comments("/// docs\n//! inner docs\n");
    assert_eq!(comments.len(), 2);
    assert_eq!(comments[0], (1, "/ docs".to_string()));
    assert_eq!(comments[1], (2, "! inner docs".to_string()));
}

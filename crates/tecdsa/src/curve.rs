//! The secp256k1 group: point arithmetic and scalar multiplication.

use std::fmt;

use icbtc_bitcoin::U256;

use crate::{FieldElement, Scalar};

/// A point on secp256k1 in affine coordinates (or the point at infinity).
///
/// # Examples
///
/// ```
/// use icbtc_tecdsa::{AffinePoint, Scalar};
/// let g = AffinePoint::generator();
/// let two_g = g.mul(Scalar::from_u64(2));
/// assert_eq!(two_g, g.add(&g));
/// assert!(two_g.is_on_curve());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum AffinePoint {
    /// The identity element.
    Infinity,
    /// A finite curve point.
    Point {
        /// x coordinate.
        x: FieldElement,
        /// y coordinate.
        y: FieldElement,
    },
}

impl AffinePoint {
    /// Returns the standard generator `G`.
    pub fn generator() -> AffinePoint {
        let gx = U256::from_limbs([
            0x59F2_815B_16F8_1798,
            0x029B_FCDB_2DCE_28D9,
            0x55A0_6295_CE87_0B07,
            0x79BE_667E_F9DC_BBAC,
        ]);
        let gy = U256::from_limbs([
            0x9C47_D08F_FB10_D4B8,
            0xFD17_B448_A685_5419,
            0x5DA4_FBFC_0E11_08A8,
            0x483A_DA77_26A3_C465,
        ]);
        AffinePoint::Point {
            x: FieldElement::from_be_bytes(gx.to_be_bytes()),
            y: FieldElement::from_be_bytes(gy.to_be_bytes()),
        }
    }

    /// Returns `true` for the point at infinity.
    pub fn is_infinity(&self) -> bool {
        matches!(self, AffinePoint::Infinity)
    }

    /// Returns the x coordinate of a finite point.
    ///
    /// # Panics
    ///
    /// Panics on the point at infinity.
    pub fn x(&self) -> FieldElement {
        match self {
            AffinePoint::Point { x, .. } => *x,
            AffinePoint::Infinity => panic!("x of the point at infinity"),
        }
    }

    /// Returns the y coordinate of a finite point.
    ///
    /// # Panics
    ///
    /// Panics on the point at infinity.
    pub fn y(&self) -> FieldElement {
        match self {
            AffinePoint::Point { y, .. } => *y,
            AffinePoint::Infinity => panic!("y of the point at infinity"),
        }
    }

    /// Checks the curve equation `y² = x³ + 7` (infinity counts as on the
    /// curve).
    pub fn is_on_curve(&self) -> bool {
        match self {
            AffinePoint::Infinity => true,
            AffinePoint::Point { x, y } => {
                y.square() == x.square() * *x + FieldElement::from_u64(7)
            }
        }
    }

    /// Negates the point.
    pub fn negate(&self) -> AffinePoint {
        match self {
            AffinePoint::Infinity => AffinePoint::Infinity,
            AffinePoint::Point { x, y } => AffinePoint::Point { x: *x, y: -*y },
        }
    }

    /// Adds two points.
    pub fn add(&self, other: &AffinePoint) -> AffinePoint {
        JacobianPoint::from_affine(*self)
            .add(&JacobianPoint::from_affine(*other))
            .to_affine()
    }

    /// Multiplies the point by a scalar via Jacobian double-and-add.
    pub fn mul(&self, k: Scalar) -> AffinePoint {
        JacobianPoint::from_affine(*self).mul(k).to_affine()
    }

    /// Computes `a·G + b·Q`, the double multiplication at the heart of
    /// ECDSA and Schnorr verification.
    pub fn double_mul(a: Scalar, b: Scalar, q: &AffinePoint) -> AffinePoint {
        let ag = JacobianPoint::from_affine(AffinePoint::generator()).mul(a);
        let bq = JacobianPoint::from_affine(*q).mul(b);
        ag.add(&bq).to_affine()
    }

    /// Serializes as a 33-byte compressed point (`02`/`03` prefix by y
    /// parity).
    ///
    /// # Panics
    ///
    /// Panics on the point at infinity, which has no SEC1 encoding here.
    pub fn to_compressed(&self) -> [u8; 33] {
        let (x, y) = match self {
            AffinePoint::Point { x, y } => (x, y),
            AffinePoint::Infinity => panic!("cannot encode the point at infinity"),
        };
        let mut out = [0u8; 33];
        out[0] = if y.is_even() { 0x02 } else { 0x03 };
        out[1..].copy_from_slice(&x.to_be_bytes());
        out
    }

    /// Parses a 33-byte compressed point, validating the curve equation.
    pub fn from_compressed(bytes: &[u8]) -> Option<AffinePoint> {
        if bytes.len() != 33 || (bytes[0] != 0x02 && bytes[0] != 0x03) {
            return None;
        }
        let mut x_bytes = [0u8; 32];
        x_bytes.copy_from_slice(&bytes[1..]);
        let x = FieldElement::from_be_bytes_checked(x_bytes)?;
        let y_squared = x.square() * x + FieldElement::from_u64(7);
        let mut y = y_squared.sqrt()?;
        let want_even = bytes[0] == 0x02;
        if y.is_even() != want_even {
            y = -y;
        }
        Some(AffinePoint::Point { x, y })
    }

    /// Serializes the x coordinate only (BIP-340 public key form).
    ///
    /// # Panics
    ///
    /// Panics on the point at infinity.
    pub fn to_x_only(&self) -> [u8; 32] {
        self.x().to_be_bytes()
    }

    /// Parses a BIP-340 x-only key: the finite point with this x and even
    /// y.
    pub fn from_x_only(bytes: &[u8; 32]) -> Option<AffinePoint> {
        let x = FieldElement::from_be_bytes_checked(*bytes)?;
        let y_squared = x.square() * x + FieldElement::from_u64(7);
        let mut y = y_squared.sqrt()?;
        if !y.is_even() {
            y = -y;
        }
        Some(AffinePoint::Point { x, y })
    }

    /// Returns the point with the same x and even y, together with whether
    /// the y was flipped — BIP-340's key normalization.
    pub fn normalize_even_y(&self) -> (AffinePoint, bool) {
        match self {
            AffinePoint::Infinity => (AffinePoint::Infinity, false),
            AffinePoint::Point { x, y } => {
                if y.is_even() {
                    (*self, false)
                } else {
                    (AffinePoint::Point { x: *x, y: -*y }, true)
                }
            }
        }
    }
}

impl fmt::Debug for AffinePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffinePoint::Infinity => write!(f, "AffinePoint::Infinity"),
            AffinePoint::Point { x, .. } => write!(f, "AffinePoint({x:?})"),
        }
    }
}

/// A point in Jacobian projective coordinates `(X : Y : Z)` with
/// `x = X/Z²`, `y = Y/Z³`; avoids a field inversion per group operation.
#[derive(Clone, Copy, Debug)]
pub struct JacobianPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
}

impl JacobianPoint {
    /// The identity element (Z = 0).
    pub fn infinity() -> JacobianPoint {
        JacobianPoint { x: FieldElement::ONE, y: FieldElement::ONE, z: FieldElement::ZERO }
    }

    /// Lifts an affine point.
    pub fn from_affine(p: AffinePoint) -> JacobianPoint {
        match p {
            AffinePoint::Infinity => JacobianPoint::infinity(),
            AffinePoint::Point { x, y } => JacobianPoint { x, y, z: FieldElement::ONE },
        }
    }

    /// Returns `true` for the identity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Projects back to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> AffinePoint {
        if self.is_infinity() {
            return AffinePoint::Infinity;
        }
        let z_inv = self.z.invert();
        let z_inv2 = z_inv.square();
        AffinePoint::Point { x: self.x * z_inv2, y: self.y * z_inv2 * z_inv }
    }

    /// Doubles the point (dbl-2009-l formulas, a = 0).
    pub fn double(&self) -> JacobianPoint {
        if self.is_infinity() || self.y.is_zero() {
            return JacobianPoint::infinity();
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let mut d = (self.x + b).square() - a - c;
        d = d + d;
        let e = a + a + a;
        let f = e.square();
        let x3 = f - (d + d);
        let mut c8 = c + c;
        c8 = c8 + c8;
        c8 = c8 + c8;
        let y3 = e * (d - x3) - c8;
        let z3 = (self.y + self.y) * self.z;
        JacobianPoint { x: x3, y: y3, z: z3 }
    }

    /// Adds two points (add-2007-bl formulas with doubling fallback).
    pub fn add(&self, other: &JacobianPoint) -> JacobianPoint {
        if self.is_infinity() {
            return *other;
        }
        if other.is_infinity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x * z2z2;
        let u2 = other.x * z1z1;
        let s1 = self.y * other.z * z2z2;
        let s2 = other.y * self.z * z1z1;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return JacobianPoint::infinity();
        }
        let h = u2 - u1;
        let i = (h + h).square();
        let j = h * i;
        let mut r = s2 - s1;
        r = r + r;
        let v = u1 * i;
        let x3 = r.square() - j - (v + v);
        let s1j = s1 * j;
        let y3 = r * (v - x3) - (s1j + s1j);
        let z3 = ((self.z + other.z).square() - z1z1 - z2z2) * h;
        JacobianPoint { x: x3, y: y3, z: z3 }
    }

    /// Scalar multiplication by left-to-right double-and-add.
    pub fn mul(&self, k: Scalar) -> JacobianPoint {
        let bits = k.to_u256();
        let mut acc = JacobianPoint::infinity();
        for i in (0..bits.bits() as usize).rev() {
            acc = acc.double();
            if bits.bit(i) {
                acc = acc.add(self);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ORDER;

    #[test]
    fn generator_is_on_curve() {
        let g = AffinePoint::generator();
        assert!(g.is_on_curve());
        assert!(!g.is_infinity());
    }

    #[test]
    fn generator_has_order_n() {
        let g = AffinePoint::generator();
        // (n-1)·G = -G, n·G = ∞.
        let n_minus_1 = Scalar::from_be_bytes(ORDER.m.wrapping_sub(icbtc_bitcoin::U256::ONE).to_be_bytes());
        assert_eq!(g.mul(n_minus_1), g.negate());
        assert_eq!(g.mul(n_minus_1).add(&g), AffinePoint::Infinity);
    }

    #[test]
    fn known_multiples_of_g() {
        // 2G x-coordinate (published test vector).
        let two_g = AffinePoint::generator().mul(Scalar::from_u64(2));
        let x_hex: String =
            two_g.x().to_be_bytes().iter().map(|b| format!("{b:02X}")).collect();
        assert_eq!(
            x_hex,
            "C6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5"
        );
        // 3G x-coordinate.
        let three_g = AffinePoint::generator().mul(Scalar::from_u64(3));
        let x3_hex: String =
            three_g.x().to_be_bytes().iter().map(|b| format!("{b:02X}")).collect();
        assert_eq!(
            x3_hex,
            "F9308A019258C31049344F85F89D5229B531C845836F99B08601F113BCE036F9"
        );
    }

    #[test]
    fn addition_laws() {
        let g = AffinePoint::generator();
        let p = g.mul(Scalar::from_u64(5));
        let q = g.mul(Scalar::from_u64(11));
        // Commutativity and consistency with scalar arithmetic.
        assert_eq!(p.add(&q), q.add(&p));
        assert_eq!(p.add(&q), g.mul(Scalar::from_u64(16)));
        // Identity and inverse.
        assert_eq!(p.add(&AffinePoint::Infinity), p);
        assert_eq!(p.add(&p.negate()), AffinePoint::Infinity);
        // Doubling consistency.
        assert_eq!(p.add(&p), g.mul(Scalar::from_u64(10)));
    }

    #[test]
    fn zero_scalar_gives_infinity() {
        assert!(AffinePoint::generator().mul(Scalar::ZERO).is_infinity());
        assert!(AffinePoint::Infinity.mul(Scalar::from_u64(7)).is_infinity());
    }

    #[test]
    fn double_mul_matches_separate_ops() {
        let g = AffinePoint::generator();
        let q = g.mul(Scalar::from_u64(77));
        let a = Scalar::from_u64(13);
        let b = Scalar::from_u64(29);
        let combined = AffinePoint::double_mul(a, b, &q);
        assert_eq!(combined, g.mul(a).add(&q.mul(b)));
        // 13 + 29*77 = 2246
        assert_eq!(combined, g.mul(Scalar::from_u64(2246)));
    }

    #[test]
    fn compressed_roundtrip() {
        for k in [1u64, 2, 3, 7, 1000, 0xdeadbeef] {
            let p = AffinePoint::generator().mul(Scalar::from_u64(k));
            let compressed = p.to_compressed();
            assert!(compressed[0] == 0x02 || compressed[0] == 0x03);
            let back = AffinePoint::from_compressed(&compressed).unwrap();
            assert_eq!(back, p, "k = {k}");
        }
    }

    #[test]
    fn compressed_rejects_garbage() {
        assert_eq!(AffinePoint::from_compressed(&[0u8; 33]), None);
        assert_eq!(AffinePoint::from_compressed(&[0x04; 33]), None);
        assert_eq!(AffinePoint::from_compressed(&[0x02; 10]), None);
        // x = p is out of range.
        let mut bad = [0u8; 33];
        bad[0] = 0x02;
        bad[1..].copy_from_slice(&crate::FIELD.m.to_be_bytes());
        assert_eq!(AffinePoint::from_compressed(&bad), None);
    }

    #[test]
    fn x_only_roundtrip_and_even_y() {
        let p = AffinePoint::generator().mul(Scalar::from_u64(12345));
        let (even, _) = p.normalize_even_y();
        let back = AffinePoint::from_x_only(&even.to_x_only()).unwrap();
        assert_eq!(back, even);
        assert!(back.y().is_even());
    }

    #[test]
    fn generator_known_compressed_encoding() {
        let hex: String = AffinePoint::generator()
            .to_compressed()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        assert_eq!(
            hex,
            "0279be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"
        );
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;

        /// Scalar multiplication is a homomorphism: (a+b)G = aG + bG.
        #[test]
        fn mul_distributes() {
            testkit::check(0xC7_0001, testkit::DEFAULT_CASES, |rng| {
                let a = testkit::u64_in(rng, 1..1_000_000);
                let b = testkit::u64_in(rng, 1..1_000_000);
                let g = AffinePoint::generator();
                let left = g.mul(Scalar::from_u64(a) + Scalar::from_u64(b));
                let right = g.mul(Scalar::from_u64(a)).add(&g.mul(Scalar::from_u64(b)));
                assert_eq!(left, right);
            });
        }

        /// All multiples stay on the curve.
        #[test]
        fn multiples_on_curve() {
            testkit::check(0xC7_0002, testkit::DEFAULT_CASES, |rng| {
                let k = testkit::u64_in(rng, 1..u64::MAX);
                let p = AffinePoint::generator().mul(Scalar::from_u64(k));
                assert!(p.is_on_curve());
            });
        }
    }
}

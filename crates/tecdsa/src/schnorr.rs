//! BIP-340 Schnorr signatures over secp256k1.
//!
//! Taproot key spends carry 64-byte Schnorr signatures; the IC exposes a
//! threshold-Schnorr service alongside threshold ECDSA (§I), reproduced in
//! [`crate::protocol`]. This module implements the single-signer algorithm
//! and verification.

use icbtc_bitcoin::hash::tagged_hash;

use crate::{AffinePoint, Scalar};

/// A 64-byte BIP-340 Schnorr signature (`R.x || s`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchnorrSignature {
    /// x coordinate of the nonce point.
    pub r: [u8; 32],
    /// The proof scalar.
    pub s: Scalar,
}

impl SchnorrSignature {
    /// Serializes to the 64-byte wire form used in taproot witnesses.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r);
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses the 64-byte wire form (s is range-checked; r is checked
    /// during verification).
    pub fn from_bytes(bytes: &[u8; 64]) -> Option<SchnorrSignature> {
        let mut r = [0u8; 32];
        let mut s = [0u8; 32];
        r.copy_from_slice(&bytes[..32]);
        s.copy_from_slice(&bytes[32..]);
        Some(SchnorrSignature { r, s: Scalar::from_be_bytes_checked(s)? })
    }
}

/// Computes the BIP-340 challenge `e = H_tag(R.x || P.x || m) mod n`.
pub fn challenge(r_x: &[u8; 32], pubkey_x: &[u8; 32], message: &[u8; 32]) -> Scalar {
    let mut data = Vec::with_capacity(96);
    data.extend_from_slice(r_x);
    data.extend_from_slice(pubkey_x);
    data.extend_from_slice(message);
    Scalar::from_be_bytes(tagged_hash("BIP0340/challenge", &data))
}

/// Signs `message` under `secret` with BIP-340, using `aux` as auxiliary
/// randomness (deterministic for fixed inputs).
///
/// # Panics
///
/// Panics if `secret` is zero.
pub fn sign(secret: Scalar, message: &[u8; 32], aux: &[u8; 32]) -> SchnorrSignature {
    assert!(!secret.is_zero(), "schnorr secret must be non-zero");
    let pubkey = AffinePoint::generator().mul(secret);
    let (pubkey_even, flipped) = pubkey.normalize_even_y();
    let d = if flipped { -secret } else { secret };
    let pubkey_x = pubkey_even.to_x_only();

    // Nonce derivation per the BIP.
    let aux_hash = tagged_hash("BIP0340/aux", aux);
    let mut masked = d.to_be_bytes();
    for (m, a) in masked.iter_mut().zip(aux_hash.iter()) {
        *m ^= a;
    }
    let mut nonce_input = Vec::with_capacity(96);
    nonce_input.extend_from_slice(&masked);
    nonce_input.extend_from_slice(&pubkey_x);
    nonce_input.extend_from_slice(message);
    let mut k = Scalar::from_be_bytes(tagged_hash("BIP0340/nonce", &nonce_input));
    // k = 0 has probability ~2^-256; perturb deterministically if it occurs.
    if k.is_zero() {
        k = Scalar::ONE;
    }
    let r_point = AffinePoint::generator().mul(k);
    let (r_even, r_flipped) = r_point.normalize_even_y();
    let k = if r_flipped { -k } else { k };
    let r_x = r_even.to_x_only();

    let e = challenge(&r_x, &pubkey_x, message);
    SchnorrSignature { r: r_x, s: k + e * d }
}

/// Verifies a BIP-340 signature against an x-only public key.
pub fn verify(pubkey_x: &[u8; 32], message: &[u8; 32], signature: &SchnorrSignature) -> bool {
    let Some(pubkey) = AffinePoint::from_x_only(pubkey_x) else {
        return false;
    };
    let Some(r_field) = crate::FieldElement::from_be_bytes_checked(signature.r) else {
        return false;
    };
    let e = challenge(&signature.r, pubkey_x, message);
    // R = s·G − e·P
    let r_point = AffinePoint::double_mul(signature.s, Scalar::ZERO - e, &pubkey);
    match r_point {
        AffinePoint::Infinity => false,
        AffinePoint::Point { x, y } => y.is_even() && x == r_field,
    }
}

/// Derives the x-only public key for a secret, per BIP-340's even-y
/// convention.
///
/// # Panics
///
/// Panics if `secret` is zero.
pub fn x_only_public_key(secret: Scalar) -> [u8; 32] {
    assert!(!secret.is_zero(), "schnorr secret must be non-zero");
    AffinePoint::generator().mul(secret).normalize_even_y().0.to_x_only()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let secret = Scalar::from_u64(0xdeadbeef);
        let pk = x_only_public_key(secret);
        for msg in [[0u8; 32], [1u8; 32], [0x7f; 32]] {
            let sig = sign(secret, &msg, &[0u8; 32]);
            assert!(verify(&pk, &msg, &sig));
        }
    }

    #[test]
    fn verify_rejects_wrong_message_and_key() {
        let secret = Scalar::from_u64(31337);
        let pk = x_only_public_key(secret);
        let other_pk = x_only_public_key(Scalar::from_u64(31338));
        let msg = [5u8; 32];
        let sig = sign(secret, &msg, &[0u8; 32]);
        assert!(!verify(&pk, &[6u8; 32], &sig));
        assert!(!verify(&other_pk, &msg, &sig));
        let mut tampered = sig;
        tampered.s = tampered.s + Scalar::ONE;
        assert!(!verify(&pk, &msg, &tampered));
        let mut bad_r = sig;
        bad_r.r[0] ^= 1;
        assert!(!verify(&pk, &msg, &bad_r));
    }

    #[test]
    fn deterministic_for_fixed_aux() {
        let secret = Scalar::from_u64(7);
        let msg = [9u8; 32];
        assert_eq!(sign(secret, &msg, &[1u8; 32]), sign(secret, &msg, &[1u8; 32]));
        assert_ne!(sign(secret, &msg, &[1u8; 32]), sign(secret, &msg, &[2u8; 32]));
    }

    #[test]
    fn different_aux_signatures_both_verify() {
        let secret = Scalar::from_u64(424242);
        let pk = x_only_public_key(secret);
        let msg = [3u8; 32];
        for aux in [[0u8; 32], [0xff; 32]] {
            assert!(verify(&pk, &msg, &sign(secret, &msg, &aux)));
        }
    }

    #[test]
    fn wire_roundtrip() {
        let sig = sign(Scalar::from_u64(11), &[2u8; 32], &[0u8; 32]);
        let bytes = sig.to_bytes();
        assert_eq!(SchnorrSignature::from_bytes(&bytes), Some(sig));
        // s = 0 is rejected at parse time.
        let mut zeroed = bytes;
        zeroed[32..].fill(0);
        assert_eq!(SchnorrSignature::from_bytes(&zeroed), None);
    }

    #[test]
    fn odd_y_secret_still_verifies() {
        // Scan a few secrets so both parities of P's y are exercised.
        let mut saw_even = false;
        let mut saw_odd = false;
        for v in 1u64..30 {
            let secret = Scalar::from_u64(v);
            let point = AffinePoint::generator().mul(secret);
            if point.y().is_even() {
                saw_even = true;
            } else {
                saw_odd = true;
            }
            let pk = x_only_public_key(secret);
            let msg = [v as u8; 32];
            assert!(verify(&pk, &msg, &sign(secret, &msg, &[0u8; 32])), "secret {v}");
        }
        assert!(saw_even && saw_odd, "test must cover both parities");
    }

    #[test]
    fn bip340_vector_0() {
        // BIP-340 official test vector #0: secret key 3.
        let secret = Scalar::from_u64(3);
        let pk = x_only_public_key(secret);
        let pk_hex: String = pk.iter().map(|b| format!("{b:02X}")).collect();
        assert_eq!(
            pk_hex,
            "F9308A019258C31049344F85F89D5229B531C845836F99B08601F113BCE036F9"
        );
        let msg = [0u8; 32];
        let aux = [0u8; 32];
        let sig = sign(secret, &msg, &aux);
        let sig_hex: String = sig.to_bytes().iter().map(|b| format!("{b:02X}")).collect();
        assert_eq!(
            sig_hex,
            "E907831F80848D1069A5371B402410364BDF1C5F8307B0084C55F1CE2DCA8215\
             25F66A4A85EA8B71E482A74F382D2CE5EBEEE8FDB2172F477DF4900D310536C0"
        );
        assert!(verify(&pk, &msg, &sig));
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;

        #[test]
        fn roundtrip_arbitrary() {
            testkit::check(0x5B_0001, testkit::DEFAULT_CASES, |rng| {
                let seed = testkit::u64_in(rng, 1..u64::MAX);
                let msg: [u8; 32] = testkit::byte_array(rng);
                let aux: [u8; 32] = testkit::byte_array(rng);
                let secret = Scalar::from_u64(seed);
                let pk = x_only_public_key(secret);
                let sig = sign(secret, &msg, &aux);
                assert!(verify(&pk, &msg, &sig));
            });
        }
    }
}

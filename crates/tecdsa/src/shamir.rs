//! Shamir secret sharing over the secp256k1 scalar field.
//!
//! The threshold signing service (§I of the paper, its reference \[3\]) keeps canister
//! signing keys secret-shared across the subnet's replicas so that any
//! `t` of `n` replicas can sign and fewer than `t` learn nothing. This
//! module provides the polynomial sharing and Lagrange interpolation the
//! protocol layer builds on.

use std::fmt;

use icbtc_sim::SimRng;

use crate::Scalar;

/// A share of a secret: the polynomial's evaluation at index `x` (indices
/// are 1-based; 0 holds the secret itself).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Share {
    /// 1-based share index.
    pub index: u32,
    /// The polynomial's value at this index.
    pub value: Scalar,
}

/// Error from share reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShamirError {
    /// Fewer shares than the reconstruction threshold.
    InsufficientShares {
        /// Shares provided.
        have: usize,
        /// Shares required.
        need: usize,
    },
    /// Two shares carried the same index.
    DuplicateIndex(u32),
    /// A share used the reserved index 0.
    ZeroIndex,
}

impl fmt::Display for ShamirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShamirError::InsufficientShares { have, need } => {
                write!(f, "insufficient shares: have {have}, need {need}")
            }
            ShamirError::DuplicateIndex(i) => write!(f, "duplicate share index {i}"),
            ShamirError::ZeroIndex => write!(f, "share index 0 is reserved for the secret"),
        }
    }
}

impl std::error::Error for ShamirError {}

/// A random polynomial of degree `threshold − 1` with the secret as the
/// constant term.
#[derive(Clone)]
pub struct Polynomial {
    coefficients: Vec<Scalar>,
}

impl Polynomial {
    /// Samples a polynomial hiding `secret` that requires `threshold`
    /// evaluations to reconstruct.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn random(secret: Scalar, threshold: usize, rng: &mut SimRng) -> Polynomial {
        assert!(threshold >= 1, "threshold must be at least 1");
        let mut coefficients = Vec::with_capacity(threshold);
        coefficients.push(secret);
        for _ in 1..threshold {
            coefficients.push(Scalar::random(rng));
        }
        Polynomial { coefficients }
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    pub fn evaluate(&self, x: Scalar) -> Scalar {
        let mut acc = Scalar::ZERO;
        for coefficient in self.coefficients.iter().rev() {
            acc = acc * x + *coefficient;
        }
        acc
    }

    /// Returns the hidden secret (the evaluation at 0).
    pub fn secret(&self) -> Scalar {
        self.coefficients[0]
    }

    /// Produces shares for indices `1..=n`.
    pub fn shares(&self, n: usize) -> Vec<Share> {
        (1..=n as u32)
            .map(|index| Share { index, value: self.evaluate(Scalar::from_u64(index as u64)) })
            .collect()
    }
}

impl fmt::Debug for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polynomial(degree {})", self.coefficients.len().saturating_sub(1))
    }
}

/// Splits `secret` into `n` shares with reconstruction threshold
/// `threshold`.
///
/// # Panics
///
/// Panics if `threshold` is zero or exceeds `n`.
pub fn share_secret(
    secret: Scalar,
    threshold: usize,
    n: usize,
    rng: &mut SimRng,
) -> Vec<Share> {
    assert!(threshold >= 1 && threshold <= n, "need 1 <= threshold <= n");
    Polynomial::random(secret, threshold, rng).shares(n)
}

/// Computes the Lagrange coefficient λ_i(0) for share index `target` over
/// the participating `indices`.
///
/// # Panics
///
/// Panics if `target` is not among `indices`, any index is zero, or
/// indices repeat.
pub fn lagrange_at_zero(indices: &[u32], target: u32) -> Scalar {
    assert!(indices.contains(&target), "target must participate");
    let mut numerator = Scalar::ONE;
    let mut denominator = Scalar::ONE;
    let target_scalar = Scalar::from_u64(target as u64);
    for &j in indices {
        assert!(j != 0, "index 0 is reserved");
        if j == target {
            continue;
        }
        let xj = Scalar::from_u64(j as u64);
        // λ_i(0) = Π_j  x_j / (x_j − x_i)
        numerator = numerator * xj;
        denominator = denominator * (xj - target_scalar);
    }
    assert!(!denominator.is_zero(), "duplicate indices");
    numerator * denominator.invert()
}

/// Reconstructs the secret (the polynomial at 0) from at least
/// `threshold` distinct shares.
///
/// # Errors
///
/// Returns [`ShamirError`] on too few shares, duplicate indices, or a
/// zero index.
pub fn reconstruct(shares: &[Share], threshold: usize) -> Result<Scalar, ShamirError> {
    if shares.len() < threshold {
        return Err(ShamirError::InsufficientShares { have: shares.len(), need: threshold });
    }
    let subset = &shares[..threshold];
    let mut seen = Vec::with_capacity(subset.len());
    for share in subset {
        if share.index == 0 {
            return Err(ShamirError::ZeroIndex);
        }
        if seen.contains(&share.index) {
            return Err(ShamirError::DuplicateIndex(share.index));
        }
        seen.push(share.index);
    }
    let indices: Vec<u32> = subset.iter().map(|s| s.index).collect();
    let mut secret = Scalar::ZERO;
    for share in subset {
        secret = secret + lagrange_at_zero(&indices, share.index) * share.value;
    }
    Ok(secret)
}

#[cfg(test)]
mod tests {
    use super::*;
    fn rng(seed: u64) -> SimRng {
        SimRng::seed_from(seed)
    }

    #[test]
    fn share_and_reconstruct() {
        let mut rng = rng(1);
        let secret = Scalar::from_u64(0xfeedface);
        let shares = share_secret(secret, 3, 7, &mut rng);
        assert_eq!(shares.len(), 7);
        assert_eq!(reconstruct(&shares[..3], 3).unwrap(), secret);
        // Any subset works.
        assert_eq!(reconstruct(&[shares[6], shares[2], shares[4]], 3).unwrap(), secret);
        // Extra shares don't hurt.
        assert_eq!(reconstruct(&shares, 3).unwrap(), secret);
    }

    #[test]
    fn below_threshold_fails() {
        let mut rng = rng(2);
        let shares = share_secret(Scalar::from_u64(5), 4, 9, &mut rng);
        assert_eq!(
            reconstruct(&shares[..3], 4),
            Err(ShamirError::InsufficientShares { have: 3, need: 4 })
        );
    }

    #[test]
    fn duplicate_and_zero_indices_rejected() {
        let mut rng = rng(3);
        let shares = share_secret(Scalar::from_u64(5), 2, 4, &mut rng);
        assert_eq!(
            reconstruct(&[shares[0], shares[0]], 2),
            Err(ShamirError::DuplicateIndex(1))
        );
        let zero = Share { index: 0, value: Scalar::ONE };
        assert_eq!(reconstruct(&[zero, shares[1]], 2), Err(ShamirError::ZeroIndex));
    }

    #[test]
    fn threshold_one_is_plain_copy() {
        let mut rng = rng(4);
        let secret = Scalar::from_u64(77);
        let shares = share_secret(secret, 1, 3, &mut rng);
        for share in &shares {
            assert_eq!(share.value, secret);
        }
    }

    #[test]
    fn wrong_subset_of_smaller_size_gives_wrong_secret() {
        let mut rng = rng(5);
        let secret = Scalar::from_u64(123);
        let shares = share_secret(secret, 3, 5, &mut rng);
        // Interpolating with threshold 2 over a degree-2 polynomial yields
        // garbage (with overwhelming probability), demonstrating hiding.
        let wrong = reconstruct(&shares[..2], 2).unwrap();
        assert_ne!(wrong, secret);
    }

    #[test]
    fn lagrange_coefficients_sum_to_one_on_constant_poly() {
        // For the constant polynomial every share equals the secret, so
        // the coefficients must sum to 1.
        let indices = [1u32, 3, 4, 7];
        let total: Scalar = indices.iter().map(|&i| lagrange_at_zero(&indices, i)).sum();
        assert_eq!(total, Scalar::ONE);
    }

    #[test]
    fn additive_homomorphism() {
        // Shares of a+b are the sums of shares of a and b over the same
        // indices — the property the threshold protocol's key derivation
        // and partial-signature combination rely on.
        let mut rng = rng(6);
        let a = Scalar::from_u64(1000);
        let b = Scalar::from_u64(2345);
        let shares_a = share_secret(a, 3, 5, &mut rng);
        let shares_b = share_secret(b, 3, 5, &mut rng);
        let summed: Vec<Share> = shares_a
            .iter()
            .zip(&shares_b)
            .map(|(sa, sb)| Share { index: sa.index, value: sa.value + sb.value })
            .collect();
        assert_eq!(reconstruct(&summed, 3).unwrap(), a + b);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ShamirError::InsufficientShares { have: 1, need: 2 },
            ShamirError::DuplicateIndex(3),
            ShamirError::ZeroIndex,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    #[should_panic]
    fn threshold_above_n_panics() {
        let mut rng = rng(7);
        let _ = share_secret(Scalar::ONE, 5, 3, &mut rng);
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;
        use icbtc_sim::SimRng;

        #[test]
        fn reconstruct_any_subset() {
            testkit::check(0x54_0001, testkit::DEFAULT_CASES, |rng| {
                let seed = testkit::u64_any(rng);
                let secret = testkit::u64_in(rng, 1..u64::MAX);
                let t = testkit::usize_in(rng, 1..6);
                let extra = testkit::usize_in(rng, 0..4);
                let n = t + extra;
                let mut share_rng = SimRng::seed_from(seed);
                let secret = Scalar::from_u64(secret);
                let mut shares = share_secret(secret, t, n, &mut share_rng);
                // Shuffle deterministically by rotating.
                shares.rotate_left(seed as usize % n);
                assert_eq!(reconstruct(&shares, t).unwrap(), secret);
            });
        }
    }
}

//! Scalars modulo the secp256k1 group order.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use icbtc_bitcoin::U256;
use icbtc_sim::SimRng;

use crate::ORDER;

/// A scalar modulo the secp256k1 group order `n`, always kept reduced.
///
/// Scalars are private keys, nonces, signature components, and the Shamir
/// share values of the threshold protocol.
///
/// # Examples
///
/// ```
/// use icbtc_tecdsa::Scalar;
/// let a = Scalar::from_u64(10);
/// assert_eq!(a * a.invert(), Scalar::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Scalar(U256);

impl Scalar {
    /// The additive identity.
    pub const ZERO: Scalar = Scalar(U256::ZERO);
    /// The multiplicative identity.
    pub const ONE: Scalar = Scalar(U256::ONE);

    /// Creates a scalar from a small integer.
    pub fn from_u64(v: u64) -> Scalar {
        Scalar(U256::from_u64(v))
    }

    /// Creates a scalar from big-endian bytes, reducing mod n.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Scalar {
        Scalar(ORDER.reduce(U256::from_be_bytes(bytes)))
    }

    /// Creates a scalar from big-endian bytes, rejecting zero and values
    /// ≥ n — the strict validation applied to incoming signatures.
    pub fn from_be_bytes_checked(bytes: [u8; 32]) -> Option<Scalar> {
        let v = U256::from_be_bytes(bytes);
        if v.is_zero() || v >= ORDER.m {
            return None;
        }
        Some(Scalar(v))
    }

    /// Draws a uniformly random non-zero scalar.
    pub fn random(rng: &mut SimRng) -> Scalar {
        loop {
            let mut bytes = [0u8; 32];
            rng.fill_bytes(&mut bytes);
            let v = U256::from_be_bytes(bytes);
            if !v.is_zero() && v < ORDER.m {
                return Scalar(v);
            }
        }
    }

    /// Serializes to big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// Returns the raw reduced value.
    pub fn to_u256(self) -> U256 {
        self.0
    }

    /// Returns `true` for zero.
    pub fn is_zero(self) -> bool {
        self.0.is_zero()
    }

    /// Returns `true` if the scalar exceeds `n/2` — the "high-s" test used
    /// for Bitcoin's low-s signature normalization.
    pub fn is_high(self) -> bool {
        self.0 > (ORDER.m >> 1)
    }

    /// Computes the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the scalar is zero.
    pub fn invert(self) -> Scalar {
        Scalar(ORDER.inv(self.0))
    }
}

impl Add for Scalar {
    type Output = Scalar;
    fn add(self, rhs: Scalar) -> Scalar {
        Scalar(ORDER.add(self.0, rhs.0))
    }
}

impl Sub for Scalar {
    type Output = Scalar;
    fn sub(self, rhs: Scalar) -> Scalar {
        Scalar(ORDER.sub(self.0, rhs.0))
    }
}

impl Mul for Scalar {
    type Output = Scalar;
    fn mul(self, rhs: Scalar) -> Scalar {
        Scalar(ORDER.mul(self.0, rhs.0))
    }
}

impl Neg for Scalar {
    type Output = Scalar;
    fn neg(self) -> Scalar {
        Scalar(ORDER.neg(self.0))
    }
}

impl std::iter::Sum for Scalar {
    fn sum<I: Iterator<Item = Scalar>>(iter: I) -> Scalar {
        iter.fold(Scalar::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Scalars are frequently secret; display only a short fingerprint.
        let bytes = self.0.to_be_bytes();
        write!(f, "Scalar(…{:02x}{:02x})", bytes[30], bytes[31])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn seeded_rng(seed: u64) -> SimRng {
        SimRng::seed_from(seed)
    }

    #[test]
    fn arithmetic_identities() {
        let a = Scalar::from_be_bytes([0x33; 32]);
        assert_eq!(a + Scalar::ZERO, a);
        assert_eq!(a * Scalar::ONE, a);
        assert_eq!(a - a, Scalar::ZERO);
        assert_eq!(a + (-a), Scalar::ZERO);
        assert_eq!(a * a.invert(), Scalar::ONE);
    }

    #[test]
    fn checked_parsing() {
        assert_eq!(Scalar::from_be_bytes_checked([0; 32]), None);
        assert_eq!(Scalar::from_be_bytes_checked(ORDER.m.to_be_bytes()), None);
        assert!(Scalar::from_be_bytes_checked([1; 32]).is_some());
        // Unchecked parsing reduces n + 3 to 3.
        let bytes = (ORDER.m + U256::from_u64(3)).to_be_bytes();
        assert_eq!(Scalar::from_be_bytes(bytes), Scalar::from_u64(3));
    }

    #[test]
    fn high_s_detection() {
        let half = Scalar(ORDER.m >> 1);
        assert!(!half.is_high());
        assert!((half + Scalar::ONE).is_high());
        assert!(!Scalar::ONE.is_high());
        // -1 = n - 1 is high.
        assert!((-Scalar::ONE).is_high());
    }

    #[test]
    fn random_scalars_are_distinct_and_reduced() {
        let mut rng = seeded_rng(7);
        let a = Scalar::random(&mut rng);
        let b = Scalar::random(&mut rng);
        assert_ne!(a, b);
        assert!(!a.is_zero());
        assert!(a.to_u256() < ORDER.m);
    }

    #[test]
    fn sum_folds() {
        let total: Scalar = (1..=10u64).map(Scalar::from_u64).sum();
        assert_eq!(total, Scalar::from_u64(55));
    }

    #[test]
    fn debug_reveals_only_fingerprint() {
        let s = Scalar::from_u64(0xabcd);
        let shown = format!("{s:?}");
        assert!(shown.contains("abcd") || shown.contains("cd"));
        assert!(shown.len() < 20, "must not dump the full scalar");
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;
        use icbtc_sim::SimRng;

        fn arb_scalar(rng: &mut SimRng) -> Scalar {
            Scalar::from_be_bytes(testkit::byte_array(rng))
        }

        #[test]
        fn ring_axioms() {
            testkit::check(0x5A_0001, testkit::DEFAULT_CASES, |rng| {
                let a = arb_scalar(rng);
                let b = arb_scalar(rng);
                let c = arb_scalar(rng);
                assert_eq!(a + b, b + a);
                assert_eq!((a * b) * c, a * (b * c));
                assert_eq!(a * (b + c), a * b + a * c);
            });
        }

        #[test]
        fn byte_roundtrip() {
            testkit::check(0x5A_0002, testkit::DEFAULT_CASES, |rng| {
                let a = arb_scalar(rng);
                assert_eq!(Scalar::from_be_bytes(a.to_be_bytes()), a);
            });
        }

        #[test]
        fn neg_is_involution() {
            testkit::check(0x5A_0003, testkit::DEFAULT_CASES, |rng| {
                let a = arb_scalar(rng);
                assert_eq!(-(-a), a);
            });
        }
    }
}

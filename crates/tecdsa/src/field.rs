//! Elements of the secp256k1 base field GF(p).

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use icbtc_bitcoin::U256;

use crate::FIELD;

/// An element of the secp256k1 base field, always kept reduced.
///
/// # Examples
///
/// ```
/// use icbtc_tecdsa::FieldElement;
/// let a = FieldElement::from_u64(3);
/// let b = FieldElement::from_u64(4);
/// assert_eq!(a * a + b * b, FieldElement::from_u64(25));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FieldElement(U256);

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement(U256::ZERO);
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement(U256::ONE);

    /// Creates an element from a small integer.
    pub fn from_u64(v: u64) -> FieldElement {
        FieldElement(U256::from_u64(v))
    }

    /// Creates an element from big-endian bytes, reducing mod p.
    pub fn from_be_bytes(bytes: [u8; 32]) -> FieldElement {
        FieldElement(FIELD.reduce(U256::from_be_bytes(bytes)))
    }

    /// Creates an element from big-endian bytes, rejecting values ≥ p
    /// (the strict check BIP-340 x-only parsing requires).
    pub fn from_be_bytes_checked(bytes: [u8; 32]) -> Option<FieldElement> {
        let v = U256::from_be_bytes(bytes);
        if v >= FIELD.m {
            return None;
        }
        Some(FieldElement(v))
    }

    /// Serializes to big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// Returns the raw reduced value.
    pub fn to_u256(self) -> U256 {
        self.0
    }

    /// Returns `true` for the additive identity.
    pub fn is_zero(self) -> bool {
        self.0.is_zero()
    }

    /// Returns `true` if the canonical representative is even — the parity
    /// convention BIP-340 and compressed point encoding rely on.
    pub fn is_even(self) -> bool {
        !self.0.bit(0)
    }

    /// Squares the element.
    pub fn square(self) -> FieldElement {
        self * self
    }

    /// Computes the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the element is zero.
    pub fn invert(self) -> FieldElement {
        FieldElement(FIELD.inv(self.0))
    }

    /// Computes a square root if one exists. Since `p ≡ 3 (mod 4)` the
    /// candidate is `a^((p+1)/4)`; the result is checked by squaring.
    pub fn sqrt(self) -> Option<FieldElement> {
        // (p + 1) / 4
        let exponent = (FIELD.m + U256::ONE) >> 2;
        let candidate = FieldElement(FIELD.pow(self.0, exponent));
        if candidate.square() == self {
            Some(candidate)
        } else {
            None
        }
    }
}

impl Add for FieldElement {
    type Output = FieldElement;
    fn add(self, rhs: FieldElement) -> FieldElement {
        FieldElement(FIELD.add(self.0, rhs.0))
    }
}

impl Sub for FieldElement {
    type Output = FieldElement;
    fn sub(self, rhs: FieldElement) -> FieldElement {
        FieldElement(FIELD.sub(self.0, rhs.0))
    }
}

impl Mul for FieldElement {
    type Output = FieldElement;
    fn mul(self, rhs: FieldElement) -> FieldElement {
        FieldElement(FIELD.mul(self.0, rhs.0))
    }
}

impl Neg for FieldElement {
    type Output = FieldElement;
    fn neg(self) -> FieldElement {
        FieldElement(FIELD.neg(self.0))
    }
}

impl fmt::Debug for FieldElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fe(0x{:x})", self.0)
    }
}

impl fmt::Display for FieldElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = FieldElement::from_be_bytes([0x5a; 32]);
        assert_eq!(a + FieldElement::ZERO, a);
        assert_eq!(a * FieldElement::ONE, a);
        assert_eq!(a - a, FieldElement::ZERO);
        assert_eq!(a + (-a), FieldElement::ZERO);
        assert_eq!(a * a.invert(), FieldElement::ONE);
    }

    #[test]
    fn from_be_bytes_reduces_but_checked_rejects() {
        // p + 5 still fits in 256 bits since p = 2^256 - 2^32 - 977.
        let bytes = (FIELD.m + U256::from_u64(5)).to_be_bytes();
        assert_eq!(FieldElement::from_be_bytes(bytes), FieldElement::from_u64(5));
        assert_eq!(FieldElement::from_be_bytes_checked(bytes), None);
        assert!(FieldElement::from_be_bytes_checked([0x11; 32]).is_some());
    }

    #[test]
    fn byte_roundtrip() {
        let a = FieldElement::from_be_bytes([0x42; 32]);
        assert_eq!(FieldElement::from_be_bytes(a.to_be_bytes()), a);
    }

    #[test]
    fn parity() {
        assert!(FieldElement::from_u64(4).is_even());
        assert!(!FieldElement::from_u64(7).is_even());
        assert!(FieldElement::ZERO.is_even());
    }

    #[test]
    fn sqrt_of_squares() {
        for v in [2u64, 3, 9, 1_000_003] {
            let a = FieldElement::from_u64(v);
            let root = a.square().sqrt().expect("squares have roots");
            assert!(root == a || root == -a, "root of {v}^2");
        }
    }

    #[test]
    fn sqrt_of_non_residue_is_none() {
        // 7 is the curve's b coefficient; find any non-residue by scanning.
        let mut found_none = false;
        for v in 2u64..40 {
            if FieldElement::from_u64(v).sqrt().is_none() {
                found_none = true;
                break;
            }
        }
        assert!(found_none, "expected a quadratic non-residue below 40");
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;
        use icbtc_sim::SimRng;

        fn arb_fe(rng: &mut SimRng) -> FieldElement {
            FieldElement::from_be_bytes(testkit::byte_array(rng))
        }

        #[test]
        fn field_axioms() {
            testkit::check(0xFE_0001, testkit::DEFAULT_CASES, |rng| {
                let a = arb_fe(rng);
                let b = arb_fe(rng);
                let c = arb_fe(rng);
                assert_eq!(a + b, b + a);
                assert_eq!(a * b, b * a);
                assert_eq!((a + b) + c, a + (b + c));
                assert_eq!(a * (b + c), a * b + a * c);
            });
        }

        #[test]
        fn inverse_property() {
            testkit::check(0xFE_0002, testkit::DEFAULT_CASES, |rng| {
                let a = arb_fe(rng);
                if a.is_zero() {
                    return;
                }
                assert_eq!(a * a.invert(), FieldElement::ONE);
            });
        }

        #[test]
        fn sqrt_squares() {
            testkit::check(0xFE_0003, testkit::DEFAULT_CASES, |rng| {
                let a = arb_fe(rng);
                let sq = a.square();
                let root = sq.sqrt().expect("every square has a root");
                assert!(root == a || root == -a);
            });
        }
    }
}

//! Modular arithmetic over 256-bit moduli of the form `2²⁵⁶ − δ`.
//!
//! Both secp256k1 moduli have this shape (the field prime `p` with
//! δ = 2³² + 977, the group order `n` with a 129-bit δ), which allows
//! reduction of 512-bit products by folding the high half:
//! `hi·2²⁵⁶ ≡ hi·δ (mod m)`. The fold shrinks the high half by a factor of
//! `2²⁵⁶/δ` per iteration, so it terminates in at most three rounds.

use icbtc_bitcoin::U256;

/// A modulus `m = 2²⁵⁶ − δ` with `δ < 2¹³⁰`, supporting fast reduction.
#[derive(Debug, Clone, Copy)]
pub struct Modulus {
    /// The modulus itself.
    pub m: U256,
    /// `2²⁵⁶ − m`.
    pub delta: U256,
}

impl Modulus {
    /// Creates a modulus, checking the `m + δ = 2²⁵⁶` relation.
    ///
    /// # Panics
    ///
    /// Panics if `m + delta != 2²⁵⁶` or `m` is not above `2²⁵⁵` (the fold
    /// bound requires it).
    pub fn new(m: U256, delta: U256) -> Modulus {
        let (sum, carry) = m.overflowing_add(delta);
        assert!(carry && sum.is_zero(), "modulus and delta must sum to 2^256");
        assert!(m.bits() == 256, "modulus must use all 256 bits");
        Modulus { m, delta }
    }

    /// Reduces an arbitrary 256-bit value into `[0, m)`.
    pub fn reduce(&self, value: U256) -> U256 {
        if value >= self.m {
            value.wrapping_sub(self.m)
        } else {
            value
        }
    }

    /// Reduces a 512-bit value `(lo, hi)` into `[0, m)`.
    pub fn reduce_wide(&self, mut lo: U256, mut hi: U256) -> U256 {
        while !hi.is_zero() {
            let (folded_lo, folded_hi) = hi.widening_mul(self.delta);
            let (sum, carry) = lo.overflowing_add(folded_lo);
            lo = sum;
            hi = if carry {
                folded_hi.checked_add(U256::ONE).expect("fold high half is small")
            } else {
                folded_hi
            };
        }
        let mut out = lo;
        while out >= self.m {
            out = out.wrapping_sub(self.m);
        }
        out
    }

    /// Modular addition of values already in `[0, m)`.
    pub fn add(&self, a: U256, b: U256) -> U256 {
        let (sum, carry) = a.overflowing_add(b);
        if carry {
            // sum + 2^256 ≡ sum + delta (mod m)
            self.reduce_wide(sum, U256::ONE)
        } else {
            self.reduce(sum)
        }
    }

    /// Modular subtraction of values already in `[0, m)`.
    pub fn sub(&self, a: U256, b: U256) -> U256 {
        if a >= b {
            a.wrapping_sub(b)
        } else {
            a.checked_add(self.m.wrapping_sub(b)).expect("a < b <= m so no overflow")
        }
    }

    /// Modular negation of a value already in `[0, m)`.
    pub fn neg(&self, a: U256) -> U256 {
        if a.is_zero() {
            a
        } else {
            self.m.wrapping_sub(a)
        }
    }

    /// Modular multiplication.
    pub fn mul(&self, a: U256, b: U256) -> U256 {
        let (lo, hi) = a.widening_mul(b);
        self.reduce_wide(lo, hi)
    }

    /// Modular exponentiation by square-and-multiply.
    pub fn pow(&self, base: U256, exponent: U256) -> U256 {
        let mut result = U256::ONE;
        let mut acc = self.reduce(base);
        for i in 0..exponent.bits() as usize {
            if exponent.bit(i) {
                result = self.mul(result, acc);
            }
            acc = self.mul(acc, acc);
        }
        result
    }

    /// Modular inverse via Fermat's little theorem (`m` must be prime).
    ///
    /// # Panics
    ///
    /// Panics if `a` is zero.
    pub fn inv(&self, a: U256) -> U256 {
        assert!(!self.reduce(a).is_zero(), "zero has no modular inverse");
        self.pow(a, self.m.wrapping_sub(U256::from_u64(2)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FIELD, ORDER};

    #[test]
    fn construction_validates() {
        // Both secp256k1 moduli construct fine (done in lazy statics).
        assert_eq!(FIELD.m.bits(), 256);
        assert_eq!(ORDER.m.bits(), 256);
    }

    #[test]
    #[should_panic]
    fn bad_delta_panics() {
        let _ = Modulus::new(U256::MAX, U256::MAX);
    }

    #[test]
    fn add_sub_neg() {
        let m = *FIELD;
        let a = m.reduce(U256::from_be_bytes([0xab; 32]));
        let b = m.reduce(U256::from_be_bytes([0x17; 32]));
        assert_eq!(m.sub(m.add(a, b), b), a);
        assert_eq!(m.add(a, m.neg(a)), U256::ZERO);
        assert_eq!(m.neg(U256::ZERO), U256::ZERO);
        // Wrap-around addition stays reduced.
        let near = m.m.wrapping_sub(U256::ONE);
        assert_eq!(m.add(near, U256::from_u64(2)), U256::ONE);
    }

    #[test]
    fn mul_matches_small_numbers() {
        let m = *ORDER;
        assert_eq!(m.mul(U256::from_u64(6), U256::from_u64(7)), U256::from_u64(42));
        assert_eq!(m.mul(U256::ZERO, U256::MAX), U256::ZERO);
    }

    #[test]
    fn fermat_inverse() {
        for m in [*FIELD, *ORDER] {
            for v in [2u64, 3, 65537, 0xdeadbeef] {
                let a = U256::from_u64(v);
                let inv = m.inv(a);
                assert_eq!(m.mul(a, inv), U256::ONE, "inverse of {v}");
            }
            // Inverse of m-1 (= -1) is itself.
            let minus_one = m.m.wrapping_sub(U256::ONE);
            assert_eq!(m.inv(minus_one), minus_one);
        }
    }

    #[test]
    #[should_panic]
    fn inverse_of_zero_panics() {
        let _ = FIELD.inv(U256::ZERO);
    }

    #[test]
    fn pow_edge_cases() {
        let m = *FIELD;
        assert_eq!(m.pow(U256::from_u64(5), U256::ZERO), U256::ONE);
        assert_eq!(m.pow(U256::from_u64(5), U256::ONE), U256::from_u64(5));
        assert_eq!(m.pow(U256::from_u64(2), U256::from_u64(10)), U256::from_u64(1024));
        // Fermat: a^(m-1) = 1.
        assert_eq!(m.pow(U256::from_u64(7), m.m.wrapping_sub(U256::ONE)), U256::ONE);
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;
        use icbtc_sim::SimRng;

        fn arb_u256(rng: &mut SimRng) -> U256 {
            U256::from_limbs(testkit::limbs4(rng))
        }

        #[test]
        fn mul_commutes_and_reduces() {
            testkit::check(0x30_0001, testkit::DEFAULT_CASES, |rng| {
                let a = arb_u256(rng);
                let b = arb_u256(rng);
                let m = *FIELD;
                let ab = m.mul(a, b);
                assert_eq!(ab, m.mul(b, a));
                assert!(ab < m.m);
            });
        }

        #[test]
        fn distributive() {
            testkit::check(0x30_0002, testkit::DEFAULT_CASES, |rng| {
                let a = arb_u256(rng);
                let b = arb_u256(rng);
                let c = arb_u256(rng);
                let m = *ORDER;
                let left = m.mul(m.reduce_wide(a, U256::ZERO), m.add(m.reduce(b), m.reduce(c)));
                let right = m.add(m.mul(a, b), m.mul(a, c));
                assert_eq!(left, right);
            });
        }

        #[test]
        fn inverse_roundtrip() {
            testkit::check(0x30_0003, testkit::DEFAULT_CASES, |rng| {
                let m = *ORDER;
                let a = m.reduce(arb_u256(rng));
                if a.is_zero() {
                    return;
                }
                assert_eq!(m.mul(a, m.inv(a)), U256::ONE);
            });
        }
    }
}

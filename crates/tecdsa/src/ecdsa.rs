//! ECDSA over secp256k1 with RFC-6979 deterministic nonces.
//!
//! These are exactly the signatures Bitcoin verifies for P2PKH/P2WPKH
//! spends: low-s normalized, DER-encoded. The threshold protocol in
//! [`crate::protocol`] produces signatures that verify under
//! [`PublicKey::verify`] below.

use std::fmt;

use icbtc_bitcoin::hash::hmac_sha256;
use icbtc_sim::SimRng;

use crate::{AffinePoint, Scalar};

/// An ECDSA private key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PrivateKey(Scalar);

impl PrivateKey {
    /// Wraps a non-zero scalar as a private key.
    ///
    /// # Panics
    ///
    /// Panics if the scalar is zero.
    pub fn from_scalar(secret: Scalar) -> PrivateKey {
        assert!(!secret.is_zero(), "private key must be non-zero");
        PrivateKey(secret)
    }

    /// Draws a random private key.
    pub fn random(rng: &mut SimRng) -> PrivateKey {
        PrivateKey(Scalar::random(rng))
    }

    /// Returns the underlying scalar.
    pub fn secret(&self) -> Scalar {
        self.0
    }

    /// Returns the corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(AffinePoint::generator().mul(self.0))
    }

    /// Signs a 32-byte digest with an RFC-6979 deterministic nonce and
    /// low-s normalization.
    pub fn sign(&self, digest: &[u8; 32]) -> Signature {
        let z = Scalar::from_be_bytes(*digest);
        let mut extra: u32 = 0;
        loop {
            let k = rfc6979_nonce(&self.0, digest, extra);
            if let Some(sig) = sign_with_nonce(self.0, z, k) {
                return sig;
            }
            extra += 1;
        }
    }
}

impl fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PrivateKey(…)")
    }
}

/// Computes an ECDSA signature for digest scalar `z` with nonce `k`,
/// returning `None` if either component degenerates to zero (retry with a
/// fresh nonce).
pub fn sign_with_nonce(secret: Scalar, z: Scalar, k: Scalar) -> Option<Signature> {
    if k.is_zero() {
        return None;
    }
    let point = AffinePoint::generator().mul(k);
    if point.is_infinity() {
        return None;
    }
    let r = Scalar::from_be_bytes(point.x().to_be_bytes());
    if r.is_zero() {
        return None;
    }
    let s = k.invert() * (z + r * secret);
    if s.is_zero() {
        return None;
    }
    Some(Signature { r, s }.normalize_s())
}

/// RFC-6979 deterministic nonce derivation (HMAC-DRBG instantiation), with
/// an extra counter for the rare retry.
fn rfc6979_nonce(secret: &Scalar, digest: &[u8; 32], extra: u32) -> Scalar {
    let x = secret.to_be_bytes();
    let mut v = [0x01u8; 32];
    let mut k = [0x00u8; 32];

    let mut seed = Vec::with_capacity(97);
    seed.extend_from_slice(&v);
    seed.push(0x00);
    seed.extend_from_slice(&x);
    seed.extend_from_slice(digest);
    if extra > 0 {
        seed.extend_from_slice(&extra.to_be_bytes());
    }
    k = hmac_sha256(&k, &seed);
    v = hmac_sha256(&k, &v);

    let mut seed = Vec::with_capacity(97);
    seed.extend_from_slice(&v);
    seed.push(0x01);
    seed.extend_from_slice(&x);
    seed.extend_from_slice(digest);
    if extra > 0 {
        seed.extend_from_slice(&extra.to_be_bytes());
    }
    k = hmac_sha256(&k, &seed);
    v = hmac_sha256(&k, &v);

    loop {
        v = hmac_sha256(&k, &v);
        if let Some(candidate) = Scalar::from_be_bytes_checked(v) {
            return candidate;
        }
        let mut retry = Vec::with_capacity(33);
        retry.extend_from_slice(&v);
        retry.push(0x00);
        k = hmac_sha256(&k, &retry);
        v = hmac_sha256(&k, &v);
    }
}

/// An ECDSA public key.
///
/// # Examples
///
/// ```
/// use icbtc_tecdsa::{ecdsa::PrivateKey, Scalar};
/// let sk = PrivateKey::from_scalar(Scalar::from_u64(99));
/// let pk = sk.public_key();
/// let sig = sk.sign(&[5u8; 32]);
/// assert!(pk.verify(&[5u8; 32], &sig));
/// assert!(!pk.verify(&[6u8; 32], &sig));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PublicKey(pub AffinePoint);

impl PublicKey {
    /// Parses a 33-byte compressed key.
    pub fn from_compressed(bytes: &[u8]) -> Option<PublicKey> {
        AffinePoint::from_compressed(bytes).map(PublicKey)
    }

    /// Serializes as a 33-byte compressed key.
    pub fn to_compressed(&self) -> [u8; 33] {
        self.0.to_compressed()
    }

    /// Returns Bitcoin's HASH160 of the compressed key — the P2WPKH /
    /// P2PKH address payload.
    pub fn pubkey_hash(&self) -> [u8; 20] {
        icbtc_bitcoin::hash::hash160(&self.to_compressed())
    }

    /// Verifies a signature over a 32-byte digest.
    pub fn verify(&self, digest: &[u8; 32], signature: &Signature) -> bool {
        if signature.r.is_zero() || signature.s.is_zero() || self.0.is_infinity() {
            return false;
        }
        let z = Scalar::from_be_bytes(*digest);
        let s_inv = signature.s.invert();
        let u1 = z * s_inv;
        let u2 = signature.r * s_inv;
        let point = AffinePoint::double_mul(u1, u2, &self.0);
        if point.is_infinity() {
            return false;
        }
        Scalar::from_be_bytes(point.x().to_be_bytes()) == signature.r
    }
}

/// An ECDSA signature `(r, s)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Signature {
    /// The x coordinate of the nonce point, mod n.
    pub r: Scalar,
    /// The proof scalar.
    pub s: Scalar,
}

impl Signature {
    /// Returns the signature with `s` flipped to the low half if needed —
    /// Bitcoin's BIP-62 low-s rule. Both forms verify; only the low form is
    /// standard.
    pub fn normalize_s(self) -> Signature {
        if self.s.is_high() {
            Signature { r: self.r, s: -self.s }
        } else {
            self
        }
    }

    /// Serializes as a 64-byte compact form (`r || s`).
    pub fn to_compact(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses the 64-byte compact form, rejecting zero or overflowing
    /// components.
    pub fn from_compact(bytes: &[u8; 64]) -> Option<Signature> {
        let mut r = [0u8; 32];
        let mut s = [0u8; 32];
        r.copy_from_slice(&bytes[..32]);
        s.copy_from_slice(&bytes[32..]);
        Some(Signature {
            r: Scalar::from_be_bytes_checked(r)?,
            s: Scalar::from_be_bytes_checked(s)?,
        })
    }

    /// Serializes in DER, as carried in Bitcoin script signatures.
    pub fn to_der(&self) -> Vec<u8> {
        fn der_integer(bytes: &[u8; 32], out: &mut Vec<u8>) {
            let start = bytes.iter().position(|&b| b != 0).unwrap_or(31);
            let mut body: Vec<u8> = bytes[start..].to_vec();
            if body[0] & 0x80 != 0 {
                body.insert(0, 0x00);
            }
            out.push(0x02);
            out.push(body.len() as u8);
            out.extend_from_slice(&body);
        }
        let mut content = Vec::with_capacity(72);
        der_integer(&self.r.to_be_bytes(), &mut content);
        der_integer(&self.s.to_be_bytes(), &mut content);
        let mut out = Vec::with_capacity(content.len() + 2);
        out.push(0x30);
        out.push(content.len() as u8);
        out.extend_from_slice(&content);
        out
    }

    /// Parses a DER signature (strict: minimal integer encodings).
    pub fn from_der(bytes: &[u8]) -> Option<Signature> {
        fn parse_integer(bytes: &[u8]) -> Option<(Scalar, &[u8])> {
            if bytes.len() < 2 || bytes[0] != 0x02 {
                return None;
            }
            let len = bytes[1] as usize;
            if len == 0 || len > 33 || bytes.len() < 2 + len {
                return None;
            }
            let body = &bytes[2..2 + len];
            // Reject non-minimal encodings.
            if body[0] == 0x00 && (body.len() == 1 || body[1] & 0x80 == 0) {
                return None;
            }
            if body[0] & 0x80 != 0 {
                return None; // negative
            }
            let body = if body[0] == 0x00 { &body[1..] } else { body };
            if body.len() > 32 {
                return None;
            }
            let mut padded = [0u8; 32];
            padded[32 - body.len()..].copy_from_slice(body);
            Some((Scalar::from_be_bytes_checked(padded)?, &bytes[2 + len..]))
        }
        if bytes.len() < 6 || bytes[0] != 0x30 || bytes[1] as usize != bytes.len() - 2 {
            return None;
        }
        let (r, rest) = parse_integer(&bytes[2..])?;
        let (s, rest) = parse_integer(rest)?;
        if !rest.is_empty() {
            return None;
        }
        Some(Signature { r, s })
    }

    /// Serializes DER plus the trailing `SIGHASH_ALL` byte, the exact form
    /// carried in P2WPKH witnesses.
    pub fn to_der_with_sighash_all(&self) -> Vec<u8> {
        let mut out = self.to_der();
        out.push(0x01);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    
    fn keypair(seed: u64) -> (PrivateKey, PublicKey) {
        let sk = PrivateKey::from_scalar(Scalar::from_u64(seed));
        let pk = sk.public_key();
        (sk, pk)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (sk, pk) = keypair(123456789);
        for digest in [[0u8; 32], [0xff; 32], [0x5a; 32]] {
            let sig = sk.sign(&digest);
            assert!(pk.verify(&digest, &sig));
        }
    }

    #[test]
    fn verification_rejects_wrong_inputs() {
        let (sk, pk) = keypair(42);
        let (_, other_pk) = keypair(43);
        let digest = [9u8; 32];
        let sig = sk.sign(&digest);
        assert!(!pk.verify(&[10u8; 32], &sig));
        assert!(!other_pk.verify(&digest, &sig));
        let forged = Signature { r: sig.r, s: sig.s + Scalar::ONE };
        assert!(!pk.verify(&digest, &forged));
    }

    #[test]
    fn signing_is_deterministic() {
        let (sk, _) = keypair(7);
        let digest = [3u8; 32];
        assert_eq!(sk.sign(&digest), sk.sign(&digest));
        assert_ne!(sk.sign(&digest), sk.sign(&[4u8; 32]));
    }

    #[test]
    fn signatures_are_low_s() {
        let (sk, _) = keypair(99);
        for i in 0..8u8 {
            let sig = sk.sign(&[i; 32]);
            assert!(!sig.s.is_high());
        }
    }

    #[test]
    fn high_s_form_also_verifies_but_normalizes() {
        let (sk, pk) = keypair(55);
        let digest = [1u8; 32];
        let sig = sk.sign(&digest);
        let high = Signature { r: sig.r, s: -sig.s };
        assert!(pk.verify(&digest, &high), "ECDSA accepts both s forms");
        assert_eq!(high.normalize_s(), sig);
    }

    #[test]
    fn der_roundtrip() {
        let (sk, _) = keypair(1234);
        for i in 0..16u8 {
            let sig = sk.sign(&[i; 32]);
            let der = sig.to_der();
            assert_eq!(der[0], 0x30);
            assert!(der.len() <= 72);
            assert_eq!(Signature::from_der(&der), Some(sig), "digest byte {i}");
        }
    }

    #[test]
    fn der_rejects_malformed() {
        let (sk, _) = keypair(77);
        let der = sk.sign(&[0u8; 32]).to_der();
        assert_eq!(Signature::from_der(&[]), None);
        assert_eq!(Signature::from_der(&der[1..]), None);
        let mut bad_tag = der.clone();
        bad_tag[0] = 0x31;
        assert_eq!(Signature::from_der(&bad_tag), None);
        let mut trailing = der.clone();
        trailing.push(0x00);
        assert_eq!(Signature::from_der(&trailing), None);
        let mut bad_len = der.clone();
        bad_len[1] ^= 1;
        assert_eq!(Signature::from_der(&bad_len), None);
    }

    #[test]
    fn der_with_sighash_byte() {
        let (sk, _) = keypair(88);
        let bytes = sk.sign(&[2u8; 32]).to_der_with_sighash_all();
        assert_eq!(*bytes.last().unwrap(), 0x01);
        assert!(Signature::from_der(&bytes[..bytes.len() - 1]).is_some());
    }

    #[test]
    fn compact_roundtrip() {
        let (sk, _) = keypair(31337);
        let sig = sk.sign(&[8u8; 32]);
        let compact = sig.to_compact();
        assert_eq!(Signature::from_compact(&compact), Some(sig));
        assert_eq!(Signature::from_compact(&[0u8; 64]), None);
    }

    #[test]
    fn random_keys_work() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..4 {
            let sk = PrivateKey::random(&mut rng);
            let pk = sk.public_key();
            let digest = [0xaau8; 32];
            assert!(pk.verify(&digest, &sk.sign(&digest)));
        }
    }

    #[test]
    fn pubkey_compressed_roundtrip_and_hash() {
        let (_, pk) = keypair(1);
        let compressed = pk.to_compressed();
        assert_eq!(PublicKey::from_compressed(&compressed), Some(pk));
        // Private key 1's pubkey hash is the well-known value.
        let hex: String = pk.pubkey_hash().iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, "751e76e8199196d454941c45d1b3a323f1433bd6");
    }

    #[test]
    #[should_panic]
    fn zero_private_key_panics() {
        let _ = PrivateKey::from_scalar(Scalar::ZERO);
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;

        #[test]
        fn sign_verify_arbitrary() {
            testkit::check(0xEC_0001, testkit::DEFAULT_CASES, |rng| {
                let seed = testkit::u64_in(rng, 1..u64::MAX);
                let digest: [u8; 32] = testkit::byte_array(rng);
                let sk = PrivateKey::from_scalar(Scalar::from_u64(seed));
                let sig = sk.sign(&digest);
                assert!(sk.public_key().verify(&digest, &sig));
                assert_eq!(Signature::from_der(&sig.to_der()), Some(sig));
            });
        }
    }
}

//! From-scratch secp256k1 with threshold ECDSA and Schnorr signing.
//!
//! The paper's architecture (§I, §III) relies on the Internet Computer's
//! threshold-ECDSA (reference \[3\] of the paper) and threshold-Schnorr services: canisters hold
//! Bitcoin under keys whose private material is secret-shared across the
//! subnet's replicas, and signatures are produced jointly. This crate
//! provides that substrate:
//!
//! * [`FieldElement`] / [`Scalar`] — arithmetic modulo the secp256k1 field
//!   prime and group order, built on fast `2²⁵⁶ − δ` folding ([`modular`]).
//! * [`AffinePoint`] / [`curve`] — the secp256k1 group law and scalar
//!   multiplication.
//! * [`ecdsa`] — RFC-6979 deterministic ECDSA with DER encoding, exactly
//!   the signatures Bitcoin's P2WPKH inputs carry.
//! * [`schnorr`] — BIP-340 Schnorr signatures for taproot key spends.
//! * [`shamir`] — Shamir secret sharing over the scalar field.
//! * [`protocol`] — the t-of-n signing service: dealer-assisted key
//!   generation, additive key derivation for canisters, and signing
//!   sessions that tolerate up to `n − t` missing shares. The trusted
//!   dealer stands in for the interactive DKG (see DESIGN.md §1); the
//!   produced signatures are real and verify under the standard algorithms.
//!
//! # Examples
//!
//! ```
//! use icbtc_tecdsa::{ecdsa, Scalar};
//!
//! let sk = ecdsa::PrivateKey::from_scalar(Scalar::from_u64(424242));
//! let pk = sk.public_key();
//! let digest = [7u8; 32];
//! let sig = sk.sign(&digest);
//! assert!(pk.verify(&digest, &sig));
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

use std::sync::LazyLock;

use icbtc_bitcoin::U256;

pub mod curve;
pub mod ecdsa;
mod field;
pub mod modular;
pub mod protocol;
mod scalar;
pub mod schnorr;
pub mod shamir;

pub use curve::AffinePoint;
pub use field::FieldElement;
pub use scalar::Scalar;

/// The secp256k1 field prime `p = 2²⁵⁶ − 2³² − 977`.
pub static FIELD: LazyLock<modular::Modulus> = LazyLock::new(|| {
    let delta = U256::from_u64((1u64 << 32) + 977);
    modular::Modulus::new(U256::ZERO.wrapping_sub(delta), delta)
});

/// The secp256k1 group order `n`.
pub static ORDER: LazyLock<modular::Modulus> = LazyLock::new(|| {
    let delta = U256::from_limbs([0x402D_A173_2FC9_BEBF, 0x4551_2319_50B7_5FC4, 1, 0]);
    modular::Modulus::new(U256::ZERO.wrapping_sub(delta), delta)
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moduli_match_published_constants() {
        assert_eq!(
            format!("{:x}", FIELD.m),
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"
        );
        assert_eq!(
            format!("{:x}", ORDER.m),
            "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"
        );
    }
}

//! The t-of-n threshold signing service.
//!
//! Models the Internet Computer's threshold-ECDSA (reference \[3\] of the paper) and threshold-Schnorr
//! services at the level canisters observe them (§I of the paper): a subnet
//! holds a master key secret-shared across its `n` replicas; any `t`
//! replicas jointly produce a standard signature under a key derived for a
//! specific canister (and derivation path), and fewer than `t` shares
//! reveal nothing.
//!
//! Per DESIGN.md §1, a *trusted dealer* (the simulation harness) plays the
//! role of the interactive DKG and per-signature presignature protocol:
//! it deals fresh Shamir sharings of the nonce material for every
//! signature. Everything downstream — share arithmetic, Lagrange
//! combination, abort on missing shares, detection and exclusion of
//! corrupted shares, and the final signatures themselves — is real.

use std::fmt;

use icbtc_bitcoin::hash::hmac_sha256;
use icbtc_sim::SimRng;

use crate::ecdsa::{PublicKey, Signature};
use crate::schnorr::{challenge, SchnorrSignature};
use crate::shamir::{lagrange_at_zero, share_secret, ShamirError, Share};
use crate::{AffinePoint, Scalar};

/// A derivation path, as passed by canisters to the management canister's
/// `sign_with_ecdsa` / `schnorr` endpoints.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct DerivationPath(pub Vec<Vec<u8>>);

impl DerivationPath {
    /// The empty path (the canister's root key).
    pub fn root() -> DerivationPath {
        DerivationPath(Vec::new())
    }

    /// Builds a path from labelled components.
    pub fn new<I, T>(components: I) -> DerivationPath
    where
        I: IntoIterator<Item = T>,
        T: Into<Vec<u8>>,
    {
        DerivationPath(components.into_iter().map(Into::into).collect())
    }
}

/// Error from threshold signing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThresholdError {
    /// Share bookkeeping failed.
    Shamir(ShamirError),
    /// The combined signature did not verify and no valid subset exists
    /// among the submitted shares.
    CorruptShares,
}

impl fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThresholdError::Shamir(e) => write!(f, "share error: {e}"),
            ThresholdError::CorruptShares => {
                write!(f, "no valid signature from the submitted shares")
            }
        }
    }
}

impl std::error::Error for ThresholdError {}

impl From<ShamirError> for ThresholdError {
    fn from(e: ShamirError) -> Self {
        ThresholdError::Shamir(e)
    }
}

/// A subnet's threshold key: `n` replica shares with signing threshold
/// `t`.
///
/// # Examples
///
/// ```
/// use icbtc_tecdsa::protocol::{DerivationPath, ThresholdKey};
/// use icbtc_sim::SimRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = SimRng::seed_from(7);
/// let key = ThresholdKey::generate(13, 9, &mut rng);
/// let digest = [1u8; 32];
/// let mut session = key.open_ecdsa(&DerivationPath::root(), digest, &mut rng);
/// let partials: Vec<_> = (1..=9).map(|i| session.partial_signature(i)).collect();
/// let sig = session.combine(&partials)?;
/// assert!(key.derived_public_key(&DerivationPath::root()).verify(&digest, &sig));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct ThresholdKey {
    n: usize,
    threshold: usize,
    master_secret: Scalar,
    shares: Vec<Share>,
    public_key: PublicKey,
}

impl ThresholdKey {
    /// Generates a fresh key shared across `n` replicas with signing
    /// threshold `threshold` (dealer-assisted; see module docs).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= threshold <= n`.
    pub fn generate(n: usize, threshold: usize, rng: &mut SimRng) -> ThresholdKey {
        let master_secret = Scalar::random(rng);
        let shares = share_secret(master_secret, threshold, n, rng);
        let public_key = PublicKey(AffinePoint::generator().mul(master_secret));
        ThresholdKey { n, threshold, master_secret, shares, public_key }
    }

    /// Number of replicas holding shares.
    pub fn replicas(&self) -> usize {
        self.n
    }

    /// Minimum shares required to sign.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The master (root) public key.
    pub fn public_key(&self) -> PublicKey {
        self.public_key
    }

    /// Computes the additive tweak for a derivation path, bound to the
    /// master public key (a simplified, non-hardened BIP-32 analogue).
    /// The empty path is the identity derivation.
    fn tweak(&self, path: &DerivationPath) -> Scalar {
        if path.0.is_empty() {
            return Scalar::ZERO;
        }
        let mut data = self.public_key.to_compressed().to_vec();
        for component in &path.0 {
            data.extend_from_slice(&(component.len() as u64).to_be_bytes());
            data.extend_from_slice(component);
        }
        Scalar::from_be_bytes(hmac_sha256(b"icbtc-key-derivation", &data))
    }

    /// Returns the public key derived for `path`; any third party knowing
    /// the master public key can compute this without contacting the
    /// subnet.
    pub fn derived_public_key(&self, path: &DerivationPath) -> PublicKey {
        let tweak_point = AffinePoint::generator().mul(self.tweak(path));
        PublicKey(self.public_key.0.add(&tweak_point))
    }

    /// The derived secret (dealer-side; used to deal signing sessions).
    fn derived_secret(&self, path: &DerivationPath) -> Scalar {
        self.master_secret + self.tweak(path)
    }

    /// Replica `index`'s share of the derived key (additive tweaks shift
    /// every share equally).
    fn derived_share(&self, path: &DerivationPath, index: u32) -> Scalar {
        self.shares[(index - 1) as usize].value + self.tweak(path)
    }

    /// Opens an ECDSA signing session for `digest` under the key derived
    /// at `path`. The dealer phase picks the nonce and deals the
    /// per-signature sharings; replicas then contribute partial signatures.
    pub fn open_ecdsa(
        &self,
        path: &DerivationPath,
        digest: [u8; 32],
        rng: &mut SimRng,
    ) -> EcdsaSession {
        let x = self.derived_secret(path);
        loop {
            let k = Scalar::random(rng);
            let point = AffinePoint::generator().mul(k);
            let r = Scalar::from_be_bytes(point.x().to_be_bytes());
            if r.is_zero() {
                continue;
            }
            let k_inv = k.invert();
            // Fresh sharings of k⁻¹ and k⁻¹·x: the dealer knows both
            // values, so each is an independent degree-(t−1) sharing and
            // partial signatures interpolate at the same degree.
            let k_inv_shares = share_secret(k_inv, self.threshold, self.n, rng);
            let k_inv_x_shares = share_secret(k_inv * x, self.threshold, self.n, rng);
            return EcdsaSession {
                threshold: self.threshold,
                digest_scalar: Scalar::from_be_bytes(digest),
                digest,
                r,
                k_inv_shares,
                k_inv_x_shares,
                public_key: self.derived_public_key(path),
            };
        }
    }

    /// Opens a BIP-340 Schnorr signing session for `message` under the
    /// key derived at `path`.
    pub fn open_schnorr(
        &self,
        path: &DerivationPath,
        message: [u8; 32],
        rng: &mut SimRng,
    ) -> SchnorrSession {
        let secret = self.derived_secret(path);
        let (pub_even, key_flipped) = AffinePoint::generator().mul(secret).normalize_even_y();
        let pubkey_x = pub_even.to_x_only();
        let k0 = Scalar::random(rng);
        let (r_even, nonce_flipped) = AffinePoint::generator().mul(k0).normalize_even_y();
        let k = if nonce_flipped { -k0 } else { k0 };
        let r_x = r_even.to_x_only();
        let e = challenge(&r_x, &pubkey_x, &message);
        let nonce_shares = share_secret(k, self.threshold, self.n, rng);
        SchnorrSession {
            threshold: self.threshold,
            message,
            pubkey_x,
            r_x,
            e,
            key_flipped,
            nonce_shares,
            key: self.clone(),
            path: path.clone(),
        }
    }
}

impl fmt::Debug for ThresholdKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThresholdKey")
            .field("n", &self.n)
            .field("threshold", &self.threshold)
            .field("public_key", &self.public_key)
            .finish()
    }
}

/// A replica's contribution to a threshold signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartialSignature {
    /// 1-based replica index.
    pub index: u32,
    /// The replica's share of `s`.
    pub value: Scalar,
}

/// An in-progress threshold-ECDSA signature.
pub struct EcdsaSession {
    threshold: usize,
    digest_scalar: Scalar,
    digest: [u8; 32],
    r: Scalar,
    k_inv_shares: Vec<Share>,
    k_inv_x_shares: Vec<Share>,
    public_key: PublicKey,
}

impl EcdsaSession {
    /// Computes replica `index`'s partial signature
    /// `s_i = (k⁻¹)_i·z + r·(k⁻¹x)_i`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn partial_signature(&self, index: u32) -> PartialSignature {
        let i = (index - 1) as usize;
        let value = self.k_inv_shares[i].value * self.digest_scalar
            + self.r * self.k_inv_x_shares[i].value;
        PartialSignature { index, value }
    }

    /// The digest being signed.
    pub fn digest(&self) -> [u8; 32] {
        self.digest
    }

    /// Combines partial signatures into a full, low-s-normalized
    /// signature, verifying the result. If verification fails and more
    /// than `threshold` shares were submitted, corrupted shares are
    /// identified by exclusion.
    ///
    /// # Errors
    ///
    /// Returns [`ThresholdError`] on too few shares or when no valid
    /// subset exists.
    pub fn combine(&self, partials: &[PartialSignature]) -> Result<Signature, ThresholdError> {
        combine_generic(partials, self.threshold, |s| {
            let candidate = Signature { r: self.r, s }.normalize_s();
            self.public_key.verify(&self.digest, &candidate).then_some(candidate)
        })
    }
}

impl fmt::Debug for EcdsaSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EcdsaSession")
            .field("threshold", &self.threshold)
            .field("r", &self.r)
            .finish()
    }
}

/// An in-progress threshold-Schnorr signature.
pub struct SchnorrSession {
    threshold: usize,
    message: [u8; 32],
    pubkey_x: [u8; 32],
    r_x: [u8; 32],
    e: Scalar,
    key_flipped: bool,
    nonce_shares: Vec<Share>,
    key: ThresholdKey,
    path: DerivationPath,
}

impl SchnorrSession {
    /// Computes replica `index`'s partial signature `s_i = k_i + e·d'_i`,
    /// where `d'` is the even-y-normalized derived key.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn partial_signature(&self, index: u32) -> PartialSignature {
        let key_share = self.key.derived_share(&self.path, index);
        let d_share = if self.key_flipped { -key_share } else { key_share };
        let value = self.nonce_shares[(index - 1) as usize].value + self.e * d_share;
        PartialSignature { index, value }
    }

    /// The x-only public key the signature verifies under.
    pub fn public_key_x(&self) -> [u8; 32] {
        self.pubkey_x
    }

    /// Combines partial signatures into a full BIP-340 signature,
    /// verifying the result (with corrupted-share exclusion as in
    /// [`EcdsaSession::combine`]).
    ///
    /// # Errors
    ///
    /// Returns [`ThresholdError`] on too few shares or when no valid
    /// subset exists.
    pub fn combine(
        &self,
        partials: &[PartialSignature],
    ) -> Result<SchnorrSignature, ThresholdError> {
        combine_generic(partials, self.threshold, |s| {
            let candidate = SchnorrSignature { r: self.r_x, s };
            crate::schnorr::verify(&self.pubkey_x, &self.message, &candidate)
                .then_some(candidate)
        })
    }
}

impl fmt::Debug for SchnorrSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchnorrSession").field("threshold", &self.threshold).finish()
    }
}

/// Interpolates `s` from partial signatures and validates via `check`.
/// Tries the full set, then all subsets of size `threshold` obtained by
/// excluding submitted shares one batch at a time — enough to survive up
/// to `len − threshold` corrupted shares.
fn combine_generic<S>(
    partials: &[PartialSignature],
    threshold: usize,
    check: impl Fn(Scalar) -> Option<S>,
) -> Result<S, ThresholdError> {
    if partials.len() < threshold {
        return Err(ShamirError::InsufficientShares {
            have: partials.len(),
            need: threshold,
        }
        .into());
    }
    // Reject duplicates up front.
    let mut seen = Vec::with_capacity(partials.len());
    for p in partials {
        if p.index == 0 {
            return Err(ShamirError::ZeroIndex.into());
        }
        if seen.contains(&p.index) {
            return Err(ShamirError::DuplicateIndex(p.index).into());
        }
        seen.push(p.index);
    }

    // Enumerate threshold-sized subsets lexicographically; with honest
    // shares in the majority this terminates on the first try almost
    // always. Cap the search to keep worst-case combinatorics bounded.
    const MAX_SUBSETS: usize = 4096;
    let mut combo: Vec<usize> = (0..threshold).collect();
    let mut tried = 0;
    loop {
        let subset: Vec<PartialSignature> = combo.iter().map(|&i| partials[i]).collect();
        let indices: Vec<u32> = subset.iter().map(|p| p.index).collect();
        let mut s = Scalar::ZERO;
        for p in &subset {
            s = s + lagrange_at_zero(&indices, p.index) * p.value;
        }
        if let Some(out) = check(s) {
            return Ok(out);
        }
        tried += 1;
        if tried >= MAX_SUBSETS || !advance_combination(&mut combo, partials.len()) {
            return Err(ThresholdError::CorruptShares);
        }
    }
}

/// Advances `combo` to the next k-combination of `0..n`; returns `false`
/// when exhausted.
fn advance_combination(combo: &mut [usize], n: usize) -> bool {
    let k = combo.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if combo[i] < n - (k - i) {
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    fn rng(seed: u64) -> SimRng {
        SimRng::seed_from(seed)
    }

    #[test]
    fn ecdsa_threshold_roundtrip() {
        let mut rng = rng(1);
        // IC-like: n = 13, signing threshold 2f+1 = 9.
        let key = ThresholdKey::generate(13, 9, &mut rng);
        let digest = [0x42u8; 32];
        let session = key.open_ecdsa(&DerivationPath::root(), digest, &mut rng);
        let partials: Vec<_> = (1..=9).map(|i| session.partial_signature(i)).collect();
        let sig = session.combine(&partials).unwrap();
        assert!(key.public_key().verify(&digest, &sig));
        assert!(!sig.s.is_high(), "threshold signatures are low-s normalized");
    }

    #[test]
    fn any_threshold_subset_signs() {
        let mut rng = rng(2);
        let key = ThresholdKey::generate(7, 5, &mut rng);
        let digest = [9u8; 32];
        let session = key.open_ecdsa(&DerivationPath::root(), digest, &mut rng);
        let subset: Vec<_> = [7u32, 3, 1, 6, 4]
            .iter()
            .map(|&i| session.partial_signature(i))
            .collect();
        let sig = session.combine(&subset).unwrap();
        assert!(key.public_key().verify(&digest, &sig));
    }

    #[test]
    fn too_few_shares_abort() {
        let mut rng = rng(3);
        let key = ThresholdKey::generate(7, 5, &mut rng);
        let session = key.open_ecdsa(&DerivationPath::root(), [1u8; 32], &mut rng);
        let partials: Vec<_> = (1..=4).map(|i| session.partial_signature(i)).collect();
        assert!(matches!(
            session.combine(&partials),
            Err(ThresholdError::Shamir(ShamirError::InsufficientShares { have: 4, need: 5 }))
        ));
    }

    #[test]
    fn corrupted_share_is_excluded_when_redundancy_exists() {
        let mut rng = rng(4);
        let key = ThresholdKey::generate(7, 4, &mut rng);
        let digest = [7u8; 32];
        let session = key.open_ecdsa(&DerivationPath::root(), digest, &mut rng);
        let mut partials: Vec<_> = (1..=6).map(|i| session.partial_signature(i)).collect();
        // Replica 2 lies.
        partials[1].value = partials[1].value + Scalar::ONE;
        let sig = session.combine(&partials).unwrap();
        assert!(key.public_key().verify(&digest, &sig));
    }

    #[test]
    fn corrupted_share_without_redundancy_fails() {
        let mut rng = rng(5);
        let key = ThresholdKey::generate(5, 5, &mut rng);
        let session = key.open_ecdsa(&DerivationPath::root(), [3u8; 32], &mut rng);
        let mut partials: Vec<_> = (1..=5).map(|i| session.partial_signature(i)).collect();
        partials[0].value = Scalar::ONE;
        assert_eq!(session.combine(&partials), Err(ThresholdError::CorruptShares).map(|_: Signature| unreachable!()));
    }

    #[test]
    fn duplicate_partial_rejected() {
        let mut rng = rng(6);
        let key = ThresholdKey::generate(5, 3, &mut rng);
        let session = key.open_ecdsa(&DerivationPath::root(), [3u8; 32], &mut rng);
        let p = session.partial_signature(1);
        assert!(matches!(
            session.combine(&[p, p, session.partial_signature(2)]),
            Err(ThresholdError::Shamir(ShamirError::DuplicateIndex(1)))
        ));
    }

    #[test]
    fn derived_keys_differ_and_verify() {
        let mut rng = rng(7);
        let key = ThresholdKey::generate(7, 5, &mut rng);
        let path_a = DerivationPath::new([b"canister-a".to_vec()]);
        let path_b = DerivationPath::new([b"canister-b".to_vec()]);
        assert_ne!(key.derived_public_key(&path_a), key.derived_public_key(&path_b));
        assert_ne!(key.derived_public_key(&path_a), key.public_key());

        let digest = [0x11u8; 32];
        let session = key.open_ecdsa(&path_a, digest, &mut rng);
        let partials: Vec<_> = (1..=5).map(|i| session.partial_signature(i)).collect();
        let sig = session.combine(&partials).unwrap();
        assert!(key.derived_public_key(&path_a).verify(&digest, &sig));
        assert!(!key.derived_public_key(&path_b).verify(&digest, &sig));
        assert!(!key.public_key().verify(&digest, &sig));
    }

    #[test]
    fn multi_component_paths_are_position_sensitive() {
        let mut rng = rng(8);
        let key = ThresholdKey::generate(4, 3, &mut rng);
        let ab = DerivationPath::new([b"a".to_vec(), b"b".to_vec()]);
        let ba = DerivationPath::new([b"b".to_vec(), b"a".to_vec()]);
        // Length prefixes prevent concatenation ambiguity.
        let a_b = DerivationPath::new([b"ab".to_vec()]);
        assert_ne!(key.derived_public_key(&ab), key.derived_public_key(&ba));
        assert_ne!(key.derived_public_key(&ab), key.derived_public_key(&a_b));
    }

    #[test]
    fn schnorr_threshold_roundtrip() {
        let mut rng = rng(9);
        let key = ThresholdKey::generate(13, 9, &mut rng);
        let message = [0x77u8; 32];
        let path = DerivationPath::new([b"taproot".to_vec()]);
        let session = key.open_schnorr(&path, message, &mut rng);
        let partials: Vec<_> = (1..=9).map(|i| session.partial_signature(i)).collect();
        let sig = session.combine(&partials).unwrap();
        assert!(crate::schnorr::verify(&session.public_key_x(), &message, &sig));
    }

    #[test]
    fn schnorr_handles_both_key_parities() {
        let mut saw_flip = false;
        let mut saw_no_flip = false;
        for seed in 0..20 {
            let mut rng = rng(seed);
            let key = ThresholdKey::generate(4, 3, &mut rng);
            let message = [seed as u8; 32];
            let session = key.open_schnorr(&DerivationPath::root(), message, &mut rng);
            if session.key_flipped {
                saw_flip = true;
            } else {
                saw_no_flip = true;
            }
            let partials: Vec<_> = (1..=3).map(|i| session.partial_signature(i)).collect();
            let sig = session.combine(&partials).unwrap();
            assert!(crate::schnorr::verify(&session.public_key_x(), &message, &sig));
        }
        assert!(saw_flip && saw_no_flip, "both parities must be exercised");
    }

    #[test]
    fn schnorr_corrupted_share_excluded() {
        let mut rng = rng(10);
        let key = ThresholdKey::generate(6, 4, &mut rng);
        let message = [0x55u8; 32];
        let session = key.open_schnorr(&DerivationPath::root(), message, &mut rng);
        let mut partials: Vec<_> = (1..=6).map(|i| session.partial_signature(i)).collect();
        partials[3].value = Scalar::from_u64(1);
        let sig = session.combine(&partials).unwrap();
        assert!(crate::schnorr::verify(&session.public_key_x(), &message, &sig));
    }

    #[test]
    fn advance_combination_enumerates_all() {
        let mut combo = vec![0usize, 1];
        let mut count = 1;
        while advance_combination(&mut combo, 4) {
            count += 1;
        }
        assert_eq!(count, 6, "C(4,2) = 6");
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!ThresholdError::CorruptShares.to_string().is_empty());
        assert!(!ThresholdError::from(ShamirError::ZeroIndex).to_string().is_empty());
    }
}

//! Bitcoin addresses: Base58Check and Bech32/Bech32m encoding.
//!
//! The Bitcoin canister's `get_utxos`/`get_balance` API is keyed by
//! address (§III-C), so the reproduction implements the full standard
//! address forms: legacy Base58Check (P2PKH, P2SH) and segwit Bech32
//! (P2WPKH, P2WSH) / Bech32m (P2TR).

use std::fmt;
use std::str::FromStr;

use crate::hash::sha256d;
use crate::network::Network;
use crate::script::{Script, ScriptKind};

// ---------------------------------------------------------------------------
// Base58Check
// ---------------------------------------------------------------------------

const BASE58_ALPHABET: &[u8; 58] = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

/// Encodes `payload` (version byte already included) in Base58Check.
pub fn base58check_encode(payload: &[u8]) -> String {
    let checksum = sha256d(payload);
    let mut data = payload.to_vec();
    data.extend_from_slice(&checksum[..4]);

    // Count leading zero bytes: each maps to a literal '1'.
    let leading_zeros = data.iter().take_while(|&&b| b == 0).count();

    // Repeated division by 58 over the big-endian byte string.
    let mut digits: Vec<u8> = Vec::new();
    let mut number = data[leading_zeros..].to_vec();
    while !number.is_empty() {
        let mut remainder = 0u32;
        let mut next = Vec::with_capacity(number.len());
        for &byte in &number {
            let acc = remainder * 256 + byte as u32;
            let q = acc / 58;
            remainder = acc % 58;
            if !next.is_empty() || q != 0 {
                next.push(q as u8);
            }
        }
        digits.push(remainder as u8);
        number = next;
    }
    let mut out = String::with_capacity(leading_zeros + digits.len());
    for _ in 0..leading_zeros {
        out.push('1');
    }
    for &d in digits.iter().rev() {
        out.push(BASE58_ALPHABET[d as usize] as char);
    }
    out
}

/// Decodes a Base58Check string, verifying the checksum. Returns the
/// payload with version byte, or `None` on any malformation.
pub fn base58check_decode(s: &str) -> Option<Vec<u8>> {
    let mut digits = Vec::with_capacity(s.len());
    for c in s.bytes() {
        let value = BASE58_ALPHABET.iter().position(|&a| a == c)?;
        digits.push(value as u8);
    }
    let leading_ones = digits.iter().take_while(|&&d| d == 0).count();

    // Repeated multiplication by 58.
    let mut bytes: Vec<u8> = Vec::new();
    for &digit in &digits[leading_ones..] {
        let mut carry = digit as u32;
        for b in bytes.iter_mut().rev() {
            let acc = *b as u32 * 58 + carry;
            *b = acc as u8;
            carry = acc >> 8;
        }
        while carry > 0 {
            bytes.insert(0, carry as u8);
            carry >>= 8;
        }
    }
    let mut data = vec![0u8; leading_ones];
    data.extend_from_slice(&bytes);
    if data.len() < 4 {
        return None;
    }
    let (payload, checksum) = data.split_at(data.len() - 4);
    if &sha256d(payload)[..4] != checksum {
        return None;
    }
    Some(payload.to_vec())
}

// ---------------------------------------------------------------------------
// Bech32 / Bech32m (BIP-173 / BIP-350)
// ---------------------------------------------------------------------------

const BECH32_CHARSET: &[u8; 32] = b"qpzry9x8gf2tvdw0s3jn54khce6mua7l";
const BECH32_CONST: u32 = 1;
const BECH32M_CONST: u32 = 0x2bc830a3;

fn bech32_polymod(values: &[u8]) -> u32 {
    const GEN: [u32; 5] = [0x3b6a57b2, 0x26508e6d, 0x1ea119fa, 0x3d4233dd, 0x2a1462b3];
    let mut chk: u32 = 1;
    for &v in values {
        let top = chk >> 25;
        chk = (chk & 0x1ff_ffff) << 5 ^ v as u32;
        for (i, g) in GEN.iter().enumerate() {
            if (top >> i) & 1 == 1 {
                chk ^= g;
            }
        }
    }
    chk
}

fn bech32_hrp_expand(hrp: &str) -> Vec<u8> {
    let mut out: Vec<u8> = hrp.bytes().map(|b| b >> 5).collect();
    out.push(0);
    out.extend(hrp.bytes().map(|b| b & 0x1f));
    out
}

/// Regroups bits: converts `data` from `from`-bit groups to `to`-bit
/// groups. With `pad`, a final partial group is zero-padded; without, a
/// non-zero partial group is an error.
fn convert_bits(data: &[u8], from: u32, to: u32, pad: bool) -> Option<Vec<u8>> {
    let mut acc: u32 = 0;
    let mut bits: u32 = 0;
    let mut out = Vec::new();
    let maxv = (1u32 << to) - 1;
    for &value in data {
        if (value as u32) >> from != 0 {
            return None;
        }
        acc = (acc << from) | value as u32;
        bits += from;
        while bits >= to {
            bits -= to;
            out.push(((acc >> bits) & maxv) as u8);
        }
    }
    if pad {
        if bits > 0 {
            out.push(((acc << (to - bits)) & maxv) as u8);
        }
    } else if bits >= from || ((acc << (to - bits)) & maxv) != 0 {
        return None;
    }
    Some(out)
}

/// Encodes a segwit address: HRP, witness version, program.
pub fn segwit_encode(hrp: &str, witness_version: u8, program: &[u8]) -> String {
    let mut data = vec![witness_version];
    data.extend(convert_bits(program, 8, 5, true).expect("8-bit input always converts"));
    let spec = if witness_version == 0 { BECH32_CONST } else { BECH32M_CONST };
    let mut values = bech32_hrp_expand(hrp);
    values.extend_from_slice(&data);
    values.extend_from_slice(&[0; 6]);
    let polymod = bech32_polymod(&values) ^ spec;
    let mut out = String::from(hrp);
    out.push('1');
    for &d in &data {
        out.push(BECH32_CHARSET[d as usize] as char);
    }
    for i in 0..6 {
        out.push(BECH32_CHARSET[((polymod >> (5 * (5 - i))) & 0x1f) as usize] as char);
    }
    out
}

/// Decodes a segwit address, returning `(hrp, witness_version, program)`.
/// Enforces the BIP-173/350 rules: checksum spec by version, program
/// lengths, case consistency.
pub fn segwit_decode(address: &str) -> Option<(String, u8, Vec<u8>)> {
    // Mixed case is invalid.
    if address.bytes().any(|b| b.is_ascii_uppercase())
        && address.bytes().any(|b| b.is_ascii_lowercase())
    {
        return None;
    }
    let address = address.to_ascii_lowercase();
    let sep = address.rfind('1')?;
    if sep == 0 || sep + 7 > address.len() || address.len() > 90 {
        return None;
    }
    let (hrp, rest) = address.split_at(sep);
    let rest = &rest[1..];
    let mut data = Vec::with_capacity(rest.len());
    for c in rest.bytes() {
        data.push(BECH32_CHARSET.iter().position(|&a| a == c)? as u8);
    }
    let mut values = bech32_hrp_expand(hrp);
    values.extend_from_slice(&data);
    let polymod = bech32_polymod(&values);
    let witness_version = data[0];
    let spec = if witness_version == 0 { BECH32_CONST } else { BECH32M_CONST };
    if polymod != spec || witness_version > 16 {
        return None;
    }
    let program = convert_bits(&data[1..data.len() - 6], 5, 8, false)?;
    if program.len() < 2 || program.len() > 40 {
        return None;
    }
    if witness_version == 0 && program.len() != 20 && program.len() != 32 {
        return None;
    }
    Some((hrp.to_string(), witness_version, program))
}

// ---------------------------------------------------------------------------
// Address
// ---------------------------------------------------------------------------

/// The payload of a standard address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AddressKind {
    /// Legacy pay-to-pubkey-hash.
    P2pkh([u8; 20]),
    /// Legacy pay-to-script-hash.
    P2sh([u8; 20]),
    /// Segwit v0 key hash.
    P2wpkh([u8; 20]),
    /// Segwit v0 script hash.
    P2wsh([u8; 32]),
    /// Segwit v1 (taproot) output key.
    P2tr([u8; 32]),
}

/// A Bitcoin address: a standard output template bound to a network.
///
/// # Examples
///
/// ```
/// use icbtc_bitcoin::{Address, AddressKind, Network};
/// let addr = Address::new(Network::Mainnet, AddressKind::P2wpkh([7; 20]));
/// let shown = addr.to_string();
/// assert!(shown.starts_with("bc1q"));
/// assert_eq!(shown.parse::<Address>().unwrap(), addr);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Address {
    /// The network the address belongs to.
    pub network: Network,
    /// The address payload.
    pub kind: AddressKind,
}

impl Address {
    /// Creates an address.
    pub const fn new(network: Network, kind: AddressKind) -> Address {
        Address { network, kind }
    }

    /// Returns the locking script this address stands for.
    pub fn script_pubkey(&self) -> Script {
        match &self.kind {
            AddressKind::P2pkh(h) => Script::new_p2pkh(h),
            AddressKind::P2sh(h) => Script::new_p2sh(h),
            AddressKind::P2wpkh(h) => Script::new_p2wpkh(h),
            AddressKind::P2wsh(h) => Script::new_p2wsh(h),
            AddressKind::P2tr(k) => Script::new_p2tr(k),
        }
    }

    /// Derives the address represented by a locking script, if it matches a
    /// standard template.
    pub fn from_script(script: &Script, network: Network) -> Option<Address> {
        let kind = match script.classify() {
            ScriptKind::P2pkh(h) => AddressKind::P2pkh(h),
            ScriptKind::P2sh(h) => AddressKind::P2sh(h),
            ScriptKind::P2wpkh(h) => AddressKind::P2wpkh(h),
            ScriptKind::P2wsh(h) => AddressKind::P2wsh(h),
            ScriptKind::P2tr(k) => AddressKind::P2tr(k),
            ScriptKind::OpReturn | ScriptKind::NonStandard => return None,
        };
        Some(Address { network, kind })
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.network.params();
        match &self.kind {
            AddressKind::P2pkh(h) => {
                let mut payload = vec![params.p2pkh_version];
                payload.extend_from_slice(h);
                write!(f, "{}", base58check_encode(&payload))
            }
            AddressKind::P2sh(h) => {
                let mut payload = vec![params.p2sh_version];
                payload.extend_from_slice(h);
                write!(f, "{}", base58check_encode(&payload))
            }
            AddressKind::P2wpkh(h) => write!(f, "{}", segwit_encode(params.bech32_hrp, 0, h)),
            AddressKind::P2wsh(h) => write!(f, "{}", segwit_encode(params.bech32_hrp, 0, h)),
            AddressKind::P2tr(k) => write!(f, "{}", segwit_encode(params.bech32_hrp, 1, k)),
        }
    }
}

/// Error parsing an address string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddressError;

impl fmt::Display for ParseAddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognized or malformed bitcoin address")
    }
}

impl std::error::Error for ParseAddressError {}

impl FromStr for Address {
    type Err = ParseAddressError;

    fn from_str(s: &str) -> Result<Address, ParseAddressError> {
        // Try bech32 first.
        if let Some((hrp, version, program)) = segwit_decode(s) {
            let network = match hrp.as_str() {
                "bc" => Network::Mainnet,
                "tb" => Network::Testnet,
                "bcrt" => Network::Regtest,
                _ => return Err(ParseAddressError),
            };
            let kind = match (version, program.len()) {
                (0, 20) => {
                    let mut h = [0u8; 20];
                    h.copy_from_slice(&program);
                    AddressKind::P2wpkh(h)
                }
                (0, 32) => {
                    let mut h = [0u8; 32];
                    h.copy_from_slice(&program);
                    AddressKind::P2wsh(h)
                }
                (1, 32) => {
                    let mut k = [0u8; 32];
                    k.copy_from_slice(&program);
                    AddressKind::P2tr(k)
                }
                _ => return Err(ParseAddressError),
            };
            return Ok(Address { network, kind });
        }
        // Fall back to base58check.
        let payload = base58check_decode(s).ok_or(ParseAddressError)?;
        if payload.len() != 21 {
            return Err(ParseAddressError);
        }
        let mut hash = [0u8; 20];
        hash.copy_from_slice(&payload[1..]);
        // Testnet and regtest share version bytes; testnet is the
        // canonical interpretation, as in Bitcoin tooling.
        let (network, kind) = match payload[0] {
            0x00 => (Network::Mainnet, AddressKind::P2pkh(hash)),
            0x05 => (Network::Mainnet, AddressKind::P2sh(hash)),
            0x6f => (Network::Testnet, AddressKind::P2pkh(hash)),
            0xc4 => (Network::Testnet, AddressKind::P2sh(hash)),
            _ => return Err(ParseAddressError),
        };
        Ok(Address { network, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY1_HASH: [u8; 20] = [
        0x75, 0x1e, 0x76, 0xe8, 0x19, 0x91, 0x96, 0xd4, 0x54, 0x94, 0x1c, 0x45, 0xd1, 0xb3, 0xa3,
        0x23, 0xf1, 0x43, 0x3b, 0xd6,
    ];

    #[test]
    fn base58_known_vector() {
        // P2PKH address of private key 1 (widely published).
        let mut payload = vec![0x00];
        payload.extend_from_slice(&KEY1_HASH);
        assert_eq!(base58check_encode(&payload), "1BgGZ9tcN4rm9KBzDn7KprQz87SZ26SAMH");
        assert_eq!(
            base58check_decode("1BgGZ9tcN4rm9KBzDn7KprQz87SZ26SAMH").unwrap(),
            payload
        );
    }

    #[test]
    fn base58_rejects_bad_checksum_and_chars() {
        assert_eq!(base58check_decode("1BgGZ9tcN4rm9KBzDn7KprQz87SZ26SAMh"), None);
        assert_eq!(base58check_decode("0OIl"), None);
        assert_eq!(base58check_decode(""), None);
        assert_eq!(base58check_decode("11"), None); // too short for checksum
    }

    #[test]
    fn base58_leading_zeros_roundtrip() {
        let payload = vec![0x00, 0x00, 0x00, 0x07, 0x09];
        let encoded = base58check_encode(&payload);
        assert!(encoded.starts_with("111"));
        assert_eq!(base58check_decode(&encoded).unwrap(), payload);
    }

    #[test]
    fn bech32_bip173_vector() {
        // BIP-173 P2WPKH example.
        assert_eq!(
            segwit_encode("bc", 0, &KEY1_HASH),
            "bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4"
        );
        let (hrp, v, prog) = segwit_decode("bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4").unwrap();
        assert_eq!((hrp.as_str(), v), ("bc", 0));
        assert_eq!(prog, KEY1_HASH);
        // Uppercase form is also valid.
        assert!(segwit_decode("BC1QW508D6QEJXTDG4Y5R3ZARVARY0C5XW7KV8F3T4").is_some());
    }

    #[test]
    fn bech32m_v1_roundtrip_and_spec_separation() {
        let program = [0xabu8; 32];
        let encoded = segwit_encode("bc", 1, &program);
        assert!(encoded.starts_with("bc1p"));
        let (_, v, prog) = segwit_decode(&encoded).unwrap();
        assert_eq!(v, 1);
        assert_eq!(prog, program);
        // A v1 address with a bech32 (not bech32m) checksum must fail: take
        // the v0 encoding and flip the version character.
        let v0 = segwit_encode("bc", 0, &program);
        let forged: String = v0.replacen("bc1q", "bc1p", 1);
        assert_eq!(segwit_decode(&forged), None);
    }

    #[test]
    fn bech32_rejects_mixed_case_and_garbage() {
        assert_eq!(segwit_decode("bc1Qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4"), None);
        assert_eq!(segwit_decode("bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t5"), None);
        assert_eq!(segwit_decode("1qqqqq"), None);
        assert_eq!(segwit_decode(""), None);
    }

    #[test]
    fn address_display_parse_roundtrip_all_kinds() {
        let kinds = [
            AddressKind::P2pkh([1; 20]),
            AddressKind::P2sh([2; 20]),
            AddressKind::P2wpkh([3; 20]),
            AddressKind::P2wsh([4; 32]),
            AddressKind::P2tr([5; 32]),
        ];
        for network in [Network::Mainnet, Network::Testnet, Network::Regtest] {
            for kind in kinds {
                let addr = Address::new(network, kind);
                let shown = addr.to_string();
                let parsed: Address = shown.parse().unwrap();
                // Base58 testnet/regtest share version bytes; compare via
                // script equivalence in that case.
                if network == Network::Regtest
                    && matches!(kind, AddressKind::P2pkh(_) | AddressKind::P2sh(_))
                {
                    assert_eq!(parsed.kind, addr.kind);
                } else {
                    assert_eq!(parsed, addr);
                }
            }
        }
    }

    #[test]
    fn address_script_roundtrip() {
        let addr = Address::new(Network::Mainnet, AddressKind::P2wpkh(KEY1_HASH));
        let script = addr.script_pubkey();
        assert_eq!(Address::from_script(&script, Network::Mainnet), Some(addr));
        assert_eq!(
            Address::from_script(&Script::new_op_return(b"no"), Network::Mainnet),
            None
        );
    }

    #[test]
    fn parse_error_display() {
        let err = "garbage".parse::<Address>().unwrap_err();
        assert!(!err.to_string().is_empty());
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;

        #[test]
        fn base58_roundtrip() {
            testkit::check(0xAD_0001, testkit::DEFAULT_CASES, |rng| {
                let payload = testkit::bytes(rng, 1..64);
                let encoded = base58check_encode(&payload);
                assert_eq!(base58check_decode(&encoded), Some(payload));
            });
        }

        #[test]
        fn bech32_roundtrip_v0_20() {
            testkit::check(0xAD_0002, testkit::DEFAULT_CASES, |rng| {
                let prog: [u8; 20] = testkit::byte_array(rng);
                let encoded = segwit_encode("tb", 0, &prog);
                let (hrp, v, back) = segwit_decode(&encoded).unwrap();
                assert_eq!((hrp.as_str(), v), ("tb", 0));
                assert_eq!(back, prog.to_vec());
            });
        }

        #[test]
        fn bech32m_roundtrip_v1_32() {
            testkit::check(0xAD_0003, testkit::DEFAULT_CASES, |rng| {
                let prog: [u8; 32] = testkit::byte_array(rng);
                let encoded = segwit_encode("bcrt", 1, &prog);
                let (hrp, v, back) = segwit_decode(&encoded).unwrap();
                assert_eq!((hrp.as_str(), v), ("bcrt", 1));
                assert_eq!(back, prog.to_vec());
            });
        }

        /// Single-character corruption never passes checksum validation.
        #[test]
        fn bech32_detects_corruption() {
            testkit::check(0xAD_0004, testkit::DEFAULT_CASES, |rng| {
                let prog: [u8; 20] = testkit::byte_array(rng);
                let pos = testkit::usize_in(rng, 4..30);
                let c = testkit::usize_in(rng, 0..32);
                let encoded = segwit_encode("bc", 0, &prog);
                let mut chars: Vec<u8> = encoded.into_bytes();
                let replacement = BECH32_CHARSET[c];
                if chars[pos] != replacement {
                    chars[pos] = replacement;
                    let corrupted = String::from_utf8(chars).unwrap();
                    assert_eq!(segwit_decode(&corrupted), None);
                }
            });
        }
    }
}

//! Proof-of-work: compact targets, chain work, difficulty retargeting.
//!
//! The paper's difficulty-based δ-stability (§II-C) is defined over the
//! *hash work* `w(b)` of each block, so the reproduction needs the real
//! arithmetic: compact-bits encoding, target comparison, per-block work
//! `⌊2²⁵⁶ / (target + 1)⌋`, and the 2016-block retargeting rule.

use std::fmt;

use crate::u256::U256;

/// The difficulty target in Bitcoin's compact "bits" encoding.
///
/// The encoding is a base-256 floating point: the low 3 bytes are the
/// mantissa and the high byte is the exponent (number of bytes of the
/// target).
///
/// # Examples
///
/// ```
/// use icbtc_bitcoin::pow::CompactTarget;
/// let bits = CompactTarget::from_consensus(0x1d00ffff); // Bitcoin genesis
/// let target = bits.to_target();
/// assert_eq!(CompactTarget::from_target(target), bits);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CompactTarget(u32);

impl CompactTarget {
    /// Wraps a raw consensus `bits` value.
    pub const fn from_consensus(bits: u32) -> CompactTarget {
        CompactTarget(bits)
    }

    /// Returns the raw consensus `bits` value.
    pub const fn to_consensus(self) -> u32 {
        self.0
    }

    /// Expands the compact encoding into the full 256-bit target.
    ///
    /// Invalid encodings (overflow or negative-flag mantissas) expand to
    /// zero, which no hash can satisfy — matching Bitcoin Core's rejection.
    pub fn to_target(self) -> U256 {
        let exponent = (self.0 >> 24) as usize;
        let mantissa = self.0 & 0x007f_ffff;
        if self.0 & 0x0080_0000 != 0 {
            // Negative targets are invalid.
            return U256::ZERO;
        }
        if exponent <= 3 {
            U256::from_u64((mantissa >> (8 * (3 - exponent))) as u64)
        } else {
            let shift = 8 * (exponent - 3);
            let mantissa_bits = 32 - mantissa.leading_zeros() as usize;
            if shift + mantissa_bits > 256 {
                // Overflow past 256 bits.
                return U256::ZERO;
            }
            U256::from_u64(mantissa as u64) << shift
        }
    }

    /// Compresses a full target into compact form (lossy: only the top
    /// three bytes of precision are kept, exactly as in Bitcoin).
    pub fn from_target(target: U256) -> CompactTarget {
        if target.is_zero() {
            return CompactTarget(0);
        }
        let mut exponent = (target.bits() as usize).div_ceil(8);
        let mut mantissa = if exponent <= 3 {
            (target.limbs()[0] << (8 * (3 - exponent))) as u32
        } else {
            (target >> (8 * (exponent - 3))).limbs()[0] as u32
        };
        // Avoid setting the sign bit.
        if mantissa & 0x0080_0000 != 0 {
            mantissa >>= 8;
            exponent += 1;
        }
        CompactTarget(((exponent as u32) << 24) | (mantissa & 0x007f_ffff))
    }

    /// Computes the expected hash work for this target:
    /// `⌊2²⁵⁶ / (target + 1)⌋`, via Bitcoin Core's overflow-free identity
    /// `(~target / (target + 1)) + 1`.
    pub fn work(self) -> Work {
        let target = self.to_target();
        if target.is_zero() {
            return Work(U256::ZERO);
        }
        let quotient = (!target).div_rem(target + U256::ONE).0;
        Work(quotient + U256::ONE)
    }
}

impl fmt::Display for CompactTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bits(0x{:08x})", self.0)
    }
}

/// Accumulated (or per-block) hash work.
///
/// A 256-bit quantity: chain work sums per-block work over potentially
/// hundreds of thousands of blocks.
///
/// # Examples
///
/// ```
/// use icbtc_bitcoin::pow::{CompactTarget, Work};
/// let w = CompactTarget::from_consensus(0x207fffff).work();
/// assert_eq!(w + Work::ZERO, w);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Work(U256);

impl Work {
    /// Zero work.
    pub const ZERO: Work = Work(U256::ZERO);

    /// Wraps a raw work value.
    pub const fn from_u256(v: U256) -> Work {
        Work(v)
    }

    /// Returns the raw 256-bit value.
    pub const fn to_u256(self) -> U256 {
        self.0
    }

    /// Returns the work as an `f64` (lossy; for ratios and reporting).
    pub fn as_f64(self) -> f64 { // icbtc-lint: allow(float) -- documented lossy reporting view; ordering uses exact u256 Work
        let limbs = self.0.limbs();
        limbs
            .iter()
            .enumerate()
            .map(|(i, &l)| l as f64 * 2f64.powi(64 * i as i32)) // icbtc-lint: allow(float) -- lossy by design, reporting only
            .sum()
    }

    /// Returns `self / other` as an `f64`, the "relative stability" measure
    /// `d_w(b) / w(b*)` from §II-C.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: Work) -> f64 { // icbtc-lint: allow(float) -- relative-stability reporting ratio (EXPERIMENTS.md), not a consensus decision
        assert!(!other.0.is_zero(), "work ratio divided by zero");
        self.as_f64() / other.as_f64()
    }
}

impl std::ops::Add for Work {
    type Output = Work;
    fn add(self, rhs: Work) -> Work {
        Work(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::AddAssign for Work {
    fn add_assign(&mut self, rhs: Work) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for Work {
    fn sum<I: Iterator<Item = Work>>(iter: I) -> Work {
        iter.fold(Work::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Work {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "work({:e})", self.as_f64())
    }
}

/// Computes the next retarget given the old target and the actual timespan
/// of the last interval, clamped to a factor of 4 in each direction as in
/// Bitcoin.
///
/// `pow_limit` caps the result (difficulty cannot drop below the network
/// minimum).
pub fn retarget(
    old: CompactTarget,
    actual_timespan_secs: u64,
    expected_timespan_secs: u64,
    pow_limit: CompactTarget,
) -> CompactTarget {
    let clamped = actual_timespan_secs
        .max(expected_timespan_secs / 4)
        .min(expected_timespan_secs * 4);
    let old_target = old.to_target();
    // new = old * clamped / expected, computed without overflow by
    // dividing first when the multiply would overflow.
    let (lo, hi) = old_target.widening_mul(U256::from_u64(clamped));
    let new_target = if hi.is_zero() {
        lo / U256::from_u64(expected_timespan_secs)
    } else {
        // Extremely easy targets: divide first (loses negligible precision).
        (old_target / U256::from_u64(expected_timespan_secs))
            .checked_mul(U256::from_u64(clamped))
            .unwrap_or(pow_limit.to_target())
    };
    let limit = pow_limit.to_target();
    CompactTarget::from_target(if new_target > limit { limit } else { new_target })
}

/// Computes the median of the last (up to) 11 block timestamps — the
/// "median time past" used to validate header timestamps.
///
/// # Panics
///
/// Panics if `timestamps` is empty.
pub fn median_time_past(timestamps: &[u32]) -> u32 {
    assert!(!timestamps.is_empty(), "median of empty timestamp slice");
    let start = timestamps.len().saturating_sub(11);
    let mut window: Vec<u32> = timestamps[start..].to_vec();
    window.sort_unstable();
    window[window.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_bits_expand_to_known_target() {
        // Bitcoin mainnet genesis target:
        // 0x00000000ffff0000...0000
        let target = CompactTarget::from_consensus(0x1d00ffff).to_target();
        let expected = U256::from_u64(0xffff) << (8 * (0x1d - 3));
        assert_eq!(target, expected);
        assert_eq!(target.bits(), 224);
    }

    #[test]
    fn compact_roundtrip_canonical_values() {
        for bits in [0x1d00ffffu32, 0x207fffff, 0x1b0404cb, 0x17034a7d] {
            let ct = CompactTarget::from_consensus(bits);
            assert_eq!(CompactTarget::from_target(ct.to_target()), ct, "bits 0x{bits:08x}");
        }
    }

    #[test]
    fn sign_bit_mantissa_is_invalid() {
        // Mantissa with bit 23 set is a "negative" target.
        assert_eq!(CompactTarget::from_consensus(0x01fedcba).to_target(), U256::ZERO);
    }

    #[test]
    fn from_target_avoids_sign_bit() {
        // A target whose top mantissa byte would be >= 0x80 must bump the
        // exponent.
        let target = U256::from_u64(0x80) << 16; // 0x800000
        let compact = CompactTarget::from_target(target);
        assert_eq!(compact.to_target(), target);
        assert_eq!(compact.to_consensus() & 0x0080_0000, 0);
    }

    #[test]
    fn work_of_genesis_difficulty() {
        // Work for target 0x1d00ffff is ~2^32 (difficulty 1).
        let w = CompactTarget::from_consensus(0x1d00ffff).work();
        let expected = 2f64.powi(32);
        assert!((w.as_f64() / expected - 1.0).abs() < 1e-4, "{}", w.as_f64());
    }

    #[test]
    fn harder_target_means_more_work() {
        let easy = CompactTarget::from_consensus(0x207fffff).work();
        let hard = CompactTarget::from_consensus(0x1d00ffff).work();
        assert!(hard > easy);
        let sum = easy + hard;
        assert!(sum > hard);
        assert!((easy.ratio(easy) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn work_sums() {
        let w = CompactTarget::from_consensus(0x207fffff).work();
        let total: Work = std::iter::repeat_n(w, 3).sum();
        assert!((total.as_f64() / (3.0 * w.as_f64()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn retarget_clamps_at_4x() {
        let pow_limit = CompactTarget::from_consensus(0x207fffff);
        let old = CompactTarget::from_consensus(0x1d00ffff);
        let expected = 2016 * 600;
        // Blocks found 10x too fast: clamp to 4x harder.
        let faster = retarget(old, expected / 10, expected, pow_limit);
        let quadrupled = retarget(old, expected / 4, expected, pow_limit);
        assert_eq!(faster, quadrupled);
        assert!(faster.to_target() < old.to_target());
        // Blocks found 10x too slow: clamp to 4x easier.
        let slower = retarget(old, expected * 10, expected, pow_limit);
        assert!(slower.to_target() > old.to_target());
        let ratio = slower.to_target().div_rem(old.to_target()).0;
        assert_eq!(ratio, U256::from_u64(4));
    }

    #[test]
    fn retarget_exact_interval_is_stable() {
        let pow_limit = CompactTarget::from_consensus(0x207fffff);
        let old = CompactTarget::from_consensus(0x1c0ae493);
        let new = retarget(old, 2016 * 600, 2016 * 600, pow_limit);
        // Compact rounding may perturb the last bits, but the target stays
        // within mantissa precision.
        let diff = if new.to_target() > old.to_target() {
            new.to_target() - old.to_target()
        } else {
            old.to_target() - new.to_target()
        };
        assert!(diff < old.to_target() >> 15);
    }

    #[test]
    fn retarget_respects_pow_limit() {
        let pow_limit = CompactTarget::from_consensus(0x207fffff);
        let new = retarget(pow_limit, 2016 * 600 * 10, 2016 * 600, pow_limit);
        assert_eq!(new.to_target(), pow_limit.to_target());
    }

    #[test]
    fn median_time_past_windows() {
        assert_eq!(median_time_past(&[5]), 5);
        assert_eq!(median_time_past(&[1, 2, 3]), 2);
        // Only the last 11 entries count.
        let mut ts: Vec<u32> = vec![1000; 20];
        ts.extend([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        assert_eq!(median_time_past(&ts), 6);
        // Unordered input is handled.
        assert_eq!(median_time_past(&[9, 1, 5]), 5);
    }

    #[test]
    #[should_panic]
    fn median_of_empty_panics() {
        let _ = median_time_past(&[]);
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;

        /// from_target(to_target(x)) is idempotent (compact form is a
        /// fixed point).
        #[test]
        fn compact_idempotent() {
            testkit::check(0x90_0001, testkit::DEFAULT_CASES, |rng| {
                let bits = testkit::u32_any(rng);
                let t = CompactTarget::from_consensus(bits).to_target();
                let c = CompactTarget::from_target(t);
                assert_eq!(c.to_target(), CompactTarget::from_target(c.to_target()).to_target());
            });
        }

        /// Work is antitone in the target: smaller target, more work.
        #[test]
        fn work_antitone() {
            testkit::check(0x90_0002, testkit::DEFAULT_CASES, |rng| {
                let a = testkit::u64_in(rng, 1..u64::MAX);
                let b = testkit::u64_in(rng, 1..u64::MAX);
                let (lo, hi) = (a.min(b), a.max(b));
                let w_lo = CompactTarget::from_target(U256::from_u64(lo)).work();
                let w_hi = CompactTarget::from_target(U256::from_u64(hi)).work();
                assert!(w_lo >= w_hi);
            });
        }

        /// Retarget output never exceeds the pow limit.
        #[test]
        fn retarget_bounded() {
            testkit::check(0x90_0003, testkit::DEFAULT_CASES, |rng| {
                let timespan = testkit::u64_in(rng, 1..10_000_000);
                let pow_limit = CompactTarget::from_consensus(0x207fffff);
                let old = CompactTarget::from_consensus(0x1d00ffff);
                let new = retarget(old, timespan, 2016 * 600, pow_limit);
                assert!(new.to_target() <= pow_limit.to_target());
            });
        }
    }
}

//! Transaction construction helpers.
//!
//! The contracts layer builds spends of canister-controlled outputs and the
//! simulated miners build coinbases; both go through this module. Signing
//! itself lives in `icbtc-tecdsa` — the builder exposes the per-input
//! signature hashes and accepts finished witnesses.

use std::fmt;

use crate::script::{
    legacy_sighash, segwit_v0_sighash, taproot_key_spend_sighash, Script, ScriptKind,
};
use crate::tx::{Amount, OutPoint, Transaction, TxIn, TxOut};

/// Builds a coinbase transaction for a block at `height` paying `reward` to
/// `script_pubkey`.
///
/// The height and `extra_nonce` are embedded in the input script (as in
/// BIP-34) so that coinbases at different heights — or by different miners —
/// have distinct txids.
pub fn coinbase_transaction(
    height: u64,
    reward: Amount,
    script_pubkey: Script,
    extra_nonce: u64,
) -> Transaction {
    let mut script_sig = Vec::with_capacity(16);
    script_sig.extend_from_slice(&height.to_le_bytes());
    script_sig.extend_from_slice(&extra_nonce.to_le_bytes());
    Transaction {
        version: 2,
        inputs: vec![TxIn {
            previous_output: OutPoint::NULL,
            script_sig,
            sequence: TxIn::SEQUENCE_FINAL,
            witness: Vec::new(),
        }],
        outputs: vec![TxOut::new(reward, script_pubkey)],
        lock_time: 0,
    }
}

/// Error from [`TransactionBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No inputs were added.
    NoInputs,
    /// No outputs were added.
    NoOutputs,
    /// Input value does not cover outputs plus fee.
    InsufficientFunds {
        /// Total value of the added inputs.
        available: Amount,
        /// Outputs plus fee.
        required: Amount,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NoInputs => write!(f, "transaction has no inputs"),
            BuildError::NoOutputs => write!(f, "transaction has no outputs"),
            BuildError::InsufficientFunds { available, required } => {
                write!(f, "insufficient funds: {available} available, {required} required")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// An incrementally configured spend transaction.
///
/// # Examples
///
/// ```
/// use icbtc_bitcoin::builder::TransactionBuilder;
/// use icbtc_bitcoin::{Amount, OutPoint, Script, Txid};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TransactionBuilder::new();
/// b.add_input(OutPoint::new(Txid([1; 32]), 0), Amount::from_sat(10_000), Script::new_p2wpkh(&[2; 20]));
/// b.add_output(Script::new_p2wpkh(&[3; 20]), Amount::from_sat(6_000));
/// b.change_script(Script::new_p2wpkh(&[2; 20]));
/// b.fee(Amount::from_sat(500));
/// let unsigned = b.build()?;
/// assert_eq!(unsigned.tx.outputs.len(), 2); // payment + change
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TransactionBuilder {
    inputs: Vec<(OutPoint, Amount, Script)>,
    outputs: Vec<TxOut>,
    change_script: Option<Script>,
    fee: Amount,
    lock_time: u32,
}

impl TransactionBuilder {
    /// Creates an empty builder.
    pub fn new() -> TransactionBuilder {
        TransactionBuilder::default()
    }

    /// Adds an input spending `outpoint`, which carries `value` locked by
    /// `script_pubkey`.
    pub fn add_input(
        &mut self,
        outpoint: OutPoint,
        value: Amount,
        script_pubkey: Script,
    ) -> &mut Self {
        self.inputs.push((outpoint, value, script_pubkey));
        self
    }

    /// Adds a payment output.
    pub fn add_output(&mut self, script_pubkey: Script, value: Amount) -> &mut Self {
        self.outputs.push(TxOut::new(value, script_pubkey));
        self
    }

    /// Sets the script that receives any change. Without it, the surplus is
    /// burned as extra fee.
    pub fn change_script(&mut self, script: Script) -> &mut Self {
        self.change_script = Some(script);
        self
    }

    /// Sets the absolute fee.
    pub fn fee(&mut self, fee: Amount) -> &mut Self {
        self.fee = fee;
        self
    }

    /// Sets the transaction lock time.
    pub fn lock_time(&mut self, lock_time: u32) -> &mut Self {
        self.lock_time = lock_time;
        self
    }

    /// Assembles the unsigned transaction, appending a change output when a
    /// change script is set and the surplus is above dust (546 sats).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if inputs or outputs are missing or the
    /// inputs do not cover outputs plus fee.
    pub fn build(&self) -> Result<UnsignedTransaction, BuildError> {
        const DUST: u64 = 546;
        if self.inputs.is_empty() {
            return Err(BuildError::NoInputs);
        }
        if self.outputs.is_empty() {
            return Err(BuildError::NoOutputs);
        }
        let available: Amount = self.inputs.iter().map(|(_, v, _)| *v).sum();
        let payment: Amount = self.outputs.iter().map(|o| o.value).sum();
        let required = payment
            .checked_add(self.fee)
            .ok_or(BuildError::InsufficientFunds { available, required: Amount::MAX_MONEY })?;
        let surplus = available
            .checked_sub(required)
            .ok_or(BuildError::InsufficientFunds { available, required })?;

        let mut outputs = self.outputs.clone();
        if let Some(change) = &self.change_script {
            if surplus.to_sat() >= DUST {
                outputs.push(TxOut::new(surplus, change.clone()));
            }
        }
        let tx = Transaction {
            version: 2,
            inputs: self
                .inputs
                .iter()
                .map(|(op, _, _)| TxIn::new(*op))
                .collect(),
            outputs,
            lock_time: self.lock_time,
        };
        Ok(UnsignedTransaction {
            tx,
            spent: self.inputs.iter().map(|(_, v, s)| (*v, s.clone())).collect(),
        })
    }
}

/// A built but not yet signed transaction, carrying the spent outputs
/// needed for signature hashing.
#[derive(Debug, Clone)]
pub struct UnsignedTransaction {
    /// The transaction skeleton (empty witnesses).
    pub tx: Transaction,
    /// `(value, script_pubkey)` of each spent output, in input order.
    pub spent: Vec<(Amount, Script)>,
}

impl UnsignedTransaction {
    /// Computes the signature hash for `input_index`, dispatching on the
    /// spent output's template: BIP-143 for P2WPKH (with the implied P2PKH
    /// script code), BIP-341 key path for P2TR, legacy otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `input_index` is out of range.
    pub fn sighash(&self, input_index: usize) -> [u8; 32] {
        assert!(input_index < self.tx.inputs.len(), "input index out of range");
        let (value, script) = &self.spent[input_index];
        match script.classify() {
            ScriptKind::P2wpkh(hash) => {
                let script_code = Script::new_p2pkh(&hash);
                segwit_v0_sighash(&self.tx, input_index, &script_code, *value)
            }
            ScriptKind::P2tr(_) => taproot_key_spend_sighash(&self.tx, input_index, &self.spent),
            _ => legacy_sighash(&self.tx, input_index, script),
        }
    }

    /// Installs a witness stack for `input_index` (e.g. `[signature,
    /// pubkey]` for P2WPKH or `[signature]` for P2TR key spends).
    ///
    /// # Panics
    ///
    /// Panics if `input_index` is out of range.
    pub fn set_witness(&mut self, input_index: usize, witness: Vec<Vec<u8>>) {
        self.tx.inputs[input_index].witness = witness;
    }

    /// Returns the finished transaction.
    pub fn into_transaction(self) -> Transaction {
        self.tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Txid;

    fn wpkh(n: u8) -> Script {
        Script::new_p2wpkh(&[n; 20])
    }

    #[test]
    fn coinbase_txids_differ_by_height_and_nonce() {
        let a = coinbase_transaction(1, Amount::ONE_BTC, wpkh(1), 0);
        let b = coinbase_transaction(2, Amount::ONE_BTC, wpkh(1), 0);
        let c = coinbase_transaction(1, Amount::ONE_BTC, wpkh(1), 1);
        assert!(a.is_coinbase());
        assert_ne!(a.txid(), b.txid());
        assert_ne!(a.txid(), c.txid());
    }

    #[test]
    fn build_with_change() {
        let mut b = TransactionBuilder::new();
        b.add_input(OutPoint::new(Txid([1; 32]), 0), Amount::from_sat(10_000), wpkh(1));
        b.add_output(wpkh(2), Amount::from_sat(6_000));
        b.change_script(wpkh(1));
        b.fee(Amount::from_sat(500));
        let unsigned = b.build().unwrap();
        assert_eq!(unsigned.tx.outputs.len(), 2);
        assert_eq!(unsigned.tx.outputs[1].value, Amount::from_sat(3_500));
        assert_eq!(unsigned.tx.output_value(), Amount::from_sat(9_500));
    }

    #[test]
    fn surplus_below_dust_is_burned() {
        let mut b = TransactionBuilder::new();
        b.add_input(OutPoint::new(Txid([1; 32]), 0), Amount::from_sat(10_100), wpkh(1));
        b.add_output(wpkh(2), Amount::from_sat(10_000));
        b.change_script(wpkh(1));
        b.fee(Amount::ZERO);
        let unsigned = b.build().unwrap();
        assert_eq!(unsigned.tx.outputs.len(), 1, "100 sats surplus is dust");
    }

    #[test]
    fn build_errors() {
        assert_eq!(TransactionBuilder::new().build().unwrap_err(), BuildError::NoInputs);

        let mut b = TransactionBuilder::new();
        b.add_input(OutPoint::new(Txid([1; 32]), 0), Amount::from_sat(100), wpkh(1));
        assert_eq!(b.build().unwrap_err(), BuildError::NoOutputs);

        b.add_output(wpkh(2), Amount::from_sat(200));
        match b.build().unwrap_err() {
            BuildError::InsufficientFunds { available, required } => {
                assert_eq!(available, Amount::from_sat(100));
                assert_eq!(required, Amount::from_sat(200));
            }
            other => panic!("unexpected error {other}"),
        }
        assert!(!b.build().unwrap_err().to_string().is_empty());
    }

    #[test]
    fn sighash_dispatch_per_template() {
        let mut b = TransactionBuilder::new();
        b.add_input(OutPoint::new(Txid([1; 32]), 0), Amount::from_sat(5_000), wpkh(1));
        b.add_input(
            OutPoint::new(Txid([2; 32]), 0),
            Amount::from_sat(5_000),
            Script::new_p2tr(&[7; 32]),
        );
        b.add_input(
            OutPoint::new(Txid([3; 32]), 0),
            Amount::from_sat(5_000),
            Script::new_p2pkh(&[8; 20]),
        );
        b.add_output(wpkh(2), Amount::from_sat(14_000));
        let unsigned = b.build().unwrap();
        let h0 = unsigned.sighash(0);
        let h1 = unsigned.sighash(1);
        let h2 = unsigned.sighash(2);
        assert_ne!(h0, h1);
        assert_ne!(h1, h2);
        assert_ne!(h0, h2);
    }

    #[test]
    fn witness_installation() {
        let mut b = TransactionBuilder::new();
        b.add_input(OutPoint::new(Txid([1; 32]), 0), Amount::from_sat(5_000), wpkh(1));
        b.add_output(wpkh(2), Amount::from_sat(4_000));
        let mut unsigned = b.build().unwrap();
        unsigned.set_witness(0, vec![vec![0xaa; 64], vec![0xbb; 33]]);
        let tx = unsigned.into_transaction();
        assert!(tx.has_witness());
        assert_eq!(tx.inputs[0].witness.len(), 2);
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;

        /// Value conservation: outputs + implied fee == inputs whenever
        /// the build succeeds with a change script.
        #[test]
        fn value_conservation() {
            testkit::check(0xBD_0001, testkit::DEFAULT_CASES, |rng| {
                let in_value = testkit::u64_in(rng, 1_000..10_000_000);
                let pay = testkit::u64_in(rng, 1..5_000_000);
                let fee = testkit::u64_in(rng, 0..10_000);
                let mut b = TransactionBuilder::new();
                b.add_input(OutPoint::new(Txid([1; 32]), 0), Amount::from_sat(in_value), wpkh(1));
                b.add_output(wpkh(2), Amount::from_sat(pay));
                b.change_script(wpkh(3));
                b.fee(Amount::from_sat(fee));
                if let Ok(unsigned) = b.build() {
                    let outputs = unsigned.tx.output_value().to_sat();
                    assert!(outputs + fee <= in_value);
                    // Burned surplus only happens below dust.
                    assert!(in_value - outputs - fee < 546);
                }
            });
        }
    }
}

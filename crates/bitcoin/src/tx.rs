//! Bitcoin transactions: amounts, outpoints, inputs, outputs.

use std::fmt;

use crate::encode::{decode_list, encode_list, Decodable, DecodeError, Encodable, Reader, VarInt};
use crate::hash::{sha256d, Txid};
use crate::script::Script;

/// A Bitcoin amount in satoshis.
///
/// Arithmetic is checked; amounts above [`Amount::MAX_MONEY`] cannot be
/// constructed through checked operations.
///
/// # Examples
///
/// ```
/// use icbtc_bitcoin::Amount;
/// let a = Amount::from_btc_int(1);
/// assert_eq!(a.to_sat(), 100_000_000);
/// assert_eq!(a.checked_add(Amount::from_sat(50)).unwrap().to_sat(), 100_000_050);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Amount(u64);

impl Amount {
    /// Zero satoshis.
    pub const ZERO: Amount = Amount(0);
    /// One satoshi.
    pub const ONE_SAT: Amount = Amount(1);
    /// One bitcoin (10⁸ satoshis).
    pub const ONE_BTC: Amount = Amount(100_000_000);
    /// The 21-million-bitcoin supply cap.
    pub const MAX_MONEY: Amount = Amount(21_000_000 * 100_000_000);

    /// Creates an amount from satoshis.
    pub const fn from_sat(sat: u64) -> Amount {
        Amount(sat)
    }

    /// Creates an amount from a whole number of bitcoins.
    pub const fn from_btc_int(btc: u64) -> Amount {
        Amount(btc * 100_000_000)
    }

    /// Returns the amount in satoshis.
    pub const fn to_sat(self) -> u64 {
        self.0
    }

    /// Returns the amount as a floating-point bitcoin value, for reports.
    pub fn to_btc_f64(self) -> f64 { // icbtc-lint: allow(float) -- display-only conversion; consensus arithmetic stays in integer satoshis
        self.0 as f64 / 1e8
    }

    /// Checked addition; `None` if the sum exceeds [`Amount::MAX_MONEY`].
    pub fn checked_add(self, rhs: Amount) -> Option<Amount> {
        let sum = self.0.checked_add(rhs.0)?;
        if sum > Amount::MAX_MONEY.0 {
            return None;
        }
        Some(Amount(sum))
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: Amount) -> Option<Amount> {
        self.0.checked_sub(rhs.0).map(Amount)
    }

    /// Saturating addition: sums past [`Amount::MAX_MONEY`] clamp to the
    /// cap instead of overflowing. Balance accumulation uses this so a
    /// hostile chain of max-value outputs cannot panic a query.
    pub fn saturating_add(self, rhs: Amount) -> Amount {
        self.checked_add(rhs).unwrap_or(Amount::MAX_MONEY)
    }
}

impl fmt::Display for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:08} BTC", self.0 / 100_000_000, self.0 % 100_000_000)
    }
}

impl std::iter::Sum for Amount {
    fn sum<I: Iterator<Item = Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |acc, a| {
            acc.checked_add(a).expect("amount sum overflow")
        })
    }
}

impl Encodable for Amount {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decodable for Amount {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Amount(u64::decode(r)?))
    }
}

/// A reference to a specific output of a prior transaction.
///
/// # Examples
///
/// ```
/// use icbtc_bitcoin::{OutPoint, Txid};
/// let op = OutPoint::new(Txid::ZERO, 1);
/// assert_eq!(op.vout, 1);
/// assert!(OutPoint::NULL.is_null());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OutPoint {
    /// The transaction holding the output.
    pub txid: Txid,
    /// The output index within that transaction.
    pub vout: u32,
}

impl OutPoint {
    /// The sentinel outpoint used by coinbase inputs.
    pub const NULL: OutPoint = OutPoint { txid: Txid::ZERO, vout: u32::MAX };

    /// Creates an outpoint.
    pub const fn new(txid: Txid, vout: u32) -> OutPoint {
        OutPoint { txid, vout }
    }

    /// Returns `true` if this is the coinbase sentinel.
    pub fn is_null(&self) -> bool {
        *self == OutPoint::NULL
    }
}

impl fmt::Display for OutPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.txid, self.vout)
    }
}

impl Encodable for OutPoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.txid.0.encode(out);
        self.vout.encode(out);
    }
}

impl Decodable for OutPoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(OutPoint { txid: Txid(<[u8; 32]>::decode(r)?), vout: u32::decode(r)? })
    }
}

/// A transaction input: the outpoint it spends plus unlocking data.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct TxIn {
    /// The output being spent.
    pub previous_output: OutPoint,
    /// Legacy unlocking script (empty for segwit spends).
    pub script_sig: Vec<u8>,
    /// Input sequence number.
    pub sequence: u32,
    /// Segwit witness stack (not covered by the txid).
    pub witness: Vec<Vec<u8>>,
}

impl TxIn {
    /// Default sequence marking the input as final.
    pub const SEQUENCE_FINAL: u32 = 0xffff_ffff;

    /// Creates an input spending `previous_output` with an empty witness.
    pub fn new(previous_output: OutPoint) -> TxIn {
        TxIn {
            previous_output,
            script_sig: Vec::new(),
            sequence: TxIn::SEQUENCE_FINAL,
            witness: Vec::new(),
        }
    }
}

impl Encodable for TxIn {
    fn encode(&self, out: &mut Vec<u8>) {
        self.previous_output.encode(out);
        self.script_sig.encode(out);
        self.sequence.encode(out);
    }
}

impl Decodable for TxIn {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TxIn {
            previous_output: OutPoint::decode(r)?,
            script_sig: Vec::<u8>::decode(r)?,
            sequence: u32::decode(r)?,
            witness: Vec::new(),
        })
    }
}

/// A transaction output: an amount locked by a script.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct TxOut {
    /// The amount carried by this output.
    pub value: Amount,
    /// The locking script.
    pub script_pubkey: Script,
}

impl TxOut {
    /// Creates an output.
    pub fn new(value: Amount, script_pubkey: Script) -> TxOut {
        TxOut { value, script_pubkey }
    }
}

impl Encodable for TxOut {
    fn encode(&self, out: &mut Vec<u8>) {
        self.value.encode(out);
        self.script_pubkey.as_bytes().to_vec().encode(out);
    }
}

impl Decodable for TxOut {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TxOut {
            value: Amount::decode(r)?,
            script_pubkey: Script::from_bytes(Vec::<u8>::decode(r)?),
        })
    }
}

/// A Bitcoin transaction.
///
/// Encoding follows consensus rules: the legacy format when no input carries
/// a witness, the BIP-144 segwit format (marker `0x00`, flag `0x01`)
/// otherwise. The [`Transaction::txid`] always commits to the non-witness
/// serialization.
///
/// # Examples
///
/// ```
/// use icbtc_bitcoin::{Amount, OutPoint, Script, Transaction, TxIn, TxOut, Txid};
/// let tx = Transaction {
///     version: 2,
///     inputs: vec![TxIn::new(OutPoint::new(Txid::ZERO, 0))],
///     outputs: vec![TxOut::new(Amount::from_sat(5000), Script::new_op_return(b"hi"))],
///     lock_time: 0,
/// };
/// assert_eq!(tx.txid(), tx.txid()); // deterministic
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Transaction {
    /// Transaction format version.
    pub version: i32,
    /// The inputs consumed.
    pub inputs: Vec<TxIn>,
    /// The outputs created.
    pub outputs: Vec<TxOut>,
    /// Earliest time/height the transaction may be mined.
    pub lock_time: u32,
}

impl Default for Transaction {
    fn default() -> Self {
        Transaction { version: 2, inputs: Vec::new(), outputs: Vec::new(), lock_time: 0 }
    }
}

impl Transaction {
    /// Returns `true` if this is a coinbase transaction (single input
    /// spending the null outpoint).
    pub fn is_coinbase(&self) -> bool {
        self.inputs.len() == 1 && self.inputs[0].previous_output.is_null()
    }

    /// Returns `true` if any input carries witness data.
    pub fn has_witness(&self) -> bool {
        self.inputs.iter().any(|i| !i.witness.is_empty())
    }

    /// Serializes without witness data (the txid preimage).
    pub fn encode_without_witness(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.version.encode(&mut out);
        encode_list(&self.inputs, &mut out);
        encode_list(&self.outputs, &mut out);
        self.lock_time.encode(&mut out);
        out
    }

    /// Computes the transaction id (double SHA-256 of the non-witness
    /// serialization).
    pub fn txid(&self) -> Txid {
        Txid(sha256d(&self.encode_without_witness()))
    }

    /// Computes the witness transaction id (double SHA-256 of the full
    /// serialization); equals [`Transaction::txid`] for non-segwit
    /// transactions.
    pub fn wtxid(&self) -> Txid {
        Txid(sha256d(&self.encode_to_vec()))
    }

    /// Total serialized size in bytes (including witness data).
    pub fn total_size(&self) -> usize {
        self.encoded_len()
    }

    /// Size of the non-witness serialization in bytes.
    pub fn base_size(&self) -> usize {
        self.encode_without_witness().len()
    }

    /// BIP-141 transaction weight: `3 × base size + total size`.
    pub fn weight(&self) -> usize {
        3 * self.base_size() + self.total_size()
    }

    /// Virtual size in vbytes (weight / 4, rounded up), used for fee rates.
    pub fn vsize(&self) -> usize {
        self.weight().div_ceil(4)
    }

    /// Sum of output values.
    ///
    /// # Panics
    ///
    /// Panics if the outputs sum past [`Amount::MAX_MONEY`], which cannot
    /// happen for transactions built through checked arithmetic.
    pub fn output_value(&self) -> Amount {
        self.outputs.iter().map(|o| o.value).sum()
    }
}

impl Encodable for Transaction {
    fn encode(&self, out: &mut Vec<u8>) {
        if !self.has_witness() {
            out.extend_from_slice(&self.encode_without_witness());
            return;
        }
        self.version.encode(out);
        out.push(0x00); // segwit marker
        out.push(0x01); // segwit flag
        encode_list(&self.inputs, out);
        encode_list(&self.outputs, out);
        for input in &self.inputs {
            VarInt(input.witness.len() as u64).encode(out);
            for item in &input.witness {
                item.clone().encode(out);
            }
        }
        self.lock_time.encode(out);
    }
}

impl Decodable for Transaction {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let version = i32::decode(r)?;
        // A 0x00 where the input-count varint would sit marks the segwit
        // format (no transaction has zero inputs in legacy encoding).
        let first = {
            let bytes = r.take(1)?;
            bytes[0]
        };
        if first == 0x00 {
            let flag = r.take(1)?[0];
            if flag != 0x01 {
                return Err(DecodeError::InvalidValue("segwit flag"));
            }
            let mut inputs: Vec<TxIn> = decode_list(r)?;
            let outputs: Vec<TxOut> = decode_list(r)?;
            for input in &mut inputs {
                let items = VarInt::decode(r)?.0;
                if items > 1000 {
                    return Err(DecodeError::OversizedLength(items));
                }
                for _ in 0..items {
                    input.witness.push(Vec::<u8>::decode(r)?);
                }
            }
            let lock_time = u32::decode(r)?;
            Ok(Transaction { version, inputs, outputs, lock_time })
        } else {
            // Legacy: the byte we consumed is the input-count varint tag.
            let count = match first {
                0xfd => {
                    let v = u16::from_le_bytes(r.take_array()?) as u64;
                    if v < 0xfd {
                        return Err(DecodeError::NonCanonicalVarInt);
                    }
                    v
                }
                0xfe => {
                    let v = u32::from_le_bytes(r.take_array()?) as u64;
                    if v <= 0xffff {
                        return Err(DecodeError::NonCanonicalVarInt);
                    }
                    v
                }
                0xff => return Err(DecodeError::OversizedLength(u64::MAX)),
                b => b as u64,
            };
            if count > 100_000 {
                return Err(DecodeError::OversizedLength(count));
            }
            let mut inputs = Vec::with_capacity(count.min(1024) as usize);
            for _ in 0..count {
                inputs.push(TxIn::decode(r)?);
            }
            let outputs: Vec<TxOut> = decode_list(r)?;
            let lock_time = u32::decode(r)?;
            Ok(Transaction { version, inputs, outputs, lock_time })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Script;

    fn sample_tx(witness: bool) -> Transaction {
        let mut input = TxIn::new(OutPoint::new(Txid([7; 32]), 3));
        if witness {
            input.witness = vec![vec![1, 2, 3], vec![4; 33]];
        }
        Transaction {
            version: 2,
            inputs: vec![input],
            outputs: vec![
                TxOut::new(Amount::from_sat(1234), Script::new_p2wpkh(&[9; 20])),
                TxOut::new(Amount::from_sat(999), Script::new_op_return(b"x")),
            ],
            lock_time: 101,
        }
    }

    #[test]
    fn amount_arithmetic() {
        assert_eq!(Amount::from_btc_int(2).to_sat(), 200_000_000);
        assert_eq!(Amount::MAX_MONEY.checked_add(Amount::ONE_SAT), None);
        assert_eq!(Amount::MAX_MONEY.saturating_add(Amount::ONE_SAT), Amount::MAX_MONEY);
        assert_eq!(
            Amount::from_sat(Amount::MAX_MONEY.to_sat() - 1).saturating_add(Amount::from_sat(7)),
            Amount::MAX_MONEY
        );
        assert_eq!(
            Amount::from_sat(1).saturating_add(Amount::from_sat(2)),
            Amount::from_sat(3),
            "below the cap it is ordinary addition"
        );
        assert_eq!(Amount::ZERO.checked_sub(Amount::ONE_SAT), None);
        assert_eq!(
            Amount::from_sat(10).checked_sub(Amount::from_sat(4)),
            Some(Amount::from_sat(6))
        );
        let total: Amount = [Amount::from_sat(1), Amount::from_sat(2)].into_iter().sum();
        assert_eq!(total, Amount::from_sat(3));
        assert_eq!(Amount::ONE_BTC.to_string(), "1.00000000 BTC");
        assert!((Amount::from_sat(150_000_000).to_btc_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn outpoint_null_and_display() {
        assert!(OutPoint::NULL.is_null());
        assert!(!OutPoint::new(Txid([1; 32]), 0).is_null());
        assert!(OutPoint::NULL.to_string().contains(':'));
    }

    #[test]
    fn legacy_roundtrip() {
        let tx = sample_tx(false);
        let bytes = tx.encode_to_vec();
        let back = Transaction::decode_exact(&bytes).unwrap();
        assert_eq!(back, tx);
        assert_eq!(back.txid(), tx.txid());
        // Legacy: txid == wtxid, base == total size.
        assert_eq!(tx.txid(), tx.wtxid());
        assert_eq!(tx.base_size(), tx.total_size());
        assert_eq!(tx.weight(), 4 * tx.base_size());
    }

    #[test]
    fn segwit_roundtrip() {
        let tx = sample_tx(true);
        let bytes = tx.encode_to_vec();
        assert_eq!(bytes[4], 0x00, "segwit marker");
        assert_eq!(bytes[5], 0x01, "segwit flag");
        let back = Transaction::decode_exact(&bytes).unwrap();
        assert_eq!(back, tx);
        // Witness affects wtxid but not txid.
        let mut stripped = tx.clone();
        stripped.inputs[0].witness.clear();
        assert_eq!(stripped.txid(), tx.txid());
        assert_ne!(tx.txid(), tx.wtxid());
        assert!(tx.total_size() > tx.base_size());
        assert!(tx.vsize() < tx.total_size());
    }

    #[test]
    fn coinbase_detection() {
        let mut tx = sample_tx(false);
        assert!(!tx.is_coinbase());
        tx.inputs = vec![TxIn::new(OutPoint::NULL)];
        assert!(tx.is_coinbase());
    }

    #[test]
    fn output_value_sums() {
        let tx = sample_tx(false);
        assert_eq!(tx.output_value(), Amount::from_sat(2233));
    }

    #[test]
    fn bad_segwit_flag_rejected() {
        let tx = sample_tx(true);
        let mut bytes = tx.encode_to_vec();
        bytes[5] = 0x02;
        assert!(matches!(
            Transaction::decode_exact(&bytes),
            Err(DecodeError::InvalidValue(_))
        ));
    }

    #[test]
    fn truncated_tx_rejected() {
        let bytes = sample_tx(true).encode_to_vec();
        for cut in [1, 5, 10, bytes.len() - 1] {
            assert!(Transaction::decode_exact(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;
        use icbtc_sim::SimRng;

        fn arb_txin(rng: &mut SimRng) -> TxIn {
            TxIn {
                previous_output: OutPoint::new(Txid(testkit::byte_array(rng)), testkit::u32_any(rng)),
                script_sig: testkit::bytes(rng, 0..40),
                sequence: testkit::u32_any(rng),
                witness: testkit::vec_with(rng, 0..4, |r| testkit::bytes(r, 0..40)),
            }
        }

        fn arb_txout(rng: &mut SimRng) -> TxOut {
            let v = testkit::u64_in(rng, 0..Amount::MAX_MONEY.to_sat());
            TxOut::new(Amount::from_sat(v), Script::from_bytes(testkit::bytes(rng, 0..40)))
        }

        fn arb_tx(rng: &mut SimRng) -> Transaction {
            Transaction {
                version: testkit::i32_any(rng),
                inputs: testkit::vec_with(rng, 1..5, arb_txin),
                outputs: testkit::vec_with(rng, 1..5, arb_txout),
                lock_time: testkit::u32_any(rng),
            }
        }

        /// Wire encoding round-trips for arbitrary transactions.
        #[test]
        fn tx_roundtrip() {
            testkit::check(0x7C_0001, testkit::DEFAULT_CASES, |rng| {
                let tx = arb_tx(rng);
                let bytes = tx.encode_to_vec();
                let back = Transaction::decode_exact(&bytes).unwrap();
                assert_eq!(back, tx);
            });
        }

        /// The txid never depends on witness data.
        #[test]
        fn txid_ignores_witness() {
            testkit::check(0x7C_0002, testkit::DEFAULT_CASES, |rng| {
                let mut tx = arb_tx(rng);
                let before = tx.txid();
                for input in &mut tx.inputs {
                    input.witness.clear();
                }
                assert_eq!(tx.txid(), before);
            });
        }

        /// Weight identity: weight = 3*base + total, vsize = ceil(w/4).
        #[test]
        fn weight_identity() {
            testkit::check(0x7C_0003, testkit::DEFAULT_CASES, |rng| {
                let tx = arb_tx(rng);
                assert_eq!(tx.weight(), 3 * tx.base_size() + tx.total_size());
                assert_eq!(tx.vsize(), tx.weight().div_ceil(4));
            });
        }
    }
}

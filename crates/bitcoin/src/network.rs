//! Network parameters and deterministic genesis blocks.
//!
//! The three networks mirror the paper's deployment targets (§III-C: the
//! Bitcoin canister serves mainnet, testnet and regtest). Because this
//! workspace *simulates* the Bitcoin network, the proof-of-work limits are
//! scaled down so that block production costs a handful of hashes; all
//! stability arithmetic is relative to per-block work, which this scaling
//! preserves (see DESIGN.md §1).

use std::fmt;
use std::sync::OnceLock;

use crate::block::{merkle_root, Block, BlockHeader};
use crate::hash::BlockHash;
use crate::pow::CompactTarget;
use crate::script::Script;
use crate::tx::{Amount, OutPoint, Transaction, TxIn, TxOut};

/// The Bitcoin network a component operates on.
///
/// # Examples
///
/// ```
/// use icbtc_bitcoin::Network;
/// let genesis = Network::Mainnet.genesis_block();
/// assert!(genesis.header.meets_pow_target());
/// assert_eq!(genesis.header.prev_blockhash, icbtc_bitcoin::BlockHash::ZERO);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Network {
    /// The simulated main network.
    Mainnet,
    /// The simulated test network.
    Testnet,
    /// Local-testing network with near-trivial difficulty.
    Regtest,
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Network::Mainnet => write!(f, "mainnet"),
            Network::Testnet => write!(f, "testnet"),
            Network::Regtest => write!(f, "regtest"),
        }
    }
}

/// Consensus parameters for a network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// The network these parameters describe.
    pub network: Network,
    /// Easiest allowed target in compact form.
    pub pow_limit: CompactTarget,
    /// Blocks per difficulty retarget interval.
    pub retarget_interval: u32,
    /// Intended seconds between blocks.
    pub target_spacing_secs: u64,
    /// Base58 version byte for P2PKH addresses.
    pub p2pkh_version: u8,
    /// Base58 version byte for P2SH addresses.
    pub p2sh_version: u8,
    /// Bech32 human-readable part for segwit addresses.
    pub bech32_hrp: &'static str,
    /// Coinbase subsidy paid per block in the simulation.
    pub block_subsidy: Amount,
}

impl Params {
    /// Returns the parameters for `network`.
    pub const fn for_network(network: Network) -> Params {
        match network {
            Network::Mainnet => Params {
                network,
                // Scaled-down difficulty: ~2^16 hashes expected per block.
                pow_limit: CompactTarget::from_consensus(0x1f00ffff),
                retarget_interval: 2016,
                target_spacing_secs: 600,
                p2pkh_version: 0x00,
                p2sh_version: 0x05,
                bech32_hrp: "bc",
                block_subsidy: Amount::from_btc_int(3),
            },
            Network::Testnet => Params {
                network,
                pow_limit: CompactTarget::from_consensus(0x2000ffff),
                retarget_interval: 2016,
                target_spacing_secs: 600,
                p2pkh_version: 0x6f,
                p2sh_version: 0xc4,
                bech32_hrp: "tb",
                block_subsidy: Amount::from_btc_int(3),
            },
            Network::Regtest => Params {
                network,
                pow_limit: CompactTarget::from_consensus(0x207fffff),
                retarget_interval: 2016,
                target_spacing_secs: 600,
                p2pkh_version: 0x6f,
                p2sh_version: 0xc4,
                bech32_hrp: "bcrt",
                block_subsidy: Amount::from_btc_int(50),
            },
        }
    }

    /// Expected seconds per retarget interval.
    pub const fn expected_timespan_secs(&self) -> u64 {
        self.retarget_interval as u64 * self.target_spacing_secs
    }
}

impl Network {
    /// Returns the consensus parameters for this network.
    pub const fn params(self) -> Params {
        Params::for_network(self)
    }

    /// Returns the canonical genesis block, mined deterministically on
    /// first use and cached.
    pub fn genesis_block(self) -> &'static Block {
        static MAINNET: OnceLock<Block> = OnceLock::new();
        static TESTNET: OnceLock<Block> = OnceLock::new();
        static REGTEST: OnceLock<Block> = OnceLock::new();
        let cell = match self {
            Network::Mainnet => &MAINNET,
            Network::Testnet => &TESTNET,
            Network::Regtest => &REGTEST,
        };
        cell.get_or_init(|| mine_genesis(self))
    }

    /// Returns the genesis block hash.
    pub fn genesis_hash(self) -> BlockHash {
        self.genesis_block().block_hash()
    }
}

/// Deterministically mines the genesis block for `network` by scanning
/// nonces from zero. With the scaled-down pow limits this takes well under
/// a millisecond.
fn mine_genesis(network: Network) -> Block {
    let params = network.params();
    let message = format!("icbtc {network} genesis: chancellor on brink of second bailout");
    let coinbase = Transaction {
        version: 1,
        inputs: vec![TxIn {
            previous_output: OutPoint::NULL,
            script_sig: message.into_bytes(),
            sequence: TxIn::SEQUENCE_FINAL,
            witness: Vec::new(),
        }],
        outputs: vec![TxOut::new(params.block_subsidy, Script::new_op_return(b"genesis"))],
        lock_time: 0,
    };
    let merkle = merkle_root(&[coinbase.txid()]);
    let mut header = BlockHeader {
        version: 1,
        prev_blockhash: BlockHash::ZERO,
        merkle_root: merkle,
        time: 1_700_000_000,
        bits: params.pow_limit,
        nonce: 0,
    };
    loop {
        if header.meets_pow_target() {
            return Block { header, txdata: vec![coinbase] };
        }
        header.nonce = header
            .nonce
            .checked_add(1)
            .expect("genesis nonce space exhausted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_blocks_are_valid_and_distinct() {
        let mainnet = Network::Mainnet.genesis_block();
        let testnet = Network::Testnet.genesis_block();
        let regtest = Network::Regtest.genesis_block();
        for block in [mainnet, testnet, regtest] {
            assert!(block.header.meets_pow_target());
            assert!(block.is_well_formed());
            assert_eq!(block.header.prev_blockhash, BlockHash::ZERO);
        }
        assert_ne!(mainnet.block_hash(), testnet.block_hash());
        assert_ne!(testnet.block_hash(), regtest.block_hash());
    }

    #[test]
    fn genesis_is_cached_and_deterministic() {
        let a = Network::Regtest.genesis_hash();
        let b = Network::Regtest.genesis_hash();
        assert_eq!(a, b);
        assert!(std::ptr::eq(Network::Regtest.genesis_block(), Network::Regtest.genesis_block()));
    }

    #[test]
    fn params_sanity() {
        for network in [Network::Mainnet, Network::Testnet, Network::Regtest] {
            let p = network.params();
            assert_eq!(p.network, network);
            assert_eq!(p.expected_timespan_secs(), 2016 * 600);
            assert!(!p.pow_limit.to_target().is_zero());
            assert!(p.block_subsidy > Amount::ZERO);
        }
        // Regtest is easier than mainnet-sim.
        assert!(
            Network::Regtest.params().pow_limit.to_target()
                > Network::Mainnet.params().pow_limit.to_target()
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Network::Mainnet.to_string(), "mainnet");
        assert_eq!(Network::Testnet.to_string(), "testnet");
        assert_eq!(Network::Regtest.to_string(), "regtest");
    }
}

//! Block headers, blocks, and Merkle roots.

use std::fmt;

use crate::encode::{decode_list, encode_list, Decodable, DecodeError, Encodable, Reader};
use crate::hash::{sha256d, BlockHash, MerkleRoot};
use crate::pow::{CompactTarget, Work};
use crate::tx::Transaction;
use crate::u256::U256;

/// The 80-byte Bitcoin block header.
///
/// # Examples
///
/// ```
/// use icbtc_bitcoin::encode::Encodable;
/// use icbtc_bitcoin::Network;
/// let genesis = Network::Regtest.genesis_block();
/// assert_eq!(genesis.header.encode_to_vec().len(), 80);
/// assert!(genesis.header.meets_pow_target());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockHeader {
    /// Block format version.
    pub version: i32,
    /// Hash of the predecessor block.
    pub prev_blockhash: BlockHash,
    /// Merkle root over the block's transactions.
    pub merkle_root: MerkleRoot,
    /// Claimed creation time (Unix seconds).
    pub time: u32,
    /// Difficulty target in compact form.
    pub bits: CompactTarget,
    /// Proof-of-work nonce.
    pub nonce: u32,
}

impl BlockHeader {
    /// Computes the block hash (double SHA-256 of the 80-byte header).
    pub fn block_hash(&self) -> BlockHash {
        BlockHash(sha256d(&self.encode_to_vec()))
    }

    /// Returns the expanded difficulty target.
    pub fn target(&self) -> U256 {
        self.bits.to_target()
    }

    /// Returns the hash work `w(b)` of this block.
    pub fn work(&self) -> Work {
        self.bits.work()
    }

    /// Checks the proof of work: the block hash, interpreted as a
    /// little-endian 256-bit number, must not exceed the target.
    pub fn meets_pow_target(&self) -> bool {
        let hash_value = U256::from_le_bytes(self.block_hash().to_bytes());
        let target = self.target();
        !target.is_zero() && hash_value <= target
    }
}

impl Encodable for BlockHeader {
    fn encode(&self, out: &mut Vec<u8>) {
        self.version.encode(out);
        self.prev_blockhash.0.encode(out);
        self.merkle_root.0.encode(out);
        self.time.encode(out);
        self.bits.to_consensus().encode(out);
        self.nonce.encode(out);
    }
}

impl Decodable for BlockHeader {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BlockHeader {
            version: i32::decode(r)?,
            prev_blockhash: BlockHash(<[u8; 32]>::decode(r)?),
            merkle_root: MerkleRoot(<[u8; 32]>::decode(r)?),
            time: u32::decode(r)?,
            bits: CompactTarget::from_consensus(u32::decode(r)?),
            nonce: u32::decode(r)?,
        })
    }
}

impl fmt::Display for BlockHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "header {} (prev {})", self.block_hash(), self.prev_blockhash)
    }
}

/// Computes the Merkle root over a list of transaction ids.
///
/// Follows Bitcoin's rule of duplicating the last node at odd levels; the
/// root over an empty list is defined as all-zero (only used for sanity
/// checks — real blocks always have a coinbase).
pub fn merkle_root(txids: &[crate::hash::Txid]) -> MerkleRoot {
    if txids.is_empty() {
        return MerkleRoot::ZERO;
    }
    let mut level: Vec<[u8; 32]> = txids.iter().map(|t| t.to_bytes()).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            let left = pair[0];
            let right = *pair.get(1).unwrap_or(&pair[0]);
            let mut concat = [0u8; 64];
            concat[..32].copy_from_slice(&left);
            concat[32..].copy_from_slice(&right);
            next.push(sha256d(&concat));
        }
        level = next;
    }
    MerkleRoot(level[0])
}

/// A full block: header plus transactions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// The block header.
    pub header: BlockHeader,
    /// The transactions, coinbase first.
    pub txdata: Vec<Transaction>,
}

impl Block {
    /// Returns the block hash.
    pub fn block_hash(&self) -> BlockHash {
        self.header.block_hash()
    }

    /// Recomputes the Merkle root over `txdata`.
    pub fn compute_merkle_root(&self) -> MerkleRoot {
        let txids: Vec<_> = self.txdata.iter().map(|t| t.txid()).collect();
        merkle_root(&txids)
    }

    /// Returns `true` if the header's Merkle root matches the transactions.
    pub fn check_merkle_root(&self) -> bool {
        self.header.merkle_root == self.compute_merkle_root()
    }

    /// Structural well-formedness: at least one transaction, the first (and
    /// only the first) is a coinbase, and the Merkle root matches. This is
    /// the block-validity check both the adapter and the canister perform
    /// (§III-B / §III-C); transaction *spend* validity is deliberately not
    /// checked, as in the paper.
    pub fn is_well_formed(&self) -> bool {
        if self.txdata.is_empty() || !self.txdata[0].is_coinbase() {
            return false;
        }
        if self.txdata[1..].iter().any(Transaction::is_coinbase) {
            return false;
        }
        self.check_merkle_root()
    }

    /// Total serialized size in bytes.
    pub fn total_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encodable for Block {
    fn encode(&self, out: &mut Vec<u8>) {
        self.header.encode(out);
        encode_list(&self.txdata, out);
    }
}

impl Decodable for Block {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Block { header: BlockHeader::decode(r)?, txdata: decode_list(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Txid;
    use crate::network::Network;
    use crate::tx::{OutPoint, TxIn};

    fn coinbase() -> Transaction {
        Transaction {
            version: 2,
            inputs: vec![TxIn::new(OutPoint::NULL)],
            outputs: vec![],
            lock_time: 0,
        }
    }

    #[test]
    fn header_is_80_bytes_and_roundtrips() {
        let genesis = Network::Regtest.genesis_block();
        let bytes = genesis.header.encode_to_vec();
        assert_eq!(bytes.len(), 80);
        let back = BlockHeader::decode_exact(&bytes).unwrap();
        assert_eq!(back, genesis.header);
        assert_eq!(back.block_hash(), genesis.block_hash());
    }

    #[test]
    fn merkle_single_tx_is_txid() {
        let txid = Txid([9; 32]);
        assert_eq!(merkle_root(&[txid]).0, txid.0);
    }

    #[test]
    fn merkle_known_pair() {
        // For two leaves the root is sha256d(l || r).
        let a = Txid([1; 32]);
        let b = Txid([2; 32]);
        let mut concat = [0u8; 64];
        concat[..32].copy_from_slice(&a.0);
        concat[32..].copy_from_slice(&b.0);
        assert_eq!(merkle_root(&[a, b]).0, sha256d(&concat));
    }

    #[test]
    fn merkle_odd_count_duplicates_last() {
        let a = Txid([1; 32]);
        let b = Txid([2; 32]);
        let c = Txid([3; 32]);
        assert_eq!(merkle_root(&[a, b, c]), merkle_root(&[a, b, c, c]));
        assert_ne!(merkle_root(&[a, b, c]), merkle_root(&[a, b]));
    }

    #[test]
    fn merkle_empty_is_zero() {
        assert_eq!(merkle_root(&[]), MerkleRoot::ZERO);
    }

    #[test]
    fn block_well_formedness() {
        let genesis = Network::Regtest.genesis_block();
        assert!(genesis.is_well_formed());

        // Tampering with the merkle root breaks it.
        let mut bad = genesis.clone();
        bad.header.merkle_root = MerkleRoot([1; 32]);
        assert!(!bad.is_well_formed());

        // A block without a coinbase is malformed.
        let mut no_cb = genesis.clone();
        no_cb.txdata.clear();
        assert!(!no_cb.is_well_formed());

        // A second coinbase is malformed even with a fixed-up merkle root.
        let mut two_cb = genesis.clone();
        two_cb.txdata.push(coinbase());
        two_cb.header.merkle_root = two_cb.compute_merkle_root();
        assert!(!two_cb.is_well_formed());
    }

    #[test]
    fn block_roundtrip() {
        let genesis = Network::Regtest.genesis_block();
        let bytes = genesis.encode_to_vec();
        let back = Block::decode_exact(&bytes).unwrap();
        assert_eq!(&back, genesis);
        assert_eq!(back.total_size(), bytes.len());
    }

    #[test]
    fn pow_check_rejects_tampered_nonce() {
        let genesis = Network::Regtest.genesis_block();
        assert!(genesis.header.meets_pow_target());
        let mut tampered = genesis.header;
        // Regtest's target accepts ~50% of hashes, so step the nonce until
        // the check genuinely fails.
        let mut failed = false;
        for delta in 1..64 {
            tampered.nonce = genesis.header.nonce.wrapping_add(delta);
            if !tampered.meets_pow_target() {
                failed = true;
                break;
            }
        }
        assert!(failed, "tampering never violated the target");
    }

    #[test]
    fn work_positive() {
        let genesis = Network::Regtest.genesis_block();
        assert!(genesis.header.work() > Work::ZERO);
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;

        /// The Merkle root changes if any leaf changes.
        #[test]
        fn merkle_sensitive_to_leaves() {
            testkit::check(0xB1_0001, testkit::DEFAULT_CASES, |rng| {
                let txids: Vec<Txid> =
                    testkit::vec_with(rng, 1..20, |r| Txid(testkit::byte_array(r)));
                let root = merkle_root(&txids);
                let mut mutated = txids.clone();
                let idx = rng.index(mutated.len());
                mutated[idx].0[0] ^= 0xff;
                assert_ne!(merkle_root(&mutated), root);
            });
        }

        /// Header encode/decode round-trips.
        #[test]
        fn header_roundtrip() {
            testkit::check(0xB1_0002, testkit::DEFAULT_CASES, |rng| {
                let header = BlockHeader {
                    version: testkit::i32_any(rng),
                    prev_blockhash: BlockHash(testkit::byte_array(rng)),
                    merkle_root: MerkleRoot(testkit::byte_array(rng)),
                    time: testkit::u32_any(rng),
                    bits: CompactTarget::from_consensus(testkit::u32_any(rng)),
                    nonce: testkit::u32_any(rng),
                };
                let back = BlockHeader::decode_exact(&header.encode_to_vec()).unwrap();
                assert_eq!(back, header);
            });
        }
    }
}

//! Bitcoin wire-format serialization.
//!
//! Implements the consensus encoding used by the Bitcoin P2P protocol:
//! little-endian fixed-width integers, `CompactSize` variable-length
//! integers, and length-prefixed collections. The [`Encodable`] /
//! [`Decodable`] pair is implemented by every wire type in this crate
//! (transactions, headers, blocks).

use std::fmt;

/// Error returned when decoding malformed wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEnd,
    /// A `CompactSize` used a longer-than-necessary encoding.
    NonCanonicalVarInt,
    /// A length prefix exceeded the sanity limit.
    OversizedLength(u64),
    /// A value violated a domain constraint (e.g. an unknown enum tag).
    InvalidValue(&'static str),
    /// Trailing bytes remained after a complete decode.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::NonCanonicalVarInt => write!(f, "non-canonical compact size encoding"),
            DecodeError::OversizedLength(n) => write!(f, "length prefix {n} exceeds sanity limit"),
            DecodeError::InvalidValue(what) => write!(f, "invalid value: {what}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Maximum number of elements accepted in a length-prefixed collection.
/// Matches Bitcoin Core's `MAX_SIZE` sanity limit order of magnitude.
const MAX_COLLECTION_LEN: u64 = 4_000_000;

/// A cursor over wire bytes being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Returns the number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consumes and returns the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consumes a fixed-size array.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if fewer than `N` bytes remain.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }
}

/// A type that can be serialized to Bitcoin wire format.
pub trait Encodable {
    /// Appends the wire encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Returns the encoded size in bytes.
    fn encoded_len(&self) -> usize {
        self.encode_to_vec().len()
    }
}

/// A type that can be deserialized from Bitcoin wire format.
pub trait Decodable: Sized {
    /// Decodes a value from the reader, advancing it.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the bytes are truncated or malformed.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Decodes a value that must consume the entire input.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::TrailingBytes`] if input remains after the
    /// value, in addition to the errors of [`Decodable::decode`].
    fn decode_exact(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        if r.remaining() > 0 {
            return Err(DecodeError::TrailingBytes(r.remaining()));
        }
        Ok(value)
    }
}

macro_rules! impl_int_codec {
    ($($ty:ty),*) => {
        $(
            impl Encodable for $ty {
                fn encode(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }
            }
            impl Decodable for $ty {
                fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                    Ok(<$ty>::from_le_bytes(r.take_array()?))
                }
            }
        )*
    };
}

impl_int_codec!(u8, u16, u32, u64, i32, i64);

impl Encodable for [u8; 32] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl Decodable for [u8; 32] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.take_array()
    }
}

/// A Bitcoin `CompactSize` variable-length integer.
///
/// # Examples
///
/// ```
/// use icbtc_bitcoin::encode::{Decodable, Encodable, VarInt};
/// let v = VarInt(300);
/// let bytes = v.encode_to_vec();
/// assert_eq!(bytes, vec![0xfd, 0x2c, 0x01]);
/// assert_eq!(VarInt::decode_exact(&bytes).unwrap(), v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VarInt(pub u64);

impl Encodable for VarInt {
    fn encode(&self, out: &mut Vec<u8>) {
        match self.0 {
            0..=0xfc => out.push(self.0 as u8),
            0xfd..=0xffff => {
                out.push(0xfd);
                out.extend_from_slice(&(self.0 as u16).to_le_bytes());
            }
            0x1_0000..=0xffff_ffff => {
                out.push(0xfe);
                out.extend_from_slice(&(self.0 as u32).to_le_bytes());
            }
            _ => {
                out.push(0xff);
                out.extend_from_slice(&self.0.to_le_bytes());
            }
        }
    }
}

impl Decodable for VarInt {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = r.take_array::<1>()?[0];
        let value = match tag {
            0xfd => {
                let v = u16::from_le_bytes(r.take_array()?) as u64;
                if v < 0xfd {
                    return Err(DecodeError::NonCanonicalVarInt);
                }
                v
            }
            0xfe => {
                let v = u32::from_le_bytes(r.take_array()?) as u64;
                if v <= 0xffff {
                    return Err(DecodeError::NonCanonicalVarInt);
                }
                v
            }
            0xff => {
                let v = u64::from_le_bytes(r.take_array()?);
                if v <= 0xffff_ffff {
                    return Err(DecodeError::NonCanonicalVarInt);
                }
                v
            }
            b => b as u64,
        };
        Ok(VarInt(value))
    }
}

impl Encodable for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        VarInt(self.len() as u64).encode(out);
        out.extend_from_slice(self);
    }
}

impl Decodable for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = VarInt::decode(r)?.0;
        if len > MAX_COLLECTION_LEN {
            return Err(DecodeError::OversizedLength(len));
        }
        Ok(r.take(len as usize)?.to_vec())
    }
}

/// Encodes a length-prefixed list of encodable items.
pub fn encode_list<T: Encodable>(items: &[T], out: &mut Vec<u8>) {
    VarInt(items.len() as u64).encode(out);
    for item in items {
        item.encode(out);
    }
}

/// Decodes a length-prefixed list of decodable items.
///
/// # Errors
///
/// Returns [`DecodeError::OversizedLength`] for absurd length prefixes and
/// propagates element decode errors.
pub fn decode_list<T: Decodable>(r: &mut Reader<'_>) -> Result<Vec<T>, DecodeError> {
    let len = VarInt::decode(r)?.0;
    if len > MAX_COLLECTION_LEN {
        return Err(DecodeError::OversizedLength(len));
    }
    let mut items = Vec::with_capacity(len.min(1024) as usize);
    for _ in 0..len {
        items.push(T::decode(r)?);
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrips() {
        let mut out = Vec::new();
        0xdeadbeefu32.encode(&mut out);
        assert_eq!(out, vec![0xef, 0xbe, 0xad, 0xde]);
        assert_eq!(u32::decode_exact(&out).unwrap(), 0xdeadbeef);
        assert_eq!(u64::decode_exact(&42u64.encode_to_vec()).unwrap(), 42);
        assert_eq!(i32::decode_exact(&(-7i32).encode_to_vec()).unwrap(), -7);
    }

    #[test]
    fn varint_boundaries() {
        let cases: &[(u64, usize)] = &[
            (0, 1),
            (0xfc, 1),
            (0xfd, 3),
            (0xffff, 3),
            (0x1_0000, 5),
            (0xffff_ffff, 5),
            (0x1_0000_0000, 9),
            (u64::MAX, 9),
        ];
        for &(value, size) in cases {
            let bytes = VarInt(value).encode_to_vec();
            assert_eq!(bytes.len(), size, "size of {value}");
            assert_eq!(VarInt::decode_exact(&bytes).unwrap(), VarInt(value));
        }
    }

    #[test]
    fn varint_rejects_non_canonical() {
        // 1 encoded as 3 bytes.
        assert_eq!(
            VarInt::decode_exact(&[0xfd, 0x01, 0x00]),
            Err(DecodeError::NonCanonicalVarInt)
        );
        assert_eq!(
            VarInt::decode_exact(&[0xfe, 0x01, 0x00, 0x00, 0x00]),
            Err(DecodeError::NonCanonicalVarInt)
        );
        assert_eq!(
            VarInt::decode_exact(&[0xff, 1, 0, 0, 0, 0, 0, 0, 0]),
            Err(DecodeError::NonCanonicalVarInt)
        );
    }

    #[test]
    fn truncated_input_errors() {
        assert_eq!(u32::decode_exact(&[1, 2]), Err(DecodeError::UnexpectedEnd));
        assert_eq!(VarInt::decode_exact(&[0xfd, 0x01]), Err(DecodeError::UnexpectedEnd));
        assert_eq!(Vec::<u8>::decode_exact(&[5, 1, 2]), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn trailing_bytes_detected() {
        assert_eq!(u8::decode_exact(&[1, 2]), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn byte_vec_roundtrip() {
        let v: Vec<u8> = (0..300).map(|i| i as u8).collect();
        let encoded = v.encode_to_vec();
        // 300 needs a 3-byte varint prefix.
        assert_eq!(encoded.len(), 303);
        assert_eq!(Vec::<u8>::decode_exact(&encoded).unwrap(), v);
    }

    #[test]
    fn oversized_length_rejected() {
        let mut bytes = Vec::new();
        VarInt(MAX_COLLECTION_LEN + 1).encode(&mut bytes);
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            Vec::<u8>::decode(&mut r),
            Err(DecodeError::OversizedLength(_))
        ));
    }

    #[test]
    fn list_roundtrip() {
        let items: Vec<u32> = vec![1, 2, 3, 0xffff_ffff];
        let mut out = Vec::new();
        encode_list(&items, &mut out);
        let mut r = Reader::new(&out);
        let back: Vec<u32> = decode_list(&mut r).unwrap();
        assert_eq!(back, items);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            DecodeError::UnexpectedEnd,
            DecodeError::NonCanonicalVarInt,
            DecodeError::OversizedLength(9),
            DecodeError::InvalidValue("tag"),
            DecodeError::TrailingBytes(3),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;

        #[test]
        fn varint_roundtrip() {
            testkit::check(0xE2_0001, testkit::DEFAULT_CASES, |rng| {
                let v = testkit::u64_any(rng);
                let bytes = VarInt(v).encode_to_vec();
                assert_eq!(VarInt::decode_exact(&bytes).unwrap(), VarInt(v));
            });
        }

        #[test]
        fn varint_encoding_is_minimal() {
            testkit::check(0xE2_0002, testkit::DEFAULT_CASES, |rng| {
                let v = testkit::u64_any(rng);
                let len = VarInt(v).encode_to_vec().len();
                let expected = match v {
                    0..=0xfc => 1,
                    0xfd..=0xffff => 3,
                    0x1_0000..=0xffff_ffff => 5,
                    _ => 9,
                };
                assert_eq!(len, expected);
            });
        }

        #[test]
        fn bytes_roundtrip() {
            testkit::check(0xE2_0003, testkit::DEFAULT_CASES, |rng| {
                let v = testkit::bytes(rng, 0..600);
                assert_eq!(Vec::<u8>::decode_exact(&v.encode_to_vec()).unwrap(), v);
            });
        }
    }
}

//! From-scratch Bitcoin data model for the icbtc workspace.
//!
//! This crate is the Bitcoin substrate of the reproduction of *"Enabling
//! Bitcoin Smart Contracts on the Internet Computer"* (ICDCS 2025): the
//! data structures and consensus arithmetic the paper's Bitcoin adapter
//! (§III-B) and Bitcoin canister (§III-C) operate on.
//!
//! * [`hash`] — SHA-256, double SHA-256, HMAC-SHA-256, RIPEMD-160 and
//!   BIP-340 tagged hashes, implemented from scratch with standard test
//!   vectors, plus the [`Txid`]/[`BlockHash`]/[`MerkleRoot`] newtypes.
//! * [`encode`] — Bitcoin wire serialization (little-endian integers,
//!   `CompactSize` varints, length-prefixed lists).
//! * [`tx`] — transactions, inputs/outputs, [`Amount`] arithmetic.
//! * [`script`] — standard locking-script templates and the three
//!   signature-hash algorithms (legacy, BIP-143, BIP-341 key path).
//! * [`address`] — Base58Check and Bech32/Bech32m addresses.
//! * [`block`] — headers, blocks, Merkle roots.
//! * [`pow`] — compact targets, chain work, retargeting, median time past.
//! * [`network`] — mainnet/testnet/regtest parameters and deterministic
//!   genesis blocks (difficulty scaled down for simulation; see DESIGN.md).
//! * [`builder`] — transaction construction for miners and contracts.
//! * [`U256`] — the 256-bit integer underlying targets and chain work.
//!
//! # Examples
//!
//! ```
//! use icbtc_bitcoin::{Address, AddressKind, Network};
//!
//! // The deterministic simulated genesis block satisfies its own target.
//! let genesis = Network::Regtest.genesis_block();
//! assert!(genesis.header.meets_pow_target());
//!
//! // Addresses render and parse in the standard formats.
//! let addr = Address::new(Network::Mainnet, AddressKind::P2wpkh([7; 20]));
//! assert!(addr.to_string().starts_with("bc1q"));
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod address;
pub mod block;
pub mod builder;
pub mod encode;
pub mod hash;
pub mod network;
pub mod pow;
pub mod script;
pub mod tx;
mod u256;

pub use address::{Address, AddressKind, ParseAddressError};
pub use block::{merkle_root, Block, BlockHeader};
pub use hash::{BlockHash, MerkleRoot, Txid};
pub use network::{Network, Params};
pub use pow::{CompactTarget, Work};
pub use script::{Script, ScriptKind};
pub use tx::{Amount, OutPoint, Transaction, TxIn, TxOut};
pub use u256::U256;

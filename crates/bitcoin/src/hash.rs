//! Cryptographic hash primitives implemented from scratch.
//!
//! Bitcoin's consensus and address rules are built on SHA-256 (single and
//! double), RIPEMD-160 and, since taproot, BIP-340 *tagged* hashes; the
//! deterministic-nonce signing in `icbtc-tecdsa` additionally needs
//! HMAC-SHA-256. No third-party cryptography crates are used in this
//! workspace, so all four are implemented here, with the standard test
//! vectors in the test module.

use std::fmt;

// ---------------------------------------------------------------------------
// SHA-256
// ---------------------------------------------------------------------------

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const SHA256_INIT: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A streaming SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use icbtc_bitcoin::hash::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), icbtc_bitcoin::hash::sha256(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: SHA256_INIT, buffer: [0; 64], buffered: 0, length: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length += data.len() as u64;
        let mut input = data;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Finishes the computation and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.length * 8;
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Length is mixed in manually to avoid affecting `self.length`.
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Computes SHA-256 of `data` in one call.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Computes Bitcoin's double SHA-256, `SHA256(SHA256(data))`.
pub fn sha256d(data: &[u8]) -> [u8; 32] {
    sha256(&sha256(data))
}

/// Computes a BIP-340 tagged hash: `SHA256(SHA256(tag) || SHA256(tag) || data)`.
pub fn tagged_hash(tag: &str, data: &[u8]) -> [u8; 32] {
    let tag_hash = sha256(tag.as_bytes());
    let mut h = Sha256::new();
    h.update(&tag_hash);
    h.update(&tag_hash);
    h.update(data);
    h.finalize()
}

/// Computes HMAC-SHA-256 with the given key.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

// ---------------------------------------------------------------------------
// RIPEMD-160
// ---------------------------------------------------------------------------

/// A streaming RIPEMD-160 hasher, used for Bitcoin's HASH160 addresses.
///
/// # Examples
///
/// ```
/// use icbtc_bitcoin::hash::Ripemd160;
/// let mut h = Ripemd160::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(digest[0], 0x8e);
/// ```
#[derive(Clone, Debug)]
pub struct Ripemd160 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffered: usize,
    length: u64,
}

impl Default for Ripemd160 {
    fn default() -> Self {
        Self::new()
    }
}

const RIPEMD_R: [usize; 80] = [
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, //
    7, 4, 13, 1, 10, 6, 15, 3, 12, 0, 9, 5, 2, 14, 11, 8, //
    3, 10, 14, 4, 9, 15, 8, 1, 2, 7, 0, 6, 13, 11, 5, 12, //
    1, 9, 11, 10, 0, 8, 12, 4, 13, 3, 7, 15, 14, 5, 6, 2, //
    4, 0, 5, 9, 7, 12, 2, 10, 14, 1, 3, 8, 11, 6, 15, 13,
];
const RIPEMD_RP: [usize; 80] = [
    5, 14, 7, 0, 9, 2, 11, 4, 13, 6, 15, 8, 1, 10, 3, 12, //
    6, 11, 3, 7, 0, 13, 5, 10, 14, 15, 8, 12, 4, 9, 1, 2, //
    15, 5, 1, 3, 7, 14, 6, 9, 11, 8, 12, 2, 10, 0, 4, 13, //
    8, 6, 4, 1, 3, 11, 15, 0, 5, 12, 2, 13, 9, 7, 10, 14, //
    12, 15, 10, 4, 1, 5, 8, 7, 6, 2, 13, 14, 0, 3, 9, 11,
];
const RIPEMD_S: [u32; 80] = [
    11, 14, 15, 12, 5, 8, 7, 9, 11, 13, 14, 15, 6, 7, 9, 8, //
    7, 6, 8, 13, 11, 9, 7, 15, 7, 12, 15, 9, 11, 7, 13, 12, //
    11, 13, 6, 7, 14, 9, 13, 15, 14, 8, 13, 6, 5, 12, 7, 5, //
    11, 12, 14, 15, 14, 15, 9, 8, 9, 14, 5, 6, 8, 6, 5, 12, //
    9, 15, 5, 11, 6, 8, 13, 12, 5, 12, 13, 14, 11, 8, 5, 6,
];
const RIPEMD_SP: [u32; 80] = [
    8, 9, 9, 11, 13, 15, 15, 5, 7, 7, 8, 11, 14, 14, 12, 6, //
    9, 13, 15, 7, 12, 8, 9, 11, 7, 7, 12, 7, 6, 15, 13, 11, //
    9, 7, 15, 11, 8, 6, 6, 14, 12, 13, 5, 14, 13, 13, 7, 5, //
    15, 5, 8, 11, 14, 14, 6, 14, 6, 9, 12, 9, 12, 5, 15, 8, //
    8, 5, 12, 9, 12, 5, 14, 6, 8, 13, 6, 5, 15, 13, 11, 11,
];

impl Ripemd160 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Ripemd160 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            buffer: [0; 64],
            buffered: 0,
            length: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length += data.len() as u64;
        let mut input = data;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Finishes the computation and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.length * 8;
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        self.buffer[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        fn f(j: usize, x: u32, y: u32, z: u32) -> u32 {
            match j / 16 {
                0 => x ^ y ^ z,
                1 => (x & y) | (!x & z),
                2 => (x | !y) ^ z,
                3 => (x & z) | (y & !z),
                _ => x ^ (y | !z),
            }
        }
        const K: [u32; 5] = [0x00000000, 0x5a827999, 0x6ed9eba1, 0x8f1bbcdc, 0xa953fd4e];
        const KP: [u32; 5] = [0x50a28be6, 0x5c4dd124, 0x6d703ef3, 0x7a6d76e9, 0x00000000];

        let mut x = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            x[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        let [mut ap, mut bp, mut cp, mut dp, mut ep] = self.state;
        for j in 0..80 {
            let t = a
                .wrapping_add(f(j, b, c, d))
                .wrapping_add(x[RIPEMD_R[j]])
                .wrapping_add(K[j / 16])
                .rotate_left(RIPEMD_S[j])
                .wrapping_add(e);
            a = e;
            e = d;
            d = c.rotate_left(10);
            c = b;
            b = t;
            let t = ap
                .wrapping_add(f(79 - j, bp, cp, dp))
                .wrapping_add(x[RIPEMD_RP[j]])
                .wrapping_add(KP[j / 16])
                .rotate_left(RIPEMD_SP[j])
                .wrapping_add(ep);
            ap = ep;
            ep = dp;
            dp = cp.rotate_left(10);
            cp = bp;
            bp = t;
        }
        let t = self.state[1].wrapping_add(c).wrapping_add(dp);
        self.state[1] = self.state[2].wrapping_add(d).wrapping_add(ep);
        self.state[2] = self.state[3].wrapping_add(e).wrapping_add(ap);
        self.state[3] = self.state[4].wrapping_add(a).wrapping_add(bp);
        self.state[4] = self.state[0].wrapping_add(b).wrapping_add(cp);
        self.state[0] = t;
    }
}

/// Computes Bitcoin's HASH160, `RIPEMD160(SHA256(data))`.
pub fn hash160(data: &[u8]) -> [u8; 20] {
    let mut r = Ripemd160::new();
    r.update(&sha256(data));
    r.finalize()
}

// ---------------------------------------------------------------------------
// Hash newtypes
// ---------------------------------------------------------------------------

fn write_hex_reversed(f: &mut fmt::Formatter<'_>, bytes: &[u8]) -> fmt::Result {
    for b in bytes.iter().rev() {
        write!(f, "{b:02x}")?;
    }
    Ok(())
}

/// Parses a hex string of the *display* (byte-reversed) form into internal
/// byte order. Returns `None` on bad length or non-hex characters.
fn parse_hex_reversed<const N: usize>(s: &str) -> Option<[u8; N]> {
    if s.len() != 2 * N || !s.is_ascii() {
        return None;
    }
    let mut out = [0u8; N];
    for i in 0..N {
        let byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
        out[N - 1 - i] = byte;
    }
    Some(out)
}

macro_rules! hash256_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        ///
        /// Internally stored in the byte order produced by the hash function;
        /// `Display` renders the conventional byte-reversed hex used by
        /// Bitcoin tooling.
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub [u8; 32]);

        impl $name {
            /// The all-zero hash, used as the "no predecessor" sentinel.
            pub const ZERO: $name = $name([0; 32]);

            /// Hashes `data` with double SHA-256.
            pub fn hash(data: &[u8]) -> Self {
                $name(sha256d(data))
            }

            /// Returns the raw bytes in internal order.
            pub const fn to_bytes(self) -> [u8; 32] {
                self.0
            }

            /// Returns the raw bytes in internal order.
            pub fn as_bytes(&self) -> &[u8; 32] {
                &self.0
            }

            /// Parses the byte-reversed hex form produced by `Display`.
            pub fn from_hex(s: &str) -> Option<Self> {
                parse_hex_reversed::<32>(s).map($name)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write_hex_reversed(f, &self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self)
            }
        }

        impl AsRef<[u8]> for $name {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }

        impl From<[u8; 32]> for $name {
            fn from(bytes: [u8; 32]) -> Self {
                $name(bytes)
            }
        }
    };
}

hash256_newtype! {
    /// A transaction identifier (double SHA-256 of the serialized transaction).
    Txid
}

hash256_newtype! {
    /// A block identifier (double SHA-256 of the 80-byte block header).
    BlockHash
}

hash256_newtype! {
    /// A Merkle tree root over the transactions of a block.
    MerkleRoot
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_nist_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_long_input() {
        // One million 'a' characters — NIST long vector.
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_streaming_matches_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        for chunk_size in [1, 3, 63, 64, 65, 128, 999] {
            let mut h = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk size {chunk_size}");
        }
    }

    #[test]
    fn sha256d_genesis_known_vector() {
        // Double-SHA256 of the empty string.
        assert_eq!(
            hex(&sha256d(b"")),
            "5df6e0e2761359d30a8275058e299fcc0381534545f55cf43e41983f5d4c9456"
        );
    }

    #[test]
    fn hmac_rfc4231_vectors() {
        // Test case 1.
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2: key = "Jefe".
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Test case 3: 20x 0xaa key, 50x 0xdd data.
        assert_eq!(
            hex(&hmac_sha256(&[0xaa; 20], &[0xdd; 50])),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
        // Long key (> block size) gets hashed first: RFC 4231 case 6.
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn ripemd160_vectors() {
        assert_eq!(hex(&{
            let h = Ripemd160::new();
            h.finalize()
        }), "9c1185a5c5e9fc54612808977ee8f548b2258d31");
        let mut h = Ripemd160::new();
        h.update(b"abc");
        assert_eq!(hex(&h.finalize()), "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc");
        let mut h = Ripemd160::new();
        h.update(b"message digest");
        assert_eq!(hex(&h.finalize()), "5d0689ef49d2fae572b881b123a85ffa21595f36");
        let mut h = Ripemd160::new();
        h.update(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
        assert_eq!(hex(&h.finalize()), "12a053384a9c0c88e405a06c27dcf49ada62eb2b");
    }

    #[test]
    fn ripemd160_streaming_matches_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(500).collect();
        let mut whole = Ripemd160::new();
        whole.update(&data);
        let expected = whole.finalize();
        for chunk_size in [1, 7, 64, 65] {
            let mut h = Ripemd160::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), expected, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn hash160_known_vector() {
        // HASH160 of the generator point's compressed encoding (widely
        // published as the address hash of private key 1).
        let pubkey = [
            0x02, 0x79, 0xbe, 0x66, 0x7e, 0xf9, 0xdc, 0xbb, 0xac, 0x55, 0xa0, 0x62, 0x95, 0xce,
            0x87, 0x0b, 0x07, 0x02, 0x9b, 0xfc, 0xdb, 0x2d, 0xce, 0x28, 0xd9, 0x59, 0xf2, 0x81,
            0x5b, 0x16, 0xf8, 0x17, 0x98,
        ];
        assert_eq!(hex(&hash160(&pubkey)), "751e76e8199196d454941c45d1b3a323f1433bd6");
    }

    #[test]
    fn tagged_hash_differs_by_tag() {
        let a = tagged_hash("BIP0340/challenge", b"data");
        let b = tagged_hash("BIP0340/aux", b"data");
        assert_ne!(a, b);
        // Deterministic.
        assert_eq!(a, tagged_hash("BIP0340/challenge", b"data"));
    }

    #[test]
    fn hash_newtype_display_is_reversed_hex() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0xab;
        let txid = Txid(bytes);
        let shown = txid.to_string();
        assert!(shown.ends_with("ab"));
        assert_eq!(shown.len(), 64);
        assert_eq!(Txid::from_hex(&shown), Some(txid));
        assert_eq!(Txid::from_hex("zz"), None);
        assert_eq!(Txid::from_hex(&"0".repeat(63)), None);
    }

    #[test]
    fn hash_newtype_debug_nonempty() {
        assert!(format!("{:?}", BlockHash::ZERO).starts_with("BlockHash("));
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;

        /// Streaming and one-shot SHA-256 agree for arbitrary splits.
        #[test]
        fn sha256_split_invariance() {
            testkit::check(0x4A_0001, testkit::DEFAULT_CASES, |rng| {
                let data = testkit::bytes(rng, 0..512);
                let split = testkit::usize_in(rng, 0..512).min(data.len());
                let mut h = Sha256::new();
                h.update(&data[..split]);
                h.update(&data[split..]);
                assert_eq!(h.finalize(), sha256(&data));
            });
        }

        /// Txid hex display round-trips.
        #[test]
        fn txid_hex_roundtrip() {
            testkit::check(0x4A_0002, testkit::DEFAULT_CASES, |rng| {
                let txid = Txid(testkit::byte_array(rng));
                assert_eq!(Txid::from_hex(&txid.to_string()), Some(txid));
            });
        }
    }
}

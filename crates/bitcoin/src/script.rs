//! Bitcoin locking scripts and signature-hash computation.
//!
//! The canister architecture never *executes* scripts (§III-C: transaction
//! validation is delegated to the Bitcoin network), but it must recognize
//! the standard output templates to index UTXOs by address, and the smart
//! contract layer must build and sign spends of canister-controlled
//! outputs. This module therefore provides:
//!
//! * construction and classification of standard templates (P2PKH, P2WPKH,
//!   P2SH, P2WSH, P2TR, OP_RETURN), and
//! * the three signature-hash algorithms contracts need: legacy
//!   (pre-segwit), BIP-143 (segwit v0) and BIP-341 key-path (taproot).

use std::fmt;

use crate::encode::Encodable;
use crate::hash::{sha256, sha256d, tagged_hash};
use crate::tx::{Amount, Transaction};

// A few opcodes — only the ones the standard templates use.
const OP_0: u8 = 0x00;
const OP_1: u8 = 0x51;
const OP_RETURN: u8 = 0x6a;
const OP_DUP: u8 = 0x76;
const OP_EQUAL: u8 = 0x87;
const OP_EQUALVERIFY: u8 = 0x88;
const OP_HASH160: u8 = 0xa9;
const OP_CHECKSIG: u8 = 0xac;

/// A serialized locking script.
///
/// The raw byte representation is authoritative (arbitrary scripts are
/// representable); the constructors and [`Script::classify`] deal in the
/// standard templates.
///
/// # Examples
///
/// ```
/// use icbtc_bitcoin::{Script, ScriptKind};
/// let script = Script::new_p2wpkh(&[7; 20]);
/// assert_eq!(script.classify(), ScriptKind::P2wpkh([7; 20]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Script(Vec<u8>);

/// The standard output-script templates.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ScriptKind {
    /// Pay-to-pubkey-hash: `OP_DUP OP_HASH160 <20> OP_EQUALVERIFY OP_CHECKSIG`.
    P2pkh([u8; 20]),
    /// Pay-to-script-hash: `OP_HASH160 <20> OP_EQUAL`.
    P2sh([u8; 20]),
    /// Segwit v0 key hash: `OP_0 <20>`.
    P2wpkh([u8; 20]),
    /// Segwit v0 script hash: `OP_0 <32>`.
    P2wsh([u8; 32]),
    /// Segwit v1 (taproot): `OP_1 <32>`.
    P2tr([u8; 32]),
    /// Provably unspendable data carrier.
    OpReturn,
    /// Anything else.
    NonStandard,
}

impl Script {
    /// Wraps raw script bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Script {
        Script(bytes)
    }

    /// Returns the raw script bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Returns the script length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` for the empty script.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Builds a pay-to-pubkey-hash script.
    pub fn new_p2pkh(pubkey_hash: &[u8; 20]) -> Script {
        let mut s = Vec::with_capacity(25);
        s.extend_from_slice(&[OP_DUP, OP_HASH160, 20]);
        s.extend_from_slice(pubkey_hash);
        s.extend_from_slice(&[OP_EQUALVERIFY, OP_CHECKSIG]);
        Script(s)
    }

    /// Builds a pay-to-script-hash script.
    pub fn new_p2sh(script_hash: &[u8; 20]) -> Script {
        let mut s = Vec::with_capacity(23);
        s.extend_from_slice(&[OP_HASH160, 20]);
        s.extend_from_slice(script_hash);
        s.push(OP_EQUAL);
        Script(s)
    }

    /// Builds a segwit v0 pay-to-witness-pubkey-hash script.
    pub fn new_p2wpkh(pubkey_hash: &[u8; 20]) -> Script {
        let mut s = Vec::with_capacity(22);
        s.extend_from_slice(&[OP_0, 20]);
        s.extend_from_slice(pubkey_hash);
        Script(s)
    }

    /// Builds a segwit v0 pay-to-witness-script-hash script.
    pub fn new_p2wsh(script_hash: &[u8; 32]) -> Script {
        let mut s = Vec::with_capacity(34);
        s.extend_from_slice(&[OP_0, 32]);
        s.extend_from_slice(script_hash);
        Script(s)
    }

    /// Builds a segwit v1 (taproot) script for an x-only output key.
    pub fn new_p2tr(output_key: &[u8; 32]) -> Script {
        let mut s = Vec::with_capacity(34);
        s.extend_from_slice(&[OP_1, 32]);
        s.extend_from_slice(output_key);
        Script(s)
    }

    /// Builds an OP_RETURN data carrier (data truncated to 80 bytes, the
    /// standardness limit).
    pub fn new_op_return(data: &[u8]) -> Script {
        let data = &data[..data.len().min(80)];
        let mut s = Vec::with_capacity(2 + data.len());
        s.push(OP_RETURN);
        s.push(data.len() as u8);
        s.extend_from_slice(data);
        Script(s)
    }

    /// Classifies the script against the standard templates.
    pub fn classify(&self) -> ScriptKind {
        let b = &self.0;
        match b.as_slice() {
            [OP_DUP, OP_HASH160, 20, mid @ .., OP_EQUALVERIFY, OP_CHECKSIG] if mid.len() == 20 => {
                let mut h = [0u8; 20];
                h.copy_from_slice(mid);
                ScriptKind::P2pkh(h)
            }
            [OP_HASH160, 20, mid @ .., OP_EQUAL] if mid.len() == 20 => {
                let mut h = [0u8; 20];
                h.copy_from_slice(mid);
                ScriptKind::P2sh(h)
            }
            [OP_0, 20, rest @ ..] if rest.len() == 20 => {
                let mut h = [0u8; 20];
                h.copy_from_slice(rest);
                ScriptKind::P2wpkh(h)
            }
            [OP_0, 32, rest @ ..] if rest.len() == 32 => {
                let mut h = [0u8; 32];
                h.copy_from_slice(rest);
                ScriptKind::P2wsh(h)
            }
            [OP_1, 32, rest @ ..] if rest.len() == 32 => {
                let mut h = [0u8; 32];
                h.copy_from_slice(rest);
                ScriptKind::P2tr(h)
            }
            [OP_RETURN, ..] => ScriptKind::OpReturn,
            _ => ScriptKind::NonStandard,
        }
    }

    /// Returns `true` if the script is a data carrier or otherwise
    /// unspendable.
    pub fn is_op_return(&self) -> bool {
        matches!(self.classify(), ScriptKind::OpReturn)
    }
}

impl fmt::Debug for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Script(")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl From<Vec<u8>> for Script {
    fn from(bytes: Vec<u8>) -> Script {
        Script(bytes)
    }
}

/// Signature-hash flag. Only `SIGHASH_ALL` is used by the contracts in this
/// workspace.
pub const SIGHASH_ALL: u32 = 1;
/// Taproot's default sighash byte (implies ALL).
pub const SIGHASH_DEFAULT: u8 = 0;

/// Computes the legacy (pre-segwit) `SIGHASH_ALL` digest for `input_index`.
///
/// `script_code` is the locking script of the output being spent (for
/// P2PKH, the full pubkey-hash script).
///
/// # Panics
///
/// Panics if `input_index` is out of range.
pub fn legacy_sighash(tx: &Transaction, input_index: usize, script_code: &Script) -> [u8; 32] {
    assert!(input_index < tx.inputs.len(), "input index out of range");
    let mut stripped = tx.clone();
    for (i, input) in stripped.inputs.iter_mut().enumerate() {
        input.witness.clear();
        input.script_sig = if i == input_index {
            script_code.as_bytes().to_vec()
        } else {
            Vec::new()
        };
    }
    let mut preimage = stripped.encode_without_witness();
    SIGHASH_ALL.encode(&mut preimage);
    sha256d(&preimage)
}

/// Computes the BIP-143 (segwit v0) `SIGHASH_ALL` digest for `input_index`.
///
/// `script_code` is the canonical script code of the spent output (for
/// P2WPKH, the implied P2PKH script over the same key hash) and `value` is
/// the amount of the output being spent.
///
/// # Panics
///
/// Panics if `input_index` is out of range.
pub fn segwit_v0_sighash(
    tx: &Transaction,
    input_index: usize,
    script_code: &Script,
    value: Amount,
) -> [u8; 32] {
    assert!(input_index < tx.inputs.len(), "input index out of range");
    let mut prevouts = Vec::new();
    let mut sequences = Vec::new();
    for input in &tx.inputs {
        input.previous_output.encode(&mut prevouts);
        input.sequence.encode(&mut sequences);
    }
    let hash_prevouts = sha256d(&prevouts);
    let hash_sequence = sha256d(&sequences);
    let mut outputs = Vec::new();
    for output in &tx.outputs {
        output.encode(&mut outputs);
    }
    let hash_outputs = sha256d(&outputs);

    let mut preimage = Vec::new();
    tx.version.encode(&mut preimage);
    preimage.extend_from_slice(&hash_prevouts);
    preimage.extend_from_slice(&hash_sequence);
    tx.inputs[input_index].previous_output.encode(&mut preimage);
    script_code.as_bytes().to_vec().encode(&mut preimage);
    value.encode(&mut preimage);
    tx.inputs[input_index].sequence.encode(&mut preimage);
    preimage.extend_from_slice(&hash_outputs);
    tx.lock_time.encode(&mut preimage);
    SIGHASH_ALL.encode(&mut preimage);
    sha256d(&preimage)
}

/// Computes the BIP-341 key-path `SIGHASH_DEFAULT` digest for `input_index`.
///
/// `spent_outputs` must list, in input order, the `(value, script_pubkey)`
/// of every output the transaction spends.
///
/// # Panics
///
/// Panics if `input_index` is out of range or `spent_outputs` has a
/// different length than the inputs.
pub fn taproot_key_spend_sighash(
    tx: &Transaction,
    input_index: usize,
    spent_outputs: &[(Amount, Script)],
) -> [u8; 32] {
    assert!(input_index < tx.inputs.len(), "input index out of range");
    assert_eq!(spent_outputs.len(), tx.inputs.len(), "one spent output per input");

    let mut prevouts = Vec::new();
    let mut amounts = Vec::new();
    let mut scripts = Vec::new();
    let mut sequences = Vec::new();
    for (input, (value, script)) in tx.inputs.iter().zip(spent_outputs) {
        input.previous_output.encode(&mut prevouts);
        value.encode(&mut amounts);
        script.as_bytes().to_vec().encode(&mut scripts);
        input.sequence.encode(&mut sequences);
    }
    let mut outputs = Vec::new();
    for output in &tx.outputs {
        output.encode(&mut outputs);
    }

    let mut msg = Vec::new();
    msg.push(0u8); // sighash epoch
    msg.push(SIGHASH_DEFAULT);
    tx.version.encode(&mut msg);
    tx.lock_time.encode(&mut msg);
    msg.extend_from_slice(&sha256(&prevouts));
    msg.extend_from_slice(&sha256(&amounts));
    msg.extend_from_slice(&sha256(&scripts));
    msg.extend_from_slice(&sha256(&sequences));
    msg.extend_from_slice(&sha256(&outputs));
    msg.push(0u8); // spend type: key path, no annex
    (input_index as u32).encode(&mut msg);
    tagged_hash("TapSighash", &msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{OutPoint, TxIn, TxOut};
    use crate::hash::Txid;

    fn spend_tx() -> Transaction {
        Transaction {
            version: 2,
            inputs: vec![
                TxIn::new(OutPoint::new(Txid([1; 32]), 0)),
                TxIn::new(OutPoint::new(Txid([2; 32]), 7)),
            ],
            outputs: vec![TxOut::new(Amount::from_sat(900), Script::new_p2wpkh(&[3; 20]))],
            lock_time: 0,
        }
    }

    #[test]
    fn template_roundtrips() {
        assert_eq!(Script::new_p2pkh(&[1; 20]).classify(), ScriptKind::P2pkh([1; 20]));
        assert_eq!(Script::new_p2sh(&[2; 20]).classify(), ScriptKind::P2sh([2; 20]));
        assert_eq!(Script::new_p2wpkh(&[3; 20]).classify(), ScriptKind::P2wpkh([3; 20]));
        assert_eq!(Script::new_p2wsh(&[4; 32]).classify(), ScriptKind::P2wsh([4; 32]));
        assert_eq!(Script::new_p2tr(&[5; 32]).classify(), ScriptKind::P2tr([5; 32]));
        assert!(Script::new_op_return(b"hello").is_op_return());
        assert_eq!(Script::from_bytes(vec![0xff, 0xfe]).classify(), ScriptKind::NonStandard);
        assert_eq!(Script::default().classify(), ScriptKind::NonStandard);
    }

    #[test]
    fn template_lengths_match_standards() {
        assert_eq!(Script::new_p2pkh(&[0; 20]).len(), 25);
        assert_eq!(Script::new_p2sh(&[0; 20]).len(), 23);
        assert_eq!(Script::new_p2wpkh(&[0; 20]).len(), 22);
        assert_eq!(Script::new_p2wsh(&[0; 32]).len(), 34);
        assert_eq!(Script::new_p2tr(&[0; 32]).len(), 34);
    }

    #[test]
    fn op_return_truncates_at_80() {
        let s = Script::new_op_return(&[0xaa; 200]);
        assert_eq!(s.len(), 82);
        assert!(s.is_op_return());
    }

    #[test]
    fn legacy_sighash_depends_on_input_index() {
        let tx = spend_tx();
        let code = Script::new_p2pkh(&[9; 20]);
        let h0 = legacy_sighash(&tx, 0, &code);
        let h1 = legacy_sighash(&tx, 1, &code);
        assert_ne!(h0, h1);
        // Deterministic.
        assert_eq!(h0, legacy_sighash(&tx, 0, &code));
    }

    #[test]
    fn segwit_sighash_commits_to_value() {
        let tx = spend_tx();
        let code = Script::new_p2pkh(&[9; 20]);
        let a = segwit_v0_sighash(&tx, 0, &code, Amount::from_sat(1000));
        let b = segwit_v0_sighash(&tx, 0, &code, Amount::from_sat(1001));
        assert_ne!(a, b, "BIP-143 must commit to the spent amount");
    }

    #[test]
    fn segwit_sighash_commits_to_outputs() {
        let mut tx = spend_tx();
        let code = Script::new_p2pkh(&[9; 20]);
        let before = segwit_v0_sighash(&tx, 0, &code, Amount::from_sat(1000));
        tx.outputs[0].value = Amount::from_sat(901);
        let after = segwit_v0_sighash(&tx, 0, &code, Amount::from_sat(1000));
        assert_ne!(before, after);
    }

    #[test]
    fn taproot_sighash_commits_to_all_spent_outputs() {
        let tx = spend_tx();
        let spent = vec![
            (Amount::from_sat(500), Script::new_p2tr(&[7; 32])),
            (Amount::from_sat(600), Script::new_p2tr(&[8; 32])),
        ];
        let h = taproot_key_spend_sighash(&tx, 0, &spent);
        let mut spent2 = spent.clone();
        spent2[1].0 = Amount::from_sat(601);
        assert_ne!(h, taproot_key_spend_sighash(&tx, 0, &spent2));
        assert_ne!(h, taproot_key_spend_sighash(&tx, 1, &spent));
    }

    #[test]
    #[should_panic]
    fn taproot_sighash_arity_mismatch_panics() {
        let tx = spend_tx();
        let _ = taproot_key_spend_sighash(&tx, 0, &[]);
    }

    #[test]
    #[should_panic]
    fn sighash_index_out_of_range_panics() {
        let tx = spend_tx();
        let _ = legacy_sighash(&tx, 2, &Script::default());
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;

        /// Classification of constructed templates is exact for all
        /// hash inputs.
        #[test]
        fn classify_p2wpkh() {
            testkit::check(0x5C_0001, testkit::DEFAULT_CASES, |rng| {
                let h: [u8; 20] = testkit::byte_array(rng);
                assert_eq!(Script::new_p2wpkh(&h).classify(), ScriptKind::P2wpkh(h));
            });
        }

        #[test]
        fn classify_p2tr() {
            testkit::check(0x5C_0002, testkit::DEFAULT_CASES, |rng| {
                let k: [u8; 32] = testkit::byte_array(rng);
                assert_eq!(Script::new_p2tr(&k).classify(), ScriptKind::P2tr(k));
            });
        }

        /// Arbitrary scripts never panic during classification.
        #[test]
        fn classify_total() {
            testkit::check(0x5C_0003, testkit::DEFAULT_CASES, |rng| {
                let bytes = testkit::bytes(rng, 0..64);
                let _ = Script::from_bytes(bytes).classify();
            });
        }
    }
}

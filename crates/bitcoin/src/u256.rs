//! A fixed-width 256-bit unsigned integer.
//!
//! Used for proof-of-work targets and accumulated chain work
//! ([`crate::pow`]), and reused by the `icbtc-tecdsa` crate as the raw
//! representation underlying secp256k1 field and scalar elements.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, Div, Not, Rem, Shl, Shr, Sub};

/// A 256-bit unsigned integer, stored as four little-endian `u64` limbs.
///
/// Arithmetic is checked where overflow is meaningful ([`U256::checked_add`],
/// [`U256::checked_sub`]) with wrapping and saturating variants where the
/// callers need them. Division is exact long division.
///
/// # Examples
///
/// ```
/// use icbtc_bitcoin::U256;
/// let a = U256::from_u64(1) << 255;
/// assert_eq!(a >> 255, U256::ONE);
/// assert_eq!(U256::MAX / U256::from_u64(1), U256::MAX);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub(crate) [u64; 4]);

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256([0; 4]);
    /// The value 1.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value, 2²⁵⁶ − 1.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a value from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Creates a value from little-endian limbs (`limbs[0]` is least
    /// significant).
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256(limbs)
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.0
    }

    /// Parses a big-endian 32-byte array.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[32 - 8 * (i + 1)..32 - 8 * i]);
            *limb = u64::from_be_bytes(word);
        }
        U256(limbs)
    }

    /// Serializes to a big-endian 32-byte array.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[32 - 8 * (i + 1)..32 - 8 * i].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Parses a little-endian 32-byte array.
    pub fn from_le_bytes(bytes: [u8; 32]) -> Self {
        let mut be = bytes;
        be.reverse();
        Self::from_be_bytes(be)
    }

    /// Serializes to a little-endian 32-byte array.
    pub fn to_le_bytes(self) -> [u8; 32] {
        let mut out = self.to_be_bytes();
        out.reverse();
        out
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Returns the value of bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 256, "bit index out of range");
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the position of the highest set bit plus one (0 for zero) —
    /// i.e. the minimum number of bits needed to represent the value.
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i as u32 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Addition returning `None` on overflow.
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        let (v, carry) = self.overflowing_add(rhs);
        if carry {
            None
        } else {
            Some(v)
        }
    }

    /// Wrapping addition with a carry-out flag.
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut limbs = [0u64; 4];
        let mut carry = false;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            *limb = s2;
            carry = c1 || c2;
        }
        (U256(limbs), carry)
    }

    /// Addition saturating at [`U256::MAX`].
    pub fn saturating_add(self, rhs: U256) -> U256 {
        self.checked_add(rhs).unwrap_or(U256::MAX)
    }

    /// Subtraction returning `None` on underflow.
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        if self < rhs {
            return None;
        }
        Some(self.wrapping_sub(rhs))
    }

    /// Wrapping (mod 2²⁵⁶) subtraction.
    pub fn wrapping_sub(self, rhs: U256) -> U256 {
        let mut limbs = [0u64; 4];
        let mut borrow = false;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            *limb = d2;
            borrow = b1 || b2;
        }
        U256(limbs)
    }

    /// Full 256×256→512-bit multiplication, returned as (low, high) halves.
    pub fn widening_mul(self, rhs: U256) -> (U256, U256) {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let cur = out[i + j] as u128 + self.0[i] as u128 * rhs.0[j] as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + 4] = carry as u64;
        }
        (
            U256([out[0], out[1], out[2], out[3]]),
            U256([out[4], out[5], out[6], out[7]]),
        )
    }

    /// Multiplication returning `None` on overflow.
    pub fn checked_mul(self, rhs: U256) -> Option<U256> {
        let (lo, hi) = self.widening_mul(rhs);
        if hi.is_zero() {
            Some(lo)
        } else {
            None
        }
    }

    /// Long division returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(self, divisor: U256) -> (U256, U256) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (U256::ZERO, self);
        }
        let shift = self.bits() - divisor.bits();
        let mut quotient = U256::ZERO;
        let mut remainder = self;
        let mut shifted = divisor << shift as usize;
        for i in (0..=shift).rev() {
            if remainder >= shifted {
                remainder = remainder.wrapping_sub(shifted);
                quotient.0[(i / 64) as usize] |= 1u64 << (i % 64);
            }
            shifted = shifted >> 1;
        }
        (quotient, remainder)
    }
}

impl Add for U256 {
    type Output = U256;
    /// # Panics
    ///
    /// Panics on overflow.
    fn add(self, rhs: U256) -> U256 {
        self.checked_add(rhs).expect("U256 addition overflow")
    }
}

impl Sub for U256 {
    type Output = U256;
    /// # Panics
    ///
    /// Panics on underflow.
    fn sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).expect("U256 subtraction underflow")
    }
}

impl Div for U256 {
    type Output = U256;
    fn div(self, rhs: U256) -> U256 {
        self.div_rem(rhs).0
    }
}

impl Rem for U256 {
    type Output = U256;
    fn rem(self, rhs: U256) -> U256 {
        self.div_rem(rhs).1
    }
}

impl Shl<usize> for U256 {
    type Output = U256;
    fn shl(self, shift: usize) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let (words, bits) = (shift / 64, shift % 64);
        let mut limbs = [0u64; 4];
        for i in (words..4).rev() {
            limbs[i] = self.0[i - words] << bits;
            if bits > 0 && i > words {
                limbs[i] |= self.0[i - words - 1] >> (64 - bits);
            }
        }
        U256(limbs)
    }
}

impl Shr<usize> for U256 {
    type Output = U256;
    fn shr(self, shift: usize) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let (words, bits) = (shift / 64, shift % 64);
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate().take(4 - words) {
            *limb = self.0[i + words] >> bits;
            if bits > 0 && i + words + 1 < 4 {
                *limb |= self.0[i + words + 1] << (64 - bits);
            }
        }
        U256(limbs)
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl Not for U256 {
    type Output = U256;
    fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{self:x})")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{self:x}")
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut started = false;
        for limb in self.0.iter().rev() {
            if started {
                write!(f, "{limb:016x}")?;
            } else if *limb != 0 {
                write!(f, "{limb:x}")?;
                started = true;
            }
        }
        if !started {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrips() {
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        let v = U256::from_be_bytes(bytes);
        assert_eq!(v.to_be_bytes(), bytes);
        let le = U256::from_le_bytes(bytes);
        assert_eq!(le.to_le_bytes(), bytes);
        // BE and LE interpretations of the same bytes are byte-reverses.
        let mut rev = bytes;
        rev.reverse();
        assert_eq!(le.to_be_bytes(), rev);
    }

    #[test]
    fn addition_and_carry() {
        let max = U256::MAX;
        assert_eq!(max.checked_add(U256::ONE), None);
        assert_eq!(max.saturating_add(U256::ONE), U256::MAX);
        let (wrapped, carry) = max.overflowing_add(U256::ONE);
        assert!(carry);
        assert_eq!(wrapped, U256::ZERO);
        // Carry propagation across limbs.
        let v = U256([u64::MAX, u64::MAX, 0, 0]);
        assert_eq!(v + U256::ONE, U256([0, 0, 1, 0]));
    }

    #[test]
    fn subtraction_and_borrow() {
        let v = U256([0, 0, 1, 0]);
        assert_eq!(v - U256::ONE, U256([u64::MAX, u64::MAX, 0, 0]));
        assert_eq!(U256::ZERO.checked_sub(U256::ONE), None);
        assert_eq!(U256::ZERO.wrapping_sub(U256::ONE), U256::MAX);
    }

    #[test]
    fn shifts() {
        let one = U256::ONE;
        assert_eq!((one << 64).limbs(), [0, 1, 0, 0]);
        assert_eq!((one << 200) >> 200, one);
        assert_eq!(one << 256, U256::ZERO);
        assert_eq!(U256::MAX >> 255, U256::ONE);
        assert_eq!(one << 0, one);
    }

    #[test]
    fn multiplication() {
        let a = U256::from_u64(u64::MAX);
        let (lo, hi) = a.widening_mul(a);
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        assert!(hi.is_zero());
        assert_eq!(lo, U256([1, u64::MAX - 1, 0, 0]));
        // Overflow detection.
        assert_eq!(U256::MAX.checked_mul(U256::from_u64(2)), None);
        assert_eq!(
            U256::from_u64(7).checked_mul(U256::from_u64(6)),
            Some(U256::from_u64(42))
        );
    }

    #[test]
    fn division() {
        let (q, r) = U256::from_u64(100).div_rem(U256::from_u64(7));
        assert_eq!(q, U256::from_u64(14));
        assert_eq!(r, U256::from_u64(2));
        // 2^255 / 3
        let big = U256::ONE << 255;
        let (q, r) = big.div_rem(U256::from_u64(3));
        let reconstructed = q.checked_mul(U256::from_u64(3)).unwrap() + r;
        assert_eq!(reconstructed, big);
        assert!(r < U256::from_u64(3));
    }

    #[test]
    #[should_panic]
    fn division_by_zero_panics() {
        let _ = U256::ONE.div_rem(U256::ZERO);
    }

    #[test]
    fn ordering_and_bits() {
        assert!(U256::ONE << 128 > U256::MAX >> 129);
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!((U256::ONE << 200).bits(), 201);
        assert!(U256::ONE.bit(0));
        assert!(!U256::ONE.bit(1));
        assert!((U256::ONE << 77).bit(77));
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", U256::ZERO), "0");
        assert_eq!(format!("{:x}", U256::from_u64(255)), "ff");
        assert_eq!(format!("{:x}", U256::ONE << 64), "10000000000000000");
    }

    mod properties {
        use super::*;
        use icbtc_sim::testkit;
        use icbtc_sim::SimRng;

        fn arb_u256(rng: &mut SimRng) -> U256 {
            U256::from_limbs(testkit::limbs4(rng))
        }

        #[test]
        fn add_sub_roundtrip() {
            testkit::check(0x25_0001, testkit::DEFAULT_CASES, |rng| {
                let a = arb_u256(rng);
                let b = arb_u256(rng);
                if let Some(sum) = a.checked_add(b) {
                    assert_eq!(sum - b, a);
                    assert_eq!(sum - a, b);
                }
            });
        }

        #[test]
        fn div_rem_reconstructs() {
            testkit::check(0x25_0002, testkit::DEFAULT_CASES, |rng| {
                let a = arb_u256(rng);
                let b = arb_u256(rng);
                if b.is_zero() {
                    return;
                }
                let (q, r) = a.div_rem(b);
                assert!(r < b);
                let back = q.checked_mul(b).unwrap().checked_add(r).unwrap();
                assert_eq!(back, a);
            });
        }

        #[test]
        fn shift_roundtrip() {
            testkit::check(0x25_0003, testkit::DEFAULT_CASES, |rng| {
                let a = arb_u256(rng);
                let s = testkit::usize_in(rng, 0..256);
                let masked = (a >> s) << s;
                // Shifting right then left clears the low s bits only.
                assert_eq!(masked >> s, a >> s);
            });
        }

        #[test]
        fn byte_roundtrip() {
            testkit::check(0x25_0004, testkit::DEFAULT_CASES, |rng| {
                let a = arb_u256(rng);
                assert_eq!(U256::from_be_bytes(a.to_be_bytes()), a);
                assert_eq!(U256::from_le_bytes(a.to_le_bytes()), a);
            });
        }

        #[test]
        fn widening_mul_commutes() {
            testkit::check(0x25_0005, testkit::DEFAULT_CASES, |rng| {
                let a = arb_u256(rng);
                let b = arb_u256(rng);
                assert_eq!(a.widening_mul(b), b.widening_mul(a));
            });
        }
    }
}

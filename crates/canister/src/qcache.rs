//! The tip-keyed query cache.
//!
//! The production Bitcoin canister serves most of its query traffic —
//! balance lookups, first `get_utxos` pages, fee percentiles — from a
//! small cache that is valid exactly as long as the chain tip does not
//! move. This module reproduces that design deterministically:
//!
//! * every key embeds the **tip hash** the response was computed at, so
//!   a response outliving its tip can never be returned by a lookup;
//! * the cache is **wholesale-invalidated** whenever the canister
//!   ingests an adapter response ([`crate::BitcoinCanister::ingest_response`]) —
//!   ingestion is the only operation that can change any query's answer;
//! * eviction is least-recently-used with a deterministic logical clock,
//!   so same-seed runs hit, miss and evict identically.
//!
//! Only *first* pages are cached: continuation pages carry a cursor that
//! makes them effectively unique, and the production traffic skew puts
//! nearly all requests on page one.

use std::collections::BTreeMap;

use icbtc_bitcoin::{Address, BlockHash};

use crate::canister::{CanisterCall, CanisterReply};
use crate::UtxosFilter;

/// Default maximum number of cached responses.
pub const DEFAULT_QUERY_CACHE_CAPACITY: usize = 4_096;

/// A cacheable query, fully identifying the response: the tip the view
/// was computed at, and the call's own parameters.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CacheKey {
    /// `get_balance(address, min_confirmations)` at `tip`.
    Balance {
        /// Considered tip when the response was computed.
        tip: BlockHash,
        /// The queried address.
        address: Address,
        /// The confirmation requirement.
        min_confirmations: u32,
    },
    /// The *first* `get_utxos` page for `(address, min_confirmations)`
    /// at `tip`. Continuation pages are never cached.
    FirstPage {
        /// Considered tip when the response was computed.
        tip: BlockHash,
        /// The queried address.
        address: Address,
        /// The confirmation requirement.
        min_confirmations: u32,
    },
    /// `get_current_fee_percentiles()` at `tip`.
    FeePercentiles {
        /// Considered tip when the response was computed.
        tip: BlockHash,
    },
}

#[derive(Debug, Clone)]
struct CacheEntry {
    reply: CanisterReply,
    /// Serialized reply size, computed once at insert so a hit charges a
    /// per-byte copy instead of re-serializing the response from scratch
    /// (the profiler-guided hot-path win — see `metering`).
    serialized_bytes: u64,
    last_used: u64,
}

/// A deterministic, capacity-bounded LRU cache of query replies.
///
/// Pure storage: hit/miss/eviction/invalidation accounting lives in the
/// owning [`crate::BitcoinCanister`]'s metrics registry, so the counters
/// ride the same obs snapshot as everything else.
#[derive(Debug, Clone)]
pub struct QueryCache {
    entries: BTreeMap<CacheKey, CacheEntry>,
    capacity: usize,
    clock: u64,
}

impl Default for QueryCache {
    fn default() -> QueryCache {
        QueryCache::with_capacity(DEFAULT_QUERY_CACHE_CAPACITY)
    }
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` responses. A capacity
    /// of 0 disables caching entirely (every lookup misses, inserts are
    /// dropped) — the cache-off baseline for A/B runs.
    pub fn with_capacity(capacity: usize) -> QueryCache {
        QueryCache { entries: BTreeMap::new(), capacity, clock: 0 }
    }

    /// The cache key for `call` at `tip`, or `None` if the call is not
    /// cacheable (writes, continuation pages, metrics, headers).
    ///
    /// A `get_utxos` without filter is the same view as
    /// `MinConfirmations(0)`; both normalize to the same key.
    pub fn key_for(call: &CanisterCall, tip: BlockHash) -> Option<CacheKey> {
        match call {
            CanisterCall::GetBalance { address, min_confirmations } => Some(CacheKey::Balance {
                tip,
                address: *address,
                min_confirmations: *min_confirmations,
            }),
            CanisterCall::GetUtxos { address, filter } => match filter {
                None => Some(CacheKey::FirstPage { tip, address: *address, min_confirmations: 0 }),
                Some(UtxosFilter::MinConfirmations(c)) => {
                    Some(CacheKey::FirstPage { tip, address: *address, min_confirmations: *c })
                }
                Some(UtxosFilter::Page(_)) => None,
            },
            CanisterCall::GetFeePercentiles => Some(CacheKey::FeePercentiles { tip }),
            CanisterCall::SendTransaction { .. }
            | CanisterCall::GetBlockHeaders { .. }
            | CanisterCall::GetMetrics => None,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit. A hit returns the
    /// cached reply together with its serialized byte size (recorded at
    /// insert), so the caller can charge a per-byte copy rather than a
    /// full re-serialization.
    // icbtc-lint: node-local -- cache contents depend on this replica's query history; replicated execution must never read them
    pub fn get(&mut self, key: &CacheKey) -> Option<(CanisterReply, u64)> {
        self.clock += 1;
        let entry = self.entries.get_mut(key)?;
        entry.last_used = self.clock;
        Some((entry.reply.clone(), entry.serialized_bytes))
    }

    /// Inserts a reply, evicting the least-recently-used entry when at
    /// capacity. The reply's serialized size is computed once here — the
    /// miss path just produced and serialized the response anyway — and
    /// stored alongside it for the hit path's per-byte copy charge.
    /// Returns how many entries were evicted (0 or 1).
    pub fn insert(&mut self, key: CacheKey, reply: CanisterReply) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.clock += 1;
        let mut evicted = 0;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone());
            if let Some(victim) = victim {
                self.entries.remove(&victim);
                evicted = 1;
            }
        }
        let serialized_bytes = reply.serialized_size();
        self.entries.insert(key, CacheEntry { reply, serialized_bytes, last_used: self.clock });
        evicted
    }

    /// Drops every entry — called on ingest, when any cached answer may
    /// have changed. Returns how many entries were dropped.
    pub fn invalidate(&mut self) -> u64 {
        let dropped = self.entries.len() as u64;
        self.entries.clear();
        dropped
    }

    /// Cached responses currently held.
    // icbtc-lint: node-local -- per-replica cache occupancy; only observability may read it
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is cached.
    // icbtc-lint: node-local -- per-replica cache occupancy; only observability may read it
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::GetBalanceResponse;
    use icbtc_bitcoin::{AddressKind, Amount, Network};

    fn addr(n: u8) -> Address {
        Address::new(Network::Regtest, AddressKind::P2wpkh([n; 20]))
    }

    fn reply(sats: u64) -> CanisterReply {
        CanisterReply::Balance(GetBalanceResponse {
            balance: Amount::from_sat(sats),
            tip_height: 1,
        })
    }

    fn key(n: u8, tip: u8) -> CacheKey {
        CacheKey::Balance { tip: BlockHash([tip; 32]), address: addr(n), min_confirmations: 0 }
    }

    #[test]
    fn hit_after_insert_miss_after_invalidate() {
        let mut cache = QueryCache::with_capacity(8);
        assert!(cache.get(&key(1, 0)).is_none());
        cache.insert(key(1, 0), reply(5));
        let (hit, bytes) = cache.get(&key(1, 0)).unwrap();
        assert_eq!(hit, reply(5));
        assert_eq!(bytes, reply(5).serialized_size(), "size recorded at insert");
        assert_eq!(cache.invalidate(), 1);
        assert!(cache.get(&key(1, 0)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = QueryCache::with_capacity(0);
        assert_eq!(cache.insert(key(1, 0), reply(5)), 0);
        assert!(cache.get(&key(1, 0)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn tip_is_part_of_the_key() {
        let mut cache = QueryCache::with_capacity(8);
        cache.insert(key(1, 0), reply(5));
        assert!(cache.get(&key(1, 1)).is_none(), "a different tip never matches");
    }

    #[test]
    fn eviction_is_lru_and_deterministic() {
        let mut cache = QueryCache::with_capacity(2);
        assert_eq!(cache.insert(key(1, 0), reply(1)), 0);
        assert_eq!(cache.insert(key(2, 0), reply(2)), 0);
        // Touch key 1 so key 2 is the LRU victim.
        assert!(cache.get(&key(1, 0)).is_some());
        assert_eq!(cache.insert(key(3, 0), reply(3)), 1);
        assert!(cache.get(&key(2, 0)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1, 0)).is_some());
        assert!(cache.get(&key(3, 0)).is_some());
    }

    #[test]
    fn continuation_pages_and_writes_are_not_cacheable() {
        let tip = BlockHash([0; 32]);
        assert!(QueryCache::key_for(
            &CanisterCall::GetUtxos {
                address: addr(1),
                filter: Some(UtxosFilter::Page(vec![0; 81]))
            },
            tip
        )
        .is_none());
        assert!(QueryCache::key_for(
            &CanisterCall::SendTransaction { transaction: Vec::new() },
            tip
        )
        .is_none());
        assert!(QueryCache::key_for(&CanisterCall::GetMetrics, tip).is_none());
        // Bare get_utxos and MinConfirmations(0) normalize identically.
        let bare = QueryCache::key_for(&CanisterCall::GetUtxos { address: addr(1), filter: None }, tip);
        let zero = QueryCache::key_for(
            &CanisterCall::GetUtxos {
                address: addr(1),
                filter: Some(UtxosFilter::MinConfirmations(0)),
            },
            tip,
        );
        assert_eq!(bare, zero);
    }
}

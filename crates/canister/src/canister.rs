//! The Bitcoin canister as a replicated state machine on the simulated IC.
//!
//! Wraps [`BitcoinCanisterState`] in the `icbtc-ic` execution model: a
//! typed method interface, instruction metering per call, and cycles
//! charges per the fee schedule (§IV-B).

use icbtc_bitcoin::Address;
use icbtc_core::GetSuccessorsResponse;
use icbtc_ic::cycles::{Cycles, FeeSchedule};
use icbtc_ic::subnet::{ExecutionContext, StateMachine};
use icbtc_ic::Meter;
use icbtc_sim::obs::{FieldValue, Obs, INSTRUCTION_BOUNDS};

use crate::api::{ApiError, GetBalanceResponse, GetMetricsResponse, GetUtxosResponse, UtxosFilter};
use crate::metering;
use crate::qcache::QueryCache;
use crate::state::{BitcoinCanisterState, IngestReport};

/// A call into the Bitcoin canister's API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanisterCall {
    /// `get_utxos(address, filter)`.
    GetUtxos {
        /// The address queried.
        address: Address,
        /// Optional confirmations/pagination filter.
        filter: Option<UtxosFilter>,
    },
    /// `get_balance(address, min_confirmations)`.
    GetBalance {
        /// The address queried.
        address: Address,
        /// Minimum confirmations (0 = current best view).
        min_confirmations: u32,
    },
    /// `send_transaction(bytes)`.
    SendTransaction {
        /// The serialized transaction.
        transaction: Vec<u8>,
    },
    /// `get_current_fee_percentiles()`.
    GetFeePercentiles,
    /// `get_block_headers(start_height, end_height)`.
    GetBlockHeaders {
        /// First height requested (inclusive).
        start_height: u64,
        /// Last height requested (inclusive; clamped to the tip).
        end_height: u64,
    },
    /// `get_metrics()` — the observability endpoint, mirroring the
    /// production canister's `/metrics` HTTP query.
    GetMetrics,
}

impl CanisterCall {
    /// The API method name, used as the `method` metric label.
    pub fn method(&self) -> &'static str {
        match self {
            CanisterCall::GetUtxos { .. } => "get_utxos",
            CanisterCall::GetBalance { .. } => "get_balance",
            CanisterCall::SendTransaction { .. } => "send_transaction",
            CanisterCall::GetFeePercentiles => "get_current_fee_percentiles",
            CanisterCall::GetBlockHeaders { .. } => "get_block_headers",
            CanisterCall::GetMetrics => "get_metrics",
        }
    }
}

/// A successful reply from the canister.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanisterReply {
    /// Reply to [`CanisterCall::GetUtxos`].
    Utxos(GetUtxosResponse),
    /// Reply to [`CanisterCall::GetBalance`].
    Balance(GetBalanceResponse),
    /// Reply to [`CanisterCall::SendTransaction`]: the accepted txid.
    TransactionSent(icbtc_bitcoin::Txid),
    /// Reply to [`CanisterCall::GetFeePercentiles`].
    FeePercentiles(Vec<u64>),
    /// Reply to [`CanisterCall::GetBlockHeaders`].
    BlockHeaders(crate::api::GetBlockHeadersResponse),
    /// Reply to [`CanisterCall::GetMetrics`].
    Metrics(GetMetricsResponse),
}

impl CanisterReply {
    /// The reply's serialized wire size in bytes — the single source of
    /// truth for response-transfer modeling ([`StateMachine::output_bytes`])
    /// and for the query cache's per-byte hit copy charge.
    pub fn serialized_size(&self) -> u64 {
        match self {
            CanisterReply::Utxos(r) => 64 + r.utxos.len() as u64 * 48,
            CanisterReply::Balance(_) => 16,
            CanisterReply::TransactionSent(_) => 32,
            CanisterReply::FeePercentiles(p) => 8 * p.len() as u64,
            CanisterReply::BlockHeaders(r) => 16 + r.headers.len() as u64 * 80,
            CanisterReply::Metrics(_) => 72,
        }
    }
}

/// The outcome of one canister call: the reply (or API error) plus the
/// cycles charged for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOutcome {
    /// The API-level result.
    pub reply: Result<CanisterReply, ApiError>,
    /// Cycles charged per the fee schedule.
    pub cycles_charged: Cycles,
}

/// The Bitcoin canister, pluggable into [`icbtc_ic::Subnet`].
///
/// # Examples
///
/// ```
/// use icbtc_canister::{BitcoinCanister, CanisterCall};
/// use icbtc_core::IntegrationParams;
/// use icbtc_bitcoin::{Address, AddressKind, Network};
/// use icbtc_ic::Meter;
///
/// let canister = BitcoinCanister::new(IntegrationParams::for_network(Network::Regtest));
/// let address = Address::new(Network::Regtest, AddressKind::P2wpkh([1; 20]));
/// let outcome = canister.query(
///     &CanisterCall::GetBalance { address, min_confirmations: 0 },
///     &mut Meter::new(),
/// );
/// assert!(outcome.reply.is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct BitcoinCanister {
    state: BitcoinCanisterState,
    fees: FeeSchedule,
    /// Total cycles burned by replicated calls since genesis.
    cycles_burned: Cycles,
    /// Total instructions spent by replicated execution since genesis.
    /// Kept as replicated state (not read back from the node-local
    /// metrics registry) so `get_metrics` answers identically on every
    /// replica.
    instructions_total: u64,
    /// Tip-keyed query cache, wholesale-invalidated on ingest.
    qcache: QueryCache,
    /// Observability endpoint (metrics + trace), component `"canister"`.
    obs: Obs,
}

impl BitcoinCanister {
    /// Creates a canister for the given integration parameters.
    pub fn new(params: icbtc_core::IntegrationParams) -> BitcoinCanister {
        BitcoinCanister::from_state(BitcoinCanisterState::new(params))
    }

    /// Wraps an existing (e.g. snapshot-installed) state as a canister.
    pub fn from_state(state: BitcoinCanisterState) -> BitcoinCanister {
        let mut obs = Obs::new("canister");
        obs.metrics.register_histogram("canister_call_instructions", INSTRUCTION_BOUNDS);
        obs.metrics.register_histogram("canister_ingest_instructions", INSTRUCTION_BOUNDS);
        BitcoinCanister {
            state,
            fees: FeeSchedule::default(),
            cycles_burned: 0,
            instructions_total: 0,
            qcache: QueryCache::default(),
            obs,
        }
    }

    /// Replaces the query cache (capacity experiments); entries are
    /// dropped.
    pub fn set_query_cache(&mut self, cache: QueryCache) {
        self.qcache = cache;
    }

    /// The query cache (inspection).
    pub fn query_cache(&self) -> &QueryCache {
        &self.qcache
    }

    /// Read access to the canister's observability endpoint.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable access to the canister's observability endpoint.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Total cycles burned by replicated calls since genesis.
    pub fn cycles_burned(&self) -> Cycles {
        self.cycles_burned
    }

    /// Read access to the replicated state.
    pub fn state(&self) -> &BitcoinCanisterState {
        &self.state
    }

    /// Mutable access (Algorithm 2 payload processing, upgrades).
    pub fn state_mut(&mut self) -> &mut BitcoinCanisterState {
        &mut self.state
    }

    /// The fee schedule in force.
    pub fn fee_schedule(&self) -> &FeeSchedule {
        &self.fees
    }

    /// Builds the observability reply: the canister-side counters the
    /// production canister's `/metrics` endpoint exposes.
    pub fn get_metrics(&self) -> GetMetricsResponse {
        let (_, tip_height) = self.state.best_tip();
        GetMetricsResponse {
            main_chain_height: tip_height,
            anchor_height: self.state.anchor_height(),
            utxo_count: self.state.utxos().len() as u64,
            unstable_blocks: self.state.unstable_block_count() as u64,
            blocks_ingested: self.state.blocks_stabilized(),
            is_synced: self.state.is_synced(),
            instructions_total: self.instructions_total,
            cycles_burned: self.cycles_burned,
        }
    }

    /// Ingests one adapter response (Algorithm 2) with full observability:
    /// records blocks/headers accepted, stabilizations, instruction costs,
    /// and refreshed state gauges, wrapped in a `canister.ingest` span.
    pub fn ingest_response(
        &mut self,
        response: GetSuccessorsResponse,
        now_unix: u32,
        ctx: &mut ExecutionContext<'_>,
    ) -> IngestReport {
        let span = self.obs.trace.span_start(
            "canister.ingest",
            ctx.now,
            &[
                ("blocks", FieldValue::U64(response.blocks.len() as u64)),
                ("next", FieldValue::U64(response.next.len() as u64)),
            ],
        );
        let before = ctx.meter.instructions();
        // The outer frame also heals any frame a fallible inner path left
        // open, keeping the profiler balanced on error returns.
        let frame = ctx.meter.frame("ingest_response");
        let report = self.state.process_response(response, now_unix, ctx.meter);
        ctx.meter.frame_end(frame);
        let spent = ctx.meter.instructions().saturating_sub(before);

        // Ingestion is the only operation that can change a query's
        // answer: wholesale-invalidate the tip-keyed query cache so no
        // replica ever serves a response computed at a superseded tip.
        let dropped = self.qcache.invalidate();

        self.instructions_total = self.instructions_total.saturating_add(spent);
        let m = &mut self.obs.metrics;
        m.add("canister_blocks_ingested_total", report.blocks_accepted as u64);
        m.add("canister_headers_ingested_total", report.headers_accepted as u64);
        m.add("canister_ingest_rejected_total", report.rejected.len() as u64);
        m.add("canister_blocks_stabilized_total", report.stabilized.len() as u64);
        m.add("canister_instructions_total", spent);
        m.observe("canister_ingest_instructions", spent);
        m.inc("canister_qcache_invalidations_total");
        m.add("canister_qcache_invalidated_entries_total", dropped);
        m.set_gauge("canister_qcache_entries", 0);
        self.obs.prof.merge_from(&ctx.meter.take_profile());
        self.refresh_state_gauges();
        self.obs.trace.span_end(
            span,
            ctx.now,
            &[
                ("accepted", FieldValue::U64(report.blocks_accepted as u64)),
                ("stabilized", FieldValue::U64(report.stabilized.len() as u64)),
                ("instructions", FieldValue::U64(spent)),
            ],
        );
        report
    }

    fn refresh_state_gauges(&mut self) {
        let (_, tip_height) = self.state.best_tip();
        let m = &mut self.obs.metrics;
        m.set_gauge("canister_main_chain_height", tip_height as i64);
        m.set_gauge("canister_anchor_height", self.state.anchor_height() as i64);
        m.set_gauge("canister_utxo_count", self.state.utxos().len() as i64);
        m.set_gauge("canister_unstable_blocks", self.state.unstable_block_count() as i64);
        m.set_gauge("canister_is_synced", self.state.is_synced() as i64);
        let storage = self.state.utxos().storage_stats();
        m.set_gauge("canister_storage_pages_allocated", storage.pages_allocated as i64);
        m.set_gauge("canister_storage_bytes_reserved", storage.bytes_reserved as i64);
        m.set_gauge("canister_storage_bytes_used", storage.bytes_used as i64);
        m.set_gauge("canister_storage_budget_headroom_bytes", storage.budget_headroom as i64);
    }

    fn dispatch(&mut self, call: CanisterCall, meter: &mut Meter) -> CallOutcome {
        match call {
            CanisterCall::GetUtxos { address, filter } => {
                let reply = self.state.get_utxos(&address, filter, meter).map(CanisterReply::Utxos);
                CallOutcome { reply, cycles_charged: self.fees.get_utxos_fee(meter.instructions()) }
            }
            CanisterCall::GetBalance { address, min_confirmations } => {
                let reply = self
                    .state
                    .get_balance(&address, min_confirmations, meter)
                    .map(CanisterReply::Balance);
                CallOutcome {
                    reply,
                    cycles_charged: self.fees.get_balance_fee(meter.instructions()),
                }
            }
            CanisterCall::SendTransaction { transaction } => {
                let size = transaction.len();
                let reply = self
                    .state
                    .send_transaction(&transaction, meter)
                    .map(CanisterReply::TransactionSent);
                CallOutcome { reply, cycles_charged: self.fees.send_transaction_fee(size) }
            }
            CanisterCall::GetFeePercentiles => {
                let reply =
                    Ok(CanisterReply::FeePercentiles(self.state.get_current_fee_percentiles(meter)));
                CallOutcome { reply, cycles_charged: self.fees.get_balance_fee(meter.instructions()) }
            }
            CanisterCall::GetBlockHeaders { start_height, end_height } => {
                let reply = self
                    .state
                    .get_block_headers(start_height, end_height, meter)
                    .map(CanisterReply::BlockHeaders);
                CallOutcome { reply, cycles_charged: self.fees.get_balance_fee(meter.instructions()) }
            }
            CanisterCall::GetMetrics => {
                // Mirrors the production canister's metrics endpoint: an
                // unpaid read (served over HTTP query there), so no cycles
                // are charged.
                meter.charge(metering::QUERY_BASE);
                CallOutcome {
                    reply: Ok(CanisterReply::Metrics(self.get_metrics())),
                    cycles_charged: 0,
                }
            }
        }
    }

    /// Executes a call in *query* mode (single replica, read-only).
    /// `SendTransaction` is rejected in query mode — writes must be
    /// replicated.
    pub fn query(&self, call: &CanisterCall, meter: &mut Meter) -> CallOutcome {
        match call {
            CanisterCall::SendTransaction { .. } => CallOutcome {
                reply: Err(ApiError::MalformedTransaction),
                cycles_charged: 0,
            },
            CanisterCall::GetUtxos { address, filter } => {
                let reply = self
                    .state
                    .get_utxos(address, filter.clone(), meter)
                    .map(CanisterReply::Utxos);
                CallOutcome { reply, cycles_charged: self.fees.get_utxos_fee(meter.instructions()) }
            }
            CanisterCall::GetBalance { address, min_confirmations } => {
                let reply = self
                    .state
                    .get_balance(address, *min_confirmations, meter)
                    .map(CanisterReply::Balance);
                CallOutcome {
                    reply,
                    cycles_charged: self.fees.get_balance_fee(meter.instructions()),
                }
            }
            CanisterCall::GetFeePercentiles => {
                let reply =
                    Ok(CanisterReply::FeePercentiles(self.state.get_current_fee_percentiles(meter)));
                CallOutcome { reply, cycles_charged: self.fees.get_balance_fee(meter.instructions()) }
            }
            CanisterCall::GetBlockHeaders { start_height, end_height } => {
                let reply = self
                    .state
                    .get_block_headers(*start_height, *end_height, meter)
                    .map(CanisterReply::BlockHeaders);
                CallOutcome { reply, cycles_charged: self.fees.get_balance_fee(meter.instructions()) }
            }
            CanisterCall::GetMetrics => {
                meter.charge(metering::QUERY_BASE);
                CallOutcome {
                    reply: Ok(CanisterReply::Metrics(self.get_metrics())),
                    cycles_charged: 0,
                }
            }
        }
    }

    /// Executes a call in query mode through the tip-keyed query cache.
    ///
    /// Replies are byte-identical to [`BitcoinCanister::query`] — only
    /// the metered cost differs: a hit charges the probe
    /// ([`metering::QUERY_CACHE_LOOKUP`]) plus a per-byte copy of the
    /// reply that was serialized once at insert
    /// ([`metering::QUERY_CACHE_COPY_PER_BYTE`]), instead of the full
    /// state walk. The hit path used to re-serialize the cached reply on
    /// every call for a flat [`metering::QUERY_CACHE_HIT`]; profiling
    /// attributed most of that to serialization, so the serialized size
    /// is now computed once at cache fill and hits pay only the copy
    /// (see BENCH_qps.json's `hot_path` record for the before/after).
    /// Safety against staleness is two-fold: every key embeds the tip
    /// hash the response was computed at, and
    /// [`BitcoinCanister::ingest_response`] wholesale-invalidates the
    /// cache, so a response from a superseded tip can never be served.
    ///
    /// Cache traffic is recorded as `canister_qcache_*` counters, and the
    /// call's instruction profile is folded into the canister's profiler.
    /// These are per-replica query-plane diagnostics, not replicated
    /// state; the sim models a single querying replica, so they stay
    /// deterministic.
    pub fn query_cached(&mut self, call: &CanisterCall, meter: &mut Meter) -> CallOutcome {
        let outer = meter.frame(call.method());
        let (tip, _) = self.state.best_tip();
        let key = QueryCache::key_for(call, tip);
        let cached = match &key {
            Some(key) => {
                let lookup = meter.frame("cache_lookup");
                meter.charge(metering::QUERY_CACHE_LOOKUP);
                let cached = self.qcache.get(key);
                meter.frame_end(lookup);
                cached
            }
            None => None,
        };
        if let Some((reply, serialized_bytes)) = cached {
            let copy = meter.frame("response_serialize");
            meter.charge_per_byte(serialized_bytes as usize, metering::QUERY_CACHE_COPY_PER_BYTE);
            meter.frame_end(copy);
            meter.frame_end(outer);
            self.obs.metrics.inc("canister_qcache_hits_total");
            // Measured hit-path cost, so benches can report the realized
            // (post-optimization) per-hit instructions next to the
            // recorded pre-optimization flat cost.
            self.obs.metrics.add("canister_qcache_hit_instructions_total", meter.instructions());
            let cycles_charged = self.query_fee(call, meter.instructions());
            self.obs.prof.merge_from(&meter.take_profile());
            return CallOutcome { reply: Ok(reply), cycles_charged };
        }
        if key.is_some() {
            self.obs.metrics.inc("canister_qcache_misses_total");
        }
        let outcome = self.query(call, meter);
        meter.frame_end(outer);
        if let (Some(key), Ok(reply)) = (key, &outcome.reply) {
            let evicted = self.qcache.insert(key, reply.clone());
            let entries = self.qcache.len() as i64;
            let m = &mut self.obs.metrics;
            m.add("canister_qcache_evictions_total", evicted);
            m.set_gauge("canister_qcache_entries", entries);
        }
        self.obs.prof.merge_from(&meter.take_profile());
        outcome
    }

    /// The fee a query-mode call pays for `instructions`.
    fn query_fee(&self, call: &CanisterCall, instructions: u64) -> Cycles {
        match call {
            CanisterCall::GetUtxos { .. } => self.fees.get_utxos_fee(instructions),
            CanisterCall::GetMetrics | CanisterCall::SendTransaction { .. } => 0,
            _ => self.fees.get_balance_fee(instructions),
        }
    }
}

impl StateMachine for BitcoinCanister {
    type Input = CanisterCall;
    type Output = CallOutcome;

    fn execute(&mut self, input: CanisterCall, ctx: &mut ExecutionContext<'_>) -> CallOutcome {
        // Replicated calls are recorded into the canister's metrics; query
        // calls deliberately are not — queries run on a single replica, and
        // mutating replicated metrics from them would diverge the replicas.
        let method = input.method();
        let before = ctx.meter.instructions();
        let frame = ctx.meter.frame(method);
        let outcome = self.dispatch(input, ctx.meter);
        ctx.meter.frame_end(frame);
        let spent = ctx.meter.instructions().saturating_sub(before);
        let failed = outcome.reply.is_err();
        self.cycles_burned = self.cycles_burned.saturating_add(outcome.cycles_charged);
        self.instructions_total = self.instructions_total.saturating_add(spent);
        let m = &mut self.obs.metrics;
        m.inc_with("canister_calls_total", &[("method", method)]);
        if failed {
            m.inc_with("canister_call_errors_total", &[("method", method)]);
        }
        m.add("canister_instructions_total", spent);
        m.observe_with("canister_call_instructions", &[("method", method)], spent);
        m.add(
            "canister_cycles_burned_total",
            u64::try_from(outcome.cycles_charged).unwrap_or(u64::MAX),
        );
        self.obs.trace.event(
            "canister.call",
            ctx.now,
            &[
                ("method", FieldValue::Str(method)),
                ("instructions", FieldValue::U64(spent)),
                ("error", FieldValue::U64(failed as u64)),
            ],
        );
        self.obs.prof.merge_from(&ctx.meter.take_profile());
        outcome
    }

    /// Queries route through the tip-keyed cache. The cache and its
    /// counters are node-local (single serving replica in this
    /// simulation), never part of replicated state.
    fn execute_query(&mut self, input: CanisterCall, ctx: &mut ExecutionContext<'_>) -> CallOutcome {
        self.query_cached(&input, ctx.meter)
    }

    fn output_bytes(outcome: &CallOutcome) -> usize {
        match &outcome.reply {
            Ok(reply) => reply.serialized_size() as usize,
            Err(_) => 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::{AddressKind, Network};
    use icbtc_core::IntegrationParams;
    use icbtc_ic::consensus::ConsensusConfig;
    use icbtc_ic::Subnet;

    fn addr(n: u8) -> Address {
        Address::new(Network::Regtest, AddressKind::P2wpkh([n; 20]))
    }

    fn canister() -> BitcoinCanister {
        BitcoinCanister::new(IntegrationParams::for_network(Network::Regtest))
    }

    #[test]
    fn runs_inside_a_subnet() {
        let mut subnet = Subnet::new(canister(), ConsensusConfig::thirteen_replicas(), 3);
        subnet.submit(CanisterCall::GetBalance { address: addr(1), min_confirmations: 0 });
        let outcome = loop {
            let report = subnet.execute_round(|_, _| {});
            if let Some(result) = report.results.into_iter().next() {
                break result;
            }
        };
        assert!(outcome.output.reply.is_ok());
        assert!(outcome.instructions > 0);
        assert!(outcome.output.cycles_charged > 0);
    }

    #[test]
    fn query_mode_rejects_writes() {
        let c = canister();
        let outcome = c.query(
            &CanisterCall::SendTransaction { transaction: vec![1, 2, 3] },
            &mut Meter::new(),
        );
        assert!(outcome.reply.is_err());
        assert_eq!(outcome.cycles_charged, 0);
    }

    #[test]
    fn cycles_follow_the_fee_schedule() {
        let c = canister();
        let mut meter = Meter::new();
        let outcome = c.query(
            &CanisterCall::GetBalance { address: addr(1), min_confirmations: 0 },
            &mut meter,
        );
        let expected = c.fee_schedule().get_balance_fee(meter.instructions());
        assert_eq!(outcome.cycles_charged, expected);
        // UTXO calls cost more than balance calls (flat fee difference).
        let utxo_outcome = c.query(
            &CanisterCall::GetUtxos { address: addr(1), filter: None },
            &mut Meter::new(),
        );
        assert!(utxo_outcome.cycles_charged > outcome.cycles_charged);
    }

    #[test]
    fn fee_percentiles_callable() {
        let c = canister();
        let outcome = c.query(&CanisterCall::GetFeePercentiles, &mut Meter::new());
        assert_eq!(outcome.reply, Ok(CanisterReply::FeePercentiles(Vec::new())));
    }

    #[test]
    fn query_cached_hits_then_invalidates_on_ingest() {
        let mut c = canister();
        let call = CanisterCall::GetBalance { address: addr(1), min_confirmations: 0 };

        // First call misses and computes through the normal query path.
        let uncached = c.query(&call, &mut Meter::new());
        let mut miss_meter = Meter::new();
        let miss = c.query_cached(&call, &mut miss_meter);
        assert_eq!(miss.reply, uncached.reply, "cache fill returns the computed reply");
        assert_eq!(c.query_cache().len(), 1);

        // Second call hits: same reply, but only the probe plus a
        // per-byte copy of the reply serialized once at cache fill.
        let mut hit_meter = Meter::new();
        let hit = c.query_cached(&call, &mut hit_meter);
        assert_eq!(hit.reply, uncached.reply, "hit serves the identical reply");
        let reply_bytes = hit.reply.as_ref().unwrap().serialized_size();
        assert_eq!(
            hit_meter.instructions(),
            metering::QUERY_CACHE_LOOKUP + reply_bytes * metering::QUERY_CACHE_COPY_PER_BYTE,
        );
        assert!(
            hit_meter.instructions() < metering::QUERY_CACHE_HIT,
            "cheaper than the pre-optimization flat re-serializing hit"
        );
        assert!(hit_meter.instructions() < miss_meter.instructions());

        // Ingesting any adapter response wipes the cache.
        let mut meter = Meter::new();
        let mut ctx = ExecutionContext {
            meter: &mut meter,
            now: icbtc_sim::SimTime::ZERO,
            round: 1,
        };
        c.ingest_response(GetSuccessorsResponse::default(), 0, &mut ctx);
        assert!(c.query_cache().is_empty(), "ingest invalidates wholesale");
        let snapshot = c.obs().metrics.snapshot_json();
        assert!(
            snapshot.contains("\"name\": \"canister_qcache_hits_total\", \"labels\": {}, \"value\": 1"),
            "{snapshot}"
        );
        assert!(
            snapshot
                .contains("\"name\": \"canister_qcache_invalidations_total\", \"labels\": {}, \"value\": 1"),
            "{snapshot}"
        );
    }
}

//! The Bitcoin canister as a replicated state machine on the simulated IC.
//!
//! Wraps [`BitcoinCanisterState`] in the `icbtc-ic` execution model: a
//! typed method interface, instruction metering per call, and cycles
//! charges per the fee schedule (§IV-B).

use icbtc_bitcoin::hash::{sha256, Sha256};
use icbtc_bitcoin::Address;
use icbtc_core::GetSuccessorsResponse;
use icbtc_ic::cycles::{Cycles, FeeSchedule};
use icbtc_ic::subnet::{ExecutionContext, StateMachine};
use icbtc_ic::Meter;
use icbtc_sim::obs::{FieldValue, Obs, INSTRUCTION_BOUNDS};

use crate::api::{ApiError, GetBalanceResponse, GetMetricsResponse, GetUtxosResponse, UtxosFilter};
use crate::metering;
use crate::qcache::QueryCache;
use crate::state::{BitcoinCanisterState, IngestReport};
use crate::storage::StorageError;
use crate::utxoset::SnapshotReader;

/// Magic prefix of the canister checkpoint envelope, wrapping the
/// full-state snapshot plus the replicated counters.
const CHECKPOINT_MAGIC: &[u8; 8] = b"ICBTCCKP";
/// Bumped on any layout change; restores reject other versions.
const CHECKPOINT_VERSION: u16 = 1;

/// A call into the Bitcoin canister's API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanisterCall {
    /// `get_utxos(address, filter)`.
    GetUtxos {
        /// The address queried.
        address: Address,
        /// Optional confirmations/pagination filter.
        filter: Option<UtxosFilter>,
    },
    /// `get_balance(address, min_confirmations)`.
    GetBalance {
        /// The address queried.
        address: Address,
        /// Minimum confirmations (0 = current best view).
        min_confirmations: u32,
    },
    /// `send_transaction(bytes)`.
    SendTransaction {
        /// The serialized transaction.
        transaction: Vec<u8>,
    },
    /// `get_current_fee_percentiles()`.
    GetFeePercentiles,
    /// `get_block_headers(start_height, end_height)`.
    GetBlockHeaders {
        /// First height requested (inclusive).
        start_height: u64,
        /// Last height requested (inclusive; clamped to the tip).
        end_height: u64,
    },
    /// `get_metrics()` — the observability endpoint, mirroring the
    /// production canister's `/metrics` HTTP query.
    GetMetrics,
}

impl CanisterCall {
    /// The API method name, used as the `method` metric label.
    pub fn method(&self) -> &'static str {
        match self {
            CanisterCall::GetUtxos { .. } => "get_utxos",
            CanisterCall::GetBalance { .. } => "get_balance",
            CanisterCall::SendTransaction { .. } => "send_transaction",
            CanisterCall::GetFeePercentiles => "get_current_fee_percentiles",
            CanisterCall::GetBlockHeaders { .. } => "get_block_headers",
            CanisterCall::GetMetrics => "get_metrics",
        }
    }
}

/// A successful reply from the canister.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanisterReply {
    /// Reply to [`CanisterCall::GetUtxos`].
    Utxos(GetUtxosResponse),
    /// Reply to [`CanisterCall::GetBalance`].
    Balance(GetBalanceResponse),
    /// Reply to [`CanisterCall::SendTransaction`]: the accepted txid.
    TransactionSent(icbtc_bitcoin::Txid),
    /// Reply to [`CanisterCall::GetFeePercentiles`].
    FeePercentiles(Vec<u64>),
    /// Reply to [`CanisterCall::GetBlockHeaders`].
    BlockHeaders(crate::api::GetBlockHeadersResponse),
    /// Reply to [`CanisterCall::GetMetrics`].
    Metrics(GetMetricsResponse),
}

impl CanisterReply {
    /// The reply's serialized wire size in bytes — the single source of
    /// truth for response-transfer modeling ([`StateMachine::output_bytes`])
    /// and for the query cache's per-byte hit copy charge.
    pub fn serialized_size(&self) -> u64 {
        match self {
            CanisterReply::Utxos(r) => 64 + r.utxos.len() as u64 * 48,
            CanisterReply::Balance(_) => 16,
            CanisterReply::TransactionSent(_) => 32,
            CanisterReply::FeePercentiles(p) => 8 * p.len() as u64,
            CanisterReply::BlockHeaders(r) => 16 + r.headers.len() as u64 * 80,
            CanisterReply::Metrics(_) => 72,
        }
    }
}

/// The outcome of one canister call: the reply (or API error) plus the
/// cycles charged for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOutcome {
    /// The API-level result.
    pub reply: Result<CanisterReply, ApiError>,
    /// Cycles charged per the fee schedule.
    pub cycles_charged: Cycles,
}

/// The Bitcoin canister, pluggable into [`icbtc_ic::Subnet`].
///
/// # Examples
///
/// ```
/// use icbtc_canister::{BitcoinCanister, CanisterCall};
/// use icbtc_core::IntegrationParams;
/// use icbtc_bitcoin::{Address, AddressKind, Network};
/// use icbtc_ic::Meter;
///
/// let canister = BitcoinCanister::new(IntegrationParams::for_network(Network::Regtest));
/// let address = Address::new(Network::Regtest, AddressKind::P2wpkh([1; 20]));
/// let outcome = canister.query(
///     &CanisterCall::GetBalance { address, min_confirmations: 0 },
///     &mut Meter::new(),
/// );
/// assert!(outcome.reply.is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct BitcoinCanister {
    state: BitcoinCanisterState,
    fees: FeeSchedule,
    /// Total cycles burned by replicated calls since genesis.
    cycles_burned: Cycles,
    /// Total instructions spent by replicated execution since genesis.
    /// Kept as replicated state (not read back from the node-local
    /// metrics registry) so `get_metrics` answers identically on every
    /// replica.
    instructions_total: u64,
    /// Tip-keyed query cache, wholesale-invalidated on ingest.
    qcache: QueryCache,
    /// Observability endpoint (metrics + trace), component `"canister"`.
    obs: Obs,
}

impl BitcoinCanister {
    /// Creates a canister for the given integration parameters.
    pub fn new(params: icbtc_core::IntegrationParams) -> BitcoinCanister {
        BitcoinCanister::from_state(BitcoinCanisterState::new(params))
    }

    /// Wraps an existing (e.g. snapshot-installed) state as a canister.
    pub fn from_state(state: BitcoinCanisterState) -> BitcoinCanister {
        let mut obs = Obs::new("canister");
        obs.metrics.register_histogram("canister_call_instructions", INSTRUCTION_BOUNDS);
        obs.metrics.register_histogram("canister_ingest_instructions", INSTRUCTION_BOUNDS);
        BitcoinCanister {
            state,
            fees: FeeSchedule::default(),
            cycles_burned: 0,
            instructions_total: 0,
            qcache: QueryCache::default(),
            obs,
        }
    }

    /// Replaces the query cache (capacity experiments); entries are
    /// dropped.
    pub fn set_query_cache(&mut self, cache: QueryCache) {
        self.qcache = cache;
    }

    /// The query cache (inspection).
    pub fn query_cache(&self) -> &QueryCache {
        &self.qcache
    }

    /// Read access to the canister's observability endpoint.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable access to the canister's observability endpoint.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Total cycles burned by replicated calls since genesis.
    pub fn cycles_burned(&self) -> Cycles {
        self.cycles_burned
    }

    /// Read access to the replicated state.
    pub fn state(&self) -> &BitcoinCanisterState {
        &self.state
    }

    /// Mutable access (Algorithm 2 payload processing, upgrades).
    pub fn state_mut(&mut self) -> &mut BitcoinCanisterState {
        &mut self.state
    }

    /// The fee schedule in force.
    pub fn fee_schedule(&self) -> &FeeSchedule {
        &self.fees
    }

    /// Builds the observability reply: the canister-side counters the
    /// production canister's `/metrics` endpoint exposes.
    pub fn get_metrics(&self) -> GetMetricsResponse {
        let (_, tip_height) = self.state.best_tip();
        GetMetricsResponse {
            main_chain_height: tip_height,
            anchor_height: self.state.anchor_height(),
            utxo_count: self.state.utxos().len() as u64,
            unstable_blocks: self.state.unstable_block_count() as u64,
            blocks_ingested: self.state.blocks_stabilized(),
            is_synced: self.state.is_synced(),
            instructions_total: self.instructions_total,
            cycles_burned: self.cycles_burned,
        }
    }

    /// Streams the checkpoint envelope: magic, version, the replicated
    /// counters, then the length-prefixed full-state snapshot. Exactly
    /// the replicated portion of the canister — the query cache, the
    /// profiler, and the metrics/trace registries are node-local and
    /// deliberately absent, which is what makes an upgrade equivalent to
    /// dropping them.
    fn checkpoint_into(&self, sink: &mut dyn FnMut(&[u8])) {
        sink(CHECKPOINT_MAGIC);
        sink(&CHECKPOINT_VERSION.to_be_bytes());
        sink(&self.cycles_burned.to_be_bytes());
        sink(&self.instructions_total.to_be_bytes());
        let state_bytes = self.state.serialize();
        sink(&(state_bytes.len() as u64).to_be_bytes());
        sink(&state_bytes);
    }

    /// The canister checkpoint as one contiguous buffer — what
    /// `pre_upgrade` writes to stable memory and what the subnet's
    /// periodic checkpointer stores for crash catch-up.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.checkpoint_into(&mut |bytes| out.extend_from_slice(bytes));
        out
    }

    /// Composite SHA-256d over the checkpoint stream — the per-round
    /// fingerprint the shadow-replica divergence detector compares.
    /// Covers replicated state only, so two replicas with different
    /// query-cache or profiler contents still hash identically.
    pub fn state_hash(&self) -> [u8; 32] {
        let mut hasher = Sha256::new();
        self.checkpoint_into(&mut |bytes| hasher.update(bytes));
        sha256(&hasher.finalize())
    }

    /// Rebuilds a canister from [`BitcoinCanister::checkpoint_bytes`], as
    /// `post_upgrade` or a crash-restarted replica would: replicated
    /// state and counters are restored, node-local state (query cache,
    /// profiler, metrics, trace) starts empty.
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] on a bad magic, version, embedded state
    /// snapshot, or trailing bytes.
    pub fn restore(bytes: &[u8]) -> Result<BitcoinCanister, StorageError> {
        let mut cursor = SnapshotReader { bytes, pos: 0 };
        if cursor.take(8)? != CHECKPOINT_MAGIC {
            return Err(StorageError::Corrupt("bad checkpoint magic"));
        }
        if cursor.u16()? != CHECKPOINT_VERSION {
            return Err(StorageError::Corrupt("unsupported checkpoint version"));
        }
        let cycles_burned = cursor.u128()?;
        let instructions_total = cursor.u64()?;
        let state_len = cursor.u64()? as usize;
        let state = BitcoinCanisterState::deserialize(cursor.take(state_len)?)?;
        if cursor.pos != bytes.len() {
            return Err(StorageError::Corrupt("trailing bytes in checkpoint"));
        }
        let mut canister = BitcoinCanister::from_state(state);
        canister.cycles_burned = cycles_burned;
        canister.instructions_total = instructions_total;
        Ok(canister)
    }

    /// Ingests one adapter response (Algorithm 2) with full observability:
    /// records blocks/headers accepted, stabilizations, instruction costs,
    /// and refreshed state gauges, wrapped in a `canister.ingest` span.
    pub fn ingest_response(
        &mut self,
        response: GetSuccessorsResponse,
        now_unix: u32,
        ctx: &mut ExecutionContext<'_>,
    ) -> IngestReport {
        let span = self.obs.trace.span_start(
            "canister.ingest",
            ctx.now,
            &[
                ("blocks", FieldValue::U64(response.blocks.len() as u64)),
                ("next", FieldValue::U64(response.next.len() as u64)),
            ],
        );
        let before = ctx.meter.instructions();
        // The outer frame also heals any frame a fallible inner path left
        // open, keeping the profiler balanced on error returns.
        let frame = ctx.meter.frame("ingest_response");
        let report = self.state.process_response(response, now_unix, ctx.meter);
        ctx.meter.frame_end(frame);
        let spent = ctx.meter.instructions().saturating_sub(before);

        if report.duplicate_dropped {
            // The response was a redelivered copy of the last one applied
            // (a restarted replica's adapter catching up): replicated
            // state is untouched, so the tip-keyed cache stays valid and
            // only the metered probe cost is recorded.
            self.instructions_total = self.instructions_total.saturating_add(spent);
            let m = &mut self.obs.metrics;
            m.inc("canister_ingest_duplicate_dropped_total");
            m.add("canister_instructions_total", spent);
            m.observe("canister_ingest_instructions", spent);
            self.obs.prof.merge_from(&ctx.meter.take_profile());
            self.obs.trace.span_end(
                span,
                ctx.now,
                &[
                    ("duplicate_dropped", FieldValue::U64(1)),
                    ("instructions", FieldValue::U64(spent)),
                ],
            );
            return report;
        }

        // Ingestion is the only operation that can change a query's
        // answer: wholesale-invalidate the tip-keyed query cache so no
        // replica ever serves a response computed at a superseded tip.
        let dropped = self.qcache.invalidate();

        self.instructions_total = self.instructions_total.saturating_add(spent);
        let m = &mut self.obs.metrics;
        m.add("canister_blocks_ingested_total", report.blocks_accepted as u64);
        m.add("canister_headers_ingested_total", report.headers_accepted as u64);
        m.add("canister_ingest_rejected_total", report.rejected.len() as u64);
        m.add("canister_blocks_stabilized_total", report.stabilized.len() as u64);
        m.add("canister_instructions_total", spent);
        m.observe("canister_ingest_instructions", spent);
        m.inc("canister_qcache_invalidations_total");
        m.add("canister_qcache_invalidated_entries_total", dropped);
        m.set_gauge("canister_qcache_entries", 0);
        self.obs.prof.merge_from(&ctx.meter.take_profile());
        self.refresh_state_gauges();
        self.obs.trace.span_end(
            span,
            ctx.now,
            &[
                ("accepted", FieldValue::U64(report.blocks_accepted as u64)),
                ("stabilized", FieldValue::U64(report.stabilized.len() as u64)),
                ("instructions", FieldValue::U64(spent)),
            ],
        );
        report
    }

    fn refresh_state_gauges(&mut self) {
        let (_, tip_height) = self.state.best_tip();
        let m = &mut self.obs.metrics;
        m.set_gauge("canister_main_chain_height", tip_height as i64);
        m.set_gauge("canister_anchor_height", self.state.anchor_height() as i64);
        m.set_gauge("canister_utxo_count", self.state.utxos().len() as i64);
        m.set_gauge("canister_unstable_blocks", self.state.unstable_block_count() as i64);
        m.set_gauge("canister_is_synced", self.state.is_synced() as i64);
        let storage = self.state.utxos().storage_stats();
        m.set_gauge("canister_storage_pages_allocated", storage.pages_allocated as i64);
        m.set_gauge("canister_storage_bytes_reserved", storage.bytes_reserved as i64);
        m.set_gauge("canister_storage_bytes_used", storage.bytes_used as i64);
        m.set_gauge("canister_storage_budget_headroom_bytes", storage.budget_headroom as i64);
    }

    fn dispatch(&mut self, call: CanisterCall, meter: &mut Meter) -> CallOutcome {
        match call {
            CanisterCall::GetUtxos { address, filter } => {
                let reply = self.state.get_utxos(&address, filter, meter).map(CanisterReply::Utxos);
                CallOutcome { reply, cycles_charged: self.fees.get_utxos_fee(meter.instructions()) }
            }
            CanisterCall::GetBalance { address, min_confirmations } => {
                let reply = self
                    .state
                    .get_balance(&address, min_confirmations, meter)
                    .map(CanisterReply::Balance);
                CallOutcome {
                    reply,
                    cycles_charged: self.fees.get_balance_fee(meter.instructions()),
                }
            }
            CanisterCall::SendTransaction { transaction } => {
                let size = transaction.len();
                let reply = self
                    .state
                    .send_transaction(&transaction, meter)
                    .map(CanisterReply::TransactionSent);
                CallOutcome { reply, cycles_charged: self.fees.send_transaction_fee(size) }
            }
            CanisterCall::GetFeePercentiles => {
                let reply =
                    Ok(CanisterReply::FeePercentiles(self.state.get_current_fee_percentiles(meter)));
                CallOutcome { reply, cycles_charged: self.fees.get_balance_fee(meter.instructions()) }
            }
            CanisterCall::GetBlockHeaders { start_height, end_height } => {
                let reply = self
                    .state
                    .get_block_headers(start_height, end_height, meter)
                    .map(CanisterReply::BlockHeaders);
                CallOutcome { reply, cycles_charged: self.fees.get_balance_fee(meter.instructions()) }
            }
            CanisterCall::GetMetrics => {
                // Mirrors the production canister's metrics endpoint: an
                // unpaid read (served over HTTP query there), so no cycles
                // are charged.
                meter.charge(metering::QUERY_BASE);
                CallOutcome {
                    reply: Ok(CanisterReply::Metrics(self.get_metrics())),
                    cycles_charged: 0,
                }
            }
        }
    }

    /// Executes a call in *query* mode (single replica, read-only).
    /// `SendTransaction` is rejected in query mode — writes must be
    /// replicated.
    pub fn query(&self, call: &CanisterCall, meter: &mut Meter) -> CallOutcome {
        match call {
            CanisterCall::SendTransaction { .. } => CallOutcome {
                reply: Err(ApiError::MalformedTransaction),
                cycles_charged: 0,
            },
            CanisterCall::GetUtxos { address, filter } => {
                let reply = self
                    .state
                    .get_utxos(address, filter.clone(), meter)
                    .map(CanisterReply::Utxos);
                CallOutcome { reply, cycles_charged: self.fees.get_utxos_fee(meter.instructions()) }
            }
            CanisterCall::GetBalance { address, min_confirmations } => {
                let reply = self
                    .state
                    .get_balance(address, *min_confirmations, meter)
                    .map(CanisterReply::Balance);
                CallOutcome {
                    reply,
                    cycles_charged: self.fees.get_balance_fee(meter.instructions()),
                }
            }
            CanisterCall::GetFeePercentiles => {
                let reply =
                    Ok(CanisterReply::FeePercentiles(self.state.get_current_fee_percentiles(meter)));
                CallOutcome { reply, cycles_charged: self.fees.get_balance_fee(meter.instructions()) }
            }
            CanisterCall::GetBlockHeaders { start_height, end_height } => {
                let reply = self
                    .state
                    .get_block_headers(*start_height, *end_height, meter)
                    .map(CanisterReply::BlockHeaders);
                CallOutcome { reply, cycles_charged: self.fees.get_balance_fee(meter.instructions()) }
            }
            CanisterCall::GetMetrics => {
                meter.charge(metering::QUERY_BASE);
                CallOutcome {
                    reply: Ok(CanisterReply::Metrics(self.get_metrics())),
                    cycles_charged: 0,
                }
            }
        }
    }

    /// Executes a call in query mode through the tip-keyed query cache.
    ///
    /// Replies are byte-identical to [`BitcoinCanister::query`] — only
    /// the metered cost differs: a hit charges the probe
    /// ([`metering::QUERY_CACHE_LOOKUP`]) plus a per-byte copy of the
    /// reply that was serialized once at insert
    /// ([`metering::QUERY_CACHE_COPY_PER_BYTE`]), instead of the full
    /// state walk. The hit path used to re-serialize the cached reply on
    /// every call for a flat [`metering::QUERY_CACHE_HIT`]; profiling
    /// attributed most of that to serialization, so the serialized size
    /// is now computed once at cache fill and hits pay only the copy
    /// (see BENCH_qps.json's `hot_path` record for the before/after).
    /// Safety against staleness is two-fold: every key embeds the tip
    /// hash the response was computed at, and
    /// [`BitcoinCanister::ingest_response`] wholesale-invalidates the
    /// cache, so a response from a superseded tip can never be served.
    ///
    /// Cache traffic is recorded as `canister_qcache_*` counters, and the
    /// call's instruction profile is folded into the canister's profiler.
    /// These are per-replica query-plane diagnostics, not replicated
    /// state; the sim models a single querying replica, so they stay
    /// deterministic.
    pub fn query_cached(&mut self, call: &CanisterCall, meter: &mut Meter) -> CallOutcome {
        let outer = meter.frame(call.method());
        let (tip, _) = self.state.best_tip();
        let key = QueryCache::key_for(call, tip);
        let cached = match &key {
            Some(key) => {
                let lookup = meter.frame("cache_lookup");
                meter.charge(metering::QUERY_CACHE_LOOKUP);
                let cached = self.qcache.get(key);
                meter.frame_end(lookup);
                cached
            }
            None => None,
        };
        if let Some((reply, serialized_bytes)) = cached {
            let copy = meter.frame("response_serialize");
            meter.charge_per_byte(serialized_bytes as usize, metering::QUERY_CACHE_COPY_PER_BYTE);
            meter.frame_end(copy);
            meter.frame_end(outer);
            self.obs.metrics.inc("canister_qcache_hits_total");
            // Measured hit-path cost, so benches can report the realized
            // (post-optimization) per-hit instructions next to the
            // recorded pre-optimization flat cost.
            self.obs.metrics.add("canister_qcache_hit_instructions_total", meter.instructions());
            let cycles_charged = self.query_fee(call, meter.instructions());
            self.obs.prof.merge_from(&meter.take_profile());
            return CallOutcome { reply: Ok(reply), cycles_charged };
        }
        if key.is_some() {
            self.obs.metrics.inc("canister_qcache_misses_total");
        }
        let outcome = self.query(call, meter);
        meter.frame_end(outer);
        if let (Some(key), Ok(reply)) = (key, &outcome.reply) {
            let evicted = self.qcache.insert(key, reply.clone());
            let entries = self.qcache.len() as i64;
            let m = &mut self.obs.metrics;
            m.add("canister_qcache_evictions_total", evicted);
            m.set_gauge("canister_qcache_entries", entries);
        }
        self.obs.prof.merge_from(&meter.take_profile());
        outcome
    }

    /// The fee a query-mode call pays for `instructions`.
    fn query_fee(&self, call: &CanisterCall, instructions: u64) -> Cycles {
        match call {
            CanisterCall::GetUtxos { .. } => self.fees.get_utxos_fee(instructions),
            CanisterCall::GetMetrics | CanisterCall::SendTransaction { .. } => 0,
            _ => self.fees.get_balance_fee(instructions),
        }
    }
}

impl StateMachine for BitcoinCanister {
    type Input = CanisterCall;
    type Output = CallOutcome;

    fn execute(&mut self, input: CanisterCall, ctx: &mut ExecutionContext<'_>) -> CallOutcome {
        // Replicated calls are recorded into the canister's metrics; query
        // calls deliberately are not — queries run on a single replica, and
        // mutating replicated metrics from them would diverge the replicas.
        let method = input.method();
        let before = ctx.meter.instructions();
        let frame = ctx.meter.frame(method);
        let outcome = self.dispatch(input, ctx.meter);
        ctx.meter.frame_end(frame);
        let spent = ctx.meter.instructions().saturating_sub(before);
        let failed = outcome.reply.is_err();
        self.cycles_burned = self.cycles_burned.saturating_add(outcome.cycles_charged);
        self.instructions_total = self.instructions_total.saturating_add(spent);
        let m = &mut self.obs.metrics;
        m.inc_with("canister_calls_total", &[("method", method)]);
        if failed {
            m.inc_with("canister_call_errors_total", &[("method", method)]);
        }
        m.add("canister_instructions_total", spent);
        m.observe_with("canister_call_instructions", &[("method", method)], spent);
        m.add(
            "canister_cycles_burned_total",
            u64::try_from(outcome.cycles_charged).unwrap_or(u64::MAX),
        );
        self.obs.trace.event(
            "canister.call",
            ctx.now,
            &[
                ("method", FieldValue::Str(method)),
                ("instructions", FieldValue::U64(spent)),
                ("error", FieldValue::U64(failed as u64)),
            ],
        );
        self.obs.prof.merge_from(&ctx.meter.take_profile());
        outcome
    }

    /// Queries route through the tip-keyed cache. The cache and its
    /// counters are node-local (single serving replica in this
    /// simulation), never part of replicated state.
    fn execute_query(&mut self, input: CanisterCall, ctx: &mut ExecutionContext<'_>) -> CallOutcome {
        self.query_cached(&input, ctx.meter)
    }

    fn output_bytes(outcome: &CallOutcome) -> usize {
        match &outcome.reply {
            Ok(reply) => reply.serialized_size() as usize,
            Err(_) => 32,
        }
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        Some(self.checkpoint_bytes())
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        *self = BitcoinCanister::restore(bytes).map_err(|_| "corrupt checkpoint")?;
        Ok(())
    }

    fn state_fingerprint(&self) -> Option<[u8; 32]> {
        Some(self.state_hash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::{AddressKind, Network};
    use icbtc_core::IntegrationParams;
    use icbtc_ic::consensus::ConsensusConfig;
    use icbtc_ic::Subnet;

    fn addr(n: u8) -> Address {
        Address::new(Network::Regtest, AddressKind::P2wpkh([n; 20]))
    }

    fn canister() -> BitcoinCanister {
        BitcoinCanister::new(IntegrationParams::for_network(Network::Regtest))
    }

    #[test]
    fn runs_inside_a_subnet() {
        let mut subnet = Subnet::new(canister(), ConsensusConfig::thirteen_replicas(), 3);
        subnet.submit(CanisterCall::GetBalance { address: addr(1), min_confirmations: 0 });
        let outcome = loop {
            let report = subnet.execute_round(|_, _| {});
            if let Some(result) = report.results.into_iter().next() {
                break result;
            }
        };
        assert!(outcome.output.reply.is_ok());
        assert!(outcome.instructions > 0);
        assert!(outcome.output.cycles_charged > 0);
    }

    #[test]
    fn query_mode_rejects_writes() {
        let c = canister();
        let outcome = c.query(
            &CanisterCall::SendTransaction { transaction: vec![1, 2, 3] },
            &mut Meter::new(),
        );
        assert!(outcome.reply.is_err());
        assert_eq!(outcome.cycles_charged, 0);
    }

    #[test]
    fn cycles_follow_the_fee_schedule() {
        let c = canister();
        let mut meter = Meter::new();
        let outcome = c.query(
            &CanisterCall::GetBalance { address: addr(1), min_confirmations: 0 },
            &mut meter,
        );
        let expected = c.fee_schedule().get_balance_fee(meter.instructions());
        assert_eq!(outcome.cycles_charged, expected);
        // UTXO calls cost more than balance calls (flat fee difference).
        let utxo_outcome = c.query(
            &CanisterCall::GetUtxos { address: addr(1), filter: None },
            &mut Meter::new(),
        );
        assert!(utxo_outcome.cycles_charged > outcome.cycles_charged);
    }

    #[test]
    fn fee_percentiles_callable() {
        let c = canister();
        let outcome = c.query(&CanisterCall::GetFeePercentiles, &mut Meter::new());
        assert_eq!(outcome.reply, Ok(CanisterReply::FeePercentiles(Vec::new())));
    }

    #[test]
    fn checkpoint_restores_replicated_state_and_drops_node_local_state() {
        let mut c = canister();
        let call = CanisterCall::GetBalance { address: addr(1), min_confirmations: 0 };
        // Burn some replicated work and fill the query cache.
        let mut meter = Meter::new();
        let mut ctx =
            ExecutionContext { meter: &mut meter, now: icbtc_sim::SimTime::ZERO, round: 1 };
        let outcome = c.execute(call.clone(), &mut ctx);
        assert!(outcome.reply.is_ok());
        c.query_cached(&call, &mut Meter::new());
        assert_eq!(c.query_cache().len(), 1);

        let bytes = c.checkpoint_bytes();
        let restored = BitcoinCanister::restore(&bytes).unwrap();
        // Replicated portion is identical...
        assert_eq!(restored.state_hash(), c.state_hash());
        assert_eq!(restored.cycles_burned(), c.cycles_burned());
        assert_eq!(restored.get_metrics(), c.get_metrics());
        assert_eq!(restored.checkpoint_bytes(), bytes);
        // ...while node-local state starts empty: the cache entry filled
        // at the *same tip* pre-upgrade is gone, so the post-restore
        // canister can never serve a pre-upgrade reply.
        assert!(restored.query_cache().is_empty());
        assert_eq!(restored.obs().metrics.snapshot_json(), canister().obs().metrics.snapshot_json());

        // Corruption is rejected, not misread.
        assert!(BitcoinCanister::restore(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        bad[3] ^= 0x40;
        assert!(BitcoinCanister::restore(&bad).is_err());
    }

    #[test]
    fn state_hash_ignores_node_local_state() {
        let mut c = canister();
        let before = c.state_hash();
        c.query_cached(
            &CanisterCall::GetBalance { address: addr(2), min_confirmations: 0 },
            &mut Meter::new(),
        );
        assert_eq!(c.query_cache().len(), 1);
        assert_eq!(c.state_hash(), before, "query-cache fills must not move the hash");
    }

    #[test]
    fn duplicate_ingest_is_counted_and_keeps_the_cache() {
        use icbtc_btcnet::miner::mine_block_on;
        use icbtc_btcnet::ChainStore;

        let mut chain = ChainStore::new(Network::Regtest);
        let block = mine_block_on(
            &chain,
            chain.tip_hash(),
            Vec::new(),
            icbtc_bitcoin::Script::new_p2wpkh(&[9; 20]),
            0,
        );
        chain.accept_block(block.clone(), 2_000_000_000).unwrap();
        let response = GetSuccessorsResponse { blocks: vec![block], next: Vec::new() };

        let mut c = canister();
        let apply = |c: &mut BitcoinCanister, response: GetSuccessorsResponse| {
            let mut meter = Meter::new();
            let mut ctx =
                ExecutionContext { meter: &mut meter, now: icbtc_sim::SimTime::ZERO, round: 1 };
            c.ingest_response(response, 2_000_000_000, &mut ctx)
        };
        let first = apply(&mut c, response.clone());
        assert!(!first.duplicate_dropped);
        // The probe itself is metered replicated work, so the *canister*
        // hash (which covers instruction counters) legitimately moves;
        // the Bitcoin state underneath must not.
        let hash_after_first = c.state().state_hash();

        // Fill the cache after the first ingest.
        let call = CanisterCall::GetBalance { address: addr(1), min_confirmations: 0 };
        c.query_cached(&call, &mut Meter::new());
        assert_eq!(c.query_cache().len(), 1);

        // Redelivery (a restarted replica's adapter catching up): a
        // metered no-op that keeps the still-valid cache.
        let second = apply(&mut c, response);
        assert!(second.duplicate_dropped);
        assert_eq!(c.state().state_hash(), hash_after_first);
        assert_eq!(c.query_cache().len(), 1, "duplicate drop must not invalidate");
        let snapshot = c.obs().metrics.snapshot_json();
        assert!(
            snapshot.contains(
                "\"name\": \"canister_ingest_duplicate_dropped_total\", \"labels\": {}, \"value\": 1"
            ),
            "{snapshot}"
        );
        assert!(
            snapshot.contains(
                "\"name\": \"canister_qcache_invalidations_total\", \"labels\": {}, \"value\": 1"
            ),
            "only the first ingest invalidates: {snapshot}"
        );
    }

    #[test]
    fn query_cached_hits_then_invalidates_on_ingest() {
        let mut c = canister();
        let call = CanisterCall::GetBalance { address: addr(1), min_confirmations: 0 };

        // First call misses and computes through the normal query path.
        let uncached = c.query(&call, &mut Meter::new());
        let mut miss_meter = Meter::new();
        let miss = c.query_cached(&call, &mut miss_meter);
        assert_eq!(miss.reply, uncached.reply, "cache fill returns the computed reply");
        assert_eq!(c.query_cache().len(), 1);

        // Second call hits: same reply, but only the probe plus a
        // per-byte copy of the reply serialized once at cache fill.
        let mut hit_meter = Meter::new();
        let hit = c.query_cached(&call, &mut hit_meter);
        assert_eq!(hit.reply, uncached.reply, "hit serves the identical reply");
        let reply_bytes = hit.reply.as_ref().unwrap().serialized_size();
        assert_eq!(
            hit_meter.instructions(),
            metering::QUERY_CACHE_LOOKUP + reply_bytes * metering::QUERY_CACHE_COPY_PER_BYTE,
        );
        assert!(
            hit_meter.instructions() < metering::QUERY_CACHE_HIT,
            "cheaper than the pre-optimization flat re-serializing hit"
        );
        assert!(hit_meter.instructions() < miss_meter.instructions());

        // Ingesting any adapter response wipes the cache.
        let mut meter = Meter::new();
        let mut ctx = ExecutionContext {
            meter: &mut meter,
            now: icbtc_sim::SimTime::ZERO,
            round: 1,
        };
        c.ingest_response(GetSuccessorsResponse::default(), 0, &mut ctx);
        assert!(c.query_cache().is_empty(), "ingest invalidates wholesale");
        let snapshot = c.obs().metrics.snapshot_json();
        assert!(
            snapshot.contains("\"name\": \"canister_qcache_hits_total\", \"labels\": {}, \"value\": 1"),
            "{snapshot}"
        );
        assert!(
            snapshot
                .contains("\"name\": \"canister_qcache_invalidations_total\", \"labels\": {}, \"value\": 1"),
            "{snapshot}"
        );
    }
}

//! The Bitcoin canister as a replicated state machine on the simulated IC.
//!
//! Wraps [`BitcoinCanisterState`] in the `icbtc-ic` execution model: a
//! typed method interface, instruction metering per call, and cycles
//! charges per the fee schedule (§IV-B).

use icbtc_bitcoin::Address;
use icbtc_ic::cycles::{Cycles, FeeSchedule};
use icbtc_ic::subnet::{ExecutionContext, StateMachine};
use icbtc_ic::Meter;

use crate::api::{ApiError, GetBalanceResponse, GetUtxosResponse, UtxosFilter};
use crate::state::BitcoinCanisterState;

/// A call into the Bitcoin canister's API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanisterCall {
    /// `get_utxos(address, filter)`.
    GetUtxos {
        /// The address queried.
        address: Address,
        /// Optional confirmations/pagination filter.
        filter: Option<UtxosFilter>,
    },
    /// `get_balance(address, min_confirmations)`.
    GetBalance {
        /// The address queried.
        address: Address,
        /// Minimum confirmations (0 = current best view).
        min_confirmations: u32,
    },
    /// `send_transaction(bytes)`.
    SendTransaction {
        /// The serialized transaction.
        transaction: Vec<u8>,
    },
    /// `get_current_fee_percentiles()`.
    GetFeePercentiles,
    /// `get_block_headers(start_height, end_height)`.
    GetBlockHeaders {
        /// First height requested (inclusive).
        start_height: u64,
        /// Last height requested (inclusive; clamped to the tip).
        end_height: u64,
    },
}

/// A successful reply from the canister.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanisterReply {
    /// Reply to [`CanisterCall::GetUtxos`].
    Utxos(GetUtxosResponse),
    /// Reply to [`CanisterCall::GetBalance`].
    Balance(GetBalanceResponse),
    /// Reply to [`CanisterCall::SendTransaction`]: the accepted txid.
    TransactionSent(icbtc_bitcoin::Txid),
    /// Reply to [`CanisterCall::GetFeePercentiles`].
    FeePercentiles(Vec<u64>),
    /// Reply to [`CanisterCall::GetBlockHeaders`].
    BlockHeaders(crate::api::GetBlockHeadersResponse),
}

/// The outcome of one canister call: the reply (or API error) plus the
/// cycles charged for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOutcome {
    /// The API-level result.
    pub reply: Result<CanisterReply, ApiError>,
    /// Cycles charged per the fee schedule.
    pub cycles_charged: Cycles,
}

/// The Bitcoin canister, pluggable into [`icbtc_ic::Subnet`].
///
/// # Examples
///
/// ```
/// use icbtc_canister::{BitcoinCanister, CanisterCall};
/// use icbtc_core::IntegrationParams;
/// use icbtc_bitcoin::{Address, AddressKind, Network};
/// use icbtc_ic::Meter;
///
/// let canister = BitcoinCanister::new(IntegrationParams::for_network(Network::Regtest));
/// let address = Address::new(Network::Regtest, AddressKind::P2wpkh([1; 20]));
/// let outcome = canister.query(
///     &CanisterCall::GetBalance { address, min_confirmations: 0 },
///     &mut Meter::new(),
/// );
/// assert!(outcome.reply.is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct BitcoinCanister {
    state: BitcoinCanisterState,
    fees: FeeSchedule,
}

impl BitcoinCanister {
    /// Creates a canister for the given integration parameters.
    pub fn new(params: icbtc_core::IntegrationParams) -> BitcoinCanister {
        BitcoinCanister { state: BitcoinCanisterState::new(params), fees: FeeSchedule::default() }
    }

    /// Wraps an existing (e.g. snapshot-installed) state as a canister.
    pub fn from_state(state: BitcoinCanisterState) -> BitcoinCanister {
        BitcoinCanister { state, fees: FeeSchedule::default() }
    }

    /// Read access to the replicated state.
    pub fn state(&self) -> &BitcoinCanisterState {
        &self.state
    }

    /// Mutable access (Algorithm 2 payload processing, upgrades).
    pub fn state_mut(&mut self) -> &mut BitcoinCanisterState {
        &mut self.state
    }

    /// The fee schedule in force.
    pub fn fee_schedule(&self) -> &FeeSchedule {
        &self.fees
    }

    fn dispatch(&mut self, call: CanisterCall, meter: &mut Meter) -> CallOutcome {
        match call {
            CanisterCall::GetUtxos { address, filter } => {
                let reply = self.state.get_utxos(&address, filter, meter).map(CanisterReply::Utxos);
                CallOutcome { reply, cycles_charged: self.fees.get_utxos_fee(meter.instructions()) }
            }
            CanisterCall::GetBalance { address, min_confirmations } => {
                let reply = self
                    .state
                    .get_balance(&address, min_confirmations, meter)
                    .map(CanisterReply::Balance);
                CallOutcome {
                    reply,
                    cycles_charged: self.fees.get_balance_fee(meter.instructions()),
                }
            }
            CanisterCall::SendTransaction { transaction } => {
                let size = transaction.len();
                let reply = self
                    .state
                    .send_transaction(&transaction, meter)
                    .map(CanisterReply::TransactionSent);
                CallOutcome { reply, cycles_charged: self.fees.send_transaction_fee(size) }
            }
            CanisterCall::GetFeePercentiles => {
                let reply =
                    Ok(CanisterReply::FeePercentiles(self.state.get_current_fee_percentiles(meter)));
                CallOutcome { reply, cycles_charged: self.fees.get_balance_fee(meter.instructions()) }
            }
            CanisterCall::GetBlockHeaders { start_height, end_height } => {
                let reply = self
                    .state
                    .get_block_headers(start_height, end_height, meter)
                    .map(CanisterReply::BlockHeaders);
                CallOutcome { reply, cycles_charged: self.fees.get_balance_fee(meter.instructions()) }
            }
        }
    }

    /// Executes a call in *query* mode (single replica, read-only).
    /// `SendTransaction` is rejected in query mode — writes must be
    /// replicated.
    pub fn query(&self, call: &CanisterCall, meter: &mut Meter) -> CallOutcome {
        match call {
            CanisterCall::SendTransaction { .. } => CallOutcome {
                reply: Err(ApiError::MalformedTransaction),
                cycles_charged: 0,
            },
            CanisterCall::GetUtxos { address, filter } => {
                let reply = self
                    .state
                    .get_utxos(address, filter.clone(), meter)
                    .map(CanisterReply::Utxos);
                CallOutcome { reply, cycles_charged: self.fees.get_utxos_fee(meter.instructions()) }
            }
            CanisterCall::GetBalance { address, min_confirmations } => {
                let reply = self
                    .state
                    .get_balance(address, *min_confirmations, meter)
                    .map(CanisterReply::Balance);
                CallOutcome {
                    reply,
                    cycles_charged: self.fees.get_balance_fee(meter.instructions()),
                }
            }
            CanisterCall::GetFeePercentiles => {
                let reply =
                    Ok(CanisterReply::FeePercentiles(self.state.get_current_fee_percentiles(meter)));
                CallOutcome { reply, cycles_charged: self.fees.get_balance_fee(meter.instructions()) }
            }
            CanisterCall::GetBlockHeaders { start_height, end_height } => {
                let reply = self
                    .state
                    .get_block_headers(*start_height, *end_height, meter)
                    .map(CanisterReply::BlockHeaders);
                CallOutcome { reply, cycles_charged: self.fees.get_balance_fee(meter.instructions()) }
            }
        }
    }
}

impl StateMachine for BitcoinCanister {
    type Input = CanisterCall;
    type Output = CallOutcome;

    fn execute(&mut self, input: CanisterCall, ctx: &mut ExecutionContext<'_>) -> CallOutcome {
        self.dispatch(input, ctx.meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icbtc_bitcoin::{AddressKind, Network};
    use icbtc_core::IntegrationParams;
    use icbtc_ic::consensus::ConsensusConfig;
    use icbtc_ic::Subnet;

    fn addr(n: u8) -> Address {
        Address::new(Network::Regtest, AddressKind::P2wpkh([n; 20]))
    }

    fn canister() -> BitcoinCanister {
        BitcoinCanister::new(IntegrationParams::for_network(Network::Regtest))
    }

    #[test]
    fn runs_inside_a_subnet() {
        let mut subnet = Subnet::new(canister(), ConsensusConfig::thirteen_replicas(), 3);
        subnet.submit(CanisterCall::GetBalance { address: addr(1), min_confirmations: 0 });
        let outcome = loop {
            let report = subnet.execute_round(|_, _| {});
            if let Some(result) = report.results.into_iter().next() {
                break result;
            }
        };
        assert!(outcome.output.reply.is_ok());
        assert!(outcome.instructions > 0);
        assert!(outcome.output.cycles_charged > 0);
    }

    #[test]
    fn query_mode_rejects_writes() {
        let c = canister();
        let outcome = c.query(
            &CanisterCall::SendTransaction { transaction: vec![1, 2, 3] },
            &mut Meter::new(),
        );
        assert!(outcome.reply.is_err());
        assert_eq!(outcome.cycles_charged, 0);
    }

    #[test]
    fn cycles_follow_the_fee_schedule() {
        let c = canister();
        let mut meter = Meter::new();
        let outcome = c.query(
            &CanisterCall::GetBalance { address: addr(1), min_confirmations: 0 },
            &mut meter,
        );
        let expected = c.fee_schedule().get_balance_fee(meter.instructions());
        assert_eq!(outcome.cycles_charged, expected);
        // UTXO calls cost more than balance calls (flat fee difference).
        let utxo_outcome = c.query(
            &CanisterCall::GetUtxos { address: addr(1), filter: None },
            &mut Meter::new(),
        );
        assert!(utxo_outcome.cycles_charged > outcome.cycles_charged);
    }

    #[test]
    fn fee_percentiles_callable() {
        let c = canister();
        let outcome = c.query(&CanisterCall::GetFeePercentiles, &mut Meter::new());
        assert_eq!(outcome.reply, Ok(CanisterReply::FeePercentiles(Vec::new())));
    }
}

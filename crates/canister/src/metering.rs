//! Instruction-cost model of the Bitcoin canister.
//!
//! §IV-B measures the canister's work in WebAssembly instructions:
//! block ingestion averages ≈ 21.6 billion instructions with roughly half
//! spent inserting outputs and half removing spent inputs (Figure 6), and
//! replicated `get_utxos` calls span ≈ 5.84·10⁶ – 4.76·10⁸ instructions
//! with a visible bifurcation between UTXOs served from the (large,
//! B-tree-backed) stable set and UTXOs found in unstable blocks
//! (Figure 7, right).
//!
//! The constants below are calibrated so the simulated canister
//! reproduces those magnitudes on mainnet-shaped workloads; the
//! calibration is recorded in EXPERIMENTS.md. The *structure* — costs
//! linear in outputs/inputs/UTXOs with stable-set operations several
//! times more expensive than unstable-block scans — mirrors the real
//! implementation's data layout.

/// Instructions to insert one output into the stable UTXO set
/// (B-tree insert into the outpoint map plus the address index).
pub const INSERT_OUTPUT_BASE: u64 = 1_900_000;

/// Additional instructions per byte of the inserted output's script.
pub const INSERT_OUTPUT_PER_BYTE: u64 = 2_500;

/// Instructions to remove one spent input from the stable UTXO set.
pub const REMOVE_INPUT_BASE: u64 = 2_100_000;

/// Instructions to parse and hash one transaction during ingestion.
pub const PARSE_TX: u64 = 120_000;

/// Instructions to validate one block header (hashing, target check).
pub const VALIDATE_HEADER: u64 = 60_000;

/// Instructions per ancestor header read while walking the chain for a
/// difficulty retarget or median-time-past window. The walk is bounded
/// by the retarget interval (2,016 headers on mainnet), so a single
/// validation can read up to `2_016 * HEADER_WALK` on retarget blocks.
pub const HEADER_WALK: u64 = 2_000;

/// Flat instructions per `get_utxos`/`get_balance` call (dispatch,
/// decoding, response assembly).
pub const QUERY_BASE: u64 = 5_500_000;

/// Instructions per UTXO fetched from the stable set.
pub const STABLE_UTXO_FETCH: u64 = 44_000;

/// Instructions per address-index entry summed by `get_balance`: the
/// index stores `(height, outpoint) → value`, so a balance walk reads
/// the entry in place instead of materializing the `TxOut` — several
/// times cheaper than a full fetch.
pub const STABLE_BALANCE_ENTRY: u64 = 11_000;

/// Instructions for a query answered from the tip-keyed query cache:
/// dispatch, key assembly, B-tree lookup and response clone — no state
/// walk at all.
pub const QUERY_CACHE_HIT: u64 = 250_000;

/// Instructions per UTXO fetched from unstable blocks (cheaper: the
/// blocks are small and in heap memory — the paper's bifurcation).
pub const UNSTABLE_UTXO_FETCH: u64 = 9_000;

/// Instructions per unstable block scanned during a query.
pub const UNSTABLE_BLOCK_SCAN: u64 = 30_000;

/// Instructions to check a `send_transaction` payload (parse + sanity).
pub const SEND_TX_BASE: u64 = 2_000_000;

/// Instructions per byte of a submitted transaction.
pub const SEND_TX_PER_BYTE: u64 = 8_000;

/// The *production* canister's stable-storage bytes per UTXO: key, value,
/// address-index entry, allocator and replication overhead. Calibrated to
/// Figure 5: ≈ 103 GiB for ≈ 170 M UTXOs ⇒ ≈ 650 bytes each.
///
/// Since the paged storage engine landed, `UtxoSet::byte_size` reports
/// the engine's *measured* footprint (pages × page size, entries sized by
/// real serialized length). This constant remains the calibration used to
/// project the paper's Figure 5 endpoint in `fig5_utxo_growth`; the gap
/// between the two is the production overhead our leaner layout omits
/// (see EXPERIMENTS.md).
pub const STABLE_BYTES_PER_UTXO: u64 = 650;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ingestion_magnitude_matches_figure6() {
        // A mainnet-average block: ~2,500 transactions, ~5,500 new
        // outputs, ~5,000 spent inputs, ~34-byte scripts.
        let outputs = 5_500u64;
        let inputs = 5_000u64;
        let txs = 2_500u64;
        let insert = outputs * (INSERT_OUTPUT_BASE + 34 * INSERT_OUTPUT_PER_BYTE);
        let remove = inputs * REMOVE_INPUT_BASE;
        let overhead = txs * PARSE_TX + VALIDATE_HEADER;
        let total = insert + remove + overhead;
        // Paper: ≈ 21.6e9 on average.
        assert!(
            (15.0e9..30.0e9).contains(&(total as f64)),
            "block ingestion ≈ {:.1}e9 instructions",
            total as f64 / 1e9
        );
        // Roughly half inserts, half removals.
        let insert_share = insert as f64 / (insert + remove) as f64;
        assert!((0.35..0.65).contains(&insert_share), "insert share {insert_share}");
    }

    #[test]
    fn query_magnitudes_match_figure7() {
        // Smallest responses: ≈ 5.84e6.
        let small = QUERY_BASE + STABLE_UTXO_FETCH;
        assert!((5.0e6..7.0e6).contains(&(small as f64)));
        // Largest measured: ≈ 4.76e8 — about 10k stable UTXOs.
        let large = QUERY_BASE + 10_500 * STABLE_UTXO_FETCH;
        assert!((4.0e8..6.0e8).contains(&(large as f64)));
        // The unstable path is several times cheaper per UTXO.
        const { assert!(STABLE_UTXO_FETCH / UNSTABLE_UTXO_FETCH >= 3) };
    }

    #[test]
    fn storage_model_matches_figure5() {
        // 170M UTXOs → ≈ 103 GiB.
        let bytes = 170_000_000u64 * STABLE_BYTES_PER_UTXO;
        let gib = bytes as f64 / (1u64 << 30) as f64;
        assert!((95.0..115.0).contains(&gib), "{gib} GiB");
    }
}

//! Instruction-cost model of the Bitcoin canister.
//!
//! §IV-B measures the canister's work in WebAssembly instructions:
//! block ingestion averages ≈ 21.6 billion instructions with roughly half
//! spent inserting outputs and half removing spent inputs (Figure 6), and
//! replicated `get_utxos` calls span ≈ 5.84·10⁶ – 4.76·10⁸ instructions
//! with a visible bifurcation between UTXOs served from the (large,
//! B-tree-backed) stable set and UTXOs found in unstable blocks
//! (Figure 7, right).
//!
//! The constants below are calibrated so the simulated canister
//! reproduces those magnitudes on mainnet-shaped workloads; the
//! calibration is recorded in EXPERIMENTS.md. The *structure* — costs
//! linear in outputs/inputs/UTXOs with stable-set operations several
//! times more expensive than unstable-block scans — mirrors the real
//! implementation's data layout.

//! Several composite constants are *split* into named parts so the
//! profiler (`icbtc_sim::obs::prof`) can attribute where inside an
//! operation the instructions go — e.g. [`INSERT_OUTPUT_BASE`] is the sum
//! of its script-parse / outpoint-map / address-index parts. The sums are
//! the calibrated quantities; the splits only re-attribute them, so every
//! calibration test below constrains the sums.

/// Instructions to parse the output's script and derive the indexable
/// address during a stable-set insert.
pub const INSERT_SCRIPT_PARSE: u64 = 400_000;

/// Instructions for the B-tree insert into the outpoint map.
pub const INSERT_OUTPOINT: u64 = 900_000;

/// Instructions to maintain the by-address index for one inserted output.
pub const INSERT_BY_ADDRESS: u64 = 600_000;

/// Instructions to insert one output into the stable UTXO set
/// (B-tree insert into the outpoint map plus the address index).
pub const INSERT_OUTPUT_BASE: u64 = INSERT_SCRIPT_PARSE + INSERT_OUTPOINT + INSERT_BY_ADDRESS;

/// Additional instructions per byte of the inserted output's script.
pub const INSERT_OUTPUT_PER_BYTE: u64 = 2_500;

/// Instructions to re-parse the spent output's script during removal (the
/// address must be re-derived to locate the index entry).
pub const REMOVE_SCRIPT_PARSE: u64 = 500_000;

/// Instructions for the B-tree removal from the outpoint map.
pub const REMOVE_OUTPOINT: u64 = 1_000_000;

/// Instructions to unlink the by-address index entry for one spent input.
pub const REMOVE_BY_ADDRESS: u64 = 600_000;

/// Instructions to remove one spent input from the stable UTXO set.
pub const REMOVE_INPUT_BASE: u64 = REMOVE_SCRIPT_PARSE + REMOVE_OUTPOINT + REMOVE_BY_ADDRESS;

/// Instructions to double-SHA-256 one transaction's bytes for its txid.
pub const TX_HASHING: u64 = 70_000;

/// Instructions to decode one transaction's wire bytes into structs.
pub const TX_DECODE: u64 = 50_000;

/// Instructions to parse and hash one transaction during ingestion.
pub const PARSE_TX: u64 = TX_HASHING + TX_DECODE;

/// Instructions to validate one block header (hashing, target check).
pub const VALIDATE_HEADER: u64 = 60_000;

/// Instructions per ancestor header read while walking the chain for a
/// difficulty retarget or median-time-past window. The walk is bounded
/// by the retarget interval (2,016 headers on mainnet), so a single
/// validation can read up to `2_016 * HEADER_WALK` on retarget blocks.
pub const HEADER_WALK: u64 = 2_000;

/// Instructions to decode and dispatch one query call (argument
/// decoding, routing, state handle acquisition).
pub const QUERY_DISPATCH: u64 = 4_000_000;

/// Flat instructions to serialize a query response envelope.
pub const RESPONSE_SERIALIZE_BASE: u64 = 1_500_000;

/// Flat instructions per `get_utxos`/`get_balance` call (dispatch,
/// decoding, response assembly).
pub const QUERY_BASE: u64 = QUERY_DISPATCH + RESPONSE_SERIALIZE_BASE;

/// Instructions per UTXO fetched from the stable set.
pub const STABLE_UTXO_FETCH: u64 = 44_000;

/// Instructions per address-index entry summed by `get_balance`: the
/// index stores `(height, outpoint) → value`, so a balance walk reads
/// the entry in place instead of materializing the `TxOut` — several
/// times cheaper than a full fetch.
pub const STABLE_BALANCE_ENTRY: u64 = 11_000;

/// Instructions for the cache-key assembly and B-tree lookup of a
/// tip-keyed query-cache probe (hit or miss).
pub const QUERY_CACHE_LOOKUP: u64 = 50_000;

/// Instructions the *pre-optimization* cache-hit path spent re-serializing
/// the cached reply from scratch, regardless of its size.
pub const QUERY_CACHE_HIT_SERIALIZE: u64 = 200_000;

/// Instructions a query answered from the tip-keyed query cache cost
/// before the hit path copied the pre-serialized reply: dispatch, key
/// assembly, B-tree lookup and a full response re-serialization. Kept as
/// the recorded "before" of the profiler-guided optimization below; the
/// live hit path now charges [`QUERY_CACHE_LOOKUP`] plus
/// [`QUERY_CACHE_COPY_PER_BYTE`] per cached byte.
pub const QUERY_CACHE_HIT: u64 = QUERY_CACHE_LOOKUP + QUERY_CACHE_HIT_SERIALIZE;

/// Instructions per byte to copy a reply that was serialized once at
/// cache-insert time — the profiler-guided replacement for re-serializing
/// on every hit ([`QUERY_CACHE_HIT_SERIALIZE`]).
pub const QUERY_CACHE_COPY_PER_BYTE: u64 = 30;

/// Instructions per UTXO fetched from unstable blocks (cheaper: the
/// blocks are small and in heap memory — the paper's bifurcation).
pub const UNSTABLE_UTXO_FETCH: u64 = 9_000;

/// Instructions per unstable block scanned during a query.
pub const UNSTABLE_BLOCK_SCAN: u64 = 30_000;

/// Instructions to check a `send_transaction` payload (parse + sanity).
pub const SEND_TX_BASE: u64 = 2_000_000;

/// Instructions per byte of a submitted transaction.
pub const SEND_TX_PER_BYTE: u64 = 8_000;

/// Flat instructions for the ingest dedup probe: fetching the best tip
/// and initializing the response-fingerprint hash. Charged only for
/// non-empty responses, so idle rounds cost exactly what they did
/// before the idempotence guard existed.
pub const INGEST_DEDUP_PROBE: u64 = 25_000;

/// Instructions per block or header hashed into the response
/// fingerprint (the hashes are already computed; this is the absorb).
pub const INGEST_DEDUP_PER_ITEM: u64 = 4_000;

/// Instructions per snapshot byte to rebuild a canister from a
/// checkpoint during crash catch-up — deserialization plus structural
/// re-validation. Used by the recovery harness to convert checkpoint
/// size into restart latency (MTTR).
pub const CHECKPOINT_RESTORE_PER_BYTE: u64 = 25;

/// The *production* canister's stable-storage bytes per UTXO: key, value,
/// address-index entry, allocator and replication overhead. Calibrated to
/// Figure 5: ≈ 103 GiB for ≈ 170 M UTXOs ⇒ ≈ 650 bytes each.
///
/// Since the paged storage engine landed, `UtxoSet::byte_size` reports
/// the engine's *measured* footprint (pages × page size, entries sized by
/// real serialized length). This constant remains the calibration used to
/// project the paper's Figure 5 endpoint in `fig5_utxo_growth`; the gap
/// between the two is the production overhead our leaner layout omits
/// (see EXPERIMENTS.md).
pub const STABLE_BYTES_PER_UTXO: u64 = 650;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ingestion_magnitude_matches_figure6() {
        // A mainnet-average block: ~2,500 transactions, ~5,500 new
        // outputs, ~5,000 spent inputs, ~34-byte scripts.
        let outputs = 5_500u64;
        let inputs = 5_000u64;
        let txs = 2_500u64;
        let insert = outputs * (INSERT_OUTPUT_BASE + 34 * INSERT_OUTPUT_PER_BYTE);
        let remove = inputs * REMOVE_INPUT_BASE;
        let overhead = txs * PARSE_TX + VALIDATE_HEADER;
        let total = insert + remove + overhead;
        // Paper: ≈ 21.6e9 on average.
        assert!(
            (15.0e9..30.0e9).contains(&(total as f64)),
            "block ingestion ≈ {:.1}e9 instructions",
            total as f64 / 1e9
        );
        // Roughly half inserts, half removals.
        let insert_share = insert as f64 / (insert + remove) as f64;
        assert!((0.35..0.65).contains(&insert_share), "insert share {insert_share}");
    }

    #[test]
    fn query_magnitudes_match_figure7() {
        // Smallest responses: ≈ 5.84e6.
        let small = QUERY_BASE + STABLE_UTXO_FETCH;
        assert!((5.0e6..7.0e6).contains(&(small as f64)));
        // Largest measured: ≈ 4.76e8 — about 10k stable UTXOs.
        let large = QUERY_BASE + 10_500 * STABLE_UTXO_FETCH;
        assert!((4.0e8..6.0e8).contains(&(large as f64)));
        // The unstable path is several times cheaper per UTXO.
        const { assert!(STABLE_UTXO_FETCH / UNSTABLE_UTXO_FETCH >= 3) };
    }

    #[test]
    fn storage_model_matches_figure5() {
        // 170M UTXOs → ≈ 103 GiB.
        let bytes = 170_000_000u64 * STABLE_BYTES_PER_UTXO;
        let gib = bytes as f64 / (1u64 << 30) as f64;
        assert!((95.0..115.0).contains(&gib), "{gib} GiB");
    }
}

//! The Bitcoin canister's public API (§III-C).
//!
//! The two core endpoints are `get_utxos` (read) and `send_transaction`
//! (write), plus the `get_balance` convenience and fee percentiles. Reads
//! combine the stable UTXO set with the unstable blocks along the current
//! best chain; an optional *minimum confirmations* filter restricts the
//! view to confirmation-based c-stable blocks, and responses above the
//! page size carry an opaque continuation token.

use std::collections::BTreeSet;

use icbtc_bitcoin::encode::Decodable;
use icbtc_bitcoin::{Address, Amount, BlockHash, OutPoint, Transaction, Txid};
use icbtc_ic::Meter;

use crate::metering;
use crate::state::BitcoinCanisterState;
use crate::utxoset::Utxo;

/// Maximum UTXOs returned per `get_utxos` page — the production
/// canister's response cap. The largest first page therefore costs
/// ≈ `QUERY_BASE + 10_000 · STABLE_UTXO_FETCH` ≈ 4.5·10⁸ instructions,
/// which is what puts Figure 7's 4.76·10⁸ maximum in reach even though
/// each page is now metered O(page size), not O(address size).
pub const MAX_UTXOS_PER_PAGE: usize = 10_000;

/// Optional filter on `get_utxos`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UtxosFilter {
    /// Only consider confirmation-based c-stable blocks.
    MinConfirmations(u32),
    /// Continue a paginated response.
    Page(Vec<u8>),
}

/// Response of `get_utxos`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetUtxosResponse {
    /// The page of UTXOs, sorted by height descending.
    pub utxos: Vec<Utxo>,
    /// Hash of the tip of the considered chain.
    pub tip_block_hash: BlockHash,
    /// Height of that tip.
    pub tip_height: u64,
    /// Continuation token if more UTXOs remain.
    pub next_page: Option<Vec<u8>>,
}

/// Response of `get_balance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetBalanceResponse {
    /// Total value of the address's UTXOs in the considered view.
    pub balance: Amount,
    /// Height of the considered tip.
    pub tip_height: u64,
}

/// Response of `get_block_headers`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetBlockHeadersResponse {
    /// The requested canonical headers, lowest height first.
    pub headers: Vec<icbtc_bitcoin::BlockHeader>,
    /// The current best-chain tip height.
    pub tip_height: u64,
}

/// Response of `get_metrics` — the observability endpoint, mirroring the
/// counters the production canister publishes over its `/metrics` HTTP
/// query (block height, UTXO count, instruction and cycle totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetMetricsResponse {
    /// Height of the current best (main chain) tip.
    pub main_chain_height: u64,
    /// Height of the stable anchor `β*`.
    pub anchor_height: u64,
    /// Entries in the stable UTXO set.
    pub utxo_count: u64,
    /// Unstable block bodies currently held.
    pub unstable_blocks: u64,
    /// Blocks ever folded into the stable set (including genesis).
    pub blocks_ingested: u64,
    /// Whether the canister is within τ of the known headers.
    pub is_synced: bool,
    /// Instructions metered across all replicated calls and ingestion.
    pub instructions_total: u64,
    /// Cycles burned by replicated calls per the fee schedule.
    pub cycles_burned: u128,
}

/// Errors returned by the canister API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// The canister is more than τ behind the known headers (§III-C) and
    /// refuses to serve potentially stale state.
    NotSynced,
    /// `min_confirmations` exceeded δ; beyond that the stable UTXO set
    /// cannot answer correctly (§III-C).
    MinConfirmationsTooLarge {
        /// What the caller asked for.
        requested: u32,
        /// The δ bound.
        maximum: u32,
    },
    /// The pagination token was malformed or stale.
    MalformedPage,
    /// The submitted bytes are not a syntactically valid transaction.
    MalformedTransaction,
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::NotSynced => write!(f, "bitcoin canister is not fully synced"),
            ApiError::MinConfirmationsTooLarge { requested, maximum } => {
                write!(f, "min_confirmations {requested} exceeds the maximum {maximum}")
            }
            ApiError::MalformedPage => write!(f, "malformed pagination token"),
            ApiError::MalformedTransaction => write!(f, "malformed transaction bytes"),
        }
    }
}

impl std::error::Error for ApiError {}

/// Token format version; bumped when the layout below changes so stale
/// tokens from older deployments decode to [`ApiError::MalformedPage`].
const PAGE_TOKEN_VERSION: u8 = 2;

/// Encoded token length: version ‖ min_confirmations ‖ tip hash ‖
/// cursor height ‖ cursor txid ‖ cursor vout.
const PAGE_TOKEN_LEN: usize = 1 + 4 + 32 + 8 + 32 + 4;

/// A decoded pagination token: the filter's confirmation requirement,
/// the tip the previous page was computed at, and the address-index key
/// of the last UTXO returned. The next page resumes *strictly after*
/// that key via a B-tree range scan — no offset, no re-materialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PageToken {
    min_confirmations: u32,
    tip: BlockHash,
    height: u64,
    outpoint: OutPoint,
}

fn encode_page(min_confirmations: u32, tip: &BlockHash, last: &Utxo) -> Vec<u8> {
    let mut out = Vec::with_capacity(PAGE_TOKEN_LEN);
    out.push(PAGE_TOKEN_VERSION);
    out.extend_from_slice(&min_confirmations.to_le_bytes());
    out.extend_from_slice(&tip.0);
    out.extend_from_slice(&last.height.to_le_bytes());
    out.extend_from_slice(&last.outpoint.txid.0);
    out.extend_from_slice(&last.outpoint.vout.to_le_bytes());
    out
}

fn decode_page(bytes: &[u8]) -> Option<PageToken> {
    if bytes.len() != PAGE_TOKEN_LEN || bytes[0] != PAGE_TOKEN_VERSION {
        return None;
    }
    let mut min_confirmations = [0u8; 4];
    min_confirmations.copy_from_slice(&bytes[1..5]);
    let mut tip = [0u8; 32];
    tip.copy_from_slice(&bytes[5..37]);
    let mut height = [0u8; 8];
    height.copy_from_slice(&bytes[37..45]);
    let mut txid = [0u8; 32];
    txid.copy_from_slice(&bytes[45..77]);
    let mut vout = [0u8; 4];
    vout.copy_from_slice(&bytes[77..81]);
    Some(PageToken {
        min_confirmations: u32::from_le_bytes(min_confirmations),
        tip: BlockHash(tip),
        height: u64::from_le_bytes(height),
        outpoint: OutPoint::new(Txid(txid), u32::from_le_bytes(vout)),
    })
}

/// Charges the flat per-query base cost, attributed to its two profiler
/// frames: call dispatch and response-envelope serialization. The two
/// parts sum to [`metering::QUERY_BASE`] and are charged at the same
/// site the flat constant used to be, so metered totals are unchanged on
/// every path — frames only re-attribute.
fn charge_query_base(meter: &mut Meter) {
    let dispatch = meter.frame("query_dispatch");
    meter.charge(metering::QUERY_DISPATCH);
    meter.frame_end(dispatch);
    let serialize = meter.frame("response_serialize");
    meter.charge(metering::RESPONSE_SERIALIZE_BASE);
    meter.frame_end(serialize);
}

/// Returns `true` if `utxo` sorts strictly after the `(height,
/// outpoint)` cursor in pagination order (height descending, then
/// outpoint ascending).
fn after_cursor(utxo: &Utxo, cursor: Option<(u64, OutPoint)>) -> bool {
    match cursor {
        None => true,
        Some((height, outpoint)) => {
            utxo.height < height || (utxo.height == height && utxo.outpoint > outpoint)
        }
    }
}

/// The unstable-region view for one address under a confirmation
/// requirement: the UTXOs the considered unstable blocks *create* for
/// the address (net of in-region spends, in pagination order) plus every
/// outpoint those blocks *spend* (stable entries must be masked by it).
///
/// Its size — and the cost of building it — is bounded by the δ unstable
/// blocks, independent of how many stable UTXOs the address owns.
struct UnstableOverlay {
    created: Vec<Utxo>,
    spent: BTreeSet<OutPoint>,
    tip_hash: BlockHash,
    tip_height: u64,
}

impl BitcoinCanisterState {
    /// Builds the [`UnstableOverlay`] of `address` by walking the best
    /// chain above the anchor, stopping at the first block that misses
    /// the confirmation requirement (or whose body is absent).
    fn unstable_overlay(
        &self,
        address: &Address,
        min_confirmations: u32,
        meter: &mut Meter,
    ) -> Result<UnstableOverlay, ApiError> {
        let delta = self.params().stability_delta;
        if min_confirmations as u64 > delta {
            return Err(ApiError::MinConfirmationsTooLarge {
                requested: min_confirmations,
                maximum: delta as u32,
            });
        }

        let script = address.script_pubkey();
        let tree = self.tree();
        let best = tree.best_chain();
        let mut overlay = UnstableOverlay {
            created: Vec::new(),
            spent: BTreeSet::new(),
            tip_hash: tree.root(),
            tip_height: self.anchor_height(),
        };
        for (i, hash) in best.iter().enumerate().skip(1) {
            if min_confirmations > 0
                && !tree.is_confirmation_stable(hash, min_confirmations as u64)
            {
                break;
            }
            let Some(block) = self.block(hash) else { break };
            meter.charge(metering::UNSTABLE_BLOCK_SCAN);
            let height = self.anchor_height() + i as u64;
            for tx in &block.txdata {
                let txid = tx.txid();
                if !tx.is_coinbase() {
                    for input in &tx.inputs {
                        overlay.spent.insert(input.previous_output);
                    }
                }
                for (vout, output) in tx.outputs.iter().enumerate() {
                    if output.script_pubkey == script {
                        meter.charge(metering::UNSTABLE_UTXO_FETCH);
                        overlay.created.push(Utxo {
                            outpoint: OutPoint::new(txid, vout as u32),
                            value: output.value,
                            height,
                        });
                    }
                }
            }
            overlay.tip_hash = *hash;
            overlay.tip_height = height;
        }
        // Outputs both created and spent within the region never surface.
        let spent = &overlay.spent;
        overlay.created.retain(|u| !spent.contains(&u.outpoint));
        // Pagination order. All created entries sit above the anchor, so
        // they precede every stable entry.
        overlay
            .created
            .sort_by(|a, b| b.height.cmp(&a.height).then(a.outpoint.cmp(&b.outpoint)));
        Ok(overlay)
    }

    /// `get_utxos` with an explicit page size: the O(page) core that
    /// [`BitcoinCanisterState::get_utxos`] calls with
    /// [`MAX_UTXOS_PER_PAGE`]. Exposed so tests (and embedders) can walk
    /// arbitrary page sizes through the same code path.
    ///
    /// The page is assembled by chaining the (δ-bounded) unstable overlay
    /// with a stable-index range scan that starts *strictly after* the
    /// token's cursor, masking stable entries spent in the unstable
    /// region. Stable entries are charged per entry *yielded*, so a page
    /// costs O(page size + δ) regardless of the address's total UTXO
    /// count.
    ///
    /// # Errors
    ///
    /// As for [`BitcoinCanisterState::get_utxos`]. A token whose tip no
    /// longer matches the considered tip is *stale*: the view it was
    /// paging over has shifted, and resuming would silently skip or
    /// duplicate entries — [`ApiError::MalformedPage`] is returned
    /// instead, and the caller restarts from the first page.
    pub fn get_utxos_paged(
        &self,
        address: &Address,
        filter: Option<UtxosFilter>,
        page_size: usize,
        meter: &mut Meter,
    ) -> Result<GetUtxosResponse, ApiError> {
        charge_query_base(meter);
        if !self.is_synced() {
            return Err(ApiError::NotSynced);
        }
        let page_size = page_size.max(1);
        let (min_confirmations, token) = match &filter {
            None => (0, None),
            Some(UtxosFilter::MinConfirmations(c)) => (*c, None),
            Some(UtxosFilter::Page(bytes)) => {
                let token = decode_page(bytes).ok_or(ApiError::MalformedPage)?;
                (token.min_confirmations, Some(token))
            }
        };
        let overlay_frame = meter.frame("unstable_overlay");
        let overlay = self.unstable_overlay(address, min_confirmations, meter)?;
        meter.frame_end(overlay_frame);
        let cursor = match token {
            Some(token) => {
                if token.tip != overlay.tip_hash {
                    return Err(ApiError::MalformedPage);
                }
                Some((token.height, token.outpoint))
            }
            None => None,
        };

        let scan = meter.frame("range_scan");
        let created = overlay.created.iter().filter(|u| after_cursor(u, cursor)).cloned();
        let stable = self
            .utxos()
            .utxos_after(address, cursor)
            .filter(|u| !overlay.spent.contains(&u.outpoint));
        let mut page = Vec::new();
        let mut more = false;
        for utxo in created.chain(stable) {
            if page.len() == page_size {
                more = true;
                break;
            }
            if utxo.height <= self.anchor_height() {
                meter.charge(metering::STABLE_UTXO_FETCH);
            }
            page.push(utxo);
        }
        meter.frame_end(scan);
        let next_page = match (more, page.last()) {
            (true, Some(last)) => {
                Some(encode_page(min_confirmations, &overlay.tip_hash, last))
            }
            _ => None,
        };
        Ok(GetUtxosResponse {
            utxos: page,
            tip_block_hash: overlay.tip_hash,
            tip_height: overlay.tip_height,
            next_page,
        })
    }

    /// `get_utxos`: the UTXOs of `address`, optionally filtered by
    /// minimum confirmations or continued from a pagination token.
    ///
    /// # Errors
    ///
    /// [`ApiError::NotSynced`] while the canister lags more than τ;
    /// [`ApiError::MinConfirmationsTooLarge`] for `c > δ`;
    /// [`ApiError::MalformedPage`] for bad or stale tokens.
    pub fn get_utxos(
        &self,
        address: &Address,
        filter: Option<UtxosFilter>,
        meter: &mut Meter,
    ) -> Result<GetUtxosResponse, ApiError> {
        self.get_utxos_paged(address, filter, MAX_UTXOS_PER_PAGE, meter)
    }

    /// `get_balance`: the address's balance under an optional minimum
    /// confirmation requirement. Summed directly over the address index
    /// (per-entry [`metering::STABLE_BALANCE_ENTRY`] charge, no `TxOut`
    /// clones) plus the δ-bounded unstable overlay.
    ///
    /// # Errors
    ///
    /// As for [`BitcoinCanisterState::get_utxos`].
    pub fn get_balance(
        &self,
        address: &Address,
        min_confirmations: u32,
        meter: &mut Meter,
    ) -> Result<GetBalanceResponse, ApiError> {
        charge_query_base(meter);
        if !self.is_synced() {
            return Err(ApiError::NotSynced);
        }
        let overlay_frame = meter.frame("unstable_overlay");
        let overlay = self.unstable_overlay(address, min_confirmations, meter)?;
        meter.frame_end(overlay_frame);
        // Saturating accumulation: the canister does not validate
        // issuance (§III-C), so a hostile chain of max-value outputs
        // must clamp at MAX_MONEY, not panic the query.
        let scan = meter.frame("range_scan");
        let stable = self
            .utxos()
            .utxos_after(address, None)
            .filter(|u| !overlay.spent.contains(&u.outpoint))
            .fold(Amount::ZERO, |total, u| {
                meter.charge(metering::STABLE_BALANCE_ENTRY);
                total.saturating_add(u.value)
            });
        meter.frame_end(scan);
        let unstable = overlay
            .created
            .iter()
            .fold(Amount::ZERO, |total, u| total.saturating_add(u.value));
        Ok(GetBalanceResponse {
            balance: stable.saturating_add(unstable),
            tip_height: overlay.tip_height,
        })
    }

    /// `send_transaction`: checks that `bytes` encode a syntactically
    /// valid transaction and queues it for the adapter (§III-C —
    /// semantic validity is the Bitcoin network's job).
    ///
    /// # Errors
    ///
    /// [`ApiError::MalformedTransaction`] if the bytes do not parse or
    /// the transaction has no inputs or outputs.
    pub fn send_transaction(&mut self, bytes: &[u8], meter: &mut Meter) -> Result<Txid, ApiError> {
        meter.charge(metering::SEND_TX_BASE);
        meter.charge_per_byte(bytes.len(), metering::SEND_TX_PER_BYTE);
        let tx = Transaction::decode_exact(bytes).map_err(|_| ApiError::MalformedTransaction)?;
        if tx.inputs.is_empty() || tx.outputs.is_empty() {
            return Err(ApiError::MalformedTransaction);
        }
        Ok(self.queue_transaction(tx))
    }

    /// `get_block_headers`: the canonical block headers in the inclusive
    /// height range, spanning the stable chain and the best unstable
    /// chain — the endpoint other canisters use to verify Bitcoin SPV
    /// proofs themselves.
    ///
    /// # Errors
    ///
    /// [`ApiError::NotSynced`] while lagging;
    /// [`ApiError::MalformedPage`] if the range is inverted or starts
    /// beyond the tip (reusing the malformed-argument error).
    pub fn get_block_headers(
        &self,
        start_height: u64,
        end_height: u64,
        meter: &mut Meter,
    ) -> Result<GetBlockHeadersResponse, ApiError> {
        charge_query_base(meter);
        if !self.is_synced() {
            return Err(ApiError::NotSynced);
        }
        let (_, tip_height) = self.best_tip();
        if start_height > end_height || start_height > tip_height {
            return Err(ApiError::MalformedPage);
        }
        let end_height = end_height.min(tip_height);
        let mut headers = Vec::with_capacity((end_height - start_height + 1) as usize);
        for height in start_height..=end_height {
            meter.charge(metering::VALIDATE_HEADER);
            // The range is clamped to the tip, so a miss can only mean an
            // internal inconsistency — answer with an error rather than
            // trapping the canister mid-query.
            let Some(header) = self.header_at_height(height) else {
                return Err(ApiError::MalformedPage);
            };
            headers.push(header);
        }
        Ok(GetBlockHeadersResponse { headers, tip_height })
    }

    /// `get_current_fee_percentiles`: fee rates (millisatoshi per vbyte)
    /// at percentiles 1..=100 over the transactions of recent unstable
    /// blocks whose inputs the canister can resolve. Returns an empty
    /// vector when no fees are observable.
    pub fn get_current_fee_percentiles(&self, meter: &mut Meter) -> Vec<u64> {
        charge_query_base(meter);
        let tree = self.tree();
        let best = tree.best_chain();
        let mut rates: Vec<u64> = Vec::new();
        for hash in best.iter().skip(1).rev().take(6) {
            let Some(block) = self.block(hash) else { continue };
            meter.charge(metering::UNSTABLE_BLOCK_SCAN);
            for tx in block.txdata.iter().filter(|t| !t.is_coinbase()) {
                if let Some(fee) = self.resolve_fee(tx, meter) {
                    let vsize = tx.vsize().max(1) as u64;
                    rates.push(fee.to_sat() * 1000 / vsize);
                }
            }
        }
        if rates.is_empty() {
            return Vec::new();
        }
        rates.sort_unstable();
        (1..=100u64)
            .map(|p| rates[((p as usize * rates.len()).div_ceil(100) - 1).min(rates.len() - 1)])
            .collect()
    }

    /// Sums a transaction's input values if every input is resolvable
    /// against the stable set or an unstable block, returning the fee.
    fn resolve_fee(&self, tx: &Transaction, meter: &mut Meter) -> Option<Amount> {
        let mut input_total = Amount::ZERO;
        for input in &tx.inputs {
            let op = input.previous_output;
            meter.charge(metering::STABLE_UTXO_FETCH);
            let value = if let Some(utxo) = self.utxos().get(&op) {
                utxo.value
            } else {
                self.lookup_unstable_output(&op, meter)?
            };
            input_total = input_total.checked_add(value)?;
        }
        input_total.checked_sub(tx.output_value())
    }

    fn lookup_unstable_output(&self, outpoint: &OutPoint, meter: &mut Meter) -> Option<Amount> {
        for hash in self.tree().best_chain().iter().skip(1) {
            let block = self.block(hash)?;
            meter.charge(metering::UNSTABLE_BLOCK_SCAN);
            for tx in &block.txdata {
                meter.charge(metering::UNSTABLE_UTXO_FETCH);
                if tx.txid() == outpoint.txid {
                    return tx.outputs.get(outpoint.vout as usize).map(|o| o.value);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::BitcoinCanisterState;
    use icbtc_bitcoin::encode::Encodable;
    use icbtc_bitcoin::{AddressKind, Network, Script, TxIn, TxOut};
    use icbtc_btcnet::miner::mine_block_on;
    use icbtc_btcnet::ChainStore;
    use icbtc_core::{GetSuccessorsResponse, IntegrationParams};

    const NOW: u32 = 2_000_000_000;

    fn addr(n: u8) -> Address {
        Address::new(Network::Regtest, AddressKind::P2wpkh([n; 20]))
    }

    fn params(delta: u64) -> IntegrationParams {
        IntegrationParams::for_network(Network::Regtest).with_stability_delta(delta)
    }

    /// Builds a state fed with `n` blocks whose coinbases pay `addr(7)`.
    fn state_with_chain(n: usize, delta: u64) -> (BitcoinCanisterState, ChainStore) {
        let mut chain = ChainStore::new(Network::Regtest);
        let mut blocks = Vec::new();
        for i in 0..n {
            let block = mine_block_on(
                &chain,
                chain.tip_hash(),
                Vec::new(),
                addr(7).script_pubkey(),
                i as u64,
            );
            chain.accept_block(block.clone(), NOW).unwrap();
            blocks.push(block);
        }
        let mut state = BitcoinCanisterState::new(params(delta));
        state.process_response(
            GetSuccessorsResponse { blocks, next: Vec::new() },
            NOW,
            &mut Meter::new(),
        );
        (state, chain)
    }

    #[test]
    fn balance_counts_stable_and_unstable_coinbases() {
        let (state, _) = state_with_chain(8, 3);
        let subsidy = Network::Regtest.params().block_subsidy;
        let mut meter = Meter::new();
        let response = state.get_balance(&addr(7), 0, &mut meter).unwrap();
        assert_eq!(response.balance.to_sat(), subsidy.to_sat() * 8);
        assert_eq!(response.tip_height, 8);
        assert!(meter.instructions() >= metering::QUERY_BASE);
    }

    #[test]
    fn min_confirmations_restricts_view() {
        let (state, _) = state_with_chain(8, 3);
        let subsidy = Network::Regtest.params().block_subsidy.to_sat();
        // The tip has 1 confirmation; asking for 2 drops it.
        let b1 = state.get_balance(&addr(7), 1, &mut Meter::new()).unwrap();
        let b2 = state.get_balance(&addr(7), 2, &mut Meter::new()).unwrap();
        assert_eq!(b1.balance.to_sat(), subsidy * 8);
        assert_eq!(b2.balance.to_sat(), subsidy * 7);
        assert_eq!(b2.tip_height, 7);
        // c > δ is rejected.
        assert_eq!(
            state.get_balance(&addr(7), 4, &mut Meter::new()),
            Err(ApiError::MinConfirmationsTooLarge { requested: 4, maximum: 3 })
        );
    }

    #[test]
    fn get_utxos_orders_by_height_descending() {
        let (state, _) = state_with_chain(6, 2);
        let response = state.get_utxos(&addr(7), None, &mut Meter::new()).unwrap();
        assert_eq!(response.utxos.len(), 6);
        let heights: Vec<u64> = response.utxos.iter().map(|u| u.height).collect();
        assert_eq!(heights, vec![6, 5, 4, 3, 2, 1]);
        assert!(response.next_page.is_none());
        assert_eq!(response.tip_height, 6);
    }

    #[test]
    fn unstable_spend_removes_stable_utxo() {
        // Build: blocks 1..=5 pay addr(7); block 6 spends block 1's
        // coinbase to addr(9). With δ=10 everything stays unstable… use
        // δ=2 so some are stable, exercising the cross-region removal.
        let mut chain = ChainStore::new(Network::Regtest);
        let mut blocks = Vec::new();
        for i in 0..5 {
            let block = mine_block_on(&chain, chain.tip_hash(), Vec::new(), addr(7).script_pubkey(), i);
            chain.accept_block(block.clone(), NOW).unwrap();
            blocks.push(block);
        }
        let spend = Transaction {
            version: 2,
            inputs: vec![TxIn::new(OutPoint::new(blocks[0].txdata[0].txid(), 0))],
            outputs: vec![TxOut::new(Amount::from_sat(1000), addr(9).script_pubkey())],
            lock_time: 0,
        };
        let block6 = mine_block_on(&chain, chain.tip_hash(), vec![spend], Script::new_op_return(b"m"), 99);
        chain.accept_block(block6.clone(), NOW).unwrap();
        blocks.push(block6);

        let mut state = BitcoinCanisterState::new(params(2));
        state.process_response(
            GetSuccessorsResponse { blocks, next: Vec::new() },
            NOW,
            &mut Meter::new(),
        );
        let subsidy = Network::Regtest.params().block_subsidy.to_sat();
        let balance7 = state.get_balance(&addr(7), 0, &mut Meter::new()).unwrap();
        assert_eq!(balance7.balance.to_sat(), subsidy * 4, "block 1's coinbase was spent");
        let balance9 = state.get_balance(&addr(9), 0, &mut Meter::new()).unwrap();
        assert_eq!(balance9.balance.to_sat(), 1000);
    }

    #[test]
    fn pagination_walks_the_full_set() {
        // One block whose transaction pays addr(3) 25 outputs; page
        // through with a small page size and stitch the pages back up.
        let chain = ChainStore::new(Network::Regtest);
        let outputs: Vec<TxOut> = (0..25)
            .map(|_| TxOut::new(Amount::from_sat(10), addr(3).script_pubkey()))
            .collect();
        let big_tx = Transaction {
            version: 2,
            inputs: vec![TxIn::new(OutPoint::new(Txid([9; 32]), 0))],
            outputs,
            lock_time: 0,
        };
        let block = mine_block_on(&chain, chain.tip_hash(), vec![big_tx], Script::new_op_return(b"m"), 0);
        let mut state = BitcoinCanisterState::new(params(2));
        state.process_response(
            GetSuccessorsResponse { blocks: vec![block], next: Vec::new() },
            NOW,
            &mut Meter::new(),
        );

        // The default page size swallows all 25 at once.
        let response = state.get_utxos(&addr(3), None, &mut Meter::new()).unwrap();
        assert_eq!(response.utxos.len(), 25);
        assert!(response.next_page.is_none());

        // Stitching pages of 10 reproduces the full scan exactly.
        let mut stitched = Vec::new();
        let mut filter = None;
        loop {
            let page = state
                .get_utxos_paged(&addr(3), filter.clone(), 10, &mut Meter::new())
                .unwrap();
            stitched.extend(page.utxos);
            match page.next_page {
                Some(token) => filter = Some(UtxosFilter::Page(token)),
                None => break,
            }
        }
        assert_eq!(stitched, response.utxos);

        // Tampered and truncated tokens are malformed.
        let first = state.get_utxos_paged(&addr(3), None, 10, &mut Meter::new()).unwrap();
        let mut tampered = first.next_page.clone().unwrap();
        tampered[0] ^= 0xff; // wrong version byte
        assert_eq!(
            state.get_utxos(&addr(3), Some(UtxosFilter::Page(tampered)), &mut Meter::new()),
            Err(ApiError::MalformedPage)
        );
        assert_eq!(
            state.get_utxos(&addr(3), Some(UtxosFilter::Page(vec![1, 2])), &mut Meter::new()),
            Err(ApiError::MalformedPage)
        );
    }

    #[test]
    fn stale_tokens_rejected_when_the_tip_advances() {
        let mut chain = ChainStore::new(Network::Regtest);
        let mut blocks = Vec::new();
        for i in 0..3 {
            let block =
                mine_block_on(&chain, chain.tip_hash(), Vec::new(), addr(7).script_pubkey(), i);
            chain.accept_block(block.clone(), NOW).unwrap();
            blocks.push(block);
        }
        let mut state = BitcoinCanisterState::new(params(6));
        state.process_response(
            GetSuccessorsResponse { blocks, next: Vec::new() },
            NOW,
            &mut Meter::new(),
        );
        let first = state.get_utxos_paged(&addr(7), None, 1, &mut Meter::new()).unwrap();
        let token = first.next_page.expect("3 coinbases paginate at size 1");

        // The token resumes fine while the tip is unchanged…
        let resumed = state
            .get_utxos_paged(&addr(7), Some(UtxosFilter::Page(token.clone())), 1, &mut Meter::new())
            .unwrap();
        assert_eq!(resumed.utxos.len(), 1);

        // …but once a new block lands, the view has shifted and the
        // token must be rejected rather than silently re-anchored.
        let block4 =
            mine_block_on(&chain, chain.tip_hash(), Vec::new(), addr(7).script_pubkey(), 9);
        chain.accept_block(block4.clone(), NOW).unwrap();
        state.process_response(
            GetSuccessorsResponse { blocks: vec![block4], next: Vec::new() },
            NOW,
            &mut Meter::new(),
        );
        assert_eq!(
            state.get_utxos_paged(&addr(7), Some(UtxosFilter::Page(token)), 1, &mut Meter::new()),
            Err(ApiError::MalformedPage)
        );
    }

    #[test]
    fn page_cost_is_independent_of_address_utxo_count() {
        // addr(1) owns 4 stable UTXOs, addr(2) owns 400; an equal-sized
        // page must cost the same metered instructions for both. The
        // payment block is buried under empty blocks so it stabilizes
        // into the address index.
        let mut chain = ChainStore::new(Network::Regtest);
        let mut outputs = Vec::new();
        for _ in 0..4 {
            outputs.push(TxOut::new(Amount::from_sat(10), addr(1).script_pubkey()));
        }
        for _ in 0..400 {
            outputs.push(TxOut::new(Amount::from_sat(10), addr(2).script_pubkey()));
        }
        let tx = Transaction {
            version: 2,
            inputs: vec![TxIn::new(OutPoint::new(Txid([9; 32]), 0))],
            outputs,
            lock_time: 0,
        };
        let mut blocks = Vec::new();
        let pay = mine_block_on(&chain, chain.tip_hash(), vec![tx], Script::new_op_return(b"m"), 0);
        chain.accept_block(pay.clone(), NOW).unwrap();
        blocks.push(pay);
        for i in 0..5 {
            let filler = mine_block_on(
                &chain,
                chain.tip_hash(),
                Vec::new(),
                Script::new_op_return(b"fill"),
                10 + i,
            );
            chain.accept_block(filler.clone(), NOW).unwrap();
            blocks.push(filler);
        }
        let mut state = BitcoinCanisterState::new(params(2));
        state.process_response(
            GetSuccessorsResponse { blocks, next: Vec::new() },
            NOW,
            &mut Meter::new(),
        );
        assert!(state.anchor_height() >= 1, "payment block must have stabilized");
        let cost = |n: u8| {
            let mut meter = Meter::new();
            let page = state.get_utxos_paged(&addr(n), None, 4, &mut meter).unwrap();
            assert_eq!(page.utxos.len(), 4);
            assert!(
                page.utxos.iter().all(|u| u.height <= state.anchor_height()),
                "UTXOs must be served from the stable index"
            );
            meter.instructions()
        };
        assert_eq!(cost(1), cost(2), "page cost must not scale with the address's UTXO count");
    }

    #[test]
    fn unsynced_state_rejects_requests() {
        let (mut state, _) = state_with_chain(3, 2);
        state.force_unsynced();
        assert_eq!(
            state.get_balance(&addr(7), 0, &mut Meter::new()),
            Err(ApiError::NotSynced)
        );
        assert!(matches!(
            state.get_utxos(&addr(7), None, &mut Meter::new()),
            Err(ApiError::NotSynced)
        ));
    }

    #[test]
    fn send_transaction_validates_syntax_only() {
        let (mut state, _) = state_with_chain(1, 2);
        let tx = Transaction {
            version: 2,
            inputs: vec![TxIn::new(OutPoint::new(Txid([1; 32]), 0))],
            outputs: vec![TxOut::new(Amount::from_sat(5), addr(1).script_pubkey())],
            lock_time: 0,
        };
        let txid = state.send_transaction(&tx.encode_to_vec(), &mut Meter::new()).unwrap();
        assert_eq!(txid, tx.txid());
        assert_eq!(state.outbound_len(), 1);

        assert_eq!(
            state.send_transaction(b"garbage", &mut Meter::new()),
            Err(ApiError::MalformedTransaction)
        );
        let empty = Transaction::default();
        assert_eq!(
            state.send_transaction(&empty.encode_to_vec(), &mut Meter::new()),
            Err(ApiError::MalformedTransaction)
        );
    }

    #[test]
    fn fee_percentiles_from_resolvable_transactions() {
        // Block 1 creates a coinbase to addr(7); block 2 spends it with a
        // visible fee.
        let mut chain = ChainStore::new(Network::Regtest);
        let b1 = mine_block_on(&chain, chain.tip_hash(), Vec::new(), addr(7).script_pubkey(), 0);
        chain.accept_block(b1.clone(), NOW).unwrap();
        let subsidy = Network::Regtest.params().block_subsidy;
        let spend = Transaction {
            version: 2,
            inputs: vec![TxIn::new(OutPoint::new(b1.txdata[0].txid(), 0))],
            outputs: vec![TxOut::new(
                subsidy.checked_sub(Amount::from_sat(10_000)).unwrap(),
                addr(9).script_pubkey(),
            )],
            lock_time: 0,
        };
        let expected_rate = 10_000u64 * 1000 / spend.vsize() as u64;
        let b2 = mine_block_on(&chain, chain.tip_hash(), vec![spend], Script::new_op_return(b"m"), 1);
        chain.accept_block(b2.clone(), NOW).unwrap();

        let mut state = BitcoinCanisterState::new(params(10)); // all unstable
        state.process_response(
            GetSuccessorsResponse { blocks: vec![b1, b2], next: Vec::new() },
            NOW,
            &mut Meter::new(),
        );
        let percentiles = state.get_current_fee_percentiles(&mut Meter::new());
        assert_eq!(percentiles.len(), 100);
        assert!(percentiles.iter().all(|&r| r == expected_rate));
    }

    #[test]
    fn fee_percentiles_empty_without_observable_fees() {
        let (state, _) = state_with_chain(3, 10);
        assert!(state.get_current_fee_percentiles(&mut Meter::new()).is_empty());
    }

    #[test]
    fn instruction_counts_scale_with_response_size() {
        let (state, _) = state_with_chain(10, 3);
        let mut small = Meter::new();
        let _ = state.get_balance(&addr(200), 0, &mut small); // empty address
        let mut large = Meter::new();
        let _ = state.get_utxos(&addr(7), None, &mut large);
        assert!(large.instructions() > small.instructions());
        assert!(small.instructions() >= metering::QUERY_BASE);
    }
}
